//! Offline shim for the subset of the `criterion` benchmarking API the
//! workspace uses.
//!
//! The build environment has no access to crates.io, so benches link
//! against this minimal harness instead of the real crate. It keeps the
//! same source-level API (`criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`]) so the bench sources stay byte-for-byte compatible
//! with real criterion, and measures wall-clock time with a warmup
//! phase, reporting min/median/mean per benchmark.
//!
//! Set `BENCH_JSON=/path/to/out.json` to additionally dump a machine
//! readable summary (one entry per benchmark: id, iterations, and
//! nanoseconds min/median/mean) — the workspace's perf-trajectory
//! tooling consumes this.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark: identifier plus per-iteration statistics.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id, `group/function` or `group/function/param`.
    pub id: String,
    /// Number of timed iterations contributing to the statistics.
    pub iterations: u64,
    /// Fastest observed per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time, in nanoseconds.
    pub mean_ns: f64,
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples_target: usize,
    measured: Vec<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call after a warmup.
    ///
    /// Keeps total per-benchmark cost bounded (~2 s) even for slow
    /// routines by shrinking the sample count adaptively.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + cost estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let est = warm_start.elapsed().max(Duration::from_nanos(1));

        let budget = Duration::from_secs(2);
        let affordable = (budget.as_nanos() / est.as_nanos()).max(1) as usize;
        let samples = self.samples_target.min(affordable).max(1);

        // Warm up a little more for fast routines so caches settle.
        if est < Duration::from_millis(1) {
            let warm_until = Instant::now() + Duration::from_millis(50);
            while Instant::now() < warm_until {
                black_box(routine());
            }
        }

        // For very fast routines, batch iterations per sample so each
        // timed interval is long enough for the clock to resolve.
        let batch = (Duration::from_micros(200).as_nanos() / est.as_nanos()).max(1) as u64;

        self.measured.clear();
        self.iterations = 0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.measured.push(elapsed / batch as u32);
            self.iterations += batch;
        }
    }

    fn result(&self, id: &str) -> BenchResult {
        let mut ns: Vec<f64> = self.measured.iter().map(|d| d.as_nanos() as f64).collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = ns.first().copied().unwrap_or(0.0);
        let median = if ns.is_empty() { 0.0 } else { ns[ns.len() / 2] };
        let mean = if ns.is_empty() {
            0.0
        } else {
            ns.iter().sum::<f64>() / ns.len() as f64
        };
        BenchResult {
            id: id.to_string(),
            iterations: self.iterations,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        }
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    default_sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 30;

impl Criterion {
    /// Overrides the default sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = Some(n);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.default_sample_size.unwrap_or(DEFAULT_SAMPLES);
        let result = run_one(id, samples, f);
        self.results.push(result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the final table and honours `BENCH_JSON`.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                match write_json(&self.results, &path) {
                    Err(e) => eprintln!("criterion-shim: failed to write {path}: {e}"),
                    Ok(()) => eprintln!(
                        "criterion-shim: wrote {} results to {path}",
                        self.results.len()
                    ),
                }
            }
        }
    }
}

/// Serializes measured results as the workspace's `BENCH_*.json` schema:
/// `[{id, iterations, min_ns, median_ns, mean_ns}, …]`. Shared by the
/// `BENCH_JSON` env hook and the `bench_json` snapshot binary.
pub fn write_json(results: &[BenchResult], path: &str) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"iterations\": {}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
            r.id.replace('"', "'"),
            r.iterations,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) -> BenchResult {
    let mut bencher = Bencher {
        samples_target: samples,
        measured: Vec::new(),
        iterations: 0,
    };
    f(&mut bencher);
    let result = bencher.result(id);
    println!(
        "{:<48} time: [min {} / median {} / mean {}]  ({} iters)",
        result.id,
        human(result.min_ns),
        human(result.median_ns),
        human(result.mean_ns),
        result.iterations
    );
    result
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn samples(&self) -> usize {
        self.sample_size
            .or(self.criterion.default_sample_size)
            .unwrap_or(DEFAULT_SAMPLES)
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().label);
        let result = run_one(&full, self.samples(), f);
        self.criterion.results.push(result);
        self
    }

    /// Runs a benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        let result = run_one(&full, self.samples(), |b| f(b, input));
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        c.sample_size(5)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].iterations >= 1);
        assert!(c.results()[0].mean_ns >= 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
            g.bench_with_input(BenchmarkId::new("g", 7), &7usize, |b, &n| {
                b.iter(|| black_box(n * n))
            });
            g.finish();
        }
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["grp/f", "grp/g/7"]);
    }
}
