//! A test whose `prop_assume!` always rejects must fail loudly (real
//! proptest's "too many global rejects"), never pass vacuously.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    #[should_panic(expected = "exhausted")]
    fn impossible_assumption_panics(n in 0usize..10) {
        prop_assume!(n > 100); // never true
        prop_assert!(false, "unreachable: every case is rejected");
    }
}
