//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the property
//! suites link against this minimal, dependency-free re-implementation.
//! It keeps source compatibility for:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies (`0u64..1000`, `1usize..=12`, `-1.0f64..1.0`),
//!   tuple strategies up to arity 6, [`strategy::Just`], and
//!   [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from real proptest: generation is purely random (no
//! shrinking — failures report the full generated inputs instead), and
//! rejection sampling via `prop_assume!` counts against a bounded
//! attempt budget of `16 × cases`.
//!
//! Set `PROPTEST_SEED=<u64>` to reproduce a failing run; the default
//! seed is fixed so CI runs are deterministic.

/// Test-runner plumbing: config, rng, and case outcomes.
pub mod test_runner {
    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// `prop_assert!` failed; the whole test fails.
        Fail(String),
    }

    /// Runs one case body; exists to pin the closure's `Result` type.
    pub fn run_case(f: impl FnOnce() -> Result<(), TestCaseError>) -> Result<(), TestCaseError> {
        f()
    }

    /// Deterministic per-case random source (SplitMix64 → xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Base seed: `PROPTEST_SEED` env var when set, else a fixed
        /// constant so unseeded runs are reproducible.
        pub fn base_seed() -> u64 {
            std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x0DAC_2010_C0FF_EE00)
        }

        /// Rng for the `case`-th attempt of a test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = Self::base_seed() ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            let mut s = [0u64; 4];
            for word in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi]` (inclusive).
        pub fn int_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            let offset = ((self.next_u64() as u128) * span) >> 64;
            lo + offset as i128
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply draws a fresh value from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a second, value-dependent strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_inclusive(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.int_inclusive(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of exactly `size` elements.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    /// Generates vectors of `size` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property suites import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case (the whole test) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (re-drawn) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases && attempts < max_attempts {
                    let case = attempts;
                    attempts += 1;
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let mut __inputs = String::new();
                    $(
                        let __generated =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &__generated
                        ));
                        let $arg = __generated;
                    )+
                    let __result = $crate::test_runner::run_case(move || {
                        $body
                        ::std::result::Result::Ok(())
                    });
                    match __result {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            continue;
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest `{}` failed at case {} (base seed {}): {}\ninputs:\n{}",
                            stringify!($name),
                            case,
                            $crate::test_runner::TestRng::base_seed(),
                            msg,
                            __inputs,
                        ),
                    }
                }
                // Mirror real proptest's "too many global rejects": a
                // run that exhausts its attempt budget on `prop_assume!`
                // rejections must not pass vacuously.
                if accepted < config.cases {
                    panic!(
                        "proptest `{}` exhausted {} attempts with only {}/{} accepted \
                         cases ({} rejected by prop_assume!) — strategy/assumption too \
                         restrictive",
                        stringify!($name), attempts, accepted, config.cases, rejected,
                    );
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 1usize..=12, x in -1.0f64..1.0, s in 5u64..100) {
            prop_assert!((1..=12).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((5..100).contains(&s));
        }

        #[test]
        fn flat_map_and_collection_vec_compose(v in (1usize..=4).prop_flat_map(|n| {
            crate::collection::vec((0.0f64..1.0, 0.0f64..1.0), n * 2)
        })) {
            prop_assert!(v.len() % 2 == 0);
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&(a, b)| (0.0..1.0).contains(&a) && (0.0..1.0).contains(&b)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn map_transforms(doubled in (1usize..=6).prop_map(|n| n * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled <= 12);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0.0f64..1.0;
        let mut r1 = crate::test_runner::TestRng::for_case("x", 0);
        let mut r2 = crate::test_runner::TestRng::for_case("x", 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
