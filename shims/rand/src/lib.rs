//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! trait providing `gen::<f64>()`, `gen::<u64>()`, `gen_bool` and
//! `gen_range` over integer/float ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction rand 0.8 uses for `SmallRng` — so streams are uniform,
//! fast and reproducible. Sequences are *not* bit-identical to the real
//! `rand` crate (StdRng there is ChaCha12); all workspace consumers only
//! rely on determinism for a fixed seed, not on a specific stream.

/// Core trait: a source of uniformly distributed `u64` words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed array.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Extension trait with the sampling helpers consumers call.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their full range,
    /// `bool` as a fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformSample,
        R: IntoUniformRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_inclusive(self, lo, hi_inclusive)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Scalar types usable with [`Rng::gen_range`].
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform sample from the inclusive interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The largest value strictly below `self` (used to convert
    /// exclusive upper bounds); `None` when no such value exists.
    fn prev(self) -> Option<Self>;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift rejection-free mapping is fine here: span
                // is tiny relative to 2^64 in every workspace call site, so
                // modulo bias is < 2^-40 and irrelevant for test workloads.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (lo as i128 + offset as i128) as $t
            }
            fn prev(self) -> Option<Self> {
                self.checked_sub(1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range called with an empty range");
        let u = f64::sample(rng);
        lo + (hi - lo) * u
    }
    fn prev(self) -> Option<Self> {
        // Treat `lo..hi` over floats as the half-open interval directly.
        Some(self)
    }
}

/// Conversion of range syntax into inclusive bounds.
pub trait IntoUniformRange<T: UniformSample> {
    /// Returns `(lo, hi_inclusive)`.
    fn bounds(self) -> (T, T);
}

impl<T: UniformSample> IntoUniformRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        let hi = self
            .end
            .prev()
            .expect("gen_range called with an empty range");
        (self.start, hi)
    }
}

impl<T: UniformSample> IntoUniformRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    ///
    /// Not stream-compatible with `rand`'s ChaCha-based `StdRng`, but a
    /// high-quality uniform generator with the same construction API.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..200usize {
            let j = rng.gen_range(0..=i);
            assert!(j <= i);
            if i > 0 {
                let k = rng.gen_range(0..i);
                assert!(k < i);
            }
        }
        let x = rng.gen_range(-2.0f64..3.0);
        assert!((-2.0..3.0).contains(&x));
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
