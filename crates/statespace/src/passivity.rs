//! Passivity screening for scattering-parameter macromodels.
//!
//! A scattering representation is passive iff `‖S(jω)‖₂ ≤ 1` for all ω
//! (bounded realness). Fitted macromodels can violate this between
//! interpolation points even when the data were passive, so downstream
//! SPICE co-simulation flows screen models on a dense grid before use.
//! This module provides that screen; full LMI/Hamiltonian certification
//! is out of scope for the paper's pipeline (listed as future work in
//! DESIGN.md).

use mfti_numeric::parallel;

use crate::error::StateSpaceError;
use crate::transfer::TransferFunction;

/// Result of a grid passivity screen.
#[derive(Debug, Clone, PartialEq)]
pub struct PassivityReport {
    /// Largest `‖S(jω)‖₂` seen on the grid.
    pub max_gain: f64,
    /// Frequency (Hz) where the maximum occurred.
    pub worst_f_hz: f64,
    /// Frequencies where `‖S‖₂ > 1 + tol` (violations).
    pub violations: Vec<f64>,
}

impl PassivityReport {
    /// `true` when no grid point violated the unit-gain bound.
    pub fn is_passive(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Screens a scattering-parameter model on a frequency grid.
///
/// `tol` is the allowed overshoot (e.g. `1e-6` absorbs roundoff).
///
/// # Errors
///
/// Propagates evaluation failures (a grid point on a pole).
///
/// ```
/// use mfti_statespace::passivity::check_on_grid;
/// use mfti_statespace::DescriptorSystem;
/// use mfti_numeric::RMatrix;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// // H(s) = 0.5/(s+1): gain ≤ 0.5 < 1 everywhere — passive.
/// let sys = DescriptorSystem::from_state_space(
///     RMatrix::from_diag(&[-1.0]),
///     RMatrix::col_vector(&[1.0]),
///     RMatrix::row_vector(&[0.5]),
///     RMatrix::zeros(1, 1),
/// )?;
/// let report = check_on_grid(&sys, &[0.01, 0.1, 1.0, 10.0], 1e-9)?;
/// assert!(report.is_passive());
/// assert!(report.max_gain <= 0.5 + 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn check_on_grid<T: TransferFunction>(
    model: &T,
    freqs_hz: &[f64],
    tol: f64,
) -> Result<PassivityReport, StateSpaceError> {
    // The responses come from the batched sweep path (one shared
    // factorization, parallel per-point solves for descriptor models);
    // the spectral norms — an SVD per grid point, the dominant cost of
    // dense screens — fan out across the cores too. The reduction below
    // is serial in grid order, so the report is deterministic.
    let responses = model.frequency_response(freqs_hz)?;
    let gains = parallel::map(&responses, |_, h| h.norm_2());
    let mut max_gain = 0.0f64;
    let mut worst_f_hz = freqs_hz.first().copied().unwrap_or(0.0);
    let mut violations = Vec::new();
    for (&f, &gain) in freqs_hz.iter().zip(&gains) {
        if gain > max_gain {
            max_gain = gain;
            worst_f_hz = f;
        }
        if gain > 1.0 + tol {
            violations.push(f);
        }
    }
    Ok(PassivityReport {
        max_gain,
        worst_f_hz,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescriptorSystem;
    use mfti_numeric::RMatrix;

    fn gain_system(g: f64) -> DescriptorSystem<f64> {
        DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0]),
            RMatrix::col_vector(&[1.0]),
            RMatrix::row_vector(&[g]),
            RMatrix::zeros(1, 1),
        )
        .expect("valid")
    }

    #[test]
    fn passive_system_passes() {
        let report = check_on_grid(&gain_system(0.9), &[0.01, 0.1, 1.0], 1e-9).unwrap();
        assert!(report.is_passive());
        assert!(report.max_gain < 0.91);
    }

    #[test]
    fn active_system_is_flagged_with_worst_frequency() {
        // DC gain 2 > 1 — violation at low frequency, decaying with ω.
        let report = check_on_grid(&gain_system(2.0), &[0.001, 0.01, 1.0, 100.0], 1e-9).unwrap();
        assert!(!report.is_passive());
        assert!(report.max_gain > 1.9);
        assert!(report.worst_f_hz <= 0.01);
        assert!(!report.violations.is_empty());
        // High-frequency points roll off below 1 and are not violations.
        assert!(!report.violations.contains(&100.0));
    }

    #[test]
    fn tolerance_absorbs_marginal_overshoot() {
        let report = check_on_grid(&gain_system(1.0 + 1e-9), &[1e-6], 1e-6).unwrap();
        assert!(report.is_passive());
        let strict = check_on_grid(&gain_system(1.0 + 1e-3), &[1e-6], 1e-6).unwrap();
        assert!(!strict.is_passive());
    }
}
