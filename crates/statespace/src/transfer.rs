use mfti_numeric::{CMatrix, Complex};

use crate::error::StateSpaceError;
use crate::s_at_hz;

/// Anything that can be evaluated as a `p × m` matrix transfer function
/// `H(s)`.
///
/// The fitting algorithms, error metrics, Bode helpers and sampling
/// machinery are all written against this trait, so descriptor systems,
/// pole–residue models and (in tests) closed-form functions are
/// interchangeable.
pub trait TransferFunction {
    /// Number of outputs `p` (rows of `H`).
    fn outputs(&self) -> usize;

    /// Number of inputs `m` (columns of `H`).
    fn inputs(&self) -> usize;

    /// Evaluates `H(s)` at a point of the complex plane.
    ///
    /// # Errors
    ///
    /// Implementations return [`StateSpaceError::EvaluationAtPole`] when
    /// `s` coincides with a pole (or the pencil is singular there).
    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError>;

    /// Evaluates `H(j2πf)` at a frequency in hertz.
    ///
    /// # Errors
    ///
    /// Same as [`TransferFunction::eval`].
    fn response_at_hz(&self, f_hz: f64) -> Result<CMatrix, StateSpaceError> {
        self.eval(s_at_hz(f_hz))
    }

    /// Evaluates the response on a whole frequency grid (hertz).
    ///
    /// # Errors
    ///
    /// Fails on the first frequency that coincides with a pole.
    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        freqs_hz.iter().map(|&f| self.response_at_hz(f)).collect()
    }
}

impl<T: TransferFunction + ?Sized> TransferFunction for &T {
    fn outputs(&self) -> usize {
        (**self).outputs()
    }
    fn inputs(&self) -> usize {
        (**self).inputs()
    }
    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        (**self).eval(s)
    }
    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        (**self).frequency_response(freqs_hz)
    }
}

impl<T: TransferFunction + ?Sized> TransferFunction for Box<T> {
    fn outputs(&self) -> usize {
        (**self).outputs()
    }
    fn inputs(&self) -> usize {
        (**self).inputs()
    }
    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        (**self).eval(s)
    }
    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        (**self).frequency_response(freqs_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;

    /// Closed-form H(s) = [[1/(s+1)]] used to validate the default methods.
    #[derive(Debug)]
    struct LowPass;

    impl TransferFunction for LowPass {
        fn outputs(&self) -> usize {
            1
        }
        fn inputs(&self) -> usize {
            1
        }
        fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
            let h = (s + 1.0).recip();
            Ok(CMatrix::from_rows(&[vec![h]]).expect("1x1"))
        }
    }

    #[test]
    fn response_at_hz_uses_j_two_pi_f() {
        let sys = LowPass;
        let f = 1.0 / std::f64::consts::TAU; // ω = 1 rad/s
        let h = sys.response_at_hz(f).unwrap();
        assert!((h[(0, 0)] - c64(0.5, -0.5)).abs() < 1e-12);
    }

    #[test]
    fn frequency_response_maps_the_grid() {
        let sys = LowPass;
        let grid = [0.0, 1.0, 10.0];
        let resp = sys.frequency_response(&grid).unwrap();
        assert_eq!(resp.len(), 3);
        assert!((resp[0][(0, 0)] - c64(1.0, 0.0)).abs() < 1e-12); // DC gain
    }

    #[test]
    fn trait_is_usable_through_references() {
        fn dc_gain<T: TransferFunction>(t: T) -> f64 {
            t.eval(Complex::ZERO).unwrap()[(0, 0)].abs()
        }
        let sys = LowPass;
        assert!((dc_gain(&sys) - 1.0).abs() < 1e-12);
    }
}
