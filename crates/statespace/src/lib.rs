//! Descriptor state-space systems and pole–residue rational models.
//!
//! The MFTI paper identifies a descriptor system
//!
//! ```text
//! E ẋ = A x + B u,    y = C x + D u,    H(s) = C (sE − A)⁻¹ B + D
//! ```
//!
//! from frequency samples of its transfer function. This crate provides
//! the model classes shared by every algorithm in the workspace:
//!
//! * [`DescriptorSystem`] — possibly-singular-`E` state-space models
//!   (the output of MFTI/VFTI and the "original system" of the paper's
//!   Example 1),
//! * [`RationalModel`] — common-pole pole–residue models (the output of
//!   vector fitting), convertible to a real descriptor realization,
//! * [`TransferFunction`] — the minimal evaluation interface all
//!   fitting algorithms and error metrics are written against,
//! * [`Macromodel`] — the object-safe model surface the fitters return:
//!   order inspection plus batched sweep evaluation
//!   ([`Macromodel::eval_batch`]) that hoists factorization work out of
//!   the per-frequency loop. Descriptor sweeps pick a kernel per
//!   magnitude group ([`SweepStrategy`]): per-point LU for short
//!   sweeps, a shared Hessenberg reduction for medium ones, and a full
//!   complex Schur form — opportunistically diagonalized to pole–residue
//!   form when the eigenbasis validates — once the sweep amortizes it;
//!   per-point work fans out across cores (`MFTI_THREADS` override,
//!   bit-identical to serial at any worker count),
//! * [`bode`] — Bode-diagram extraction helpers used to regenerate the
//!   paper's Fig. 2.
//!
//! # Example
//!
//! ```
//! use mfti_statespace::{DescriptorSystem, TransferFunction};
//! use mfti_numeric::{RMatrix, c64};
//!
//! # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
//! // 1st-order low-pass: H(s) = 1 / (1 + s)
//! let sys = DescriptorSystem::from_state_space(
//!     RMatrix::from_diag(&[-1.0]),
//!     RMatrix::col_vector(&[1.0]),
//!     RMatrix::row_vector(&[1.0]),
//!     RMatrix::zeros(1, 1),
//! )?;
//! let h = sys.eval(c64(0.0, 1.0))?; // at ω = 1 rad/s
//! assert!((h[(0, 0)].abs() - 1.0 / 2f64.sqrt()).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bode;
mod descriptor;
mod error;
mod macromodel;
pub mod passivity;
mod rational;
pub mod simulation;
mod transfer;

pub use descriptor::{DescriptorSystem, SweepStrategy};
pub use error::StateSpaceError;
pub use macromodel::Macromodel;
pub use rational::{complex_residue, RationalModel};
pub use transfer::TransferFunction;

/// Converts a frequency in hertz to the Laplace variable `s = j2πf`.
///
/// ```
/// let s = mfti_statespace::s_at_hz(1.0);
/// assert!((s.im - std::f64::consts::TAU).abs() < 1e-12 && s.re == 0.0);
/// ```
pub fn s_at_hz(f_hz: f64) -> mfti_numeric::Complex {
    mfti_numeric::c64(0.0, std::f64::consts::TAU * f_hz)
}
