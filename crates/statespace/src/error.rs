use std::error::Error;
use std::fmt;

use mfti_numeric::NumericError;

/// Errors produced when building or evaluating system models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StateSpaceError {
    /// The five state-space matrices have inconsistent dimensions.
    DimensionMismatch {
        /// Human-readable description of the inconsistency.
        what: &'static str,
    },
    /// The transfer function could not be evaluated at `s` because
    /// `sE − A` is singular (`s` is a pole or the pencil is singular).
    EvaluationAtPole {
        /// Real part of the offending point.
        re: f64,
        /// Imaginary part of the offending point.
        im: f64,
    },
    /// The model is not closed under conjugation, so no real realization
    /// exists.
    NotConjugateSymmetric,
    /// A matrix expected to be real (within tolerance) had significant
    /// imaginary parts.
    NotReal {
        /// Largest imaginary magnitude encountered.
        max_imag: f64,
    },
    /// An underlying linear-algebra kernel failed.
    Numeric(NumericError),
}

impl fmt::Display for StateSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateSpaceError::DimensionMismatch { what } => {
                write!(f, "inconsistent model dimensions: {what}")
            }
            StateSpaceError::EvaluationAtPole { re, im } => {
                write!(f, "transfer function evaluated at a pole: s = {re}+{im}i")
            }
            StateSpaceError::NotConjugateSymmetric => {
                write!(f, "model is not closed under complex conjugation")
            }
            StateSpaceError::NotReal { max_imag } => {
                write!(f, "matrix is not real: largest imaginary part {max_imag:e}")
            }
            StateSpaceError::Numeric(e) => write!(f, "numeric kernel failed: {e}"),
        }
    }
}

impl Error for StateSpaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StateSpaceError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for StateSpaceError {
    fn from(e: NumericError) -> Self {
        StateSpaceError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StateSpaceError::EvaluationAtPole { re: 0.0, im: 1.0 };
        assert!(e.to_string().contains("pole"));
        let e = StateSpaceError::Numeric(NumericError::Singular { op: "lu solve" });
        assert!(e.to_string().contains("lu solve"));
    }

    #[test]
    fn numeric_errors_convert_and_chain() {
        let e: StateSpaceError = NumericError::Singular { op: "x" }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
