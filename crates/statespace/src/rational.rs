use mfti_numeric::{parallel, CMatrix, Complex, RMatrix};

use crate::descriptor::DescriptorSystem;
use crate::error::StateSpaceError;
use crate::macromodel::Macromodel;
use crate::transfer::TransferFunction;

/// A common-pole pole–residue model
/// `H(s) = D + Σ_k R_k / (s − p_k)` with matrix residues `R_k ∈ ℂ^{p×m}`.
///
/// This is the native output format of vector fitting (the paper's VF
/// baseline) and a convenient intermediate for building synthetic
/// benchmark systems with prescribed modal structure.
///
/// ```
/// use mfti_statespace::{RationalModel, TransferFunction};
/// use mfti_numeric::{c64, CMatrix, Complex};
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// // H(s) = 1/(s+1): one real pole, residue 1.
/// let model = RationalModel::new(
///     vec![c64(-1.0, 0.0)],
///     vec![CMatrix::identity(1)],
///     CMatrix::zeros(1, 1),
/// )?;
/// let dc = model.eval(Complex::ZERO)?;
/// assert!((dc[(0, 0)].re - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RationalModel {
    poles: Vec<Complex>,
    residues: Vec<CMatrix>,
    d: CMatrix,
}

impl RationalModel {
    /// Builds a pole–residue model, validating dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when the number of
    /// residues differs from the number of poles or residue shapes are
    /// inconsistent with `d`.
    pub fn new(
        poles: Vec<Complex>,
        residues: Vec<CMatrix>,
        d: CMatrix,
    ) -> Result<Self, StateSpaceError> {
        if poles.len() != residues.len() {
            return Err(StateSpaceError::DimensionMismatch {
                what: "one residue matrix per pole required",
            });
        }
        if residues.iter().any(|r| r.dims() != d.dims()) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "all residues must share the p×m shape of D",
            });
        }
        Ok(RationalModel { poles, residues, d })
    }

    /// The common poles.
    pub fn poles(&self) -> &[Complex] {
        &self.poles
    }

    /// The matrix residues (one per pole).
    pub fn residues(&self) -> &[CMatrix] {
        &self.residues
    }

    /// The constant (feed-through) term `D`.
    pub fn d(&self) -> &CMatrix {
        &self.d
    }

    /// Number of poles (what the paper's Table 1 reports as the VF
    /// "reduced order").
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// `true` when all poles have strictly negative real parts.
    pub fn is_stable(&self) -> bool {
        self.poles.iter().all(|p| p.re < 0.0)
    }

    /// Reflects unstable poles into the left half-plane (the standard
    /// vector-fitting stabilization step), leaving residues untouched.
    pub fn flip_unstable_poles(&mut self) {
        for p in &mut self.poles {
            if p.re > 0.0 {
                p.re = -p.re;
            }
        }
    }

    /// Checks closure under conjugation within `tol`: every complex pole
    /// has a conjugate partner with conjugated residue, and (near-)real
    /// poles carry (near-)real residues. A model with this property has a
    /// real transfer function on the real axis and admits a real
    /// state-space realization.
    pub fn is_conjugate_symmetric(&self, tol: f64) -> bool {
        let scale = self.poles.iter().map(|p| p.abs()).fold(1.0f64, f64::max);
        let mut used = vec![false; self.poles.len()];
        for i in 0..self.poles.len() {
            if used[i] {
                continue;
            }
            let p = self.poles[i];
            if p.im.abs() <= tol * scale {
                if !self.residues[i].is_real_within(tol * self.residues[i].max_abs().max(1.0)) {
                    return false;
                }
                used[i] = true;
                continue;
            }
            // Find the conjugate partner.
            let mut found = false;
            for j in i + 1..self.poles.len() {
                if used[j] {
                    continue;
                }
                if (self.poles[j] - p.conj()).abs() <= tol * scale {
                    let rdiff = (&self.residues[j] - &self.residues[i].conj()).max_abs();
                    if rdiff <= tol * self.residues[i].max_abs().max(1.0) {
                        used[i] = true;
                        used[j] = true;
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                return false;
            }
        }
        true
    }

    /// Converts to a **real** state-space realization (`E = I`).
    ///
    /// Real poles contribute `m` states each (`A`-block `p·I_m`), complex
    /// conjugate pairs contribute `2m` states with the standard
    /// `[[σI, ωI], [−ωI, σI]]` block; the realization order is therefore
    /// `m·(#real + 2·#pairs)`, larger than [`RationalModel::order`].
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::NotConjugateSymmetric`] when the model
    /// is not closed under conjugation within `tol`.
    pub fn to_state_space(&self, tol: f64) -> Result<DescriptorSystem<f64>, StateSpaceError> {
        if !self.is_conjugate_symmetric(tol) {
            return Err(StateSpaceError::NotConjugateSymmetric);
        }
        let (p_out, m_in) = self.d.dims();
        let scale = self.poles.iter().map(|p| p.abs()).fold(1.0f64, f64::max);

        let mut a_blocks: Vec<RMatrix> = Vec::new();
        let mut b_blocks: Vec<RMatrix> = Vec::new();
        let mut c_blocks: Vec<RMatrix> = Vec::new();
        let mut used = vec![false; self.poles.len()];

        for i in 0..self.poles.len() {
            if used[i] {
                continue;
            }
            let p = self.poles[i];
            if p.im.abs() <= tol * scale {
                // Real pole: A-block = p·I_m, B = I_m, C = Re(R).
                used[i] = true;
                a_blocks.push(&RMatrix::identity(m_in) * p.re);
                b_blocks.push(RMatrix::identity(m_in));
                c_blocks.push(self.residues[i].real_part());
            } else {
                // Complex pair: find the partner (guaranteed by the
                // symmetry check above).
                let j = (i + 1..self.poles.len())
                    .find(|&j| !used[j] && (self.poles[j] - p.conj()).abs() <= tol * scale)
                    // mfti-lint: allow(MFTI-D7) — the symmetry check
                    // above guarantees every complex pole a partner
                    .expect("checked by is_conjugate_symmetric");
                used[i] = true;
                used[j] = true;
                let sigma = p.re;
                let omega = p.im;
                let mut a = RMatrix::zeros(2 * m_in, 2 * m_in);
                for k in 0..m_in {
                    a[(k, k)] = sigma;
                    a[(k, m_in + k)] = omega;
                    a[(m_in + k, k)] = -omega;
                    a[(m_in + k, m_in + k)] = sigma;
                }
                let mut b = RMatrix::zeros(2 * m_in, m_in);
                for k in 0..m_in {
                    b[(k, k)] = 1.0;
                }
                let re = self.residues[i].real_part();
                let im = self.residues[i].imag_part();
                let c = RMatrix::hstack(&[&re.scale(2.0), &im.scale(2.0)])
                    // mfti-lint: allow(MFTI-D7) — re and im are parts
                    // of the same residue block, so rows agree
                    .expect("blocks share p rows");
                a_blocks.push(a);
                b_blocks.push(b);
                c_blocks.push(c);
            }
        }

        let (a, b, c) = if a_blocks.is_empty() {
            (
                RMatrix::zeros(0, 0),
                RMatrix::zeros(0, m_in),
                RMatrix::zeros(p_out, 0),
            )
        } else {
            let a_refs: Vec<&RMatrix> = a_blocks.iter().collect();
            let b_refs: Vec<&RMatrix> = b_blocks.iter().collect();
            let c_refs: Vec<&RMatrix> = c_blocks.iter().collect();
            (
                // mfti-lint: allow(MFTI-D7) — the pole list is
                // non-empty on this branch
                RMatrix::block_diag(&a_refs).expect("non-empty"),
                // mfti-lint: allow(MFTI-D7) — every per-pole block has
                // the model's own m columns
                RMatrix::vstack(&b_refs).expect("equal m columns"),
                // mfti-lint: allow(MFTI-D7) — every per-pole block has
                // the model's own p rows
                RMatrix::hstack(&c_refs).expect("equal p rows"),
            )
        };
        DescriptorSystem::from_state_space(a, b, c, self.d.real_part())
    }
}

impl TransferFunction for RationalModel {
    fn outputs(&self) -> usize {
        self.d.rows()
    }

    fn inputs(&self) -> usize {
        self.d.cols()
    }

    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        let mut h = self.d.clone();
        for (pole, res) in self.poles.iter().zip(&self.residues) {
            let denom = s - *pole;
            if denom.abs() == 0.0 {
                return Err(StateSpaceError::EvaluationAtPole { re: s.re, im: s.im });
            }
            let w = denom.recip();
            // Scaled accumulate over the flat storage (h ← h + w·R).
            for (h_e, &r_e) in h.as_mut_slice().iter_mut().zip(res.as_slice()) {
                *h_e += r_e * w;
            }
        }
        Ok(h)
    }

    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        self.response_batch_hz(freqs_hz)
    }
}

impl Macromodel for RationalModel {
    fn order(&self) -> usize {
        self.poles.len()
    }

    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        for (pole, si) in self
            .poles
            .iter()
            .flat_map(|p| s.iter().map(move |si| (p, si)))
        {
            if (*si - *pole).abs() == 0.0 {
                return Err(StateSpaceError::EvaluationAtPole {
                    re: si.re,
                    im: si.im,
                });
            }
        }
        // The sweep is cut into one contiguous block of points per
        // worker (static chunks, so the fan-out is deterministic); each
        // worker runs the pole-outer accumulation over its block. Every
        // point still sums its pole basis in the same order as the
        // serial loop, so the parallel result is bit-identical to it.
        // Below a total-work floor the pole-outer accumulation is
        // cheaper than spawning scoped workers (~10 µs each); the
        // single-block result is identical — only scheduling differs.
        let threads = if s.len() * self.poles.len() * self.d.as_slice().len() < 100_000 {
            1
        } else {
            parallel::available_threads().min(s.len().max(1))
        };
        let chunk_len = s.len().div_ceil(threads.max(1)).max(1);
        let chunks: Vec<&[Complex]> = s.chunks(chunk_len).collect();
        let blocks = parallel::map_with(threads, &chunks, |_, block| self.accumulate_block(block));
        Ok(blocks.into_iter().flatten().collect())
    }
}

impl RationalModel {
    /// Pole-outer accumulation over one block of sweep points: each
    /// residue matrix is loaded once and streamed across the block,
    /// instead of re-walking the full pole basis per frequency
    /// (cache-friendly for large `p·m`). Pole hits must be screened out
    /// by the caller.
    fn accumulate_block(&self, s: &[Complex]) -> Vec<CMatrix> {
        let mut out: Vec<CMatrix> = s.iter().map(|_| self.d.clone()).collect();
        for (pole, res) in self.poles.iter().zip(&self.residues) {
            for (si, h) in s.iter().zip(out.iter_mut()) {
                let w = (*si - *pole).recip();
                for (h_e, &r_e) in h.as_mut_slice().iter_mut().zip(res.as_slice()) {
                    *h_e += r_e * w;
                }
            }
        }
        out
    }
}

/// Builds the residue pair `(R, conj(R))` helper for synthetic systems:
/// given a real gain matrix and a phase, returns a complex residue.
///
/// ```
/// use mfti_numeric::RMatrix;
/// let r = mfti_statespace::complex_residue(&RMatrix::identity(2), 0.5);
/// assert_eq!(r.dims(), (2, 2));
/// ```
pub fn complex_residue(gain: &RMatrix, phase: f64) -> CMatrix {
    let w = Complex::from_polar(1.0, phase);
    gain.map(|g| w.scale(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;

    fn one_by_one(z: Complex) -> CMatrix {
        CMatrix::from_rows(&[vec![z]]).unwrap()
    }

    fn simple_pair_model() -> RationalModel {
        // Conjugate pair at −1 ± 2i with residues (1∓1i)/2 … conjugated.
        let p = c64(-1.0, 2.0);
        let r = one_by_one(c64(0.5, -0.5));
        RationalModel::new(
            vec![p, p.conj()],
            vec![r.clone(), r.conj()],
            CMatrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_mismatches() {
        assert!(RationalModel::new(vec![c64(-1.0, 0.0)], vec![], CMatrix::zeros(1, 1)).is_err());
        assert!(RationalModel::new(
            vec![c64(-1.0, 0.0)],
            vec![CMatrix::zeros(2, 2)],
            CMatrix::zeros(1, 1)
        )
        .is_err());
    }

    #[test]
    fn eval_matches_partial_fractions_by_hand() {
        let m = simple_pair_model();
        let s = c64(0.0, 1.0);
        let want = c64(0.5, -0.5) / (s - c64(-1.0, 2.0)) + c64(0.5, 0.5) / (s - c64(-1.0, -2.0));
        let got = m.eval(s).unwrap()[(0, 0)];
        assert!((got - want).abs() < 1e-14);
    }

    #[test]
    fn conjugate_symmetric_model_is_real_on_real_axis() {
        let m = simple_pair_model();
        assert!(m.is_conjugate_symmetric(1e-12));
        let h = m.eval(c64(0.5, 0.0)).unwrap()[(0, 0)];
        assert!(h.im.abs() < 1e-14);
    }

    #[test]
    fn asymmetric_model_is_detected() {
        let m = RationalModel::new(
            vec![c64(-1.0, 2.0)],
            vec![one_by_one(c64(1.0, 0.0))],
            CMatrix::zeros(1, 1),
        )
        .unwrap();
        assert!(!m.is_conjugate_symmetric(1e-12));
        assert!(matches!(
            m.to_state_space(1e-12),
            Err(StateSpaceError::NotConjugateSymmetric)
        ));
    }

    #[test]
    fn state_space_realization_matches_rational_eval() {
        let m = simple_pair_model();
        let ss = m.to_state_space(1e-12).unwrap();
        assert_eq!(ss.order(), 2); // one pair × m=1 inputs × 2
        for &f in &[0.01, 0.1, 1.0, 10.0] {
            let s = crate::s_at_hz(f);
            let h1 = m.eval(s).unwrap();
            let h2 = ss.eval(s).unwrap();
            assert!(
                (&h1 - &h2).max_abs() < 1e-12,
                "mismatch at {f} Hz: {h1:?} vs {h2:?}"
            );
        }
    }

    #[test]
    fn real_pole_realization_matches() {
        let m = RationalModel::new(
            vec![c64(-3.0, 0.0)],
            vec![one_by_one(c64(2.0, 0.0))],
            one_by_one(c64(0.5, 0.0)),
        )
        .unwrap();
        let ss = m.to_state_space(1e-12).unwrap();
        assert_eq!(ss.order(), 1);
        let s = c64(1.0, 1.0);
        assert!((m.eval(s).unwrap()[(0, 0)] - ss.eval(s).unwrap()[(0, 0)]).abs() < 1e-13);
    }

    #[test]
    fn mimo_realization_matches() {
        // 2x2 residues on a conjugate pair plus a real pole.
        let p = c64(-0.5, 3.0);
        let r = CMatrix::from_rows(&[
            vec![c64(1.0, 0.2), c64(0.1, -0.3)],
            vec![c64(-0.4, 0.5), c64(0.8, 0.0)],
        ])
        .unwrap();
        let r_real = CMatrix::from_rows(&[
            vec![c64(0.3, 0.0), c64(0.0, 0.0)],
            vec![c64(0.1, 0.0), c64(-0.2, 0.0)],
        ])
        .unwrap();
        let m = RationalModel::new(
            vec![p, p.conj(), c64(-2.0, 0.0)],
            vec![r.clone(), r.conj(), r_real],
            CMatrix::identity(2),
        )
        .unwrap();
        let ss = m.to_state_space(1e-12).unwrap();
        assert_eq!(ss.order(), 2 * 2 + 2); // pair: 2m=4, real pole: m=2
        for &f in &[0.0, 0.3, 2.0] {
            let s = crate::s_at_hz(f);
            let diff = (&m.eval(s).unwrap() - &ss.eval(s).unwrap()).max_abs();
            assert!(diff < 1e-12, "mismatch at {f} Hz: {diff}");
        }
    }

    #[test]
    fn flip_unstable_poles_stabilizes() {
        let mut m = RationalModel::new(
            vec![c64(1.0, 2.0), c64(1.0, -2.0)],
            vec![one_by_one(c64(1.0, 0.0)), one_by_one(c64(1.0, 0.0))],
            CMatrix::zeros(1, 1),
        )
        .unwrap();
        assert!(!m.is_stable());
        m.flip_unstable_poles();
        assert!(m.is_stable());
        assert!((m.poles()[0] - c64(-1.0, 2.0)).abs() < 1e-15);
    }

    #[test]
    fn eval_batch_matches_pointwise_eval() {
        let p = c64(-0.5, 3.0);
        let r = CMatrix::from_rows(&[
            vec![c64(1.0, 0.2), c64(0.1, -0.3)],
            vec![c64(-0.4, 0.5), c64(0.8, 0.0)],
        ])
        .unwrap();
        let m = RationalModel::new(
            vec![p, p.conj(), c64(-2.0, 0.0)],
            vec![r.clone(), r.conj(), CMatrix::identity(2)],
            CMatrix::identity(2),
        )
        .unwrap();
        let pts: Vec<Complex> = (0..15).map(|i| c64(0.0, 0.3 * i as f64)).collect();
        let batch = m.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = m.eval(s).unwrap();
            assert!((h - &direct).max_abs() < 1e-14);
        }
        // A pole in the batch is reported, not silently divided through.
        let mut bad = pts.clone();
        bad.push(p);
        assert!(matches!(
            m.eval_batch(&bad),
            Err(StateSpaceError::EvaluationAtPole { .. })
        ));
    }

    #[test]
    fn eval_at_pole_is_an_error() {
        let m = simple_pair_model();
        assert!(matches!(
            m.eval(c64(-1.0, 2.0)),
            Err(StateSpaceError::EvaluationAtPole { .. })
        ));
    }

    #[test]
    fn chunked_batch_is_bit_identical_to_one_block() {
        // The parallel fan-out splits the sweep into per-worker blocks;
        // every point must come out bit-equal to the single-block
        // pole-outer accumulation regardless of the split.
        let p = c64(-0.25, 4.0);
        let r = CMatrix::from_fn(3, 2, |i, j| c64(0.3 * i as f64 + 0.1, j as f64 - 0.5));
        let m = RationalModel::new(
            vec![p, p.conj(), c64(-1.5, 0.0), c64(-8.0, 0.0)],
            vec![r.clone(), r.conj(), r.scale(0.2), r.scale(-0.7)],
            CMatrix::zeros(3, 2),
        )
        .unwrap();
        let pts: Vec<Complex> = (0..61).map(|i| c64(0.0, 0.17 * i as f64)).collect();
        let one_block = m.accumulate_block(&pts);
        // Whatever the ambient thread count picks…
        let batch = m.eval_batch(&pts).unwrap();
        // …and an explicit worst-case split into uneven parallel chunks.
        let chunks: Vec<&[Complex]> = pts.chunks(7).collect();
        let chunked: Vec<CMatrix> =
            parallel::map_with(4, &chunks, |_, block| m.accumulate_block(block))
                .into_iter()
                .flatten()
                .collect();
        for variant in [&batch, &chunked] {
            for (a, b) in one_block.iter().zip(variant) {
                assert!(a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.re.to_bits() == y.re.to_bits()
                        && x.im.to_bits() == y.im.to_bits()));
            }
        }
    }
}
