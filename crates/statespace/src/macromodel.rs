//! The [`Macromodel`] trait: the evaluation surface every fitted model
//! in the workspace presents, superseding bare [`TransferFunction`] use
//! at API boundaries.
//!
//! Where [`TransferFunction`] is the minimal "something with a `p × m`
//! response" contract (closed-form test functions implement it in three
//! lines), `Macromodel` is what the fitting stack *returns*: a model
//! with a well-defined order that supports **batched evaluation** over
//! a whole frequency sweep. The default [`Macromodel::eval_batch`] is a
//! per-point loop; concrete models override it to hoist shared setup
//! out of the sweep:
//!
//! * [`DescriptorSystem`](crate::DescriptorSystem) reduces a
//!   shift-inverted pencil **once** — to Hessenberg form for medium
//!   sweeps, or all the way to a complex Schur (and, when the eigenbasis
//!   validates, diagonal pole–residue) form for long ones — so each
//!   frequency costs an `O(n²)` solve with triangular or diagonal
//!   constants instead of an `O(n³)` LU factorization, and fans the
//!   per-point solves across cores deterministically
//!   (see [`DescriptorSystem::eval_batch_with`](crate::DescriptorSystem::eval_batch_with)
//!   and [`SweepStrategy`](crate::SweepStrategy));
//! * [`RationalModel`](crate::RationalModel) streams each residue
//!   matrix across per-worker blocks of the sweep (pole-outer
//!   accumulation, bit-identical to the serial loop).
//!
//! The trait is object-safe: `Box<dyn Macromodel>` is how
//! method-agnostic drivers hold models produced by different fitters.

use mfti_numeric::{CMatrix, Complex};

use crate::error::StateSpaceError;
use crate::s_at_hz;
use crate::transfer::TransferFunction;

/// A fitted (or synthesized) model: a [`TransferFunction`] with a known
/// order and an efficient batched evaluation path.
pub trait Macromodel: TransferFunction {
    /// Model order: state dimension for state-space models, pole count
    /// for pole–residue models.
    fn order(&self) -> usize;

    /// Evaluates `H(s)` at every point of `s`.
    ///
    /// The default implementation loops over [`TransferFunction::eval`];
    /// implementations override it to share factorization work across
    /// the sweep.
    ///
    /// # Errors
    ///
    /// Fails on the first point that coincides with a pole.
    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        s.iter().map(|&z| self.eval(z)).collect()
    }

    /// Evaluates `H(j2πf)` over a grid of frequencies in hertz, through
    /// [`Macromodel::eval_batch`].
    ///
    /// # Errors
    ///
    /// Same as [`Macromodel::eval_batch`].
    fn response_batch_hz(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        let pts: Vec<Complex> = freqs_hz.iter().map(|&f| s_at_hz(f)).collect();
        self.eval_batch(&pts)
    }
}

impl<T: Macromodel + ?Sized> Macromodel for &T {
    fn order(&self) -> usize {
        (**self).order()
    }
    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        (**self).eval_batch(s)
    }
    fn response_batch_hz(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        (**self).response_batch_hz(freqs_hz)
    }
}

impl<T: Macromodel + ?Sized> Macromodel for Box<T> {
    fn order(&self) -> usize {
        (**self).order()
    }
    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        (**self).eval_batch(s)
    }
    fn response_batch_hz(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        (**self).response_batch_hz(freqs_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;

    /// Closed-form low-pass with the default batch implementations.
    #[derive(Debug)]
    struct LowPass;

    impl TransferFunction for LowPass {
        fn outputs(&self) -> usize {
            1
        }
        fn inputs(&self) -> usize {
            1
        }
        fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
            Ok(CMatrix::from_rows(&[vec![(s + 1.0).recip()]]).expect("1x1"))
        }
    }

    impl Macromodel for LowPass {
        fn order(&self) -> usize {
            1
        }
    }

    #[test]
    fn default_batch_matches_pointwise_eval() {
        let sys = LowPass;
        let pts = [c64(0.0, 0.5), c64(0.0, 1.0), c64(0.2, 2.0)];
        let batch = sys.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            assert!((h[(0, 0)] - sys.eval(s).unwrap()[(0, 0)]).abs() < 1e-15);
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Macromodel> = Box::new(LowPass);
        assert_eq!(boxed.order(), 1);
        let resp = boxed.response_batch_hz(&[0.0, 1.0]).unwrap();
        assert_eq!(resp.len(), 2);
        assert!((resp[0][(0, 0)] - c64(1.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn references_forward_the_impl() {
        fn order_of<M: Macromodel>(m: M) -> usize {
            m.order()
        }
        assert_eq!(order_of(&LowPass), 1);
    }
}
