//! Time-domain simulation of descriptor models.
//!
//! The end use of a fitted macromodel is transient co-simulation (eye
//! diagrams, step/impulse responses). This module integrates
//! `E ẋ = A x + B u` with the trapezoidal rule — the stiffly accurate,
//! SPICE-standard choice — which for a fixed step `h` reduces every step
//! to one back-substitution with the constant matrix `E/h − A/2`:
//!
//! ```text
//! (E/h − A/2) x_{k+1} = (E/h + A/2) x_k + B (u_k + u_{k+1})/2
//! ```
//!
//! Works for singular `E` too (algebraic states are handled implicitly),
//! which is exactly the form the raw Loewner realization produces.

use mfti_numeric::{Lu, RMatrix};

use crate::descriptor::DescriptorSystem;
use crate::error::StateSpaceError;

/// A fixed-step trapezoidal integrator bound to one system.
///
/// The factorization of `E/h − A/2` is done once in
/// [`Transient::new`]; each [`Transient::step`] is a solve.
///
/// ```
/// use mfti_statespace::{simulation::Transient, DescriptorSystem};
/// use mfti_numeric::RMatrix;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// // ẋ = −x + u, y = x: step response 1 − e^{−t}.
/// let sys = DescriptorSystem::from_state_space(
///     RMatrix::from_diag(&[-1.0]),
///     RMatrix::col_vector(&[1.0]),
///     RMatrix::row_vector(&[1.0]),
///     RMatrix::zeros(1, 1),
/// )?;
/// let mut sim = Transient::new(&sys, 1e-3)?;
/// let mut y = 0.0;
/// for _ in 0..2000 {
///     y = sim.step(&[1.0])?[0]; // t = 2 s
/// }
/// assert!((y - (1.0 - (-2.0f64).exp())).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Transient {
    lu: Lu<f64>,
    rhs_matrix: RMatrix, // E/h + A/2
    b_half: RMatrix,     // B/2
    c: RMatrix,
    d: RMatrix,
    state: Vec<f64>,
    prev_input: Vec<f64>,
    dt: f64,
    elapsed: f64,
}

impl Transient {
    /// Prepares a simulation with step `dt` seconds, starting from the
    /// zero state and zero input.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] for a non-positive
    /// step and [`StateSpaceError::Numeric`] when `E/h − A/2` is
    /// singular (`1/h` is a generalized eigenvalue — pick another step).
    pub fn new(sys: &DescriptorSystem<f64>, dt: f64) -> Result<Self, StateSpaceError> {
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "time step must be positive and finite",
            });
        }
        let scale_e = 1.0 / dt;
        let lhs = &sys.e().scale(scale_e) - &sys.a().scale(0.5);
        let rhs_matrix = &sys.e().scale(scale_e) + &sys.a().scale(0.5);
        let lu = Lu::compute(&lhs)?;
        if lu.is_singular() {
            return Err(StateSpaceError::Numeric(
                mfti_numeric::NumericError::Singular {
                    op: "transient lhs",
                },
            ));
        }
        Ok(Transient {
            lu,
            rhs_matrix,
            b_half: sys.b().scale(0.5),
            c: sys.c().clone(),
            d: sys.d().clone(),
            state: vec![0.0; sys.order()],
            prev_input: vec![0.0; sys.inputs()],
            dt,
            elapsed: 0.0,
        })
    }

    /// Advances one step with input `u` (held from the previous sample
    /// trapezoidally) and returns the output at the new time.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when `u` has the
    /// wrong length.
    pub fn step(&mut self, u: &[f64]) -> Result<Vec<f64>, StateSpaceError> {
        if u.len() != self.prev_input.len() {
            return Err(StateSpaceError::DimensionMismatch {
                what: "input vector length must equal the input count",
            });
        }
        // rhs = (E/h + A/2) x + B (u_prev + u)/2
        let mut rhs = self
            .rhs_matrix
            .matvec(&self.state)
            .map_err(StateSpaceError::Numeric)?;
        let u_mid: Vec<f64> = self
            .prev_input
            .iter()
            .zip(u)
            .map(|(&a, &b)| a + b)
            .collect();
        let bu = self
            .b_half
            .matvec(&u_mid)
            .map_err(StateSpaceError::Numeric)?;
        for (r, b) in rhs.iter_mut().zip(&bu) {
            *r += b;
        }
        self.state = self.lu.solve_vec(&rhs).map_err(StateSpaceError::Numeric)?;
        self.prev_input.copy_from_slice(u);
        self.elapsed += self.dt;

        let mut y = self
            .c
            .matvec(&self.state)
            .map_err(StateSpaceError::Numeric)?;
        let du = self.d.matvec(u).map_err(StateSpaceError::Numeric)?;
        for (yi, di) in y.iter_mut().zip(&du) {
            *yi += di;
        }
        Ok(y)
    }

    /// Simulated time so far, in seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Current state vector (e.g. for checkpointing).
    pub fn state(&self) -> &[f64] {
        &self.state
    }
}

/// Step response of output `out` to a unit step on input `inp`,
/// sampled every `dt` for `steps` steps.
///
/// # Errors
///
/// Propagates [`Transient`] construction/step failures and rejects
/// out-of-range port indices.
pub fn step_response(
    sys: &DescriptorSystem<f64>,
    inp: usize,
    out: usize,
    dt: f64,
    steps: usize,
) -> Result<Vec<f64>, StateSpaceError> {
    if inp >= sys.inputs() || out >= sys.outputs() {
        return Err(StateSpaceError::DimensionMismatch {
            what: "port index out of range",
        });
    }
    let mut sim = Transient::new(sys, dt)?;
    let mut u = vec![0.0; sys.inputs()];
    u[inp] = 1.0;
    // The step is applied at t = 0⁺: the trapezoidal input average over
    // the first interval already sees the full step.
    sim.prev_input.copy_from_slice(&u);
    let mut response = Vec::with_capacity(steps);
    for _ in 0..steps {
        response.push(sim.step(&u)?[out]);
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferFunction;
    use mfti_numeric::Complex;

    fn lowpass(tau: f64) -> DescriptorSystem<f64> {
        DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0 / tau]),
            RMatrix::col_vector(&[1.0 / tau]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .expect("valid")
    }

    #[test]
    fn first_order_step_response_matches_the_exponential() {
        let tau = 0.5;
        let sys = lowpass(tau);
        let dt = 1e-3;
        let resp = step_response(&sys, 0, 0, dt, 1500).unwrap();
        for (k, &y) in resp.iter().enumerate().step_by(100) {
            let t = (k + 1) as f64 * dt;
            let exact = 1.0 - (-t / tau).exp();
            assert!((y - exact).abs() < 1e-5, "t={t}: {y} vs {exact}");
        }
    }

    #[test]
    fn final_value_matches_dc_gain() {
        let sys = lowpass(0.1);
        let resp = step_response(&sys, 0, 0, 1e-3, 5000).unwrap();
        let dc = sys.eval(Complex::ZERO).unwrap()[(0, 0)].re;
        assert!((resp.last().unwrap() - dc).abs() < 1e-9);
    }

    #[test]
    fn oscillator_conserves_energy_with_trapezoidal_rule() {
        // ẋ1 = x2, ẋ2 = −x1 (undamped): trapezoidal is symplectic-ish,
        // amplitude must not blow up or decay over many periods.
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_rows(&[vec![0.0, 1.0], vec![-1.0, 0.0]]).unwrap(),
            RMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 0.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        let mut sim = Transient::new(&sys, 1e-2).unwrap();
        // Kick once, then free-run for ~16 periods.
        let mut peak = 0.0f64;
        let _ = sim.step(&[1.0 / 1e-2]).unwrap();
        for _ in 0..10_000 {
            let y = sim.step(&[0.0]).unwrap()[0];
            peak = peak.max(y.abs());
        }
        assert!(peak < 1.2, "trapezoidal rule must not amplify: {peak}");
        assert!(peak > 0.8, "nor damp the lossless oscillator: {peak}");
    }

    #[test]
    fn descriptor_system_with_algebraic_state_simulates() {
        // E = diag(1, 0): second equation is algebraic (x2 = u).
        let sys = DescriptorSystem::new(
            RMatrix::from_diag(&[1.0, 0.0]),
            RMatrix::from_rows(&[vec![-1.0, 0.5], vec![0.0, -1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 0.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        // 20 time constants of settling (τ = 1 s here).
        let resp = step_response(&sys, 0, 0, 2e-3, 10_000).unwrap();
        // DC: x2 = 1, x1 = 0.5 ⇒ y = 0.5.
        let dc = sys.eval(Complex::ZERO).unwrap()[(0, 0)].re;
        assert!((resp.last().unwrap() - dc).abs() < 1e-6);
        assert!((dc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let sys = lowpass(1.0);
        assert!(Transient::new(&sys, 0.0).is_err());
        assert!(Transient::new(&sys, f64::NAN).is_err());
        let mut sim = Transient::new(&sys, 1e-3).unwrap();
        assert!(sim.step(&[1.0, 2.0]).is_err());
        assert!(step_response(&sys, 1, 0, 1e-3, 10).is_err());
    }

    #[test]
    fn elapsed_time_and_state_are_tracked() {
        let sys = lowpass(1.0);
        let mut sim = Transient::new(&sys, 0.25).unwrap();
        let _ = sim.step(&[1.0]).unwrap();
        let _ = sim.step(&[1.0]).unwrap();
        assert!((sim.elapsed() - 0.5).abs() < 1e-12);
        assert_eq!(sim.state().len(), 1);
        assert!(sim.state()[0] > 0.0);
    }
}
