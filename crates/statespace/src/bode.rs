//! Bode-diagram extraction (magnitude/phase series over a log-frequency
//! grid), used to regenerate the paper's Fig. 2.

use mfti_numeric::{parallel, CMatrix};

use crate::error::StateSpaceError;
use crate::transfer::TransferFunction;

/// One point of a Bode diagram for a single `(output, input)` entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodePoint {
    /// Frequency in hertz.
    pub f_hz: f64,
    /// `|H_ij(j2πf)|` (linear, not dB).
    pub magnitude: f64,
    /// Phase in degrees, in `(−180, 180]`.
    pub phase_deg: f64,
}

impl BodePoint {
    /// Magnitude in decibels `20·log10|H|`.
    pub fn magnitude_db(&self) -> f64 {
        20.0 * self.magnitude.log10()
    }
}

/// Logarithmically spaced frequency grid over `[f_lo, f_hi]` hertz
/// (inclusive of both endpoints).
///
/// # Panics
///
/// Panics when `f_lo <= 0`, `f_hi <= f_lo` or `points < 2`.
///
/// ```
/// let g = mfti_statespace::bode::log_grid(1.0, 100.0, 3);
/// assert_eq!(g, vec![1.0, 10.0, 100.0]);
/// ```
pub fn log_grid(f_lo: f64, f_hi: f64, points: usize) -> Vec<f64> {
    assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
    assert!(points >= 2, "need at least two grid points");
    let l0 = f_lo.log10();
    let l1 = f_hi.log10();
    (0..points)
        .map(|i| 10f64.powf(l0 + (l1 - l0) * i as f64 / (points - 1) as f64))
        .collect()
}

/// Bode series of entry `(out, inp)` of `H` over the given grid.
///
/// # Errors
///
/// Fails if evaluation hits a pole (purely imaginary poles on the grid).
///
/// ```
/// use mfti_statespace::{bode, DescriptorSystem};
/// use mfti_numeric::RMatrix;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let sys = DescriptorSystem::from_state_space(
///     RMatrix::from_diag(&[-100.0]),
///     RMatrix::col_vector(&[100.0]),
///     RMatrix::row_vector(&[1.0]),
///     RMatrix::zeros(1, 1),
/// )?;
/// let series = bode::bode_series(&sys, &bode::log_grid(0.1, 1e4, 61), 0, 0)?;
/// // Low-pass: flat at DC, rolling off at high frequency.
/// assert!(series.first().unwrap().magnitude > 0.99);
/// assert!(series.last().unwrap().magnitude < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn bode_series<T: TransferFunction>(
    sys: &T,
    freqs_hz: &[f64],
    out: usize,
    inp: usize,
) -> Result<Vec<BodePoint>, StateSpaceError> {
    assert!(out < sys.outputs(), "output index out of range");
    assert!(inp < sys.inputs(), "input index out of range");
    // One batched sweep instead of a per-point loop: descriptor systems
    // route `frequency_response` through `Macromodel::eval_batch`, which
    // shares a Schur/Hessenberg factorization across the grid and fans
    // the per-point solves over the available cores.
    let responses = sys.frequency_response(freqs_hz)?;
    Ok(freqs_hz
        .iter()
        .zip(responses)
        .map(|(&f, h)| {
            let z = h[(out, inp)];
            BodePoint {
                f_hz: f,
                magnitude: z.abs(),
                phase_deg: z.arg().to_degrees(),
            }
        })
        .collect())
}

/// Worst-case relative deviation between two transfer functions on a grid,
/// `max_f ‖H₁ − H₂‖₂ / ‖H₂‖₂` — the headline number quoted when comparing
/// a recovered model against the original system (Fig. 2's "fits well").
///
/// # Errors
///
/// Fails if either evaluation hits a pole.
pub fn max_relative_deviation<A: TransferFunction, B: TransferFunction>(
    fitted: &A,
    reference: &B,
    freqs_hz: &[f64],
) -> Result<f64, StateSpaceError> {
    // Both models sweep through their batched paths; the per-point
    // spectral norms (an SVD each) then fan out across the cores. The
    // final max-reduction is serial and in index order, so the result is
    // independent of the worker count.
    let fitted_resp = fitted.frequency_response(freqs_hz)?;
    let reference_resp = reference.frequency_response(freqs_hz)?;
    let pairs: Vec<(CMatrix, CMatrix)> = fitted_resp.into_iter().zip(reference_resp).collect();
    let deviations = parallel::map(&pairs, |_, (h1, h2)| {
        let denom = h2.norm_2().max(f64::MIN_POSITIVE);
        (h1 - h2).norm_2() / denom
    });
    Ok(deviations.into_iter().fold(0.0f64, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescriptorSystem;
    use mfti_numeric::RMatrix;

    fn lowpass(corner_hz: f64) -> DescriptorSystem<f64> {
        let w = std::f64::consts::TAU * corner_hz;
        DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-w]),
            RMatrix::col_vector(&[w]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn log_grid_endpoints_and_monotonicity() {
        let g = log_grid(1e1, 1e5, 41);
        assert_eq!(g.len(), 41);
        assert!((g[0] - 10.0).abs() < 1e-9);
        assert!((g[40] - 1e5).abs() < 1e-6);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "0 < f_lo")]
    fn log_grid_rejects_zero_start() {
        let _ = log_grid(0.0, 10.0, 5);
    }

    #[test]
    fn bode_of_lowpass_has_minus_3db_corner() {
        let sys = lowpass(1000.0);
        let pts = bode_series(&sys, &[1000.0], 0, 0).unwrap();
        assert!((pts[0].magnitude_db() + 3.0103).abs() < 0.01);
        assert!((pts[0].phase_deg + 45.0).abs() < 0.1);
    }

    #[test]
    fn max_relative_deviation_of_identical_systems_is_zero() {
        let sys = lowpass(10.0);
        let dev = max_relative_deviation(&sys, &sys, &log_grid(1.0, 100.0, 11)).unwrap();
        assert!(dev < 1e-15);
    }

    #[test]
    fn max_relative_deviation_detects_gain_error() {
        let a = lowpass(10.0);
        let b = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-std::f64::consts::TAU * 10.0]),
            RMatrix::col_vector(&[std::f64::consts::TAU * 10.0 * 2.0]), // 2x gain
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        let dev = max_relative_deviation(&b, &a, &log_grid(0.1, 1.0, 5)).unwrap();
        assert!(
            (dev - 1.0).abs() < 0.05,
            "2x gain ⇒ 100% deviation, got {dev}"
        );
    }

    #[test]
    #[should_panic(expected = "output index")]
    fn bode_series_checks_entry_indices() {
        let sys = lowpass(1.0);
        let _ = bode_series(&sys, &[1.0], 1, 0);
    }
}
