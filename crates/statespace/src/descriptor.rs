use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mfti_numeric::{
    c64, generalized_eigenvalues, parallel, solve_shifted_hessenberg, solve_shifted_triangular,
    solve_shifted_triangular_batch, solve_shifted_triangular_scaled, strict_upper_max_abs,
    triangular_right_eigenvectors, CMatrix, Complex, Hessenberg, Lu, Matrix, NumericError, RMatrix,
    Scalar, Schur,
};

use crate::error::StateSpaceError;
use crate::macromodel::Macromodel;
use crate::transfer::TransferFunction;

/// Below this sweep length the one-time reduction (`≈ 4 n³` flops for
/// Hessenberg, more for Schur) does not amortize over the points and
/// [`Macromodel::eval_batch`] falls back to the per-point loop.
const SWEEP_MIN_POINTS: usize = 8;
/// Below this order the per-point LU is already cheap; the sweep path
/// only pays off once `O(n³)` visibly dominates `O(n²)`.
const SWEEP_MIN_ORDER: usize = 12;
/// Below this many points the Schur QR iteration (an extra `≈ 10 n³`
/// over the plain Hessenberg reduction) cannot amortize and
/// [`SweepStrategy::Auto`] stays on the Hessenberg path.
const SCHUR_MIN_POINTS: usize = 12;

/// `true` when upgrading a sweep group's kernel from Hessenberg to Schur
/// form pays for its extra QR iteration: the per-point saving is the
/// Givens triangularization (`O(n²)` with a healthy constant), so the
/// sweep must be a decent multiple of the order.
fn schur_amortizes(order: usize, points: usize) -> bool {
    points >= SCHUR_MIN_POINTS && 4 * points >= order
}

/// Which per-frequency kernel [`Macromodel::eval_batch`] uses for a
/// descriptor sweep. The default everywhere is [`SweepStrategy::Auto`];
/// the forced variants exist for benchmarks, tests and callers that know
/// their workload shape better than the built-in heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SweepStrategy {
    /// Heuristic selection: per-point LU for short/small sweeps, one
    /// shared Hessenberg reduction for medium ones, and a full Schur
    /// form once the sweep length amortizes the QR iteration.
    #[default]
    Auto,
    /// Force the per-point `O(n³)` LU loop (no shared factorization).
    PointwiseLu,
    /// Force the one-time Hessenberg reduction with a per-point Givens
    /// triangularization (the PR 2 sweep kernel).
    Hessenberg,
    /// Force the one-time complex Schur form; each point is a pure
    /// triangular back-substitution. Falls back to Hessenberg if the QR
    /// iteration fails to converge (pathological).
    Schur,
}

/// The shared factorization a sweep group's per-point solves run
/// against.
enum SweepKernel {
    /// `F⁻¹E = Q Hₘ Qᴴ`: each point pays one Givens triangularization
    /// of `I + (s−s₀)Hₘ` plus back-substitution.
    Hessenberg(CMatrix),
    /// `F⁻¹E = Z Tₘ Zᴴ` with `Tₘ` upper triangular: each point is a
    /// single back-substitution — no per-point factorization work. The
    /// `f64` is `Tₘ`'s precomputed strict-upper magnitude (the solver's
    /// singularity scale, hoisted out of the per-point loop).
    Schur(CMatrix, f64),
    /// Diagonalized refinement of the Schur form: when `Tₘ`'s
    /// eigenvector basis `V` is well-enough conditioned (validated by
    /// probe points against the back-substitution path at build time),
    /// the evaluator collapses to the common-pole pole–residue form
    /// `H(s) = Σᵢ Rᵢ/(1 + t·λᵢ) + D` with rank-1 residues
    /// `Rᵢ = (C̃V)ᵢ·(V⁻¹B̃)ᵢ` — a whole block of points is then one
    /// `weights × residues` GEMM. Fields: eigenvalues `λ`, their
    /// magnitude scale (for the pole cut), and the `n × p·m` residue
    /// matrix (row `i` = `vec(Rᵢ)`).
    Modal {
        lambda: Vec<Complex>,
        lam_scale: f64,
        residues: CMatrix,
    },
}

/// Frequency-sweep evaluator: the shift-inverted pencil reduced to
/// Hessenberg or Schur form, with the input/output maps rotated into the
/// same basis. For a shift `s₀` with `F = s₀E − A` regular,
///
/// ```text
/// sE − A = F·(I + (s − s₀)·F⁻¹E)   ⇒
/// H(s)   = (CU)·(I + (s − s₀)·M)⁻¹·(Uᴴ F⁻¹B) + D
/// ```
///
/// where `F⁻¹E = U M Uᴴ` with `M` Hessenberg (`U = Q`) or upper
/// triangular (`U = Z`, the Schur basis). Each frequency then costs
/// `O(n²)` — with triangular-solve constants on the Schur path — instead
/// of an `O(n³)` LU factorization.
struct SweepEvaluator {
    s0: Complex,
    kernel: SweepKernel,
    ct: CMatrix,
    bt: CMatrix,
    d: CMatrix,
}

impl SweepEvaluator {
    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        let t = s - self.s0;
        let solved = match &self.kernel {
            SweepKernel::Hessenberg(hm) => solve_shifted_hessenberg(hm, Complex::ONE, t, &self.bt),
            SweepKernel::Schur(tm, upper_max) => {
                solve_shifted_triangular_scaled(tm, Complex::ONE, t, &self.bt, *upper_max)
            }
            SweepKernel::Modal {
                lambda,
                lam_scale,
                residues,
            } => {
                let mut w = Vec::with_capacity(lambda.len());
                return match modal_weights(lambda, *lam_scale, t, &mut w) {
                    Ok(()) => {
                        let mut out = self.modal_responses(w, 1, residues);
                        // mfti-lint: allow(MFTI-D7) — modal_responses
                        // returns exactly the one requested point
                        out.pop().expect("one point")
                    }
                    Err(NumericError::Singular { .. }) => {
                        Err(StateSpaceError::EvaluationAtPole { re: s.re, im: s.im })
                    }
                    Err(e) => Err(e.into()),
                };
            }
        };
        let x = match solved {
            Ok(x) => x,
            Err(NumericError::Singular { .. }) => {
                return Err(StateSpaceError::EvaluationAtPole { re: s.re, im: s.im })
            }
            Err(e) => return Err(e.into()),
        };
        self.output_of(&x)
    }

    /// Evaluates one worker's block of points. On the Schur kernel the
    /// whole block goes through one multi-shift back-substitution (the
    /// triangular factor is streamed once per block, not once per point);
    /// on the modal kernel each point is `n` divisions and a row scale.
    /// Either way one wide `C̃·[X₁ … X_K]` product finishes the block.
    /// The arithmetic per point is bit-identical to
    /// [`SweepEvaluator::eval`], so block boundaries — and therefore the
    /// thread count — never change the result.
    fn eval_block(&self, pts: &[Complex]) -> Vec<Result<CMatrix, StateSpaceError>> {
        match &self.kernel {
            SweepKernel::Schur(tm, upper_max) => {
                let shifts: Vec<(Complex, Complex)> =
                    pts.iter().map(|&s| (Complex::ONE, s - self.s0)).collect();
                // On error — some shift hit a pole, or the solve failed
                // — the per-point path below attributes the failure to
                // the right point and evaluates the rest bit-identically.
                if let Ok(xs) = solve_shifted_triangular_batch(tm, &shifts, &self.bt, *upper_max) {
                    return self.outputs_of(&xs);
                }
            }
            SweepKernel::Modal {
                lambda,
                lam_scale,
                residues,
            } => {
                // Weight matrix W (K × n), one row of `1/(1 + t·λᵢ)` per
                // point; the whole block is then W·R plus feed-through.
                let mut w = Vec::with_capacity(pts.len() * lambda.len());
                let mut hit_pole = false;
                for &s in pts {
                    if modal_weights(lambda, *lam_scale, s - self.s0, &mut w).is_err() {
                        hit_pole = true;
                        break;
                    }
                }
                if !hit_pole {
                    return self.modal_responses(w, pts.len(), residues);
                }
                // A pole in the block: fall through to the per-point
                // path, which attributes it to the right point.
            }
            SweepKernel::Hessenberg(_) => {}
        }
        pts.iter().map(|&z| self.eval(z)).collect()
    }

    /// `C̃·X + D` for one point — the per-point output product used by
    /// the Hessenberg kernel (always) and by the Schur/modal kernels'
    /// error paths (whose outputs are never returned: a pole in the
    /// block errors the whole batch). Per-point and therefore
    /// thread-invariant.
    fn output_of(&self, x: &CMatrix) -> Result<CMatrix, StateSpaceError> {
        let mut h = self.ct.matmul(x)?;
        for (h_e, &d_e) in h.as_mut_slice().iter_mut().zip(self.d.as_slice()) {
            *h_e += d_e;
        }
        Ok(h)
    }

    /// `C̃·Xₖ + D` for a whole block of solved points in one wide GEMM:
    /// the per-point `p×m` panels are packed side by side into a
    /// `n × K·m` operand, multiplied once, and split back out. Each
    /// output column's bits depend only on its own point (blocked-kernel
    /// guarantee), so this equals `K` separate [`Self::output_of`] calls.
    fn outputs_of(&self, xs: &[CMatrix]) -> Vec<Result<CMatrix, StateSpaceError>> {
        let k_pts = xs.len();
        let (_, n) = self.ct.dims();
        let m = self.d.cols();
        if k_pts == 0 {
            return Vec::new();
        }
        let mut wide = vec![Complex::ZERO; n * k_pts * m];
        for (k, x) in xs.iter().enumerate() {
            let xsl = x.as_slice();
            for i in 0..n {
                wide[i * k_pts * m + k * m..i * k_pts * m + (k + 1) * m]
                    .copy_from_slice(&xsl[i * m..(i + 1) * m]);
            }
        }
        self.outputs_wide(wide, k_pts)
    }

    /// Modal tail: `W·R` in one GEMM (rows = points), split into
    /// per-point `p×m` responses with the feed-through added. The
    /// blocked kernel computes each output row independently, so a
    /// point's bits do not depend on how many points share the call —
    /// the scalar path and every block width agree exactly.
    fn modal_responses(
        &self,
        w: Vec<Complex>,
        k_pts: usize,
        residues: &CMatrix,
    ) -> Vec<Result<CMatrix, StateSpaceError>> {
        let (p, m) = self.d.dims();
        let n = residues.rows();
        let w_mat = match CMatrix::from_vec(k_pts, n, w) {
            Ok(w) => w,
            Err(e) => return vec![Err(e.into()); k_pts],
        };
        let h_rows = match mfti_numeric::kernel::mul_blocked(&w_mat, residues) {
            Ok(h) => h,
            Err(e) => return vec![Err(e.into()); k_pts],
        };
        let hs = h_rows.as_slice();
        let ds = self.d.as_slice();
        (0..k_pts)
            .map(|k| {
                let row = &hs[k * p * m..(k + 1) * p * m];
                let data: Vec<Complex> = row.iter().zip(ds).map(|(&h_e, &d_e)| h_e + d_e).collect();
                CMatrix::from_vec(p, m, data).map_err(Into::into)
            })
            .collect()
    }

    /// Shared tail of the block paths: multiply the packed `n × K·m`
    /// state panel by `C̃` once and split the result back into per-point
    /// `p×m` responses with the feed-through added.
    fn outputs_wide(
        &self,
        wide: Vec<Complex>,
        k_pts: usize,
    ) -> Vec<Result<CMatrix, StateSpaceError>> {
        let (p, n) = self.ct.dims();
        let m = self.d.cols();
        let wide = match CMatrix::from_vec(n, k_pts * m, wide) {
            Ok(w) => w,
            Err(e) => return vec![Err(e.into()); k_pts],
        };
        let h_wide = match mfti_numeric::kernel::mul_blocked(&self.ct, &wide) {
            Ok(h) => h,
            Err(e) => return vec![Err(e.into()); k_pts],
        };
        let hs = h_wide.as_slice();
        let ds = self.d.as_slice();
        (0..k_pts)
            .map(|k| {
                let mut data = Vec::with_capacity(p * m);
                for r in 0..p {
                    let row = &hs[r * k_pts * m + k * m..r * k_pts * m + (k + 1) * m];
                    for (h_e, &d_e) in row.iter().zip(&ds[r * m..(r + 1) * m]) {
                        data.push(*h_e + d_e);
                    }
                }
                CMatrix::from_vec(p, m, data).map_err(Into::into)
            })
            .collect()
    }
}

/// The modal kernel's per-point weights `wᵢ = 1/(1 + t·λᵢ)`, appended
/// to `out` — `n` divisions, the cheapest per-frequency kernel in the
/// sweep family. The pole cut mirrors the triangular solver's: a
/// denominator vanishing relative to the magnitude scale
/// (`max(|1 + t·λᵢ|, |t|·max|λ|)`) flags evaluation at a pole.
fn modal_weights(
    lambda: &[Complex],
    lam_scale: f64,
    t: Complex,
    out: &mut Vec<Complex>,
) -> Result<(), NumericError> {
    let start = out.len();
    let mut scale_sq = (t.abs() * lam_scale).powi(2).max(f64::MIN_POSITIVE);
    for &lam in lambda {
        let d = Complex::ONE + t * lam;
        scale_sq = scale_sq.max(d.abs_sq());
        out.push(d);
    }
    let cut_sq = (f64::EPSILON * f64::EPSILON) * scale_sq;
    for d in &mut out[start..] {
        if d.abs_sq() <= cut_sq {
            out.truncate(start);
            return Err(NumericError::Singular { op: "modal solve" });
        }
        *d = d.recip();
    }
    Ok(())
}

/// How large `‖V⁻¹·(±1)‖∞` may grow before the eigenbasis is declared
/// too ill-conditioned to diagonalize: the modal path's deviation from
/// the back-substitution path scales like `κ(V)·ε`, so this keeps it
/// well below the sweep's `1e-12` agreement budget.
const MODAL_MAX_BASIS_GROWTH: f64 = 1e3;

/// Attempts to diagonalize a Schur sweep evaluator: absorb `Tₘ`'s
/// eigenvector basis `V` into the input/output maps so each point
/// becomes `n` divisions plus a thin GEMM. The upgrade is kept **only**
/// when the basis passes two gates — a `‖V⁻¹‖` growth estimate bounding
/// `κ(V)` ([`MODAL_MAX_BASIS_GROWTH`]), and reproduction of the
/// back-substitution path to `≤ 1e-13` relative deviation at probe
/// points spanning the group's magnitude range. Ill-conditioned
/// eigenbases (clustered resonances) fail a gate and the caller stays
/// on the guaranteed triangular kernel.
fn modal_upgrade(base: &SweepEvaluator, sigma: f64) -> Option<SweepEvaluator> {
    let SweepKernel::Schur(tm, _) = &base.kernel else {
        return None;
    };
    let v = triangular_right_eigenvectors(tm)?;
    // Conditioning gate: columns of V are unit-norm, so ‖V⁻¹b‖∞ for
    // ±1-pattern probes lower-bounds κ∞(V) up to a modest factor. Three
    // sign patterns (alternating, mixed-phase, run-length-3) catch the
    // common cancellation directions.
    let n_v = v.rows();
    let growth_probes = CMatrix::from_fn(n_v, 3, |i, j| match j {
        0 => c64(if i % 2 == 0 { 1.0 } else { -1.0 }, 0.0),
        1 => c64(1.0, if i % 3 == 0 { -1.0 } else { 1.0 }),
        _ => c64(if (i / 3) % 2 == 0 { 1.0 } else { -1.0 }, 0.3),
    });
    let growth = solve_shifted_triangular(&v, Complex::ZERO, Complex::ONE, &growth_probes).ok()?;
    if growth.max_abs() > MODAL_MAX_BASIS_GROWTH {
        return None;
    }
    let bt_m = solve_shifted_triangular(&v, Complex::ZERO, Complex::ONE, &base.bt).ok()?;
    let ct_m = mfti_numeric::kernel::mul_blocked(&base.ct, &v).ok()?;
    let n = tm.rows();
    let (p, m) = (ct_m.rows(), bt_m.cols());
    let lambda: Vec<Complex> = (0..n).map(|i| tm[(i, i)]).collect();
    let lam_scale = lambda
        .iter()
        .map(|z| z.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    // Rank-1 residues, one flattened p×m matrix per eigenvalue:
    // Rᵢ = (C̃V)·eᵢ ⊗ eᵢ·(V⁻¹B̃).
    let ct_s = ct_m.as_slice();
    let bt_s = bt_m.as_slice();
    let mut residues = Vec::with_capacity(n * p * m);
    for i in 0..n {
        for r in 0..p {
            let c_ri = ct_s[r * n + i];
            for c in 0..m {
                residues.push(c_ri * bt_s[i * m + c]);
            }
        }
    }
    let residues = CMatrix::from_vec(n, p * m, residues).ok()?;
    // The modal kernel evaluates purely from (λ, residues, D); the
    // rotated maps of the Schur basis are not needed.
    let modal = SweepEvaluator {
        s0: base.s0,
        kernel: SweepKernel::Modal {
            lambda,
            lam_scale,
            residues,
        },
        ct: CMatrix::zeros(0, 0),
        bt: CMatrix::zeros(0, 0),
        d: base.d.clone(),
    };
    // Frequency probes covering the full ≤2-decade span a magnitude
    // group may hold (sigma down to 0.01·sigma), plus one off-axis.
    let probes = [
        c64(0.0, sigma),
        c64(0.0, 0.31 * sigma),
        c64(0.0, 0.097 * sigma),
        c64(0.0, 0.031 * sigma),
        c64(0.0, 0.01 * sigma),
        c64(0.4 * sigma, 0.9 * sigma),
    ];
    // One block evaluation per path: the back-substitution side then
    // pays its plane-splitting setup once for all probes.
    let modal_h = modal.eval_block(&probes);
    let schur_h = base.eval_block(&probes);
    for (h_modal, h_schur) in modal_h.into_iter().zip(schur_h) {
        let (Ok(h_modal), Ok(h_schur)) = (h_modal, h_schur) else {
            return None;
        };
        let denom = h_schur.max_abs().max(f64::MIN_POSITIVE);
        if (&h_modal - &h_schur).max_abs() / denom > 1e-13 {
            return None;
        }
    }
    Some(modal)
}

/// Memoized sweep factorizations, keyed on the magnitude-group scale
/// and the kernel flavor the group selected.
///
/// Building a [`SweepEvaluator`] is the `O(n³)` part of a batched sweep
/// (LU + Hessenberg + Schur + modal validation); repeated sweeps of the
/// same model — the serving-layer hot path — hit the cache and pay only
/// per-point work. The cache can never go stale: a
/// [`DescriptorSystem`]'s matrices are immutable after construction
/// (every "mutation" builds a new system, and [`Clone`] starts the copy
/// with an empty cache), so a cached evaluator is exactly the one a
/// fresh build would produce. Entries are capped; see
/// [`SWEEP_CACHE_MAX_ENTRIES`].
struct SweepCache {
    // mfti-lint: allow(MFTI-D1) — keyed access only: entries are read
    // through `get` by exact (σ-bits, kernel-flavor) key and the cap
    // check uses `len`/`clear`; the map is never iterated, so hash
    // order cannot reach any sweep result.
    map: Mutex<HashMap<(u64, bool), Arc<SweepEvaluator>>>,
}

/// Upper bound on distinct (magnitude group, kernel flavor) entries kept
/// per system. Sweeps of one model reuse a handful of magnitude groups;
/// hitting the cap (adversarially many distinct sigmas) clears the map
/// rather than growing without bound.
const SWEEP_CACHE_MAX_ENTRIES: usize = 32;

impl SweepCache {
    fn new() -> Self {
        SweepCache {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Cache key: the exact bit pattern of the group's magnitude scale
    /// plus the Schur-upgrade flag — the only inputs
    /// [`DescriptorSystem::sweep_evaluator`] depends on besides the
    /// (immutable) matrices.
    fn key(sigma: f64, use_schur: bool) -> (u64, bool) {
        (sigma.to_bits(), use_schur)
    }

    fn get(&self, sigma: f64, use_schur: bool) -> Option<Arc<SweepEvaluator>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&Self::key(sigma, use_schur))
            .cloned()
    }

    fn insert(&self, sigma: f64, use_schur: bool, evaluator: Arc<SweepEvaluator>) {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if map.len() >= SWEEP_CACHE_MAX_ENTRIES {
            map.clear();
        }
        map.insert(Self::key(sigma, use_schur), evaluator);
    }

    fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// A descriptor state-space model `E ẋ = A x + B u`, `y = C x + D u`.
///
/// `E` may be singular (then the model is a true descriptor system, which
/// is exactly what the raw Loewner realization of the paper's Lemma 3.1
/// produces). The scalar type distinguishes real models
/// (`DescriptorSystem<f64>`, e.g. after the Lemma 3.2 realification) from
/// complex ones (`DescriptorSystem<Complex>`, the direct Loewner output).
///
/// ```
/// use mfti_statespace::{DescriptorSystem, TransferFunction};
/// use mfti_numeric::RMatrix;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let sys = DescriptorSystem::from_state_space(
///     RMatrix::from_diag(&[-1.0, -2.0]),
///     RMatrix::from_rows(&[vec![1.0], vec![1.0]])?,
///     RMatrix::from_rows(&[vec![1.0, 1.0]])?,
///     RMatrix::zeros(1, 1),
/// )?;
/// assert_eq!(sys.order(), 2);
/// let dc = sys.eval(mfti_numeric::Complex::ZERO)?;
/// assert!((dc[(0, 0)].re - 1.5).abs() < 1e-12); // 1/1 + 1/2
/// # Ok(())
/// # }
/// ```
pub struct DescriptorSystem<T: Scalar> {
    e: Matrix<T>,
    a: Matrix<T>,
    b: Matrix<T>,
    c: Matrix<T>,
    d: Matrix<T>,
    /// Memoized sweep factorizations (never stale: the matrices above
    /// are immutable after construction). Deliberately excluded from
    /// `Clone`/`PartialEq`/`Debug` — it is a performance artifact, not
    /// model state.
    sweep_cache: SweepCache,
}

impl<T: Scalar> Clone for DescriptorSystem<T> {
    fn clone(&self) -> Self {
        DescriptorSystem {
            e: self.e.clone(),
            a: self.a.clone(),
            b: self.b.clone(),
            c: self.c.clone(),
            d: self.d.clone(),
            sweep_cache: SweepCache::new(),
        }
    }
}

impl<T: Scalar> PartialEq for DescriptorSystem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.e == other.e
            && self.a == other.a
            && self.b == other.b
            && self.c == other.c
            && self.d == other.d
    }
}

impl<T: Scalar> std::fmt::Debug for DescriptorSystem<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DescriptorSystem")
            .field("e", &self.e)
            .field("a", &self.a)
            .field("b", &self.b)
            .field("c", &self.c)
            .field("d", &self.d)
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> DescriptorSystem<T> {
    /// Builds a descriptor system, validating all dimension constraints.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when the matrices
    /// are not conformal (`E,A n×n`, `B n×m`, `C p×n`, `D p×m`).
    pub fn new(
        e: Matrix<T>,
        a: Matrix<T>,
        b: Matrix<T>,
        c: Matrix<T>,
        d: Matrix<T>,
    ) -> Result<Self, StateSpaceError> {
        if !a.is_square() {
            return Err(StateSpaceError::DimensionMismatch {
                what: "A must be square",
            });
        }
        let n = a.rows();
        if e.dims() != (n, n) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "E must match A",
            });
        }
        if b.rows() != n {
            return Err(StateSpaceError::DimensionMismatch {
                what: "B must have n rows",
            });
        }
        if c.cols() != n {
            return Err(StateSpaceError::DimensionMismatch {
                what: "C must have n columns",
            });
        }
        if d.dims() != (c.rows(), b.cols()) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "D must be p×m",
            });
        }
        Ok(DescriptorSystem {
            e,
            a,
            b,
            c,
            d,
            sweep_cache: SweepCache::new(),
        })
    }

    /// Builds an ordinary state-space model (`E = I`).
    ///
    /// # Errors
    ///
    /// Same as [`DescriptorSystem::new`].
    pub fn from_state_space(
        a: Matrix<T>,
        b: Matrix<T>,
        c: Matrix<T>,
        d: Matrix<T>,
    ) -> Result<Self, StateSpaceError> {
        let n = a.rows();
        Self::new(Matrix::identity(n), a, b, c, d)
    }

    /// The descriptor matrix `E`.
    pub fn e(&self) -> &Matrix<T> {
        &self.e
    }
    /// The state matrix `A`.
    pub fn a(&self) -> &Matrix<T> {
        &self.a
    }
    /// The input matrix `B`.
    pub fn b(&self) -> &Matrix<T> {
        &self.b
    }
    /// The output matrix `C`.
    pub fn c(&self) -> &Matrix<T> {
        &self.c
    }
    /// The feed-through matrix `D`.
    pub fn d(&self) -> &Matrix<T> {
        &self.d
    }

    /// State dimension `n` (size of `A`), i.e. the *size* of the model.
    ///
    /// For a descriptor system with singular `E` the number of finite
    /// poles — `order(Γ) = rank(E)` in the paper's notation — is smaller;
    /// see [`DescriptorSystem::dynamic_order`].
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// `rank(E)` — the number of dynamic (finite-pole) states, the
    /// quantity the paper calls `order(Γ)`.
    ///
    /// Computed by SVD (singular values only) with the crate-default
    /// rank tolerance.
    pub fn dynamic_order(&self) -> usize {
        match mfti_numeric::Svd::compute_factors(
            &self.e,
            mfti_numeric::SvdMethod::default(),
            mfti_numeric::SvdFactors::ValuesOnly,
        ) {
            Ok(svd) => svd.rank(mfti_numeric::DEFAULT_RANK_TOL),
            Err(_) => 0,
        }
    }

    /// Number of inputs `m`.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs `p`.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }

    /// Finite poles of the pencil `(A, E)` (eigenvalues with `E` weight).
    ///
    /// # Errors
    ///
    /// Propagates [`StateSpaceError::Numeric`] when the pencil is singular.
    pub fn poles(&self) -> Result<Vec<Complex>, StateSpaceError> {
        let (mut finite, _infinite) = generalized_eigenvalues(&self.a, &self.e)?;
        finite.sort_by(|x, y| {
            x.im.abs()
                .total_cmp(&y.im.abs())
                .then(x.re.total_cmp(&y.re))
        });
        Ok(finite)
    }

    /// `true` when every finite pole has strictly negative real part.
    ///
    /// # Errors
    ///
    /// Propagates pole-computation failures.
    pub fn is_stable(&self) -> Result<bool, StateSpaceError> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// Builds the sweep evaluator for points of magnitude `≲ sigma`, or
    /// `None` when no well-conditioned shift is found (the caller then
    /// falls back to per-point LU, which is always correct). With
    /// `use_schur` the Hessenberg form is upgraded to a full Schur form
    /// (falling back to Hessenberg if the QR iteration fails).
    fn sweep_evaluator(&self, sigma: f64, use_schur: bool) -> Option<SweepEvaluator> {
        let e_c = self.e.to_complex();
        let a_c = self.a.to_complex();
        let n = self.a.rows();
        // Magnitude scale of the points served by this evaluator; shifts
        // live at this radius so that s₀E and A stay balanced inside F.
        let sigma = if sigma > 0.0 { sigma } else { 1.0 };
        // A real positive shift is never a pole of a stable model; the
        // later candidates cover marginal/unstable pencils.
        let candidates = [
            c64(sigma, 0.0),
            c64(2.75 * sigma, 0.0),
            c64(0.731 * sigma, 1.303 * sigma),
        ];
        for s0 in candidates {
            let f_data: Vec<Complex> = e_c
                .as_slice()
                .iter()
                .zip(a_c.as_slice())
                .map(|(&e, &a)| e * s0 - a)
                .collect();
            // mfti-lint: allow(MFTI-D7) — f_data zips E's own n²
            // buffer, so the length always matches
            let f = CMatrix::from_vec(n, n, f_data).expect("E and A are n×n");
            let Ok(lu) = Lu::compute(&f) else { continue };
            if lu.is_singular() || lu.rcond_estimate() < 1e-14 {
                continue;
            }
            let Ok(m_mat) = lu.solve(&e_c) else { continue };
            let Ok(fb) = lu.solve(&self.b.to_complex()) else {
                continue;
            };
            let Ok(hess) = Hessenberg::compute(&m_mat) else {
                continue;
            };
            // Basis + kernel: the Schur upgrade re-uses the Hessenberg
            // factorization (the QR iteration starts from Q) and only
            // costs the accumulated iteration itself.
            let (kernel, basis) = if use_schur {
                match Schur::from_hessenberg(&hess) {
                    Ok(schur) => {
                        let (tm, z) = schur.into_parts();
                        let upper_max = strict_upper_max_abs(&tm);
                        (SweepKernel::Schur(tm, upper_max), z)
                    }
                    Err(_) => {
                        let (hm, q) = hess.into_parts();
                        (SweepKernel::Hessenberg(hm), q)
                    }
                }
            } else {
                let (hm, q) = hess.into_parts();
                (SweepKernel::Hessenberg(hm), q)
            };
            let Ok(bt) = basis.mul_hermitian_left(&fb) else {
                continue;
            };
            let Ok(ct) = self.c.to_complex().matmul(&basis) else {
                continue;
            };
            let evaluator = SweepEvaluator {
                s0,
                kernel,
                ct,
                bt,
                d: self.d.to_complex(),
            };
            // Schur kernels get one more opportunistic upgrade: when
            // Tₘ's eigenvector basis is well conditioned (validated
            // against the back-substitution path at probe points), the
            // sweep collapses further to the diagonal modal form.
            // (`modal_upgrade` is a no-op for the other kernels.)
            if let Some(modal) = modal_upgrade(&evaluator, sigma) {
                return Some(modal);
            }
            return Some(evaluator);
        }
        None
    }

    /// Batched evaluation with explicit control over the sweep kernel
    /// and the worker count — the engine behind
    /// [`Macromodel::eval_batch`], exposed for benchmarks, servers with
    /// their own thread budgets, and determinism tests.
    ///
    /// The parallel fan-out uses [`mfti_numeric::parallel`]'s static
    /// chunking, so for any fixed `strategy` the result is
    /// **bit-identical for every `threads` value** (including 1).
    ///
    /// # Errors
    ///
    /// Same as [`Macromodel::eval_batch`]: fails with
    /// [`StateSpaceError::EvaluationAtPole`] for the lowest-index point
    /// that coincides with a pole.
    pub fn eval_batch_with(
        &self,
        s: &[Complex],
        strategy: SweepStrategy,
        threads: usize,
    ) -> Result<Vec<CMatrix>, StateSpaceError> {
        if s.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.a.rows();
        let pointwise_only = match strategy {
            SweepStrategy::PointwiseLu => true,
            SweepStrategy::Auto => s.len() < SWEEP_MIN_POINTS || n < SWEEP_MIN_ORDER,
            _ => false,
        };
        if pointwise_only {
            // Tiny sweeps of tiny models don't amortize even a thread
            // spawn (~10 µs per scoped worker vs ~1 µs per small LU):
            // stay serial below a total-work floor. Results are
            // identical either way — this only affects scheduling.
            let workers = if s.len() * n * n * n < 200_000 {
                1
            } else {
                threads
            };
            return parallel::try_map_with(workers, s, |_, &z| self.eval(z));
        }

        // The shift-inverted pencil loses accuracy when one shift must
        // cover a huge dynamic range of |s|, so wide sweeps are
        // segmented into ≤2-decade magnitude groups, each with its own
        // factorization. Typical log sweeps need one or two groups.
        let mut by_magnitude: Vec<usize> = (0..s.len()).collect();
        by_magnitude.sort_by(|&i, &j| s[i].abs().total_cmp(&s[j].abs()));
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut base = 0.0f64;
        for &i in &by_magnitude {
            let mag = s[i].abs();
            match groups.last_mut() {
                Some(group) if base == 0.0 || mag <= 100.0 * base => {
                    group.push(i);
                    if base == 0.0 {
                        base = mag;
                    }
                }
                _ => {
                    groups.push(vec![i]);
                    base = mag;
                }
            }
        }

        // One shared factorization per group — memoized on the model
        // (`SweepCache`), so repeated sweeps of the same model skip the
        // O(n³) build and pay only per-point work; the group's points
        // then fan out across the workers in contiguous static blocks,
        // each solved with one multi-shift back-substitution on the
        // Schur path.
        let workers = threads.max(1);
        let mut out: Vec<Option<Result<CMatrix, StateSpaceError>>> =
            (0..s.len()).map(|_| None).collect();
        for group in &groups {
            let sigma = group.iter().map(|&i| s[i].abs()).fold(0.0f64, f64::max);
            let shared_kernel = match strategy {
                SweepStrategy::Hessenberg => Some(false),
                SweepStrategy::Schur => Some(true),
                // Auto: groups too short to amortize any shared setup
                // stay on per-point LU; medium groups take the
                // Hessenberg path; long groups amortize the Schur form.
                SweepStrategy::Auto if group.len() >= SWEEP_MIN_POINTS => {
                    Some(schur_amortizes(n, group.len()))
                }
                _ => None,
            };
            let evaluator: Option<Arc<SweepEvaluator>> = shared_kernel.and_then(|use_schur| {
                if let Some(hit) = self.sweep_cache.get(sigma, use_schur) {
                    return Some(hit);
                }
                // A `None` build (no well-conditioned shift) is not
                // cached: it is rare, cheap to rediscover, and the
                // pointwise fallback is always correct.
                let built = Arc::new(self.sweep_evaluator(sigma, use_schur)?);
                self.sweep_cache
                    .insert(sigma, use_schur, Arc::clone(&built));
                Some(built)
            });
            let block_len = group.len().div_ceil(workers).max(1);
            let blocks: Vec<&[usize]> = group.chunks(block_len).collect();
            let results = parallel::map_with(workers, &blocks, |_, idxs| match &evaluator {
                Some(evaluator) => {
                    let pts: Vec<Complex> = idxs.iter().map(|&i| s[i]).collect();
                    evaluator.eval_block(&pts)
                }
                None => idxs.iter().map(|&i| self.eval(s[i])).collect(),
            });
            for (idxs, block) in blocks.iter().zip(results) {
                for (&i, r) in idxs.iter().zip(block) {
                    out[i] = Some(r);
                }
            }
        }
        // Gather in point order, so a pole error is reported for the
        // lowest-index failing point — same as a serial fail-fast loop.
        out.into_iter()
            // mfti-lint: allow(MFTI-D7) — the executor's static chunks
            // tile 0..points exactly, so every slot is filled
            .map(|r| r.expect("every index visited"))
            .collect()
    }

    /// Promotes the model to complex scalars (no-op for complex models).
    pub fn to_complex(&self) -> DescriptorSystem<Complex> {
        DescriptorSystem {
            e: self.e.to_complex(),
            a: self.a.to_complex(),
            b: self.b.to_complex(),
            c: self.c.to_complex(),
            d: self.d.to_complex(),
            sweep_cache: SweepCache::new(),
        }
    }

    /// Number of sweep factorizations currently memoized on this model
    /// (diagnostics for tests and serving metrics; see the
    /// `SweepCache` internals for the caching policy).
    pub fn cached_sweep_groups(&self) -> usize {
        self.sweep_cache.len()
    }
}

impl DescriptorSystem<Complex> {
    /// Demotes a complex model whose matrices are real within `tol` to a
    /// real model (used after the paper's Lemma 3.2 realification).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::NotReal`] when any entry has an
    /// imaginary part exceeding `tol` (relative to the matrix max-abs).
    pub fn into_real(self, tol: f64) -> Result<DescriptorSystem<f64>, StateSpaceError> {
        let mut max_imag = 0.0f64;
        for m in [&self.e, &self.a, &self.b, &self.c, &self.d] {
            let scale = m.max_abs().max(1.0);
            for z in m.iter() {
                max_imag = max_imag.max(z.im.abs() / scale);
            }
        }
        if max_imag > tol {
            return Err(StateSpaceError::NotReal { max_imag });
        }
        Ok(DescriptorSystem {
            e: self.e.real_part(),
            a: self.a.real_part(),
            b: self.b.real_part(),
            c: self.c.real_part(),
            d: self.d.real_part(),
            sweep_cache: SweepCache::new(),
        })
    }
}

impl DescriptorSystem<f64> {
    /// Convenience accessors returning the real matrices (alias of the
    /// generic getters, for call-site clarity in examples).
    pub fn real_matrices(&self) -> (&RMatrix, &RMatrix, &RMatrix, &RMatrix, &RMatrix) {
        (&self.e, &self.a, &self.b, &self.c, &self.d)
    }
}

impl<T: Scalar> TransferFunction for DescriptorSystem<T> {
    fn outputs(&self) -> usize {
        self.c.rows()
    }

    fn inputs(&self) -> usize {
        self.b.cols()
    }

    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        // H(s) = C (sE − A)⁻¹ B + D via one LU solve. The pencil sE − A
        // is assembled in a single fused pass (bode sweeps call this per
        // frequency, so the temporaries of the naive `to_complex` chain
        // would dominate small-model evaluation).
        let n = self.a.rows();
        let pencil_data: Vec<Complex> = self
            .e
            .as_slice()
            .iter()
            .zip(self.a.as_slice())
            .map(|(&e, &a)| e.to_complex() * s - a.to_complex())
            .collect();
        // mfti-lint: allow(MFTI-D7) — pencil_data zips E's own n²
        // buffer, so the length always matches
        let pencil = CMatrix::from_vec(n, n, pencil_data).expect("E and A are n×n");
        let lu = Lu::compute(&pencil)?;
        if lu.is_singular() {
            return Err(StateSpaceError::EvaluationAtPole { re: s.re, im: s.im });
        }
        let x = lu.solve(&self.b.to_complex())?;
        let mut h = self.c.to_complex().matmul(&x)?;
        for (h_e, &d_e) in h.as_mut_slice().iter_mut().zip(self.d.as_slice()) {
            *h_e += d_e.to_complex();
        }
        Ok(h)
    }

    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        // Route grid sweeps through the batched path: sampling and Bode
        // extraction get the Hessenberg speed-up for free.
        self.response_batch_hz(freqs_hz)
    }
}

impl<T: Scalar> Macromodel for DescriptorSystem<T> {
    fn order(&self) -> usize {
        self.a.rows()
    }

    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        self.eval_batch_with(s, SweepStrategy::Auto, parallel::available_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;

    fn rc_lowpass(tau: f64) -> DescriptorSystem<f64> {
        DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0 / tau]),
            RMatrix::col_vector(&[1.0 / tau]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn dimensions_are_validated() {
        let bad = DescriptorSystem::new(
            RMatrix::identity(2),
            RMatrix::identity(3),
            RMatrix::zeros(3, 1),
            RMatrix::zeros(1, 3),
            RMatrix::zeros(1, 1),
        );
        assert!(matches!(
            bad,
            Err(StateSpaceError::DimensionMismatch { .. })
        ));
        let bad_b = DescriptorSystem::from_state_space(
            RMatrix::identity(2),
            RMatrix::zeros(3, 1),
            RMatrix::zeros(1, 2),
            RMatrix::zeros(1, 1),
        );
        assert!(bad_b.is_err());
    }

    #[test]
    fn rc_lowpass_magnitude_and_phase() {
        let sys = rc_lowpass(1.0);
        // At the corner frequency: |H| = 1/√2, phase −45°.
        let h = sys.eval(c64(0.0, 1.0)).unwrap()[(0, 0)];
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((h.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn poles_of_diagonal_system() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0, -5.0]),
            RMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        let poles = sys.poles().unwrap();
        let mut res: Vec<f64> = poles.iter().map(|p| p.re).collect();
        res.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((res[0] + 5.0).abs() < 1e-9);
        assert!((res[1] + 1.0).abs() < 1e-9);
        assert!(sys.is_stable().unwrap());
    }

    #[test]
    fn unstable_pole_detected() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[1.0]),
            RMatrix::col_vector(&[1.0]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        assert!(!sys.is_stable().unwrap());
    }

    #[test]
    fn descriptor_system_with_singular_e() {
        // E = diag(1, 0): the second state is algebraic, acting like a
        // feed-through: H(s) = c1 b1/(s − a1) + c2 b2 / (−a2).
        let sys = DescriptorSystem::new(
            RMatrix::from_diag(&[1.0, 0.0]),
            RMatrix::from_diag(&[-1.0, -2.0]),
            RMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        assert_eq!(sys.order(), 2);
        assert_eq!(sys.dynamic_order(), 1);
        let h = sys.eval(Complex::ZERO).unwrap()[(0, 0)];
        assert!((h.re - 1.5).abs() < 1e-12); // 1/1 + 1/2
        let poles = sys.poles().unwrap();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re + 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_at_pole_fails_cleanly() {
        let sys = rc_lowpass(1.0);
        let err = sys.eval(c64(-1.0, 0.0)).unwrap_err();
        assert!(matches!(err, StateSpaceError::EvaluationAtPole { .. }));
    }

    #[test]
    fn complex_round_trip_through_into_real() {
        let real = rc_lowpass(0.5);
        let complexified = real.to_complex();
        let back = complexified.into_real(1e-14).unwrap();
        assert_eq!(&back, &real);
    }

    #[test]
    fn into_real_rejects_complex_content() {
        let mut sys = rc_lowpass(1.0).to_complex();
        // Inject a genuinely complex entry.
        let a = sys.a.clone();
        let _ = a; // keep clone to show intent; mutate via new()
        let mut a2 = sys.a.clone();
        a2[(0, 0)] = c64(-1.0, 0.5);
        sys = DescriptorSystem::new(
            sys.e.clone(),
            a2,
            sys.b.clone(),
            sys.c.clone(),
            sys.d.clone(),
        )
        .unwrap();
        assert!(matches!(
            sys.into_real(1e-9),
            Err(StateSpaceError::NotReal { .. })
        ));
    }

    /// Order-`n` stable test system with resonances spread over
    /// `[1, ω_hi]` rad/s and dense B/C/D couplings (xorshift entries).
    fn resonant_system(
        n: usize,
        ports: usize,
        omega_hi: f64,
        mut seed: u64,
    ) -> DescriptorSystem<f64> {
        assert!(n.is_multiple_of(2));
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let pairs = n / 2;
        let mut a = RMatrix::zeros(n, n);
        for k in 0..pairs {
            let omega = omega_hi.powf((k + 1) as f64 / pairs as f64);
            let sigma = -omega * (0.02 + 0.1 * next().abs());
            a[(2 * k, 2 * k)] = sigma;
            a[(2 * k, 2 * k + 1)] = omega;
            a[(2 * k + 1, 2 * k)] = -omega;
            a[(2 * k + 1, 2 * k + 1)] = sigma;
        }
        let b = RMatrix::from_fn(n, ports, |_, _| next());
        let c = RMatrix::from_fn(ports, n, |_, _| next());
        let d = RMatrix::from_fn(ports, ports, |_, _| 0.25 * next());
        DescriptorSystem::from_state_space(a, b, c, d).unwrap()
    }

    fn sweep_points(omega_hi: f64, k: usize) -> Vec<Complex> {
        (0..k)
            .map(|i| c64(0.0, omega_hi.powf((i + 1) as f64 / k as f64)))
            .collect()
    }

    #[test]
    fn eval_batch_sweep_matches_pointwise_lu() {
        // Order 24 ≥ SWEEP_MIN_ORDER and 20 points ≥ SWEEP_MIN_POINTS:
        // the Hessenberg sweep path is exercised and must agree with the
        // per-point LU evaluation to near machine precision.
        let sys = resonant_system(24, 3, 1e6, 0x5eed);
        let pts = sweep_points(1e6, 20);
        let batch = sys.eval_batch(&pts).unwrap();
        assert_eq!(batch.len(), pts.len());
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = sys.eval(s).unwrap();
            let rel = (h - &direct).max_abs() / direct.max_abs().max(1e-300);
            assert!(
                rel < 1e-12,
                "sweep vs LU relative deviation {rel:.2e} at {s}"
            );
        }
    }

    #[test]
    fn eval_batch_handles_singular_e_descriptor() {
        // Singular E (algebraic states) still admits the shift-inverted
        // sweep: M = F⁻¹E is merely rank-deficient.
        let base = resonant_system(16, 2, 1e4, 7);
        let n = base.order() + 2;
        let mut e = RMatrix::identity(n);
        e[(n - 1, n - 1)] = 0.0;
        e[(n - 2, n - 2)] = 0.0;
        let mut a = RMatrix::zeros(n, n);
        for i in 0..base.order() {
            for j in 0..base.order() {
                a[(i, j)] = base.a()[(i, j)];
            }
        }
        a[(n - 2, n - 2)] = -1.0;
        a[(n - 1, n - 1)] = -2.0;
        let b = RMatrix::from_fn(n, 2, |i, j| ((i + 2 * j + 1) as f64).recip());
        let c = RMatrix::from_fn(2, n, |i, j| ((2 * i + j + 2) as f64).recip());
        let sys = DescriptorSystem::new(e, a, b, c, RMatrix::zeros(2, 2)).unwrap();
        assert!(sys.dynamic_order() < sys.order());
        let pts = sweep_points(1e4, 12);
        let batch = sys.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = sys.eval(s).unwrap();
            let rel = (h - &direct).max_abs() / direct.max_abs().max(1e-300);
            assert!(rel < 1e-12, "descriptor sweep deviation {rel:.2e} at {s}");
        }
    }

    #[test]
    fn eval_batch_short_sweeps_fall_back_to_the_loop() {
        let sys = resonant_system(24, 2, 1e5, 3);
        let pts = sweep_points(1e5, 3); // below SWEEP_MIN_POINTS
        let batch = sys.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            assert!(h.approx_eq(&sys.eval(s).unwrap(), 0.0));
        }
    }

    #[test]
    fn eval_batch_reports_pole_hits() {
        // Diagonal complex system: the pencil s·I − A is *exactly*
        // singular at the poles, so both the per-point and the sweep
        // paths must flag the hit (a numerically computed pole of a
        // dense model only makes the pencil ill-conditioned, not
        // singular, and evaluates like its neighborhood does).
        let n = 14;
        let poles: Vec<Complex> = (1..=n).map(|k| c64(-(k as f64), 2.0 * k as f64)).collect();
        let a = CMatrix::from_diag(&poles);
        let b = CMatrix::from_fn(n, 2, |i, j| c64((i + j + 1) as f64, 0.0));
        let c = CMatrix::from_fn(2, n, |i, j| c64(1.0 / (i + j + 1) as f64, 0.0));
        let sys = DescriptorSystem::from_state_space(a, b, c, CMatrix::zeros(2, 2)).unwrap();
        let mut pts = sweep_points(30.0, 12);
        pts.push(poles[3]);
        let err = sys.eval_batch(&pts).unwrap_err();
        assert!(matches!(err, StateSpaceError::EvaluationAtPole { .. }));
        // The same batch without the pole evaluates fine.
        pts.pop();
        assert!(sys.eval_batch(&pts).is_ok());
    }

    #[test]
    fn complex_models_take_the_sweep_path_too() {
        let sys = resonant_system(20, 2, 1e5, 23).to_complex();
        let pts = sweep_points(1e5, 16);
        let batch = sys.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = sys.eval(s).unwrap();
            let rel = (h - &direct).max_abs() / direct.max_abs().max(1e-300);
            assert!(rel < 1e-12, "complex sweep deviation {rel:.2e}");
        }
    }

    #[test]
    fn eval_batch_empty_sweep_returns_empty() {
        let sys = resonant_system(24, 2, 1e5, 11);
        for strategy in [
            SweepStrategy::Auto,
            SweepStrategy::PointwiseLu,
            SweepStrategy::Hessenberg,
            SweepStrategy::Schur,
        ] {
            let out = sys.eval_batch_with(&[], strategy, 4).unwrap();
            assert!(out.is_empty(), "{strategy:?}");
        }
        assert!(sys.eval_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn eval_batch_single_point_skips_shared_setup() {
        // A single point can never amortize a reduction: Auto must give
        // exactly the per-point LU answer, bit for bit.
        let sys = resonant_system(32, 2, 1e5, 13);
        let pt = [c64(0.0, 3.3e4)];
        let batch = sys.eval_batch(&pt).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(batch[0].approx_eq(&sys.eval(pt[0]).unwrap(), 0.0));
    }

    #[test]
    fn schur_crossover_heuristic_has_sane_shape() {
        // Single points and tiny sweeps never take the Schur path …
        assert!(!schur_amortizes(48, 1));
        assert!(!schur_amortizes(48, SCHUR_MIN_POINTS - 1));
        // … long sweeps always do …
        assert!(schur_amortizes(48, 100));
        assert!(schur_amortizes(96, 100));
        // … and sweeps much shorter than the order stay on Hessenberg.
        assert!(!schur_amortizes(96, 12));
    }

    #[test]
    fn forced_strategies_agree_with_pointwise_lu() {
        let sys = resonant_system(28, 3, 1e6, 0xabc);
        let pts = sweep_points(1e6, 30);
        let reference: Vec<CMatrix> = pts.iter().map(|&s| sys.eval(s).unwrap()).collect();
        for strategy in [
            SweepStrategy::PointwiseLu,
            SweepStrategy::Hessenberg,
            SweepStrategy::Schur,
        ] {
            let batch = sys.eval_batch_with(&pts, strategy, 1).unwrap();
            for (h, want) in batch.iter().zip(&reference) {
                let rel = (h - want).max_abs() / want.max_abs().max(1e-300);
                assert!(rel < 1e-11, "{strategy:?} deviates {rel:.2e}");
            }
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        // The deterministic-parallelism guarantee: static chunking with
        // per-point independence makes the parallel sweep *bit*-equal to
        // the serial one, for every strategy and thread count.
        let sys = resonant_system(40, 3, 1e8, 0x7a11);
        let pts = sweep_points(1e8, 75);
        for strategy in [
            SweepStrategy::Auto,
            SweepStrategy::PointwiseLu,
            SweepStrategy::Hessenberg,
            SweepStrategy::Schur,
        ] {
            let serial = sys.eval_batch_with(&pts, strategy, 1).unwrap();
            for threads in [2, 4, mfti_numeric::parallel::available_threads()] {
                let par = sys.eval_batch_with(&pts, strategy, threads).unwrap();
                for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                    let identical = a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| {
                        x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
                    });
                    assert!(
                        identical,
                        "{strategy:?} at {threads} threads differs from serial at point {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn schur_sweep_matches_pointwise_near_poles() {
        // Ill-conditioned shifts: points parked ~1e-6 relative distance
        // from resonances still agree with the per-point LU to 1e-11.
        let sys = resonant_system(24, 2, 1e5, 0x90d);
        let poles = sys.poles().unwrap();
        let mut pts: Vec<Complex> = poles
            .iter()
            .filter(|p| p.im > 1.0)
            .take(10)
            .map(|p| c64(0.0, p.im * (1.0 + 1e-6)))
            .collect();
        pts.extend(sweep_points(1e5, 10));
        let batch = sys.eval_batch_with(&pts, SweepStrategy::Schur, 1).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = sys.eval(s).unwrap();
            let rel = (h - &direct).max_abs() / direct.max_abs().max(1e-300);
            assert!(rel < 1e-11, "near-pole deviation {rel:.2e} at {s}");
        }
    }

    #[test]
    fn sweep_cache_memoizes_per_group_factorizations() {
        let sys = resonant_system(24, 3, 1e6, 0xcac4e);
        assert_eq!(sys.cached_sweep_groups(), 0);
        let pts = sweep_points(1e6, 30);
        let first = sys.eval_batch(&pts).unwrap();
        let populated = sys.cached_sweep_groups();
        assert!(populated > 0, "shared sweep must populate the cache");
        // Repeated sweeps reuse the cached evaluator and stay
        // bit-identical to the first (the evaluator is the same object).
        let second = sys.eval_batch(&pts).unwrap();
        assert_eq!(sys.cached_sweep_groups(), populated);
        for (a, b) in first.iter().zip(&second) {
            assert!(a.approx_eq(b, 0.0), "cached sweep deviates");
        }
        // A fresh clone starts cold and still produces the same bits.
        let cloned = sys.clone();
        assert_eq!(cloned.cached_sweep_groups(), 0);
        let third = cloned.eval_batch(&pts).unwrap();
        for (a, b) in first.iter().zip(&third) {
            assert!(a.approx_eq(b, 0.0), "cold-cache sweep deviates");
        }
        // A different kernel flavor gets its own entries (these groups
        // are below the Schur crossover, so Auto cached the Hessenberg
        // flavor and forcing Schur misses).
        let _ = sys.eval_batch_with(&pts, SweepStrategy::Schur, 1).unwrap();
        assert!(sys.cached_sweep_groups() > populated);
    }

    #[test]
    fn sweep_cache_is_bounded() {
        let sys = resonant_system(16, 2, 1e5, 0xb0b);
        // Many distinct magnitude groups (each sweep one group): the
        // cache clears at the cap instead of growing without bound.
        for k in 0..(2 * SWEEP_CACHE_MAX_ENTRIES) {
            let mag = 1e3 * (1.0 + k as f64);
            let pts: Vec<Complex> = (0..SWEEP_MIN_POINTS)
                .map(|i| c64(0.0, mag * (1.0 + 0.01 * i as f64)))
                .collect();
            let _ = sys.eval_batch(&pts).unwrap();
        }
        assert!(sys.cached_sweep_groups() <= SWEEP_CACHE_MAX_ENTRIES);
    }

    #[test]
    fn mimo_dimensions_are_exposed() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0, -2.0, -3.0]),
            RMatrix::zeros(3, 2),
            RMatrix::zeros(4, 3),
            RMatrix::zeros(4, 2),
        )
        .unwrap();
        assert_eq!(sys.inputs(), 2);
        assert_eq!(sys.outputs(), 4);
        assert_eq!(sys.order(), 3);
    }
}
