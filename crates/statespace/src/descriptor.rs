use mfti_numeric::{
    c64, generalized_eigenvalues, solve_shifted_hessenberg, CMatrix, Complex, Hessenberg, Lu,
    Matrix, NumericError, RMatrix, Scalar,
};

use crate::error::StateSpaceError;
use crate::macromodel::Macromodel;
use crate::transfer::TransferFunction;

/// Below this sweep length the Hessenberg setup (`≈ 4 n³` flops) does
/// not amortize over the points and [`Macromodel::eval_batch`] falls
/// back to the per-point loop.
const SWEEP_MIN_POINTS: usize = 8;
/// Below this order the per-point LU is already cheap; the sweep path
/// only pays off once `O(n³)` visibly dominates `O(n²)`.
const SWEEP_MIN_ORDER: usize = 12;

/// Frequency-sweep evaluator: the shift-inverted pencil reduced to
/// Hessenberg form, with the input/output maps rotated into the same
/// basis. For a shift `s₀` with `F = s₀E − A` regular,
///
/// ```text
/// sE − A = F·(I + (s − s₀)·F⁻¹E)   ⇒
/// H(s)   = (CQ)·(I + (s − s₀)·Hₘ)⁻¹·(Q*F⁻¹B) + D
/// ```
///
/// where `F⁻¹E = Q Hₘ Q*`. Each frequency then costs one `O(n²)`
/// Hessenberg solve instead of an `O(n³)` LU factorization.
struct SweepEvaluator {
    s0: Complex,
    hm: CMatrix,
    ct: CMatrix,
    bt: CMatrix,
    d: CMatrix,
}

impl SweepEvaluator {
    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        let t = s - self.s0;
        let x = match solve_shifted_hessenberg(&self.hm, Complex::ONE, t, &self.bt) {
            Ok(x) => x,
            Err(NumericError::Singular { .. }) => {
                return Err(StateSpaceError::EvaluationAtPole { re: s.re, im: s.im })
            }
            Err(e) => return Err(e.into()),
        };
        let mut h = self.ct.matmul(&x)?;
        for (h_e, &d_e) in h.as_mut_slice().iter_mut().zip(self.d.as_slice()) {
            *h_e += d_e;
        }
        Ok(h)
    }
}

/// A descriptor state-space model `E ẋ = A x + B u`, `y = C x + D u`.
///
/// `E` may be singular (then the model is a true descriptor system, which
/// is exactly what the raw Loewner realization of the paper's Lemma 3.1
/// produces). The scalar type distinguishes real models
/// (`DescriptorSystem<f64>`, e.g. after the Lemma 3.2 realification) from
/// complex ones (`DescriptorSystem<Complex>`, the direct Loewner output).
///
/// ```
/// use mfti_statespace::{DescriptorSystem, TransferFunction};
/// use mfti_numeric::RMatrix;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let sys = DescriptorSystem::from_state_space(
///     RMatrix::from_diag(&[-1.0, -2.0]),
///     RMatrix::from_rows(&[vec![1.0], vec![1.0]])?,
///     RMatrix::from_rows(&[vec![1.0, 1.0]])?,
///     RMatrix::zeros(1, 1),
/// )?;
/// assert_eq!(sys.order(), 2);
/// let dc = sys.eval(mfti_numeric::Complex::ZERO)?;
/// assert!((dc[(0, 0)].re - 1.5).abs() < 1e-12); // 1/1 + 1/2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DescriptorSystem<T: Scalar> {
    e: Matrix<T>,
    a: Matrix<T>,
    b: Matrix<T>,
    c: Matrix<T>,
    d: Matrix<T>,
}

impl<T: Scalar> DescriptorSystem<T> {
    /// Builds a descriptor system, validating all dimension constraints.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when the matrices
    /// are not conformal (`E,A n×n`, `B n×m`, `C p×n`, `D p×m`).
    pub fn new(
        e: Matrix<T>,
        a: Matrix<T>,
        b: Matrix<T>,
        c: Matrix<T>,
        d: Matrix<T>,
    ) -> Result<Self, StateSpaceError> {
        if !a.is_square() {
            return Err(StateSpaceError::DimensionMismatch {
                what: "A must be square",
            });
        }
        let n = a.rows();
        if e.dims() != (n, n) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "E must match A",
            });
        }
        if b.rows() != n {
            return Err(StateSpaceError::DimensionMismatch {
                what: "B must have n rows",
            });
        }
        if c.cols() != n {
            return Err(StateSpaceError::DimensionMismatch {
                what: "C must have n columns",
            });
        }
        if d.dims() != (c.rows(), b.cols()) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "D must be p×m",
            });
        }
        Ok(DescriptorSystem { e, a, b, c, d })
    }

    /// Builds an ordinary state-space model (`E = I`).
    ///
    /// # Errors
    ///
    /// Same as [`DescriptorSystem::new`].
    pub fn from_state_space(
        a: Matrix<T>,
        b: Matrix<T>,
        c: Matrix<T>,
        d: Matrix<T>,
    ) -> Result<Self, StateSpaceError> {
        let n = a.rows();
        Self::new(Matrix::identity(n), a, b, c, d)
    }

    /// The descriptor matrix `E`.
    pub fn e(&self) -> &Matrix<T> {
        &self.e
    }
    /// The state matrix `A`.
    pub fn a(&self) -> &Matrix<T> {
        &self.a
    }
    /// The input matrix `B`.
    pub fn b(&self) -> &Matrix<T> {
        &self.b
    }
    /// The output matrix `C`.
    pub fn c(&self) -> &Matrix<T> {
        &self.c
    }
    /// The feed-through matrix `D`.
    pub fn d(&self) -> &Matrix<T> {
        &self.d
    }

    /// State dimension `n` (size of `A`), i.e. the *size* of the model.
    ///
    /// For a descriptor system with singular `E` the number of finite
    /// poles — `order(Γ) = rank(E)` in the paper's notation — is smaller;
    /// see [`DescriptorSystem::dynamic_order`].
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// `rank(E)` — the number of dynamic (finite-pole) states, the
    /// quantity the paper calls `order(Γ)`.
    ///
    /// Computed by SVD with the crate-default rank tolerance.
    pub fn dynamic_order(&self) -> usize {
        match mfti_numeric::Svd::compute(&self.e) {
            Ok(svd) => svd.rank(mfti_numeric::DEFAULT_RANK_TOL),
            Err(_) => 0,
        }
    }

    /// Number of inputs `m`.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs `p`.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }

    /// Finite poles of the pencil `(A, E)` (eigenvalues with `E` weight).
    ///
    /// # Errors
    ///
    /// Propagates [`StateSpaceError::Numeric`] when the pencil is singular.
    pub fn poles(&self) -> Result<Vec<Complex>, StateSpaceError> {
        let (mut finite, _infinite) = generalized_eigenvalues(&self.a, &self.e)?;
        finite.sort_by(|x, y| {
            (x.im.abs(), x.re)
                .partial_cmp(&(y.im.abs(), y.re))
                .expect("finite poles")
        });
        Ok(finite)
    }

    /// `true` when every finite pole has strictly negative real part.
    ///
    /// # Errors
    ///
    /// Propagates pole-computation failures.
    pub fn is_stable(&self) -> Result<bool, StateSpaceError> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// Builds the Hessenberg sweep evaluator for points of magnitude
    /// `≲ sigma`, or `None` when no well-conditioned shift is found (the
    /// caller then falls back to per-point LU, which is always correct).
    fn sweep_evaluator(&self, sigma: f64) -> Option<SweepEvaluator> {
        let e_c = self.e.to_complex();
        let a_c = self.a.to_complex();
        let n = self.a.rows();
        // Magnitude scale of the points served by this evaluator; shifts
        // live at this radius so that s₀E and A stay balanced inside F.
        let sigma = if sigma > 0.0 { sigma } else { 1.0 };
        // A real positive shift is never a pole of a stable model; the
        // later candidates cover marginal/unstable pencils.
        let candidates = [
            c64(sigma, 0.0),
            c64(2.75 * sigma, 0.0),
            c64(0.731 * sigma, 1.303 * sigma),
        ];
        for s0 in candidates {
            let f_data: Vec<Complex> = e_c
                .as_slice()
                .iter()
                .zip(a_c.as_slice())
                .map(|(&e, &a)| e * s0 - a)
                .collect();
            let f = CMatrix::from_vec(n, n, f_data).expect("E and A are n×n");
            let Ok(lu) = Lu::compute(&f) else { continue };
            if lu.is_singular() || lu.rcond_estimate() < 1e-14 {
                continue;
            }
            let Ok(m_mat) = lu.solve(&e_c) else { continue };
            let Ok(fb) = lu.solve(&self.b.to_complex()) else {
                continue;
            };
            let Ok(hess) = Hessenberg::compute(&m_mat) else {
                continue;
            };
            let (hm, q) = hess.into_parts();
            let Ok(bt) = q.mul_hermitian_left(&fb) else {
                continue;
            };
            let Ok(ct) = self.c.to_complex().matmul(&q) else {
                continue;
            };
            return Some(SweepEvaluator {
                s0,
                hm,
                ct,
                bt,
                d: self.d.to_complex(),
            });
        }
        None
    }

    /// Promotes the model to complex scalars (no-op for complex models).
    pub fn to_complex(&self) -> DescriptorSystem<Complex> {
        DescriptorSystem {
            e: self.e.to_complex(),
            a: self.a.to_complex(),
            b: self.b.to_complex(),
            c: self.c.to_complex(),
            d: self.d.to_complex(),
        }
    }
}

impl DescriptorSystem<Complex> {
    /// Demotes a complex model whose matrices are real within `tol` to a
    /// real model (used after the paper's Lemma 3.2 realification).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::NotReal`] when any entry has an
    /// imaginary part exceeding `tol` (relative to the matrix max-abs).
    pub fn into_real(self, tol: f64) -> Result<DescriptorSystem<f64>, StateSpaceError> {
        let mut max_imag = 0.0f64;
        for m in [&self.e, &self.a, &self.b, &self.c, &self.d] {
            let scale = m.max_abs().max(1.0);
            for z in m.iter() {
                max_imag = max_imag.max(z.im.abs() / scale);
            }
        }
        if max_imag > tol {
            return Err(StateSpaceError::NotReal { max_imag });
        }
        Ok(DescriptorSystem {
            e: self.e.real_part(),
            a: self.a.real_part(),
            b: self.b.real_part(),
            c: self.c.real_part(),
            d: self.d.real_part(),
        })
    }
}

impl DescriptorSystem<f64> {
    /// Convenience accessors returning the real matrices (alias of the
    /// generic getters, for call-site clarity in examples).
    pub fn real_matrices(&self) -> (&RMatrix, &RMatrix, &RMatrix, &RMatrix, &RMatrix) {
        (&self.e, &self.a, &self.b, &self.c, &self.d)
    }
}

impl<T: Scalar> TransferFunction for DescriptorSystem<T> {
    fn outputs(&self) -> usize {
        self.c.rows()
    }

    fn inputs(&self) -> usize {
        self.b.cols()
    }

    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        // H(s) = C (sE − A)⁻¹ B + D via one LU solve. The pencil sE − A
        // is assembled in a single fused pass (bode sweeps call this per
        // frequency, so the temporaries of the naive `to_complex` chain
        // would dominate small-model evaluation).
        let n = self.a.rows();
        let pencil_data: Vec<Complex> = self
            .e
            .as_slice()
            .iter()
            .zip(self.a.as_slice())
            .map(|(&e, &a)| e.to_complex() * s - a.to_complex())
            .collect();
        let pencil = CMatrix::from_vec(n, n, pencil_data).expect("E and A are n×n");
        let lu = Lu::compute(&pencil)?;
        if lu.is_singular() {
            return Err(StateSpaceError::EvaluationAtPole { re: s.re, im: s.im });
        }
        let x = lu.solve(&self.b.to_complex())?;
        let mut h = self.c.to_complex().matmul(&x)?;
        for (h_e, &d_e) in h.as_mut_slice().iter_mut().zip(self.d.as_slice()) {
            *h_e += d_e.to_complex();
        }
        Ok(h)
    }

    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        // Route grid sweeps through the batched path: sampling and Bode
        // extraction get the Hessenberg speed-up for free.
        self.response_batch_hz(freqs_hz)
    }
}

impl<T: Scalar> Macromodel for DescriptorSystem<T> {
    fn order(&self) -> usize {
        self.a.rows()
    }

    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        if s.len() < SWEEP_MIN_POINTS || self.a.rows() < SWEEP_MIN_ORDER {
            return s.iter().map(|&z| self.eval(z)).collect();
        }
        // The shift-inverted pencil loses accuracy when one shift must
        // cover a huge dynamic range of |s|, so wide sweeps are
        // segmented into ≤2-decade magnitude groups, each with its own
        // Hessenberg setup. Typical log sweeps need one or two groups.
        let mut by_magnitude: Vec<usize> = (0..s.len()).collect();
        by_magnitude.sort_by(|&i, &j| s[i].abs().total_cmp(&s[j].abs()));
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut base = 0.0f64;
        for &i in &by_magnitude {
            let mag = s[i].abs();
            match groups.last_mut() {
                Some(group) if base == 0.0 || mag <= 100.0 * base => {
                    group.push(i);
                    if base == 0.0 {
                        base = mag;
                    }
                }
                _ => {
                    groups.push(vec![i]);
                    base = mag;
                }
            }
        }
        let mut out: Vec<Option<CMatrix>> = vec![None; s.len()];
        for group in groups {
            let sigma = group.iter().map(|&i| s[i].abs()).fold(0.0f64, f64::max);
            let sweep = if group.len() >= SWEEP_MIN_POINTS {
                self.sweep_evaluator(sigma)
            } else {
                None
            };
            for &i in &group {
                out[i] = Some(match &sweep {
                    Some(sweep) => sweep.eval(s[i])?,
                    None => self.eval(s[i])?,
                });
            }
        }
        Ok(out
            .into_iter()
            .map(|h| h.expect("every index visited"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;

    fn rc_lowpass(tau: f64) -> DescriptorSystem<f64> {
        DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0 / tau]),
            RMatrix::col_vector(&[1.0 / tau]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn dimensions_are_validated() {
        let bad = DescriptorSystem::new(
            RMatrix::identity(2),
            RMatrix::identity(3),
            RMatrix::zeros(3, 1),
            RMatrix::zeros(1, 3),
            RMatrix::zeros(1, 1),
        );
        assert!(matches!(
            bad,
            Err(StateSpaceError::DimensionMismatch { .. })
        ));
        let bad_b = DescriptorSystem::from_state_space(
            RMatrix::identity(2),
            RMatrix::zeros(3, 1),
            RMatrix::zeros(1, 2),
            RMatrix::zeros(1, 1),
        );
        assert!(bad_b.is_err());
    }

    #[test]
    fn rc_lowpass_magnitude_and_phase() {
        let sys = rc_lowpass(1.0);
        // At the corner frequency: |H| = 1/√2, phase −45°.
        let h = sys.eval(c64(0.0, 1.0)).unwrap()[(0, 0)];
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((h.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn poles_of_diagonal_system() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0, -5.0]),
            RMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        let poles = sys.poles().unwrap();
        let mut res: Vec<f64> = poles.iter().map(|p| p.re).collect();
        res.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((res[0] + 5.0).abs() < 1e-9);
        assert!((res[1] + 1.0).abs() < 1e-9);
        assert!(sys.is_stable().unwrap());
    }

    #[test]
    fn unstable_pole_detected() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[1.0]),
            RMatrix::col_vector(&[1.0]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        assert!(!sys.is_stable().unwrap());
    }

    #[test]
    fn descriptor_system_with_singular_e() {
        // E = diag(1, 0): the second state is algebraic, acting like a
        // feed-through: H(s) = c1 b1/(s − a1) + c2 b2 / (−a2).
        let sys = DescriptorSystem::new(
            RMatrix::from_diag(&[1.0, 0.0]),
            RMatrix::from_diag(&[-1.0, -2.0]),
            RMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        assert_eq!(sys.order(), 2);
        assert_eq!(sys.dynamic_order(), 1);
        let h = sys.eval(Complex::ZERO).unwrap()[(0, 0)];
        assert!((h.re - 1.5).abs() < 1e-12); // 1/1 + 1/2
        let poles = sys.poles().unwrap();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re + 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_at_pole_fails_cleanly() {
        let sys = rc_lowpass(1.0);
        let err = sys.eval(c64(-1.0, 0.0)).unwrap_err();
        assert!(matches!(err, StateSpaceError::EvaluationAtPole { .. }));
    }

    #[test]
    fn complex_round_trip_through_into_real() {
        let real = rc_lowpass(0.5);
        let complexified = real.to_complex();
        let back = complexified.into_real(1e-14).unwrap();
        assert_eq!(&back, &real);
    }

    #[test]
    fn into_real_rejects_complex_content() {
        let mut sys = rc_lowpass(1.0).to_complex();
        // Inject a genuinely complex entry.
        let a = sys.a.clone();
        let _ = a; // keep clone to show intent; mutate via new()
        let mut a2 = sys.a.clone();
        a2[(0, 0)] = c64(-1.0, 0.5);
        sys = DescriptorSystem::new(
            sys.e.clone(),
            a2,
            sys.b.clone(),
            sys.c.clone(),
            sys.d.clone(),
        )
        .unwrap();
        assert!(matches!(
            sys.into_real(1e-9),
            Err(StateSpaceError::NotReal { .. })
        ));
    }

    /// Order-`n` stable test system with resonances spread over
    /// `[1, ω_hi]` rad/s and dense B/C/D couplings (xorshift entries).
    fn resonant_system(
        n: usize,
        ports: usize,
        omega_hi: f64,
        mut seed: u64,
    ) -> DescriptorSystem<f64> {
        assert!(n.is_multiple_of(2));
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let pairs = n / 2;
        let mut a = RMatrix::zeros(n, n);
        for k in 0..pairs {
            let omega = omega_hi.powf((k + 1) as f64 / pairs as f64);
            let sigma = -omega * (0.02 + 0.1 * next().abs());
            a[(2 * k, 2 * k)] = sigma;
            a[(2 * k, 2 * k + 1)] = omega;
            a[(2 * k + 1, 2 * k)] = -omega;
            a[(2 * k + 1, 2 * k + 1)] = sigma;
        }
        let b = RMatrix::from_fn(n, ports, |_, _| next());
        let c = RMatrix::from_fn(ports, n, |_, _| next());
        let d = RMatrix::from_fn(ports, ports, |_, _| 0.25 * next());
        DescriptorSystem::from_state_space(a, b, c, d).unwrap()
    }

    fn sweep_points(omega_hi: f64, k: usize) -> Vec<Complex> {
        (0..k)
            .map(|i| c64(0.0, omega_hi.powf((i + 1) as f64 / k as f64)))
            .collect()
    }

    #[test]
    fn eval_batch_sweep_matches_pointwise_lu() {
        // Order 24 ≥ SWEEP_MIN_ORDER and 20 points ≥ SWEEP_MIN_POINTS:
        // the Hessenberg sweep path is exercised and must agree with the
        // per-point LU evaluation to near machine precision.
        let sys = resonant_system(24, 3, 1e6, 0x5eed);
        let pts = sweep_points(1e6, 20);
        let batch = sys.eval_batch(&pts).unwrap();
        assert_eq!(batch.len(), pts.len());
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = sys.eval(s).unwrap();
            let rel = (h - &direct).max_abs() / direct.max_abs().max(1e-300);
            assert!(
                rel < 1e-12,
                "sweep vs LU relative deviation {rel:.2e} at {s}"
            );
        }
    }

    #[test]
    fn eval_batch_handles_singular_e_descriptor() {
        // Singular E (algebraic states) still admits the shift-inverted
        // sweep: M = F⁻¹E is merely rank-deficient.
        let base = resonant_system(16, 2, 1e4, 7);
        let n = base.order() + 2;
        let mut e = RMatrix::identity(n);
        e[(n - 1, n - 1)] = 0.0;
        e[(n - 2, n - 2)] = 0.0;
        let mut a = RMatrix::zeros(n, n);
        for i in 0..base.order() {
            for j in 0..base.order() {
                a[(i, j)] = base.a()[(i, j)];
            }
        }
        a[(n - 2, n - 2)] = -1.0;
        a[(n - 1, n - 1)] = -2.0;
        let b = RMatrix::from_fn(n, 2, |i, j| ((i + 2 * j + 1) as f64).recip());
        let c = RMatrix::from_fn(2, n, |i, j| ((2 * i + j + 2) as f64).recip());
        let sys = DescriptorSystem::new(e, a, b, c, RMatrix::zeros(2, 2)).unwrap();
        assert!(sys.dynamic_order() < sys.order());
        let pts = sweep_points(1e4, 12);
        let batch = sys.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = sys.eval(s).unwrap();
            let rel = (h - &direct).max_abs() / direct.max_abs().max(1e-300);
            assert!(rel < 1e-12, "descriptor sweep deviation {rel:.2e} at {s}");
        }
    }

    #[test]
    fn eval_batch_short_sweeps_fall_back_to_the_loop() {
        let sys = resonant_system(24, 2, 1e5, 3);
        let pts = sweep_points(1e5, 3); // below SWEEP_MIN_POINTS
        let batch = sys.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            assert!(h.approx_eq(&sys.eval(s).unwrap(), 0.0));
        }
    }

    #[test]
    fn eval_batch_reports_pole_hits() {
        // Diagonal complex system: the pencil s·I − A is *exactly*
        // singular at the poles, so both the per-point and the sweep
        // paths must flag the hit (a numerically computed pole of a
        // dense model only makes the pencil ill-conditioned, not
        // singular, and evaluates like its neighborhood does).
        let n = 14;
        let poles: Vec<Complex> = (1..=n).map(|k| c64(-(k as f64), 2.0 * k as f64)).collect();
        let a = CMatrix::from_diag(&poles);
        let b = CMatrix::from_fn(n, 2, |i, j| c64((i + j + 1) as f64, 0.0));
        let c = CMatrix::from_fn(2, n, |i, j| c64(1.0 / (i + j + 1) as f64, 0.0));
        let sys = DescriptorSystem::from_state_space(a, b, c, CMatrix::zeros(2, 2)).unwrap();
        let mut pts = sweep_points(30.0, 12);
        pts.push(poles[3]);
        let err = sys.eval_batch(&pts).unwrap_err();
        assert!(matches!(err, StateSpaceError::EvaluationAtPole { .. }));
        // The same batch without the pole evaluates fine.
        pts.pop();
        assert!(sys.eval_batch(&pts).is_ok());
    }

    #[test]
    fn complex_models_take_the_sweep_path_too() {
        let sys = resonant_system(20, 2, 1e5, 23).to_complex();
        let pts = sweep_points(1e5, 16);
        let batch = sys.eval_batch(&pts).unwrap();
        for (&s, h) in pts.iter().zip(&batch) {
            let direct = sys.eval(s).unwrap();
            let rel = (h - &direct).max_abs() / direct.max_abs().max(1e-300);
            assert!(rel < 1e-12, "complex sweep deviation {rel:.2e}");
        }
    }

    #[test]
    fn mimo_dimensions_are_exposed() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0, -2.0, -3.0]),
            RMatrix::zeros(3, 2),
            RMatrix::zeros(4, 3),
            RMatrix::zeros(4, 2),
        )
        .unwrap();
        assert_eq!(sys.inputs(), 2);
        assert_eq!(sys.outputs(), 4);
        assert_eq!(sys.order(), 3);
    }
}
