use mfti_numeric::{generalized_eigenvalues, CMatrix, Complex, Lu, Matrix, RMatrix, Scalar};

use crate::error::StateSpaceError;
use crate::transfer::TransferFunction;

/// A descriptor state-space model `E ẋ = A x + B u`, `y = C x + D u`.
///
/// `E` may be singular (then the model is a true descriptor system, which
/// is exactly what the raw Loewner realization of the paper's Lemma 3.1
/// produces). The scalar type distinguishes real models
/// (`DescriptorSystem<f64>`, e.g. after the Lemma 3.2 realification) from
/// complex ones (`DescriptorSystem<Complex>`, the direct Loewner output).
///
/// ```
/// use mfti_statespace::{DescriptorSystem, TransferFunction};
/// use mfti_numeric::RMatrix;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let sys = DescriptorSystem::from_state_space(
///     RMatrix::from_diag(&[-1.0, -2.0]),
///     RMatrix::from_rows(&[vec![1.0], vec![1.0]])?,
///     RMatrix::from_rows(&[vec![1.0, 1.0]])?,
///     RMatrix::zeros(1, 1),
/// )?;
/// assert_eq!(sys.order(), 2);
/// let dc = sys.eval(mfti_numeric::Complex::ZERO)?;
/// assert!((dc[(0, 0)].re - 1.5).abs() < 1e-12); // 1/1 + 1/2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DescriptorSystem<T: Scalar> {
    e: Matrix<T>,
    a: Matrix<T>,
    b: Matrix<T>,
    c: Matrix<T>,
    d: Matrix<T>,
}

impl<T: Scalar> DescriptorSystem<T> {
    /// Builds a descriptor system, validating all dimension constraints.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when the matrices
    /// are not conformal (`E,A n×n`, `B n×m`, `C p×n`, `D p×m`).
    pub fn new(
        e: Matrix<T>,
        a: Matrix<T>,
        b: Matrix<T>,
        c: Matrix<T>,
        d: Matrix<T>,
    ) -> Result<Self, StateSpaceError> {
        if !a.is_square() {
            return Err(StateSpaceError::DimensionMismatch {
                what: "A must be square",
            });
        }
        let n = a.rows();
        if e.dims() != (n, n) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "E must match A",
            });
        }
        if b.rows() != n {
            return Err(StateSpaceError::DimensionMismatch {
                what: "B must have n rows",
            });
        }
        if c.cols() != n {
            return Err(StateSpaceError::DimensionMismatch {
                what: "C must have n columns",
            });
        }
        if d.dims() != (c.rows(), b.cols()) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "D must be p×m",
            });
        }
        Ok(DescriptorSystem { e, a, b, c, d })
    }

    /// Builds an ordinary state-space model (`E = I`).
    ///
    /// # Errors
    ///
    /// Same as [`DescriptorSystem::new`].
    pub fn from_state_space(
        a: Matrix<T>,
        b: Matrix<T>,
        c: Matrix<T>,
        d: Matrix<T>,
    ) -> Result<Self, StateSpaceError> {
        let n = a.rows();
        Self::new(Matrix::identity(n), a, b, c, d)
    }

    /// The descriptor matrix `E`.
    pub fn e(&self) -> &Matrix<T> {
        &self.e
    }
    /// The state matrix `A`.
    pub fn a(&self) -> &Matrix<T> {
        &self.a
    }
    /// The input matrix `B`.
    pub fn b(&self) -> &Matrix<T> {
        &self.b
    }
    /// The output matrix `C`.
    pub fn c(&self) -> &Matrix<T> {
        &self.c
    }
    /// The feed-through matrix `D`.
    pub fn d(&self) -> &Matrix<T> {
        &self.d
    }

    /// State dimension `n` (size of `A`), i.e. the *size* of the model.
    ///
    /// For a descriptor system with singular `E` the number of finite
    /// poles — `order(Γ) = rank(E)` in the paper's notation — is smaller;
    /// see [`DescriptorSystem::dynamic_order`].
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// `rank(E)` — the number of dynamic (finite-pole) states, the
    /// quantity the paper calls `order(Γ)`.
    ///
    /// Computed by SVD with the crate-default rank tolerance.
    pub fn dynamic_order(&self) -> usize {
        match mfti_numeric::Svd::compute(&self.e) {
            Ok(svd) => svd.rank(mfti_numeric::DEFAULT_RANK_TOL),
            Err(_) => 0,
        }
    }

    /// Number of inputs `m`.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs `p`.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }

    /// Finite poles of the pencil `(A, E)` (eigenvalues with `E` weight).
    ///
    /// # Errors
    ///
    /// Propagates [`StateSpaceError::Numeric`] when the pencil is singular.
    pub fn poles(&self) -> Result<Vec<Complex>, StateSpaceError> {
        let (mut finite, _infinite) = generalized_eigenvalues(&self.a, &self.e)?;
        finite.sort_by(|x, y| {
            (x.im.abs(), x.re)
                .partial_cmp(&(y.im.abs(), y.re))
                .expect("finite poles")
        });
        Ok(finite)
    }

    /// `true` when every finite pole has strictly negative real part.
    ///
    /// # Errors
    ///
    /// Propagates pole-computation failures.
    pub fn is_stable(&self) -> Result<bool, StateSpaceError> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// Promotes the model to complex scalars (no-op for complex models).
    pub fn to_complex(&self) -> DescriptorSystem<Complex> {
        DescriptorSystem {
            e: self.e.to_complex(),
            a: self.a.to_complex(),
            b: self.b.to_complex(),
            c: self.c.to_complex(),
            d: self.d.to_complex(),
        }
    }
}

impl DescriptorSystem<Complex> {
    /// Demotes a complex model whose matrices are real within `tol` to a
    /// real model (used after the paper's Lemma 3.2 realification).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::NotReal`] when any entry has an
    /// imaginary part exceeding `tol` (relative to the matrix max-abs).
    pub fn into_real(self, tol: f64) -> Result<DescriptorSystem<f64>, StateSpaceError> {
        let mut max_imag = 0.0f64;
        for m in [&self.e, &self.a, &self.b, &self.c, &self.d] {
            let scale = m.max_abs().max(1.0);
            for z in m.iter() {
                max_imag = max_imag.max(z.im.abs() / scale);
            }
        }
        if max_imag > tol {
            return Err(StateSpaceError::NotReal { max_imag });
        }
        Ok(DescriptorSystem {
            e: self.e.real_part(),
            a: self.a.real_part(),
            b: self.b.real_part(),
            c: self.c.real_part(),
            d: self.d.real_part(),
        })
    }
}

impl DescriptorSystem<f64> {
    /// Convenience accessors returning the real matrices (alias of the
    /// generic getters, for call-site clarity in examples).
    pub fn real_matrices(&self) -> (&RMatrix, &RMatrix, &RMatrix, &RMatrix, &RMatrix) {
        (&self.e, &self.a, &self.b, &self.c, &self.d)
    }
}

impl<T: Scalar> TransferFunction for DescriptorSystem<T> {
    fn outputs(&self) -> usize {
        self.c.rows()
    }

    fn inputs(&self) -> usize {
        self.b.cols()
    }

    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        // H(s) = C (sE − A)⁻¹ B + D via one LU solve. The pencil sE − A
        // is assembled in a single fused pass (bode sweeps call this per
        // frequency, so the temporaries of the naive `to_complex` chain
        // would dominate small-model evaluation).
        let n = self.a.rows();
        let pencil_data: Vec<Complex> = self
            .e
            .as_slice()
            .iter()
            .zip(self.a.as_slice())
            .map(|(&e, &a)| e.to_complex() * s - a.to_complex())
            .collect();
        let pencil = CMatrix::from_vec(n, n, pencil_data).expect("E and A are n×n");
        let lu = Lu::compute(&pencil)?;
        if lu.is_singular() {
            return Err(StateSpaceError::EvaluationAtPole { re: s.re, im: s.im });
        }
        let x = lu.solve(&self.b.to_complex())?;
        let mut h = self.c.to_complex().matmul(&x)?;
        for (h_e, &d_e) in h.as_mut_slice().iter_mut().zip(self.d.as_slice()) {
            *h_e += d_e.to_complex();
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;

    fn rc_lowpass(tau: f64) -> DescriptorSystem<f64> {
        DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0 / tau]),
            RMatrix::col_vector(&[1.0 / tau]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn dimensions_are_validated() {
        let bad = DescriptorSystem::new(
            RMatrix::identity(2),
            RMatrix::identity(3),
            RMatrix::zeros(3, 1),
            RMatrix::zeros(1, 3),
            RMatrix::zeros(1, 1),
        );
        assert!(matches!(
            bad,
            Err(StateSpaceError::DimensionMismatch { .. })
        ));
        let bad_b = DescriptorSystem::from_state_space(
            RMatrix::identity(2),
            RMatrix::zeros(3, 1),
            RMatrix::zeros(1, 2),
            RMatrix::zeros(1, 1),
        );
        assert!(bad_b.is_err());
    }

    #[test]
    fn rc_lowpass_magnitude_and_phase() {
        let sys = rc_lowpass(1.0);
        // At the corner frequency: |H| = 1/√2, phase −45°.
        let h = sys.eval(c64(0.0, 1.0)).unwrap()[(0, 0)];
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((h.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn poles_of_diagonal_system() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0, -5.0]),
            RMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        let poles = sys.poles().unwrap();
        let mut res: Vec<f64> = poles.iter().map(|p| p.re).collect();
        res.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((res[0] + 5.0).abs() < 1e-9);
        assert!((res[1] + 1.0).abs() < 1e-9);
        assert!(sys.is_stable().unwrap());
    }

    #[test]
    fn unstable_pole_detected() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[1.0]),
            RMatrix::col_vector(&[1.0]),
            RMatrix::row_vector(&[1.0]),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        assert!(!sys.is_stable().unwrap());
    }

    #[test]
    fn descriptor_system_with_singular_e() {
        // E = diag(1, 0): the second state is algebraic, acting like a
        // feed-through: H(s) = c1 b1/(s − a1) + c2 b2 / (−a2).
        let sys = DescriptorSystem::new(
            RMatrix::from_diag(&[1.0, 0.0]),
            RMatrix::from_diag(&[-1.0, -2.0]),
            RMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap(),
            RMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
            RMatrix::zeros(1, 1),
        )
        .unwrap();
        assert_eq!(sys.order(), 2);
        assert_eq!(sys.dynamic_order(), 1);
        let h = sys.eval(Complex::ZERO).unwrap()[(0, 0)];
        assert!((h.re - 1.5).abs() < 1e-12); // 1/1 + 1/2
        let poles = sys.poles().unwrap();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re + 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_at_pole_fails_cleanly() {
        let sys = rc_lowpass(1.0);
        let err = sys.eval(c64(-1.0, 0.0)).unwrap_err();
        assert!(matches!(err, StateSpaceError::EvaluationAtPole { .. }));
    }

    #[test]
    fn complex_round_trip_through_into_real() {
        let real = rc_lowpass(0.5);
        let complexified = real.to_complex();
        let back = complexified.into_real(1e-14).unwrap();
        assert_eq!(&back, &real);
    }

    #[test]
    fn into_real_rejects_complex_content() {
        let mut sys = rc_lowpass(1.0).to_complex();
        // Inject a genuinely complex entry.
        let a = sys.a.clone();
        let _ = a; // keep clone to show intent; mutate via new()
        let mut a2 = sys.a.clone();
        a2[(0, 0)] = c64(-1.0, 0.5);
        sys = DescriptorSystem::new(
            sys.e.clone(),
            a2,
            sys.b.clone(),
            sys.c.clone(),
            sys.d.clone(),
        )
        .unwrap();
        assert!(matches!(
            sys.into_real(1e-9),
            Err(StateSpaceError::NotReal { .. })
        ));
    }

    #[test]
    fn mimo_dimensions_are_exposed() {
        let sys = DescriptorSystem::from_state_space(
            RMatrix::from_diag(&[-1.0, -2.0, -3.0]),
            RMatrix::zeros(3, 2),
            RMatrix::zeros(4, 3),
            RMatrix::zeros(4, 2),
        )
        .unwrap();
        assert_eq!(sys.inputs(), 2);
        assert_eq!(sys.outputs(), 4);
        assert_eq!(sys.order(), 3);
    }
}
