//! Initial pole placement and pole-set bookkeeping.

use mfti_numeric::{c64, Complex};

use crate::error::VecFitError;

/// Generates the standard vector-fitting starting poles: complex
/// conjugate pairs with imaginary parts log-spaced across
/// `[2π·f_lo, 2π·f_hi]` and real parts `−ω/100` (lightly damped), plus
/// one real pole at `−2π·f_lo` when `n` is odd.
///
/// Pairs are returned adjacent: `(a₁, ā₁, a₂, ā₂, …)`.
///
/// # Errors
///
/// Returns [`VecFitError::InvalidConfig`] when `n == 0` or the band is
/// invalid.
///
/// ```
/// let poles = mfti_vecfit::initial_poles(6, 1e3, 1e9).unwrap();
/// assert_eq!(poles.len(), 6);
/// assert!(poles.iter().all(|p| p.re < 0.0));
/// ```
pub fn initial_poles(n: usize, f_lo_hz: f64, f_hi_hz: f64) -> Result<Vec<Complex>, VecFitError> {
    if n == 0 {
        return Err(VecFitError::InvalidConfig {
            what: "need at least one pole".to_string(),
        });
    }
    if !(f_lo_hz > 0.0 && f_hi_hz > f_lo_hz) {
        return Err(VecFitError::InvalidConfig {
            what: format!("invalid band [{f_lo_hz}, {f_hi_hz}]"),
        });
    }
    let pairs = n / 2;
    let mut poles = Vec::with_capacity(n);
    let l0 = f_lo_hz.log10();
    let l1 = f_hi_hz.log10();
    for k in 0..pairs {
        let frac = if pairs > 1 {
            k as f64 / (pairs - 1) as f64
        } else {
            0.5
        };
        let omega = std::f64::consts::TAU * 10f64.powf(l0 + (l1 - l0) * frac);
        let pole = c64(-omega / 100.0, omega);
        poles.push(pole);
        poles.push(pole.conj());
    }
    if n % 2 == 1 {
        poles.push(c64(-std::f64::consts::TAU * f_lo_hz, 0.0));
    }
    Ok(poles)
}

/// Classification of the pole list into real poles and conjugate pairs,
/// assuming pairs are adjacent (the invariant maintained throughout the
/// iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PoleBlock {
    /// A single real pole at list position `idx`.
    Real {
        /// Index into the pole list.
        idx: usize,
    },
    /// A conjugate pair occupying positions `idx` (positive imaginary
    /// part) and `idx + 1`.
    Pair {
        /// Index of the pair member with `im > 0`.
        idx: usize,
    },
}

/// Splits a conjugate-closed pole list (pairs adjacent) into blocks.
pub(crate) fn pole_blocks(poles: &[Complex]) -> Vec<PoleBlock> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < poles.len() {
        if poles[i].im.abs() > 0.0 {
            blocks.push(PoleBlock::Pair { idx: i });
            i += 2;
        } else {
            blocks.push(PoleBlock::Real { idx: i });
            i += 1;
        }
    }
    blocks
}

/// Rebuilds a conjugate-closed, pairs-adjacent pole list from raw
/// eigenvalues: near-real eigenvalues are snapped to the real axis,
/// complex ones are paired with their conjugates (keeping the `im > 0`
/// member first). Optionally reflects unstable poles.
pub(crate) fn sanitize_poles(raw: &[Complex], flip_unstable: bool) -> Vec<Complex> {
    let scale = raw.iter().map(|p| p.abs()).fold(1.0f64, f64::max);
    let tol = 1e-9 * scale;
    let mut reals = Vec::new();
    let mut pos_imag = Vec::new();
    for &p in raw {
        let mut p = p;
        if flip_unstable && p.re > 0.0 {
            p.re = -p.re;
        }
        if p.re == 0.0 {
            // Avoid marginally stable poles (σ has zeros there).
            p.re = -1e-6 * scale.max(1.0);
        }
        if p.im.abs() <= tol {
            reals.push(c64(p.re, 0.0));
        } else if p.im > 0.0 {
            pos_imag.push(p);
        }
        // Negative-imaginary members are regenerated from the positive
        // ones, which also repairs slightly asymmetric eigenpairs.
    }
    let mut out = Vec::with_capacity(raw.len());
    for p in pos_imag {
        out.push(p);
        out.push(p.conj());
    }
    out.extend(reals);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_poles_are_conjugate_closed_and_stable() {
        let poles = initial_poles(7, 1e2, 1e6).unwrap();
        assert_eq!(poles.len(), 7);
        for pair in poles.chunks(2).take(3) {
            assert_eq!(pair[0].conj(), pair[1]);
            assert!(pair[0].re < 0.0);
            assert!((pair[0].re.abs() - pair[0].im.abs() / 100.0).abs() < 1e-9);
        }
        assert_eq!(poles[6].im, 0.0);
    }

    #[test]
    fn initial_poles_cover_the_band_logarithmically() {
        let poles = initial_poles(8, 1e1, 1e7).unwrap();
        let freqs: Vec<f64> = poles
            .iter()
            .filter(|p| p.im > 0.0)
            .map(|p| p.im / std::f64::consts::TAU)
            .collect();
        assert!((freqs[0] - 1e1).abs() < 1e-6);
        assert!((freqs[3] - 1e7).abs() < 1.0);
        // Geometric spacing.
        assert!((freqs[1] / freqs[0] - freqs[2] / freqs[1]).abs() < 1e-6);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(initial_poles(0, 1.0, 2.0).is_err());
        assert!(initial_poles(4, 2.0, 1.0).is_err());
        assert!(initial_poles(4, 0.0, 1.0).is_err());
    }

    #[test]
    fn blocks_classify_pairs_and_reals() {
        let poles = vec![c64(-1.0, 2.0), c64(-1.0, -2.0), c64(-3.0, 0.0)];
        let blocks = pole_blocks(&poles);
        assert_eq!(
            blocks,
            vec![PoleBlock::Pair { idx: 0 }, PoleBlock::Real { idx: 2 }]
        );
    }

    #[test]
    fn sanitize_repairs_and_flips() {
        let raw = vec![
            c64(0.5, 3.0), // unstable pair member
            c64(0.5, -3.0),
            c64(-2.0, 1e-15), // nearly real
        ];
        let out = sanitize_poles(&raw, true);
        assert_eq!(out.len(), 3);
        assert!(out[0].re < 0.0 && out[0].im > 0.0);
        assert_eq!(out[0].conj(), out[1]);
        assert_eq!(out[2].im, 0.0);
    }

    #[test]
    fn sanitize_keeps_unstable_when_not_flipping() {
        let raw = vec![c64(0.5, 3.0), c64(0.5, -3.0)];
        let out = sanitize_poles(&raw, false);
        assert!(out[0].re > 0.0);
    }
}
