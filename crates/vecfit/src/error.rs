use std::error::Error;
use std::fmt;

use mfti_numeric::NumericError;
use mfti_statespace::StateSpaceError;

/// Errors produced by the vector-fitting baseline.
#[derive(Debug)]
#[non_exhaustive]
pub enum VecFitError {
    /// The requested configuration cannot work (zero poles, too few
    /// samples, invalid band, …).
    InvalidConfig {
        /// Human-readable description.
        what: String,
    },
    /// The sigma iteration collapsed (σ ≡ 0 or non-finite poles).
    IterationCollapsed {
        /// Iteration number (1-based) at which the collapse happened.
        iteration: usize,
    },
    /// An underlying linear-algebra kernel failed.
    Numeric(NumericError),
    /// Building/evaluating the rational model failed.
    StateSpace(StateSpaceError),
}

impl fmt::Display for VecFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VecFitError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            VecFitError::IterationCollapsed { iteration } => {
                write!(f, "sigma iteration collapsed at iteration {iteration}")
            }
            VecFitError::Numeric(e) => write!(f, "numeric kernel failed: {e}"),
            VecFitError::StateSpace(e) => write!(f, "model construction failed: {e}"),
        }
    }
}

impl Error for VecFitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VecFitError::Numeric(e) => Some(e),
            VecFitError::StateSpace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for VecFitError {
    fn from(e: NumericError) -> Self {
        VecFitError::Numeric(e)
    }
}

impl From<StateSpaceError> for VecFitError {
    fn from(e: StateSpaceError) -> Self {
        VecFitError::StateSpace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = VecFitError::from(NumericError::Singular { op: "qr" });
        assert!(e.to_string().contains("qr"));
        assert!(std::error::Error::source(&e).is_some());
        let e = VecFitError::IterationCollapsed { iteration: 3 };
        assert!(e.to_string().contains('3'));
    }
}
