//! Vector fitting (Gustavsen–Semlyen) — the classical rational-fitting
//! baseline the MFTI paper compares against in Table 1 ("VF, 10
//! iterations").
//!
//! Vector fitting approximates sampled frequency responses by a
//! common-pole pole–residue model
//!
//! ```text
//! H(s) ≈ D + Σ_k R_k / (s − a_k)
//! ```
//!
//! through the *sigma iteration*: a scalar weighting rational σ(s) with
//! the current poles is fitted so that `σ·g ≈ p` for a scalar target
//! `g(s)` derived from the matrix samples; the zeros of σ become the
//! relocated poles for the next round (computed as eigenvalues of
//! `A − b c̃ᵀ/d̃`). After the poles settle, matrix residues and the
//! feed-through `D` follow from one linear least-squares solve per
//! entry (shared factorization).
//!
//! Implementation notes (documented deviations in DESIGN.md §5):
//!
//! * the **relaxed** non-triviality constraint of Gustavsen (2006) is
//!   used, which is what "VF" meant in practice by 2010;
//! * pole identification runs on a scalar reduction of the matrix data
//!   (mean of entries or trace — the "sum of elements" practice from
//!   the vectfit3 user guide) rather than the stacked per-entry system,
//!   keeping the baseline tractable at 14 ports;
//! * unstable poles are reflected into the left half-plane after each
//!   relocation (standard practice).
//!
//! # Example
//!
//! ```
//! use mfti_vecfit::VectorFitter;
//! use mfti_sampling::generators::RandomSystemBuilder;
//! use mfti_sampling::{FrequencyGrid, SampleSet};
//! use mfti_statespace::TransferFunction;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = RandomSystemBuilder::new(8, 2, 2).seed(11).build()?;
//! let grid = FrequencyGrid::log_space(1e2, 1e4, 60)?;
//! let samples = SampleSet::from_system(&sys, &grid)?;
//! let fit = VectorFitter::new(8).iterations(10).fit_detailed(&samples)?;
//! // The fitted model matches the samples closely.
//! let h = fit.model.response_at_hz(1e3)?;
//! let s = sys.response_at_hz(1e3)?;
//! assert!((&h - &s).norm_2() / s.norm_2() < 1e-4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod basis;
mod error;
mod fitter;
mod poles;
mod residues;
mod sigma;

pub use error::VecFitError;
pub use fitter::{SigmaTarget, VectorFitter, VfFit};
pub use poles::initial_poles;
