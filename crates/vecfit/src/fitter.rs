//! The top-level vector-fitting driver.

use std::time::Duration;

use mfti_numeric::diag::Stopwatch;
use mfti_numeric::Complex;
use mfti_sampling::SampleSet;
use mfti_statespace::{s_at_hz, RationalModel};

use crate::error::VecFitError;
use crate::poles::initial_poles;
use crate::residues::identify_residues;
use crate::sigma::sigma_step;

/// Scalar reduction of the matrix samples used for pole identification
/// (the vectfit3 "sum of elements" practice for multi-port data; see
/// DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigmaTarget {
    /// Mean of all `p·m` entries (default — every port participates).
    #[default]
    MeanEntries,
    /// Mean of the diagonal entries (robust when off-diagonal coupling
    /// nearly cancels).
    Trace,
}

/// Result of a vector-fitting run.
#[derive(Debug, Clone)]
pub struct VfFit {
    /// The fitted common-pole model.
    pub model: RationalModel,
    /// `d̃` after each sigma iteration (→ 1 at convergence).
    pub d_tilde_history: Vec<f64>,
    /// RMS residual of each linearized sigma fit.
    pub sigma_residuals: Vec<f64>,
    /// Wall-clock time of the whole fit.
    pub elapsed: Duration,
}

/// Configurable vector-fitting driver (see the crate docs for the
/// algorithm outline).
#[derive(Debug, Clone)]
pub struct VectorFitter {
    n_poles: usize,
    iterations: usize,
    stabilize: bool,
    target: SigmaTarget,
    band_hz: Option<(f64, f64)>,
}

impl VectorFitter {
    /// Fitter with `n_poles` poles, 10 iterations (the paper's Table 1
    /// setting), unstable-pole flipping on, mean-entries sigma target,
    /// and the starting-pole band inferred from the samples.
    pub fn new(n_poles: usize) -> Self {
        VectorFitter {
            n_poles,
            iterations: 10,
            stabilize: true,
            target: SigmaTarget::default(),
            band_hz: None,
        }
    }

    /// Number of sigma iterations.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Whether to reflect unstable poles after each relocation.
    pub fn stabilize(mut self, stabilize: bool) -> Self {
        self.stabilize = stabilize;
        self
    }

    /// Scalar target used for pole identification.
    pub fn sigma_target(mut self, target: SigmaTarget) -> Self {
        self.target = target;
        self
    }

    /// Overrides the starting-pole band (defaults to the sample span).
    pub fn band(mut self, f_lo_hz: f64, f_hi_hz: f64) -> Self {
        self.band_hz = Some((f_lo_hz, f_hi_hz));
        self
    }

    /// Runs the fit, returning the full method-specific result.
    ///
    /// Method-agnostic callers should prefer the generic `Fitter::fit`
    /// implementation in `mfti-core`, which wraps this result in the
    /// common `FitOutcome` surface.
    ///
    /// # Errors
    ///
    /// Returns [`VecFitError::InvalidConfig`] for unusable inputs and
    /// propagates iteration/solve failures.
    pub fn fit_detailed(&self, samples: &SampleSet) -> Result<VfFit, VecFitError> {
        let start = Stopwatch::start();
        if self.n_poles == 0 {
            return Err(VecFitError::InvalidConfig {
                what: "need at least one pole".to_string(),
            });
        }
        if samples.len() < 2 {
            return Err(VecFitError::InvalidConfig {
                what: "need at least two samples".to_string(),
            });
        }
        let s_points: Vec<Complex> = samples.freqs_hz().iter().map(|&f| s_at_hz(f)).collect();
        let g = self.scalar_target(samples);

        let (f_lo, f_hi) = match self.band_hz {
            Some(band) => band,
            None => {
                let mut pos: Vec<f64> = samples
                    .freqs_hz()
                    .iter()
                    .copied()
                    .filter(|&f| f > 0.0)
                    .collect();
                pos.sort_by(f64::total_cmp);
                match (pos.first(), pos.last()) {
                    (Some(&lo), Some(&hi)) if hi > lo => (lo, hi),
                    _ => {
                        return Err(VecFitError::InvalidConfig {
                            what: "samples span no positive frequency band".to_string(),
                        })
                    }
                }
            }
        };

        let mut poles = initial_poles(self.n_poles, f_lo, f_hi)?;
        let mut d_tilde_history = Vec::with_capacity(self.iterations);
        let mut sigma_residuals = Vec::with_capacity(self.iterations);
        for it in 0..self.iterations {
            let out = sigma_step(&s_points, &g, &poles, self.stabilize, it + 1)?;
            poles = out.new_poles;
            d_tilde_history.push(out.d_tilde);
            sigma_residuals.push(out.rms_residual);
        }
        let model = identify_residues(&s_points, samples, &poles)?;
        Ok(VfFit {
            model,
            d_tilde_history,
            sigma_residuals,
            elapsed: start.elapsed(),
        })
    }

    fn scalar_target(&self, samples: &SampleSet) -> Vec<Complex> {
        let (p, m) = samples.ports();
        samples
            .iter()
            .map(|(_, s)| match self.target {
                SigmaTarget::MeanEntries => {
                    let mut acc = Complex::ZERO;
                    for i in 0..p {
                        for j in 0..m {
                            acc += s[(i, j)];
                        }
                    }
                    acc.scale(1.0 / (p * m) as f64)
                }
                SigmaTarget::Trace => {
                    let d = p.min(m);
                    let mut acc = Complex::ZERO;
                    for i in 0..d {
                        acc += s[(i, i)];
                    }
                    acc.scale(1.0 / d as f64)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::{c64, CMatrix};
    use mfti_sampling::generators::RandomSystemBuilder;
    use mfti_sampling::{FrequencyGrid, NoiseModel};
    use mfti_statespace::TransferFunction;

    fn rational_truth() -> RationalModel {
        let poles = vec![
            c64(-20.0, 500.0),
            c64(-20.0, -500.0),
            c64(-80.0, 3000.0),
            c64(-80.0, -3000.0),
        ];
        let r1 = CMatrix::from_rows(&[
            vec![c64(30.0, 10.0), c64(5.0, -3.0)],
            vec![c64(5.0, -3.0), c64(20.0, 8.0)],
        ])
        .unwrap();
        let r2 = CMatrix::from_rows(&[
            vec![c64(200.0, -40.0), c64(30.0, 12.0)],
            vec![c64(30.0, 12.0), c64(150.0, 0.0)],
        ])
        .unwrap();
        let d = CMatrix::identity(2).map(|z| z.scale(0.2));
        RationalModel::new(poles, vec![r1.clone(), r1.conj(), r2.clone(), r2.conj()], d).unwrap()
    }

    #[test]
    fn recovers_known_rational_model() {
        let truth = rational_truth();
        let grid = FrequencyGrid::log_space(10.0, 2000.0, 80).unwrap();
        let set = SampleSet::from_system(&truth, &grid).unwrap();
        let fit = VectorFitter::new(4)
            .iterations(12)
            .fit_detailed(&set)
            .unwrap();
        // Poles converge to the truth.
        let mut found: Vec<f64> = fit
            .model
            .poles()
            .iter()
            .filter(|p| p.im > 0.0)
            .map(|p| p.im)
            .collect();
        found.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((found[0] - 500.0).abs() < 0.5, "poles {found:?}");
        assert!((found[1] - 3000.0).abs() < 2.0, "poles {found:?}");
        // Response error is tiny on and off the grid.
        for &f in &[15.0, 79.6, 477.5, 1500.0] {
            let a = truth.response_at_hz(f).unwrap();
            let b = fit.model.response_at_hz(f).unwrap();
            assert!((&a - &b).norm_2() / a.norm_2() < 1e-6, "mismatch at {f} Hz");
        }
        // d̃ converged to ≈ 1.
        assert!((fit.d_tilde_history.last().unwrap() - 1.0).abs() < 0.1);
    }

    #[test]
    fn fits_state_space_workload_reasonably() {
        let sys = RandomSystemBuilder::new(10, 2, 2)
            .d_rank(2)
            .seed(21)
            .build()
            .unwrap();
        let grid = FrequencyGrid::log_space(1e1, 1e5, 100).unwrap();
        let set = SampleSet::from_system(&sys, &grid).unwrap();
        let fit = VectorFitter::new(10)
            .iterations(10)
            .fit_detailed(&set)
            .unwrap();
        let mut worst = 0.0f64;
        for (f, s) in set.iter() {
            let h = fit.model.response_at_hz(f).unwrap();
            worst = worst.max((&h - s).norm_2() / s.norm_2().max(1e-12));
        }
        assert!(worst < 1e-2, "worst relative error {worst}");
    }

    #[test]
    fn stabilize_keeps_model_stable_even_with_noise() {
        let sys = RandomSystemBuilder::new(8, 2, 2).seed(3).build().unwrap();
        let grid = FrequencyGrid::log_space(1e1, 1e5, 60).unwrap();
        let set = SampleSet::from_system(&sys, &grid).unwrap();
        let noisy = NoiseModel::additive_relative(1e-3).apply(&set, 8);
        let fit = VectorFitter::new(8)
            .iterations(8)
            .fit_detailed(&noisy)
            .unwrap();
        assert!(fit.model.is_stable());
    }

    #[test]
    fn conjugate_symmetry_of_the_result() {
        let truth = rational_truth();
        let grid = FrequencyGrid::log_space(10.0, 2000.0, 40).unwrap();
        let set = SampleSet::from_system(&truth, &grid).unwrap();
        let fit = VectorFitter::new(6)
            .iterations(6)
            .fit_detailed(&set)
            .unwrap();
        assert!(fit.model.is_conjugate_symmetric(1e-8));
        // Realizable as a real state space.
        assert!(fit.model.to_state_space(1e-8).is_ok());
    }

    #[test]
    fn trace_target_works_too() {
        let truth = rational_truth();
        let grid = FrequencyGrid::log_space(10.0, 2000.0, 60).unwrap();
        let set = SampleSet::from_system(&truth, &grid).unwrap();
        let fit = VectorFitter::new(4)
            .iterations(10)
            .sigma_target(SigmaTarget::Trace)
            .fit_detailed(&set)
            .unwrap();
        let f = 200.0;
        let a = truth.response_at_hz(f).unwrap();
        let b = fit.model.response_at_hz(f).unwrap();
        assert!((&a - &b).norm_2() / a.norm_2() < 1e-4);
    }

    #[test]
    fn invalid_configurations_rejected() {
        let truth = rational_truth();
        let grid = FrequencyGrid::log_space(10.0, 2000.0, 4).unwrap();
        let set = SampleSet::from_system(&truth, &grid).unwrap();
        assert!(VectorFitter::new(0).fit_detailed(&set).is_err());
        let one = set.subset(&[0]).unwrap();
        assert!(VectorFitter::new(2).fit_detailed(&one).is_err());
    }
}
