//! Residue identification with fixed poles: one shared least-squares
//! factorization, one right-hand side per matrix entry.

use mfti_numeric::{lstsq, CMatrix, Complex, RMatrix};
use mfti_sampling::SampleSet;
use mfti_statespace::RationalModel;

use crate::basis::{complex_basis, stack_real};
use crate::error::VecFitError;
use crate::poles::{pole_blocks, PoleBlock};

/// Solves for the matrix residues `R_k` and feed-through `D` given the
/// final poles, returning the assembled [`RationalModel`].
///
/// # Errors
///
/// Propagates least-squares failures and model-construction errors.
pub(crate) fn identify_residues(
    s_points: &[Complex],
    samples: &SampleSet,
    poles: &[Complex],
) -> Result<RationalModel, VecFitError> {
    let k = s_points.len();
    let n = poles.len();
    let (p, m) = samples.ports();

    // Shared basis [Φ | 1] → real 2k × (n+1).
    let phi = complex_basis(s_points, poles);
    let ones = CMatrix::from_fn(k, 1, |_, _| Complex::ONE);
    let a_real = stack_real(&phi.append_cols(&ones)?);

    // All entries as right-hand sides (2k × p·m).
    let mut b_real = RMatrix::zeros(2 * k, p * m);
    for (idx, (_, s_mat)) in samples.iter().enumerate() {
        for i in 0..p {
            for j in 0..m {
                let z = s_mat[(i, j)];
                b_real[(idx, i * m + j)] = z.re;
                b_real[(k + idx, i * m + j)] = z.im;
            }
        }
    }

    let x = lstsq(&a_real, &b_real, 1e-10)?; // (n+1) × p·m

    // Reassemble complex residues per pole.
    let blocks = pole_blocks(poles);
    let mut residues: Vec<CMatrix> = vec![CMatrix::zeros(p, m); n];
    let mut row = 0usize;
    for b in &blocks {
        match *b {
            PoleBlock::Real { idx } => {
                residues[idx] =
                    CMatrix::from_fn(p, m, |i, j| Complex::from_real(x[(row, i * m + j)]));
                row += 1;
            }
            PoleBlock::Pair { idx } => {
                residues[idx] = CMatrix::from_fn(p, m, |i, j| {
                    mfti_numeric::c64(x[(row, i * m + j)], x[(row + 1, i * m + j)])
                });
                residues[idx + 1] = residues[idx].conj();
                row += 2;
            }
        }
    }
    let d = CMatrix::from_fn(p, m, |i, j| Complex::from_real(x[(n, i * m + j)]));
    Ok(RationalModel::new(poles.to_vec(), residues, d)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;
    use mfti_sampling::{FrequencyGrid, SampleSet};
    use mfti_statespace::{s_at_hz, TransferFunction};

    #[test]
    fn exact_poles_give_exact_residues_for_mimo_data() {
        // 2x2 model with one conjugate pair and one real pole.
        let poles = vec![c64(-5.0, 100.0), c64(-5.0, -100.0), c64(-50.0, 0.0)];
        let r_pair = CMatrix::from_rows(&[
            vec![c64(1.0, 2.0), c64(0.5, -0.2)],
            vec![c64(0.5, -0.2), c64(2.0, 1.0)],
        ])
        .unwrap();
        let r_real = CMatrix::from_rows(&[
            vec![c64(3.0, 0.0), c64(-1.0, 0.0)],
            vec![c64(-1.0, 0.0), c64(0.5, 0.0)],
        ])
        .unwrap();
        let d = CMatrix::identity(2).map(|z| z.scale(0.1));
        let truth = RationalModel::new(
            poles.clone(),
            vec![r_pair.clone(), r_pair.conj(), r_real.clone()],
            d.clone(),
        )
        .unwrap();

        let grid = FrequencyGrid::log_space(1.0, 100.0, 30).unwrap();
        let set = SampleSet::from_system(&truth, &grid).unwrap();
        let s_points: Vec<Complex> = grid.points().iter().map(|&f| s_at_hz(f)).collect();

        let model = identify_residues(&s_points, &set, &poles).unwrap();
        assert!((&model.residues()[0] - &r_pair).max_abs() < 1e-9);
        assert!((&model.residues()[2] - &r_real).max_abs() < 1e-9);
        assert!((&model.d().clone() - &d).max_abs() < 1e-9);
        // And the model evaluates identically to the truth off-grid.
        let f = 37.7;
        let a = truth.response_at_hz(f).unwrap();
        let b = model.response_at_hz(f).unwrap();
        assert!((&a - &b).max_abs() < 1e-9);
    }

    #[test]
    fn wrong_poles_still_produce_a_valid_conjugate_model() {
        let true_poles = vec![c64(-5.0, 100.0), c64(-5.0, -100.0)];
        let truth = RationalModel::new(
            true_poles,
            vec![CMatrix::identity(1), CMatrix::identity(1)],
            CMatrix::zeros(1, 1),
        )
        .unwrap();
        let grid = FrequencyGrid::log_space(1.0, 100.0, 20).unwrap();
        let set = SampleSet::from_system(&truth, &grid).unwrap();
        let s_points: Vec<Complex> = grid.points().iter().map(|&f| s_at_hz(f)).collect();
        let off_poles = vec![c64(-10.0, 80.0), c64(-10.0, -80.0), c64(-30.0, 0.0)];
        let model = identify_residues(&s_points, &set, &off_poles).unwrap();
        assert!(model.is_conjugate_symmetric(1e-9));
    }
}
