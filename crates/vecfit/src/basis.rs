//! Real-valued partial-fraction basis (the Gustavsen formulation).
//!
//! For a conjugate-closed pole list with pairs adjacent, the basis
//! columns over a sample point `s` are
//!
//! * real pole `a`:   `φ(s) = 1/(s − a)` (one column),
//! * pair `(a, ā)`:   `φ₁ = 1/(s−a) + 1/(s−ā)`,
//!   `φ₂ = j/(s−a) − j/(s−ā)` (two columns),
//!
//! so that real coefficients `(c′, c″)` encode the complex residue
//! `c = c′ + j c″` at `a` (and `c̄` at `ā`). Splitting rows into real and
//! imaginary parts yields an all-real least-squares problem.

use mfti_numeric::{CMatrix, Complex, RMatrix};

use crate::poles::{pole_blocks, PoleBlock};

/// Complex basis matrix `Φ` (`k × n`) over the sample points
/// `s_i = j2πf_i` for the given conjugate-closed pole list.
pub(crate) fn complex_basis(s_points: &[Complex], poles: &[Complex]) -> CMatrix {
    let blocks = pole_blocks(poles);
    let n = poles.len();
    let k = s_points.len();
    let mut phi = CMatrix::zeros(k, n);
    for (i, &s) in s_points.iter().enumerate() {
        let mut col = 0;
        for b in &blocks {
            match *b {
                PoleBlock::Real { idx } => {
                    phi[(i, col)] = (s - poles[idx]).recip();
                    col += 1;
                }
                PoleBlock::Pair { idx } => {
                    let f1 = (s - poles[idx]).recip();
                    let f2 = (s - poles[idx + 1]).recip();
                    phi[(i, col)] = f1 + f2;
                    phi[(i, col + 1)] = (f1 - f2) * Complex::I;
                    col += 2;
                }
            }
        }
        debug_assert_eq!(col, n);
    }
    phi
}

/// Stacks a complex matrix into its real/imaginary row halves:
/// `[Re(A); Im(A)]` (`2k × n`).
pub(crate) fn stack_real(a: &CMatrix) -> RMatrix {
    let (k, n) = a.dims();
    RMatrix::from_fn(2 * k, n, |i, j| {
        if i < k {
            a[(i, j)].re
        } else {
            a[(i - k, j)].im
        }
    })
}

/// Recovers the complex residues from real basis coefficients: one
/// complex residue per pole, conjugate-closed.
#[cfg(test)]
pub(crate) fn coefficients_to_residues(coeffs: &[f64], poles: &[Complex]) -> Vec<Complex> {
    use mfti_numeric::c64;
    let blocks = pole_blocks(poles);
    let mut residues = vec![Complex::ZERO; poles.len()];
    let mut col = 0;
    for b in &blocks {
        match *b {
            PoleBlock::Real { idx } => {
                residues[idx] = c64(coeffs[col], 0.0);
                col += 1;
            }
            PoleBlock::Pair { idx } => {
                residues[idx] = c64(coeffs[col], coeffs[col + 1]);
                residues[idx + 1] = residues[idx].conj();
                col += 2;
            }
        }
    }
    residues
}

/// Evaluates `Σ c_k/(s − a_k) + d` for testing and the sigma iteration.
#[cfg(test)]
pub(crate) fn eval_partial_fractions(
    s: Complex,
    poles: &[Complex],
    residues: &[Complex],
    d: f64,
) -> Complex {
    let mut acc = mfti_numeric::c64(d, 0.0);
    for (&a, &c) in poles.iter().zip(residues) {
        acc += c / (s - a);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;
    use mfti_statespace::s_at_hz;

    #[test]
    fn real_coefficients_reproduce_conjugate_closed_function() {
        // Known function: pair at −1 ± 5i with residue 2 ∓ 3i? (c = 2+3i
        // at +im pole), plus real pole −4 with residue 0.7.
        let poles = vec![c64(-1.0, 5.0), c64(-1.0, -5.0), c64(-4.0, 0.0)];
        let residues = vec![c64(2.0, 3.0), c64(2.0, -3.0), c64(0.7, 0.0)];
        let s_points: Vec<Complex> = (1..=8).map(|i| s_at_hz(i as f64 * 0.3)).collect();

        let phi = complex_basis(&s_points, &poles);
        // Coefficients in real layout: (c', c'', real residue).
        let coeffs = [2.0, 3.0, 0.7];
        for (i, &s) in s_points.iter().enumerate() {
            let via_basis: Complex = (0..3).map(|j| phi[(i, j)] * coeffs[j]).sum();
            let direct = eval_partial_fractions(s, &poles, &residues, 0.0);
            assert!((via_basis - direct).abs() < 1e-12, "mismatch at {s}");
        }
    }

    #[test]
    fn coefficients_round_trip_to_residues() {
        let poles = vec![c64(-1.0, 5.0), c64(-1.0, -5.0), c64(-4.0, 0.0)];
        let res = coefficients_to_residues(&[2.0, 3.0, 0.7], &poles);
        assert_eq!(res[0], c64(2.0, 3.0));
        assert_eq!(res[1], c64(2.0, -3.0));
        assert_eq!(res[2], c64(0.7, 0.0));
    }

    #[test]
    fn stack_real_splits_rows() {
        let a = CMatrix::from_rows(&[vec![c64(1.0, 2.0), c64(3.0, -4.0)]]).unwrap();
        let r = stack_real(&a);
        assert_eq!(r.dims(), (2, 2));
        assert_eq!(r[(0, 0)], 1.0);
        assert_eq!(r[(1, 0)], 2.0);
        assert_eq!(r[(1, 1)], -4.0);
    }

    #[test]
    fn least_squares_on_real_basis_recovers_residues() {
        // Fit with the TRUE poles fixed: LS must return exact residues.
        let poles = vec![c64(-2.0, 10.0), c64(-2.0, -10.0)];
        let res_true = vec![c64(1.5, -0.5), c64(1.5, 0.5)];
        let s_points: Vec<Complex> = (1..=12).map(|i| s_at_hz(i as f64)).collect();
        let h: Vec<Complex> = s_points
            .iter()
            .map(|&s| eval_partial_fractions(s, &poles, &res_true, 0.25))
            .collect();

        let phi = complex_basis(&s_points, &poles);
        // Append the constant column for d.
        let ones = CMatrix::from_fn(s_points.len(), 1, |_, _| Complex::ONE);
        let a_c = phi.append_cols(&ones).unwrap();
        let a = stack_real(&a_c);
        let b_c = CMatrix::from_fn(s_points.len(), 1, |i, _| h[i]);
        let b = stack_real(&b_c);
        let x = mfti_numeric::lstsq(&a, &b, 1e-12).unwrap();
        assert!((x[(0, 0)] - 1.5).abs() < 1e-10);
        assert!((x[(1, 0)] + 0.5).abs() < 1e-10);
        assert!((x[(2, 0)] - 0.25).abs() < 1e-10);
    }
}
