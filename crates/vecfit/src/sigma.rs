//! The (relaxed) sigma iteration: one pole-relocation step.

use mfti_numeric::{eigenvalues, lstsq, CMatrix, Complex, RMatrix};

use crate::basis::{complex_basis, stack_real};
use crate::error::VecFitError;
use crate::poles::{pole_blocks, sanitize_poles, PoleBlock};

/// Outcome of one sigma step.
#[derive(Debug, Clone)]
pub(crate) struct SigmaOutcome {
    /// Relocated poles (conjugate-closed, pairs adjacent).
    pub new_poles: Vec<Complex>,
    /// The relaxation coefficient `d̃` (≈ 1 near convergence).
    pub d_tilde: f64,
    /// RMS residual of the linearized fit (diagnostic).
    pub rms_residual: f64,
}

/// Performs one relaxed-VF iteration: fit `p(s) − σ(s)·g(s) ≈ 0` with
/// `σ = d̃ + Σ c̃_j φ_j`, then relocate the poles to the zeros of σ.
///
/// # Errors
///
/// Returns [`VecFitError::IterationCollapsed`] when the relocated poles
/// come out non-finite, and propagates least-squares failures.
pub(crate) fn sigma_step(
    s_points: &[Complex],
    g: &[Complex],
    poles: &[Complex],
    flip_unstable: bool,
    iteration: usize,
) -> Result<SigmaOutcome, VecFitError> {
    let k = s_points.len();
    let n = poles.len();
    let phi = complex_basis(s_points, poles);

    // Columns: [ĉ (n) | d̂ (1) | c̃ (n) | d̃ (1)], rows: samples + relaxation.
    let mut a_c = CMatrix::zeros(k, 2 * n + 2);
    for i in 0..k {
        for j in 0..n {
            a_c[(i, j)] = phi[(i, j)];
            a_c[(i, n + 1 + j)] = -(g[i] * phi[(i, j)]);
        }
        a_c[(i, n)] = Complex::ONE;
        a_c[(i, 2 * n + 1)] = -g[i];
    }
    let a_real = stack_real(&a_c); // 2k × (2n+2)
    let mut b_real = RMatrix::zeros(2 * k + 1, 1);

    // Relaxation row: (‖g‖/k) · ( Σ_i Re σ(s_i) ) = ‖g‖ — excludes σ ≡ 0.
    let g_norm = g.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt().max(1e-300);
    let w = g_norm / k as f64;
    let mut relax = RMatrix::zeros(1, 2 * n + 2);
    for j in 0..n {
        let col_sum: f64 = (0..k).map(|i| phi[(i, j)].re).sum();
        relax[(0, n + 1 + j)] = w * col_sum;
    }
    relax[(0, 2 * n + 1)] = w * k as f64;
    b_real[(2 * k, 0)] = w * k as f64;

    let a_full = a_real.append_rows(&relax)?;
    let x = lstsq(&a_full, &b_real, 1e-12)?;

    let mut d_tilde = x[(2 * n + 1, 0)];
    // Guard against a collapsing σ (vectfit3's tolD clamp).
    let d_floor = 1e-8;
    if d_tilde.abs() < d_floor {
        d_tilde = if d_tilde < 0.0 { -d_floor } else { d_floor };
    }

    // RMS residual of the linear system (diagnostic only).
    let resid = &a_full.matmul(&x)? - &b_real;
    let rms_residual = resid.norm_fro() / (2 * k + 1) as f64;

    // Zeros of σ: eig(A − b c̃ᵀ / d̃) over the real block realization.
    let blocks = pole_blocks(poles);
    let mut a_mat = RMatrix::zeros(n, n);
    let mut b_vec = RMatrix::zeros(n, 1);
    let mut row = 0usize;
    let mut col_coeff = 0usize;
    let mut c_vec = RMatrix::zeros(1, n);
    for b in &blocks {
        match *b {
            PoleBlock::Real { idx } => {
                a_mat[(row, row)] = poles[idx].re;
                b_vec[(row, 0)] = 1.0;
                c_vec[(0, row)] = x[(n + 1 + col_coeff, 0)];
                row += 1;
                col_coeff += 1;
            }
            PoleBlock::Pair { idx } => {
                let sigma = poles[idx].re;
                let omega = poles[idx].im;
                a_mat[(row, row)] = sigma;
                a_mat[(row, row + 1)] = omega;
                a_mat[(row + 1, row)] = -omega;
                a_mat[(row + 1, row + 1)] = sigma;
                b_vec[(row, 0)] = 2.0;
                c_vec[(0, row)] = x[(n + 1 + col_coeff, 0)];
                c_vec[(0, row + 1)] = x[(n + 1 + col_coeff + 1, 0)];
                row += 2;
                col_coeff += 2;
            }
        }
    }
    let update = b_vec.matmul(&c_vec)?.scale(1.0 / d_tilde);
    let h = &a_mat - &update;
    let raw = eigenvalues(&h)?;
    if raw.iter().any(|z| !z.is_finite()) {
        return Err(VecFitError::IterationCollapsed { iteration });
    }
    let new_poles = sanitize_poles(&raw, flip_unstable);
    if new_poles.len() != n {
        // Pairing can shrink the set only if eigenvalues were lost.
        return Err(VecFitError::IterationCollapsed { iteration });
    }
    Ok(SigmaOutcome {
        new_poles,
        d_tilde,
        rms_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::eval_partial_fractions;
    use crate::poles::initial_poles;
    use mfti_numeric::c64;
    use mfti_statespace::s_at_hz;

    /// Reference SISO target: two conjugate pairs plus a constant.
    fn target(s: Complex) -> Complex {
        let poles = [
            c64(-30.0, 600.0),
            c64(-30.0, -600.0),
            c64(-100.0, 4000.0),
            c64(-100.0, -4000.0),
        ];
        let residues = [
            c64(40.0, -20.0),
            c64(40.0, 20.0),
            c64(500.0, 80.0),
            c64(500.0, -80.0),
        ];
        eval_partial_fractions(s, &poles, &residues, 0.3)
    }

    #[test]
    fn sigma_iteration_relocates_poles_toward_truth() {
        let freqs: Vec<f64> = (1..=60).map(|i| 2.0 * i as f64 * 20.0).collect();
        let s_points: Vec<Complex> = freqs.iter().map(|&f| s_at_hz(f)).collect();
        let g: Vec<Complex> = s_points.iter().map(|&s| target(s)).collect();

        let mut poles = initial_poles(4, 20.0, 2500.0).unwrap();
        let mut d_tilde = 0.0;
        for it in 0..12 {
            let out = sigma_step(&s_points, &g, &poles, true, it).unwrap();
            poles = out.new_poles;
            d_tilde = out.d_tilde;
        }
        // Near convergence σ → constant: d̃ ≈ 1.
        assert!((d_tilde - 1.0).abs() < 0.2, "d_tilde {d_tilde}");
        // The two target pole frequencies must be found.
        let mut freqs_found: Vec<f64> = poles.iter().filter(|p| p.im > 0.0).map(|p| p.im).collect();
        freqs_found.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            (freqs_found[0] - 600.0).abs() < 1.0,
            "found {freqs_found:?}"
        );
        assert!(
            (freqs_found[1] - 4000.0).abs() < 5.0,
            "found {freqs_found:?}"
        );
    }

    #[test]
    fn flip_unstable_keeps_poles_in_left_half_plane() {
        let freqs: Vec<f64> = (1..=40).map(|i| i as f64 * 25.0).collect();
        let s_points: Vec<Complex> = freqs.iter().map(|&f| s_at_hz(f)).collect();
        let g: Vec<Complex> = s_points.iter().map(|&s| target(s)).collect();
        let poles = initial_poles(6, 25.0, 1000.0).unwrap();
        let out = sigma_step(&s_points, &g, &poles, true, 0).unwrap();
        assert!(out.new_poles.iter().all(|p| p.re < 0.0));
        assert_eq!(out.new_poles.len(), 6);
    }
}
