//! Criterion bench: Loewner pencil assembly and incremental extension.
//!
//! Validates the complexity claim behind Algorithm 2: extending an
//! existing pencil by one batch is far cheaper than rebuilding it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mfti_core::{DirectionKind, LoewnerPencil, TangentialData, Weights};
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};

fn data_for(k: usize, ports: usize, t: usize) -> TangentialData {
    let sys = RandomSystemBuilder::new(40, ports, ports)
        .seed(1)
        .build()
        .expect("valid");
    let grid = FrequencyGrid::log_space(1e2, 1e5, k).expect("valid");
    let samples = SampleSet::from_system(&sys, &grid).expect("sampling");
    TangentialData::build(
        &samples,
        DirectionKind::RandomOrthonormal { seed: 2 },
        &Weights::Uniform(t),
    )
    .expect("data")
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("loewner_build");
    for &(k, t) in &[(16usize, 2usize), (32, 2), (32, 4), (64, 4)] {
        let data = data_for(k, 4, t);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_t{t}_K{}", data.pencil_order())),
            &data,
            |b, data| b.iter(|| LoewnerPencil::build(data).expect("build")),
        );
    }
    group.finish();
}

fn bench_extend_vs_rebuild(c: &mut Criterion) {
    let data = data_for(64, 4, 2);
    let pairs: Vec<usize> = (0..28).collect();
    let base = LoewnerPencil::build_subset(&data, &pairs).expect("subset");
    let mut group = c.benchmark_group("loewner_grow_by_4");
    group.bench_function("incremental_extend", |b| {
        b.iter(|| {
            let mut p = base.clone();
            p.extend(&data, &[28, 29, 30, 31]).expect("extend");
            p
        })
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let all: Vec<usize> = (0..32).collect();
            LoewnerPencil::build_subset(&data, &all).expect("build")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_extend_vs_rebuild);
criterion_main!(benches);
