//! Criterion bench: naive per-element GEMM vs the cache-blocked,
//! transpose-packed kernel layer in `mfti-numeric`.
//!
//! The acceptance bar for the kernel refactor is a ≥ 3× speedup on a
//! 256×256 complex product; smaller sizes are included to show where
//! blocking starts to pay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mfti_bench::random_complex;
use mfti_numeric::kernel;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_c64");
    for &n in &[64usize, 128, 256] {
        let a = random_complex(n, 0x5eed ^ n as u64);
        let b = random_complex(n, 0xbeef ^ n as u64);
        group.bench_with_input(BenchmarkId::new("naive", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| kernel::mul_naive(a, b).expect("gemm"))
        });
        group.bench_with_input(
            BenchmarkId::new("blocked", n),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| kernel::mul(a, b).expect("gemm")),
        );
    }
    group.finish();
}

fn bench_fused(c: &mut Criterion) {
    let n = 192;
    let a = random_complex(n, 11);
    let b = random_complex(n, 17);
    let mut group = c.benchmark_group("fused_c64_192");
    group.bench_function("adjoint_then_mul", |bench| {
        bench.iter(|| a.adjoint().matmul(&b).expect("gemm"))
    });
    group.bench_function("mul_hermitian_left", |bench| {
        bench.iter(|| kernel::mul_hermitian_left(&a, &b).expect("gemm"))
    });
    group.bench_function("transpose_then_mul", |bench| {
        bench.iter(|| a.matmul(&b.transpose()).expect("gemm"))
    });
    group.bench_function("mul_transpose_right", |bench| {
        bench.iter(|| kernel::mul_transpose_right(&a, &b).expect("gemm"))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_fused);
criterion_main!(benches);
