//! Criterion bench: recursive MFTI (Algorithm 2) vs one-shot MFTI
//! (Algorithm 1) on noisy data — the paper's complexity argument for
//! the recursion, plus the worst-first/best-first ablation.

use criterion::{criterion_group, criterion_main, Criterion};

use mfti_core::{Fitter, Mfti, OrderSelection, RecursiveMfti, SelectionOrder, Weights};
use mfti_sampling::generators::PdnBuilder;
use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};

fn workload() -> SampleSet {
    let pdn = PdnBuilder::new(6)
        .resonance_pairs(15)
        .band(1e7, 1e9)
        .seed(5)
        .build()
        .expect("valid");
    let grid = FrequencyGrid::linear(1e7, 1e9, 60).expect("valid");
    let clean = SampleSet::from_system(&pdn, &grid).expect("sampling");
    NoiseModel::additive_relative(1e-3).apply(&clean, 2)
}

fn bench_recursive(c: &mut Criterion) {
    let samples = workload();
    let selection = OrderSelection::NoiseFloor { factor: 5.0 };
    let mut group = c.benchmark_group("algorithm2");
    group.sample_size(10);
    group.bench_function("full_mfti_t2", |b| {
        let fitter = Mfti::new()
            .weights(Weights::Uniform(2))
            .order_selection(selection);
        b.iter(|| fitter.fit(&samples).expect("fit"))
    });
    group.bench_function("recursive_worst_first", |b| {
        let fitter = RecursiveMfti::new()
            .weights(Weights::Uniform(2))
            .order_selection(selection)
            .batch_pairs(5)
            .threshold(3e-3);
        b.iter(|| fitter.fit(&samples).expect("fit"))
    });
    group.bench_function("recursive_best_first", |b| {
        let fitter = RecursiveMfti::new()
            .weights(Weights::Uniform(2))
            .order_selection(selection)
            .batch_pairs(5)
            .threshold(3e-3)
            .selection_order(SelectionOrder::BestFirst);
        b.iter(|| fitter.fit(&samples).expect("fit"))
    });
    group.finish();
}

criterion_group!(benches, bench_recursive);
criterion_main!(benches);
