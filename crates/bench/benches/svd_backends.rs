//! Criterion bench: the two SVD backends (ablation from DESIGN.md §3).
//!
//! Golub–Kahan should win by a growing margin; Jacobi exists as an
//! independent cross-check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mfti_bench::random_complex;
use mfti_numeric::{Svd, SvdMethod};

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_backends");
    for &n in &[32usize, 64, 128] {
        let a = random_complex(n, n as u64);
        group.bench_with_input(BenchmarkId::new("golub_kahan", n), &a, |b, a| {
            b.iter(|| Svd::compute_with(a, SvdMethod::GolubKahan).expect("svd"))
        });
        group.bench_with_input(BenchmarkId::new("jacobi", n), &a, |b, a| {
            b.iter(|| Svd::compute_with(a, SvdMethod::Jacobi).expect("svd"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
