//! Criterion bench: the two SVD backends (ablation from DESIGN.md §3).
//!
//! Golub–Kahan should win by a growing margin; Jacobi exists as an
//! independent cross-check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mfti_numeric::{c64, CMatrix, Svd, SvdMethod};

fn random_complex(n: usize, mut seed: u64) -> CMatrix {
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    CMatrix::from_fn(n, n, |_, _| c64(next(), next()))
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_backends");
    for &n in &[32usize, 64, 128] {
        let a = random_complex(n, n as u64);
        group.bench_with_input(BenchmarkId::new("golub_kahan", n), &a, |b, a| {
            b.iter(|| Svd::compute_with(a, SvdMethod::GolubKahan).expect("svd"))
        });
        group.bench_with_input(BenchmarkId::new("jacobi", n), &a, |b, a| {
            b.iter(|| Svd::compute_with(a, SvdMethod::Jacobi).expect("svd"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
