//! Criterion bench: the three SVD backends (ablation from DESIGN.md §3).
//!
//! The panel-blocked backend should win by a growing margin above its
//! panel threshold; Golub–Kahan is the rank-1 reference it is validated
//! against and Jacobi exists as a structurally independent cross-check.
//! The `values_only` rows measure what order detection actually pays
//! (no factor accumulation, no rotation sweeps). The `update_border`
//! rows measure the streaming alternative: absorbing a 4-wide border
//! append into a retained `SvdUpdater` (a full-rank dense stream — the
//! updater's worst case; rank-deficient streams are cheaper still)
//! against the fresh `values_only` decomposition of the same grown
//! matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mfti_bench::random_complex;
use mfti_numeric::{Svd, SvdFactors, SvdMethod, SvdUpdater};

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_backends");
    for &n in &[32usize, 64, 128, 240] {
        let a = random_complex(n, n as u64);
        // Below its panel threshold (48 columns) the blocked backend
        // delegates to Golub–Kahan — a "blocked" row there would just
        // measure the delegate twice, so the blocked rows start at 64.
        if n >= 64 {
            group.bench_with_input(BenchmarkId::new("blocked", n), &a, |b, a| {
                b.iter(|| Svd::compute_with(a, SvdMethod::Blocked).expect("svd"))
            });
            group.bench_with_input(BenchmarkId::new("blocked_values_only", n), &a, |b, a| {
                b.iter(|| {
                    Svd::compute_factors(a, SvdMethod::Blocked, SvdFactors::ValuesOnly)
                        .expect("svd")
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("golub_kahan", n), &a, |b, a| {
            b.iter(|| Svd::compute_with(a, SvdMethod::GolubKahan).expect("svd"))
        });
        {
            let k = 4;
            let seed = a.submatrix(0, 0, n - k, n - k).expect("seed block");
            let updater = SvdUpdater::new(&seed).expect("seed svd");
            let cols = a.submatrix(0, n - k, n - k, k).expect("cols");
            let rows = a.submatrix(n - k, 0, k, n - k).expect("rows");
            let corner = a.submatrix(n - k, n - k, k, k).expect("corner");
            group.bench_with_input(BenchmarkId::new("update_border", n), &a, |b, _| {
                b.iter(|| {
                    let mut upd = updater.clone();
                    upd.append_border(&cols, &rows, &corner).expect("update");
                    upd.singular_values()[0]
                })
            });
        }
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("jacobi", n), &a, |b, a| {
                b.iter(|| Svd::compute_with(a, SvdMethod::Jacobi).expect("svd"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
