//! Criterion bench: end-to-end fits — MFTI vs VFTI vs vector fitting on
//! a medium multi-port workload (Table-1-shaped timing comparison at
//! Criterion-friendly scale).

use criterion::{criterion_group, criterion_main, Criterion};

use mfti_core::{Fitter, Mfti, OrderSelection, Vfti, Weights};
use mfti_sampling::generators::PdnBuilder;
use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};
use mfti_vecfit::VectorFitter;

fn workload() -> SampleSet {
    let pdn = PdnBuilder::new(6)
        .resonance_pairs(20)
        .band(1e7, 1e9)
        .seed(3)
        .build()
        .expect("valid");
    let grid = FrequencyGrid::linear(1e7, 1e9, 40).expect("valid");
    let clean = SampleSet::from_system(&pdn, &grid).expect("sampling");
    NoiseModel::additive_relative(1e-3).apply(&clean, 9)
}

fn bench_fitters(c: &mut Criterion) {
    let samples = workload();
    let mut group = c.benchmark_group("end_to_end_fit");
    group.sample_size(10);
    group.bench_function("mfti_t2", |b| {
        let fitter = Mfti::new()
            .weights(Weights::Uniform(2))
            .order_selection(OrderSelection::NoiseFloor { factor: 5.0 });
        b.iter(|| fitter.fit(&samples).expect("fit"))
    });
    group.bench_function("mfti_full", |b| {
        let fitter = Mfti::new().order_selection(OrderSelection::NoiseFloor { factor: 5.0 });
        b.iter(|| fitter.fit(&samples).expect("fit"))
    });
    group.bench_function("vfti", |b| {
        let fitter = Vfti::new().order_selection(OrderSelection::NoiseFloor { factor: 5.0 });
        b.iter(|| fitter.fit(&samples).expect("fit"))
    });
    group.bench_function("vecfit_n40_10it", |b| {
        let fitter = VectorFitter::new(40).iterations(10);
        b.iter(|| fitter.fit(&samples).expect("fit"))
    });
    group.finish();
}

criterion_group!(benches, bench_fitters);
criterion_main!(benches);
