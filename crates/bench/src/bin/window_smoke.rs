//! Deterministic-parallelism smoke check for the **sliding-window
//! session** hot path (`scripts/verify.sh`, alongside `session_smoke`).
//!
//! Streams a clean 2-port workload through a `FitSession` under
//! [`WindowPolicy::Sliding`] so that steady state exercises the whole
//! windowed machinery — verified `SvdUpdater::downdate_leading`
//! evictions, the residual probe gate, ping-pong shadow re-anchoring
//! and pencil retraction — and prints one FNV-1a digest over every
//! per-append singular value, the order trajectory, the windowed
//! provenance events (evictions, quarantines, re-anchor rungs) and the
//! final realized model bits. `verify.sh` runs this binary at 1 and N
//! workers and fails on any digest mismatch: the bounded-memory signal,
//! including every eviction and re-anchor decision, must be
//! bit-identical at every worker count (DESIGN.md §9).
//!
//! Usage: `MFTI_THREADS=k cargo run --release -p mfti-bench --bin
//! window_smoke` (prints `window digest: <hex>`).

use mfti_core::{FitSession, Mfti, Reanchor, WindowPolicy};
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};

fn main() {
    // Order-10 system, 2 ports, full weights (t = 2): every streamed
    // pair carries 4 rows+cols, so a capacity-24 window holds 6 pairs
    // and the 24-pair stream below forces ~18 pairs of evictions —
    // enough steady-state slides to exercise downdates, probe gates and
    // at least one shadow-swap/fresh re-anchor cycle.
    let sys = RandomSystemBuilder::new(10, 2, 2)
        .d_rank(2)
        .band(1e6, 1e9)
        .seed(0x51_1DE5)
        .build()
        .expect("seeded build");
    let grid = FrequencyGrid::log_space(1e6, 1e9, 48).expect("valid grid");
    let all = SampleSet::from_system(&sys, &grid).expect("sampling");

    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };

    // Band edges first (they set the normalization), then one pair per
    // append; digest the windowed signal after every single append.
    let mut session = FitSession::new(Mfti::new()).window(WindowPolicy::Sliding { capacity: 24 });
    let k = all.len();
    let mut batches = vec![all.subset(&[0, k - 1]).expect("edges")];
    let mut i = 1;
    while i + 1 < k - 1 {
        batches.push(all.subset(&[i, i + 1]).expect("pair"));
        i += 2;
    }
    let mut peak = 0;
    for batch in &batches {
        session.append(batch).expect("windowed append");
        peak = peak.max(session.pencil_order());
        for s in session.singular_values().expect("signal") {
            absorb(s.to_bits());
        }
    }
    assert!(
        peak <= 24,
        "window overflowed its capacity: peak pencil order {peak}"
    );

    // Provenance trajectory: the digest pins not just the numbers but
    // the *decisions* — which appends evicted, which quarantined, and
    // which re-anchor rung restored service.
    for diag in session.signal_trajectory() {
        absorb(diag.order as u64);
        absorb(diag.evicted_pairs as u64);
        absorb(u64::from(diag.refreshed));
        absorb(u64::from(diag.quarantined));
        absorb(match diag.reanchor {
            None => 0,
            Some(Reanchor::ShadowSwap) => 1,
            Some(Reanchor::FreshBlocked) => 2,
            Some(Reanchor::GolubKahan) => 3,
            Some(_) => 4,
        });
    }

    let outcome = session.realize().expect("realize");
    let model = outcome.model().as_real().expect("real realization path");
    let (e, a, b, c, d) = model.real_matrices();
    for m in [e, a, b, c, d] {
        for x in m.iter() {
            absorb(x.to_bits());
        }
    }
    println!(
        "window digest: {hash:016x} (K {}, order {}, evicted {} pairs)",
        session.pencil_order(),
        outcome.order(),
        session.evicted_pairs(),
    );
}
