//! Machine-readable timing summary of the end-to-end fitting pipeline.
//!
//! Runs the Table-1-shaped workload (noisy 6-port PDN) through **every
//! fitting engine behind the generic `Fitter` trait** (MFTI t = 2 and
//! full weights, VFTI, recursive MFTI, vector fitting), times the three
//! fit stages separately (pencil assembly / order-detection SVD /
//! realization) through the staged `FitSession`, benchmarks the batched
//! `Macromodel::eval_batch` sweep path against the per-frequency
//! evaluation loop on an order-48 descriptor model, and times the raw
//! 256×256 complex GEMM kernel pair. The `BENCH_*.json` summaries record
//! the perf trajectory of the repo per PR: end-to-end and sweep numbers
//! land in `BENCH_end_to_end.json`, the per-stage fit numbers in
//! `BENCH_fit_stages.json`.
//!
//! Timing and serialization both come from the criterion shim, so these
//! snapshots and `BENCH_JSON`-env bench runs share one schema:
//! `[{id, iterations, min_ns, median_ns, mean_ns}, …]`.
//!
//! It also times the **streaming append→order-detect path** at pencil
//! orders {16, 48, 96}: one sample-pair append followed by a
//! singular-value read, through the rank-revealing `SvdUpdater`
//! (`SessionSvd::Updating`, the default) and through the fresh
//! blocked-SVD oracle (`SessionSvd::Fresh`) — the per-measurement
//! serving cost the incremental updates make sublinear. Those rows land
//! in `BENCH_session_stream.json`.
//!
//! Usage: `cargo run --release -p mfti-bench --bin bench_json
//! [OUT.json] [STAGES.json] [SESSION.json]` (defaults:
//! `BENCH_end_to_end.json`, `BENCH_fit_stages.json` and
//! `BENCH_session_stream.json` in the current directory).

use criterion::{BenchResult, Criterion};

use mfti_bench::random_complex;
use mfti_core::{
    realify, FitSession, Fitter, LoewnerPencil, Mfti, OrderSelection, RecursiveMfti, SessionSvd,
    TangentialData, Vfti, Weights,
};
use mfti_numeric::{kernel, parallel, RMatrix, Svd, SvdFactors, SvdMethod};
use mfti_sampling::generators::{PdnBuilder, RandomSystemBuilder};
use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};
use mfti_statespace::{Macromodel, SweepStrategy, TransferFunction};
use mfti_vecfit::VectorFitter;

fn workload() -> SampleSet {
    let pdn = PdnBuilder::new(6)
        .resonance_pairs(20)
        .band(1e7, 1e9)
        .seed(3)
        .build()
        .expect("valid");
    let grid = FrequencyGrid::linear(1e7, 1e9, 40).expect("valid");
    let clean = SampleSet::from_system(&pdn, &grid).expect("sampling");
    NoiseModel::additive_relative(1e-3).apply(&clean, 9)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_end_to_end.json".to_string());
    let stages_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_fit_stages.json".to_string());
    let session_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_session_stream.json".to_string());

    let samples = workload();
    let selection = OrderSelection::NoiseFloor { factor: 5.0 };
    let mut c = Criterion::default();
    c.sample_size(10);

    // --- end-to-end fits, one generic loop over every engine ----------
    let engines: Vec<(&str, Box<dyn Fitter>)> = vec![
        (
            "mfti_t2",
            Box::new(
                Mfti::new()
                    .weights(Weights::Uniform(2))
                    .order_selection(selection),
            ),
        ),
        (
            "mfti_full",
            Box::new(Mfti::new().order_selection(selection)),
        ),
        ("vfti", Box::new(Vfti::new().order_selection(selection))),
        (
            "recursive_mfti_t2",
            Box::new(
                RecursiveMfti::new()
                    .weights(Weights::Uniform(2))
                    .order_selection(selection)
                    .batch_pairs(5)
                    .threshold(1e-2),
            ),
        ),
        (
            "vecfit_n40_10it",
            Box::new(VectorFitter::new(40).iterations(10)),
        ),
    ];
    for (label, engine) in &engines {
        c.bench_function(&format!("end_to_end/{label}"), |b| {
            b.iter(|| engine.fit(&samples).expect("fit"))
        });
    }

    // --- per-stage fit timings (the mfti_full workload, staged) --------
    // Where the fit's time goes: tangential data + pencil assembly
    // (GEMM cross products + row-parallel divisor planes), the
    // order-detection SVD (values-only blocked path), and realization
    // (realification + the two single-factor stacked SVDs + the Lemma
    // 3.4 projections). The stages are timed through the same structures
    // `FitSession` drives, so they add up to the one-shot fit.
    let config = Mfti::new().order_selection(selection);
    let stage_data = TangentialData::build(&samples, Default::default(), &Weights::Full)
        .expect("tangential data");
    let stage_pencil = LoewnerPencil::build(&stage_data).expect("pencil");
    let x0 = stage_pencil.default_x0();
    let mut stage_session = FitSession::new(config.clone());
    stage_session.append(&samples).expect("session append");
    stage_session
        .singular_values()
        .expect("order-detection svd");
    c.sample_size(10)
        .bench_function("fit_stage/assembly", |b| {
            b.iter(|| LoewnerPencil::build(&stage_data).expect("assembly"))
        })
        .bench_function("fit_stage/svd", |b| {
            // Complex detection baseline: what sessions still run, and
            // what the one-shot real path ran before realify-first.
            b.iter(|| {
                stage_pencil
                    .shifted_pencil_singular_values(x0)
                    .expect("svd")
            })
        })
        .bench_function("fit_stage/detect", |b| {
            // Real detection as the one-shot fit now runs it: the pinned
            // shift is real, so the realified shifted pencil is a real
            // K×K matrix on the packed real GEMM path. The realification
            // itself is hoisted out — the fit pays it once, shared with
            // the stacked projections.
            let real = realify(&stage_pencil, 1e-6).expect("realify");
            b.iter(|| Svd::singular_values_of(&real.shifted_pencil(x0.re)).expect("detect"))
        })
        .bench_function("fit_stage/realize", |b| {
            b.iter(|| stage_session.realize().expect("realize"))
        });

    // The pre-lazy-accumulation realize recipe, for the full vs
    // rank-limited stage comparison: realification, both stacked SVDs
    // with *full* factor accumulation, the complex truncation
    // round-trip, then the same projections. `fit_stage/realize` above
    // runs the two-phase path (bidiagonalize → accumulate only the
    // leading `order` columns) through the session.
    let stage_order = stage_session.realize().expect("realize").order();
    c.bench_function("fit_stage/realize_full", |b| {
        b.iter(|| {
            let real = realify(&stage_pencil, 1e-6).expect("realify");
            let row_stack = RMatrix::hstack(&[real.ll(), real.sll()]).expect("hstack");
            let col_stack = RMatrix::vstack(&[real.ll(), real.sll()]).expect("vstack");
            let svd_rows = Svd::compute_factors(&row_stack, SvdMethod::Blocked, SvdFactors::Left)
                .expect("row svd");
            let svd_cols = Svd::compute_factors(&col_stack, SvdMethod::Blocked, SvdFactors::Right)
                .expect("col svd");
            let (y_c, _, _) = svd_rows.truncate(stage_order);
            let (_, _, x_c) = svd_cols.truncate(stage_order);
            let y = y_c.real_part();
            let x = x_c.real_part();
            let llx = real.ll().matmul(&x).expect("llx");
            let sllx = real.sll().matmul(&x).expect("sllx");
            let e = (-&y.mul_hermitian_left(&llx).expect("e")).scale(1.0 / real.freq_scale());
            let a = -&y.mul_hermitian_left(&sllx).expect("a");
            let bb = y.mul_hermitian_left(real.v()).expect("b");
            let cc = real.w().matmul(&x).expect("c");
            (e, a, bb, cc)
        })
    });

    // --- streaming append → order-detect: updater vs fresh SVD ---------
    // Clean (numerically rank-deficient) 2-port streams: the serving
    // scenario the rank-revealing updates target. Each measured
    // iteration clones a preloaded session, appends the final sample
    // pair (thin pencil strips) and reads the refreshed singular
    // values — under the default incremental updater and under the
    // fresh blocked-SVD oracle. The preload already did two appends, so
    // the updater state is materialized and the measurement sees the
    // steady-state per-measurement cost.
    for pencil_order in [16usize, 48, 96] {
        let pairs = pencil_order / 4; // full weights on 2 ports: t = 2
        let stream_sys = RandomSystemBuilder::new(12, 2, 2)
            .d_rank(2)
            .band(1e6, 1e9)
            .seed(0x517ea)
            .build()
            .expect("valid");
        let stream_grid = FrequencyGrid::log_space(1e6, 1e9, 2 * pairs).expect("valid");
        let stream = SampleSet::from_system(&stream_sys, &stream_grid).expect("sampling");
        let k = stream.len();
        let head: Vec<usize> = (0..k - 4).collect();
        let warm: Vec<usize> = vec![k - 4, k - 3];
        let last = stream.subset(&[k - 2, k - 1]).expect("final pair");

        let preload = |strategy: SessionSvd| -> FitSession {
            let mut s = FitSession::new(Mfti::new()).svd(strategy);
            s.append(&stream.subset(&head).expect("head"))
                .expect("append");
            s.append(&stream.subset(&warm).expect("warm"))
                .expect("append");
            s
        };
        let updating = preload(SessionSvd::Updating);
        let fresh = preload(SessionSvd::Fresh(SvdMethod::Blocked));
        c.sample_size(20)
            .bench_function(&format!("session_stream/k{pencil_order}/updating"), |b| {
                b.iter(|| {
                    let mut s = updating.clone();
                    s.append(&last).expect("append");
                    s.singular_values().expect("signal")[0]
                })
            })
            .bench_function(&format!("session_stream/k{pencil_order}/fresh"), |b| {
                b.iter(|| {
                    let mut s = fresh.clone();
                    s.append(&last).expect("append");
                    s.singular_values().expect("signal")[0]
                })
            });

        if pencil_order == 96 {
            // Append → refreshed *model*, not just the refreshed signal:
            // the updating path realizes from the updater's retained
            // factors (no fresh K×K decomposition anywhere), the fresh
            // oracle re-decomposes twice (signal + stacked realize SVDs).
            c.bench_function("session_stream/k96/updating_realize", |b| {
                b.iter(|| {
                    let mut s = updating.clone();
                    s.append(&last).expect("append");
                    s.realize().expect("realize").order()
                })
            })
            .bench_function("session_stream/k96/fresh_realize", |b| {
                b.iter(|| {
                    let mut s = fresh.clone();
                    s.append(&last).expect("append");
                    s.realize().expect("realize").order()
                })
            });
            // The retained-factor realize stage in isolation (clean
            // rank-deficient stream — the regime where the retained
            // path applies; the noisy PDN stage workload above retains
            // near-full rank and deliberately falls back).
            let mut retained_session = updating.clone();
            retained_session.append(&last).expect("append");
            assert!(
                2 * retained_session.retained_rank().expect("updater")
                    <= retained_session.pencil_order(),
                "retained realize bench must exercise the retained path"
            );
            c.bench_function("fit_stage/realize_retained", |b| {
                b.iter(|| retained_session.realize().expect("realize"))
            });
        }
    }

    // --- batched sweep: algorithmic (Schur) × parallel multipliers -----
    // 100-point sweeps over 2 decades at orders {16, 48, 96}. Per order:
    // the per-frequency LU loop, the PR 2 Hessenberg-Givens kernel at
    // 1 thread, and the default batch path (Schur above the crossover)
    // at 1 thread and at all available threads — so BENCH_*.json records
    // the algorithmic and the parallel speed-up separately. Order 48 is
    // the acceptance workload (>= 2.5x over Hessenberg-Givens).
    let threads_all = parallel::available_threads();
    for order in [16usize, 48, 96] {
        let sweep_model = RandomSystemBuilder::new(order, 3, 3)
            .band(1e7, 1e9)
            .d_rank(3)
            .seed(0x40)
            .build()
            .expect("valid");
        let sweep_grid = FrequencyGrid::log_space(1e7, 1e9, 100).expect("valid");
        let sweep_pts: Vec<mfti_numeric::Complex> = sweep_grid
            .points()
            .iter()
            .map(|&f| mfti_statespace::s_at_hz(f))
            .collect();
        // Cross-check agreement (and serial/parallel bit-identity)
        // before timing anything.
        let batch = sweep_model.eval_batch(&sweep_pts).expect("batch eval");
        for (&s, h) in sweep_pts.iter().zip(&batch) {
            let direct = sweep_model.eval(s).expect("eval");
            let rel = (h - &direct).max_abs() / direct.max_abs();
            assert!(rel < 1e-11, "sweep deviates from LU path: {rel:.2e}");
        }
        let serial = sweep_model
            .eval_batch_with(&sweep_pts, SweepStrategy::Auto, 1)
            .expect("serial batch");
        for (h_par, h_ser) in batch.iter().zip(&serial) {
            assert!(
                h_par.approx_eq(h_ser, 0.0),
                "parallel sweep is not bit-identical to serial"
            );
        }

        c.sample_size(20)
            .bench_function(&format!("eval_sweep_n{order}_100pts/batch"), |b| {
                b.iter(|| sweep_model.eval_batch(&sweep_pts).expect("batch"))
            })
            .bench_function(&format!("eval_sweep_n{order}_100pts/batch_t1"), |b| {
                b.iter(|| {
                    sweep_model
                        .eval_batch_with(&sweep_pts, SweepStrategy::Auto, 1)
                        .expect("batch t1")
                })
            });
        if threads_all > 1 {
            c.bench_function(
                &format!("eval_sweep_n{order}_100pts/batch_t{threads_all}"),
                |b| {
                    b.iter(|| {
                        sweep_model
                            .eval_batch_with(&sweep_pts, SweepStrategy::Auto, threads_all)
                            .expect("batch tN")
                    })
                },
            );
        }
        c.bench_function(&format!("eval_sweep_n{order}_100pts/hessenberg_t1"), |b| {
            b.iter(|| {
                sweep_model
                    .eval_batch_with(&sweep_pts, SweepStrategy::Hessenberg, 1)
                    .expect("hessenberg")
            })
        });
        c.sample_size(10)
            .bench_function(&format!("eval_sweep_n{order}_100pts/loop"), |b| {
                b.iter(|| {
                    sweep_pts
                        .iter()
                        .map(|&s| sweep_model.eval(s).expect("eval"))
                        .collect::<Vec<_>>()
                })
            });
    }

    // --- raw GEMM kernels ----------------------------------------------
    let a = random_complex(256, 0x5eed);
    let b_mat = random_complex(256, 0xbeef);
    c.sample_size(20)
        .bench_function("gemm_c64_256/blocked", |b| {
            b.iter(|| kernel::mul(&a, &b_mat).expect("gemm"))
        });
    c.sample_size(10).bench_function("gemm_c64_256/naive", |b| {
        b.iter(|| kernel::mul_naive(&a, &b_mat).expect("gemm"))
    });

    let results = c.results();
    let median_of = |id: &str| {
        results
            .iter()
            .find(|r| r.id == id)
            .map_or(f64::NAN, |r| r.median_ns)
    };
    let speedup =
        median_of("eval_sweep_n48_100pts/loop") / median_of("eval_sweep_n48_100pts/batch");
    println!("eval_batch sweep speed-up over per-frequency loop: {speedup:.2}x");
    // Both sides pinned to 1 thread: this isolates the algorithmic
    // (Schur/modal) multiplier from the parallel one reported below.
    let schur_speedup = median_of("eval_sweep_n48_100pts/hessenberg_t1")
        / median_of("eval_sweep_n48_100pts/batch_t1");
    println!(
        "eval_batch speed-up over the Hessenberg-Givens kernel (1 thread): {schur_speedup:.2}x"
    );
    if threads_all > 1 {
        let par_speedup = median_of("eval_sweep_n48_100pts/batch_t1")
            / median_of(&format!("eval_sweep_n48_100pts/batch_t{threads_all}"));
        println!("parallel multiplier at {threads_all} threads: {par_speedup:.2}x");
    } else {
        println!("single hardware thread: parallel multiplier not measurable on this host");
    }

    let stage_ms = |stage: &str| median_of(&format!("fit_stage/{stage}")) / 1e6;
    println!(
        "fit stages (mfti_full): assembly {:.2} ms | detect (real) {:.2} ms | \
         realize {:.2} ms | end-to-end {:.1} ms",
        stage_ms("assembly"),
        stage_ms("detect"),
        stage_ms("realize"),
        median_of("end_to_end/mfti_full") / 1e6,
    );
    println!(
        "order detection (K={}): real {:.2} ms | complex {:.2} ms ({:.2}x)",
        stage_pencil.order(),
        stage_ms("detect"),
        stage_ms("svd"),
        stage_ms("svd") / stage_ms("detect"),
    );
    println!(
        "realize paths: full-accumulation {:.2} ms | rank-limited {:.2} ms ({:.2}x) | \
         retained-factor (clean K=96 stream) {:.3} ms",
        stage_ms("realize_full"),
        stage_ms("realize"),
        stage_ms("realize_full") / stage_ms("realize"),
        stage_ms("realize_retained"),
    );

    for pencil_order in [16usize, 48, 96] {
        let upd = median_of(&format!("session_stream/k{pencil_order}/updating"));
        let fre = median_of(&format!("session_stream/k{pencil_order}/fresh"));
        println!(
            "session append→order-detect at K={pencil_order}: updating {:.0} µs | \
             fresh {:.0} µs | speed-up {:.2}x",
            upd / 1e3,
            fre / 1e3,
            fre / upd,
        );
    }
    let upd_model = median_of("session_stream/k96/updating_realize");
    let fre_model = median_of("session_stream/k96/fresh_realize");
    println!(
        "session append→refreshed model at K=96: updating {:.0} µs | fresh {:.0} µs | \
         speed-up {:.2}x",
        upd_model / 1e3,
        fre_model / 1e3,
        fre_model / upd_model,
    );

    let (stage_results, rest): (Vec<BenchResult>, Vec<BenchResult>) = results
        .iter()
        .cloned()
        .partition(|r| r.id.starts_with("fit_stage/"));
    let (session_results, main_results): (Vec<BenchResult>, Vec<BenchResult>) = rest
        .into_iter()
        .partition(|r| r.id.starts_with("session_stream/"));
    criterion::write_json(&main_results, &out_path).expect("write timing summary");
    println!("wrote {out_path}");
    criterion::write_json(&stage_results, &stages_path).expect("write fit-stage summary");
    println!("wrote {stages_path}");
    criterion::write_json(&session_results, &session_path).expect("write session-stream summary");
    println!("wrote {session_path}");
}
