//! Machine-readable timing summary of the end-to-end fitting pipeline.
//!
//! Runs the Table-1-shaped workload (noisy 6-port PDN) through MFTI
//! (t = 2 and full weights), VFTI and vector fitting, plus the raw
//! 256×256 complex GEMM kernel pair, and writes a `BENCH_*.json`
//! summary so the perf trajectory of the repo is recorded per PR.
//!
//! Timing and serialization both come from the criterion shim, so this
//! snapshot and `BENCH_JSON`-env bench runs share one schema:
//! `[{id, iterations, min_ns, median_ns, mean_ns}, …]`.
//!
//! Usage: `cargo run --release -p mfti-bench --bin bench_json [OUT.json]`
//! (default output path: `BENCH_end_to_end.json` in the current
//! directory).

use criterion::Criterion;

use mfti_bench::random_complex;
use mfti_core::{Mfti, OrderSelection, Vfti, Weights};
use mfti_numeric::kernel;
use mfti_sampling::generators::PdnBuilder;
use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};
use mfti_vecfit::VectorFitter;

fn workload() -> SampleSet {
    let pdn = PdnBuilder::new(6)
        .resonance_pairs(20)
        .band(1e7, 1e9)
        .seed(3)
        .build()
        .expect("valid");
    let grid = FrequencyGrid::linear(1e7, 1e9, 40).expect("valid");
    let clean = SampleSet::from_system(&pdn, &grid).expect("sampling");
    NoiseModel::additive_relative(1e-3).apply(&clean, 9)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_end_to_end.json".to_string());

    let samples = workload();
    let selection = OrderSelection::NoiseFloor { factor: 5.0 };
    let mut c = Criterion::default();
    c.sample_size(10);

    let mfti_t2 = Mfti::new().weights(Weights::Uniform(2)).order_selection(selection);
    c.bench_function("end_to_end/mfti_t2", |b| {
        b.iter(|| mfti_t2.fit(&samples).expect("fit"))
    });
    let mfti_full = Mfti::new().order_selection(selection);
    c.bench_function("end_to_end/mfti_full", |b| {
        b.iter(|| mfti_full.fit(&samples).expect("fit"))
    });
    let vfti = Vfti::new().order_selection(selection);
    c.bench_function("end_to_end/vfti", |b| {
        b.iter(|| vfti.fit(&samples).expect("fit"))
    });
    let vf = VectorFitter::new(40).iterations(10);
    c.bench_function("end_to_end/vecfit_n40_10it", |b| {
        b.iter(|| vf.fit(&samples).expect("fit"))
    });

    let a = random_complex(256, 0x5eed);
    let b_mat = random_complex(256, 0xbeef);
    c.sample_size(20).bench_function("gemm_c64_256/blocked", |b| {
        b.iter(|| kernel::mul(&a, &b_mat).expect("gemm"))
    });
    c.sample_size(10).bench_function("gemm_c64_256/naive", |b| {
        b.iter(|| kernel::mul_naive(&a, &b_mat).expect("gemm"))
    });

    criterion::write_json(c.results(), &out_path).expect("write timing summary");
    println!("wrote {out_path}");
}
