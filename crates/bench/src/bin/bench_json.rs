//! Machine-readable timing summary of the end-to-end fitting pipeline.
//!
//! Runs the Table-1-shaped workload (noisy 6-port PDN) through **every
//! fitting engine behind the generic `Fitter` trait** (MFTI t = 2 and
//! full weights, VFTI, recursive MFTI, vector fitting), benchmarks the
//! batched `Macromodel::eval_batch` sweep path against the per-frequency
//! evaluation loop on an order-48 descriptor model, and times the raw
//! 256×256 complex GEMM kernel pair. The `BENCH_*.json` summary records
//! the perf trajectory of the repo per PR.
//!
//! Timing and serialization both come from the criterion shim, so this
//! snapshot and `BENCH_JSON`-env bench runs share one schema:
//! `[{id, iterations, min_ns, median_ns, mean_ns}, …]`.
//!
//! Usage: `cargo run --release -p mfti-bench --bin bench_json [OUT.json]`
//! (default output path: `BENCH_end_to_end.json` in the current
//! directory).

use criterion::Criterion;

use mfti_bench::random_complex;
use mfti_core::{Fitter, Mfti, OrderSelection, RecursiveMfti, Vfti, Weights};
use mfti_numeric::kernel;
use mfti_sampling::generators::{PdnBuilder, RandomSystemBuilder};
use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};
use mfti_statespace::{Macromodel, TransferFunction};
use mfti_vecfit::VectorFitter;

fn workload() -> SampleSet {
    let pdn = PdnBuilder::new(6)
        .resonance_pairs(20)
        .band(1e7, 1e9)
        .seed(3)
        .build()
        .expect("valid");
    let grid = FrequencyGrid::linear(1e7, 1e9, 40).expect("valid");
    let clean = SampleSet::from_system(&pdn, &grid).expect("sampling");
    NoiseModel::additive_relative(1e-3).apply(&clean, 9)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_end_to_end.json".to_string());

    let samples = workload();
    let selection = OrderSelection::NoiseFloor { factor: 5.0 };
    let mut c = Criterion::default();
    c.sample_size(10);

    // --- end-to-end fits, one generic loop over every engine ----------
    let engines: Vec<(&str, Box<dyn Fitter>)> = vec![
        (
            "mfti_t2",
            Box::new(
                Mfti::new()
                    .weights(Weights::Uniform(2))
                    .order_selection(selection),
            ),
        ),
        (
            "mfti_full",
            Box::new(Mfti::new().order_selection(selection)),
        ),
        ("vfti", Box::new(Vfti::new().order_selection(selection))),
        (
            "recursive_mfti_t2",
            Box::new(
                RecursiveMfti::new()
                    .weights(Weights::Uniform(2))
                    .order_selection(selection)
                    .batch_pairs(5)
                    .threshold(1e-2),
            ),
        ),
        (
            "vecfit_n40_10it",
            Box::new(VectorFitter::new(40).iterations(10)),
        ),
    ];
    for (label, engine) in &engines {
        c.bench_function(&format!("end_to_end/{label}"), |b| {
            b.iter(|| engine.fit(&samples).expect("fit"))
        });
    }

    // --- batched sweep vs per-frequency loop ---------------------------
    // Order-48 dense descriptor model, 100-point sweep over 2 decades:
    // the Macromodel::eval_batch acceptance workload (>= 2x speed-up).
    let sweep_model = RandomSystemBuilder::new(48, 3, 3)
        .band(1e7, 1e9)
        .d_rank(3)
        .seed(0x40)
        .build()
        .expect("valid");
    let sweep_grid = FrequencyGrid::log_space(1e7, 1e9, 100).expect("valid");
    let sweep_pts: Vec<mfti_numeric::Complex> = sweep_grid
        .points()
        .iter()
        .map(|&f| mfti_statespace::s_at_hz(f))
        .collect();
    // Cross-check agreement before timing anything.
    let batch = sweep_model.eval_batch(&sweep_pts).expect("batch eval");
    for (&s, h) in sweep_pts.iter().zip(&batch) {
        let direct = sweep_model.eval(s).expect("eval");
        let rel = (h - &direct).max_abs() / direct.max_abs();
        assert!(rel < 1e-11, "sweep deviates from LU path: {rel:.2e}");
    }
    c.sample_size(20)
        .bench_function("eval_sweep_n48_100pts/batch", |b| {
            b.iter(|| sweep_model.eval_batch(&sweep_pts).expect("batch"))
        });
    c.sample_size(10)
        .bench_function("eval_sweep_n48_100pts/loop", |b| {
            b.iter(|| {
                sweep_pts
                    .iter()
                    .map(|&s| sweep_model.eval(s).expect("eval"))
                    .collect::<Vec<_>>()
            })
        });

    // --- raw GEMM kernels ----------------------------------------------
    let a = random_complex(256, 0x5eed);
    let b_mat = random_complex(256, 0xbeef);
    c.sample_size(20)
        .bench_function("gemm_c64_256/blocked", |b| {
            b.iter(|| kernel::mul(&a, &b_mat).expect("gemm"))
        });
    c.sample_size(10).bench_function("gemm_c64_256/naive", |b| {
        b.iter(|| kernel::mul_naive(&a, &b_mat).expect("gemm"))
    });

    let results = c.results();
    let median_of = |id: &str| {
        results
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let speedup =
        median_of("eval_sweep_n48_100pts/loop") / median_of("eval_sweep_n48_100pts/batch");
    println!("eval_batch sweep speed-up over per-frequency loop: {speedup:.2}x");

    criterion::write_json(results, &out_path).expect("write timing summary");
    println!("wrote {out_path}");
}
