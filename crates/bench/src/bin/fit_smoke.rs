//! Deterministic-parallelism smoke check for the **fit-side** hot path
//! (`scripts/verify.sh`, alongside `sweep_smoke` for sweeps).
//!
//! Runs a full MFTI fit — tangential data → GEMM-structured Loewner
//! assembly (row-parallel) → order-detection SVD (panel-blocked, with
//! the trailing update fanned per column block) → realization — under
//! whatever `MFTI_THREADS` says, and prints one FNV-1a digest over
//! every result bit: the pencil, the order-detection singular values
//! and the realized model matrices. `verify.sh` runs this binary at 1
//! and N workers and fails on any digest mismatch: the static-chunk
//! executor guarantees the fit is bit-identical at every worker count.
//!
//! Usage: `MFTI_THREADS=k cargo run --release -p mfti-bench --bin
//! fit_smoke` (prints `fit digest: <hex>`).

use mfti_core::{FitSession, Mfti, OrderSelection};
use mfti_sampling::generators::PdnBuilder;
use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};

fn main() {
    // A trimmed Table-1 workload: 6 ports × 24 samples ⇒ K = 144
    // pencil. That crosses every parallel gate with real fan-out: the
    // Loewner row pass (gate at K ≥ 96) and the blocked SVD's trailing
    // update, whose first panel leaves 144 − 32 = 112 trailing columns
    // ⇒ 2 workers at 64 columns each (and 288×144 realization stacks
    // likewise). Small enough to keep verify runs quick.
    let pdn = PdnBuilder::new(6)
        .resonance_pairs(12)
        .band(1e7, 1e9)
        .seed(0x51107)
        .build()
        .expect("seeded build");
    let grid = FrequencyGrid::linear(1e7, 1e9, 24).expect("valid grid");
    let clean = SampleSet::from_system(&pdn, &grid).expect("sampling");
    let samples = NoiseModel::additive_relative(1e-3).apply(&clean, 7);

    let mut session =
        FitSession::new(Mfti::new().order_selection(OrderSelection::NoiseFloor { factor: 5.0 }));
    session.append(&samples).expect("append");
    let sv = session
        .singular_values()
        .expect("order-detection svd")
        .to_vec();
    let outcome = session.realize().expect("realize");
    let pencil = session.pencil().expect("pencil exists");

    // FNV-1a over the raw f64 bit patterns, in a fixed traversal order.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for m in [pencil.ll(), pencil.sll()] {
        for z in m.iter() {
            absorb(z.re.to_bits());
            absorb(z.im.to_bits());
        }
    }
    for s in &sv {
        absorb(s.to_bits());
    }
    let model = outcome.model().as_real().expect("real realization path");
    let (e, a, b, c, d) = model.real_matrices();
    for m in [e, a, b, c, d] {
        for x in m.iter() {
            absorb(x.to_bits());
        }
    }
    println!("fit digest: {hash:016x} (order {})", outcome.order());
}
