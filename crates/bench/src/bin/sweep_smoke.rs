//! Deterministic-parallelism smoke check for `scripts/verify.sh`.
//!
//! Evaluates a seeded order-40 descriptor model over a 90-point log
//! sweep through `Macromodel::eval_batch` — the path that honors the
//! `MFTI_THREADS` override — and prints one FNV-1a digest of every
//! result bit. `verify.sh` runs this binary under `MFTI_THREADS=1` and
//! `MFTI_THREADS=N` and fails on any mismatch: the static-chunk
//! parallel executor guarantees bit-identical sweeps at every worker
//! count.
//!
//! Usage: `MFTI_THREADS=k cargo run --release -p mfti-bench --bin
//! sweep_smoke` (prints `sweep digest: <hex>`).

use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::FrequencyGrid;
use mfti_statespace::Macromodel;

fn main() {
    let model = RandomSystemBuilder::new(40, 3, 3)
        .band(1e6, 1e8)
        .d_rank(3)
        .seed(0x5107)
        .build()
        .expect("seeded build");
    let grid = FrequencyGrid::log_space(1e6, 1e8, 90).expect("valid grid");
    let pts: Vec<mfti_numeric::Complex> = grid
        .points()
        .iter()
        .map(|&f| mfti_statespace::s_at_hz(f))
        .collect();
    let batch = model.eval_batch(&pts).expect("sweep");

    // FNV-1a over the raw f64 bit patterns, in point/row-major order.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for h in &batch {
        for z in h.iter() {
            absorb(z.re.to_bits());
            absorb(z.im.to_bits());
        }
    }
    println!("sweep digest: {hash:016x}");
}
