//! Regenerates **Fig. 2** of the paper: Bode magnitude (input 1 →
//! output 1) of the original Example 1 system and the models recovered
//! by MFTI and VFTI from the same 8 samples.
//!
//! Expected shape (paper): the MFTI model overlays the original across
//! 10 Hz – 100 kHz; the VFTI model deviates visibly (the 8 samples are
//! adequate for MFTI, inadequate for VFTI).
//!
//! Run: `cargo run --release -p mfti-bench --bin fig2_bode`

use mfti_bench::{example1_samples, example1_system, print_table};
use mfti_core::{metrics, Fitter, Mfti, Vfti};
use mfti_statespace::bode::{bode_series, log_grid, max_relative_deviation};

fn main() {
    let sys = example1_system();
    let samples = example1_samples(8);

    println!("Fig. 2 reproduction: Bode (1,1) from 8 samples\n");

    let mfti = Mfti::new().fit(&samples).expect("MFTI fit");
    let vfti = Vfti::new().fit(&samples).expect("VFTI fit");
    println!(
        "MFTI: pencil K={}, detected order {}",
        mfti.pencil_order().expect("loewner"),
        mfti.order()
    );
    println!(
        "VFTI: pencil K={}, detected order {}\n",
        vfti.pencil_order().expect("loewner"),
        vfti.order()
    );

    let grid = log_grid(1e1, 1e5, 41);
    let orig = bode_series(&sys, &grid, 0, 0).expect("original Bode");
    let b_mfti = bode_series(mfti.model(), &grid, 0, 0).expect("MFTI Bode");
    let b_vfti = bode_series(vfti.model(), &grid, 0, 0).expect("VFTI Bode");

    let rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            vec![
                format!("{f:.3e}"),
                format!("{:.4e}", orig[i].magnitude),
                format!("{:.4e}", b_mfti[i].magnitude),
                format!("{:.4e}", b_vfti[i].magnitude),
            ]
        })
        .collect();
    print_table(&["f (Hz)", "|H| original", "|H| MFTI", "|H| VFTI"], &rows);

    let dense = log_grid(1e1, 1e5, 201);
    let dev_mfti = max_relative_deviation(mfti.model(), &sys, &dense).expect("eval");
    let dev_vfti = max_relative_deviation(vfti.model(), &sys, &dense).expect("eval");
    println!("\nmax relative deviation over 201 log-spaced points:");
    println!("  MFTI : {dev_mfti:.3e}   (paper: overlays the original)");
    println!("  VFTI : {dev_vfti:.3e}   (paper: visible mismatch)");

    let err_mfti = metrics::err_rms_of(mfti.model(), &samples).expect("eval");
    let err_vfti = metrics::err_rms_of(vfti.model(), &samples).expect("eval");
    println!("\nERR on the 8 samples:  MFTI {err_mfti:.3e}   VFTI {err_vfti:.3e}");
}
