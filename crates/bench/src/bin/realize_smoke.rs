//! Deterministic-parallelism smoke check for the **realization stage**
//! (`scripts/verify.sh`, alongside `sweep_smoke`, `fit_smoke` and
//! `session_smoke`).
//!
//! Exercises every realization path under whatever `MFTI_THREADS` says
//! and prints one FNV-1a digest over the produced model bits:
//!
//! * the fresh **real** path — two-phase stacked SVDs with rank-limited
//!   WY slab accumulation (the fan-out whose 4-aligned column chunks
//!   must keep every slab column on the same micro-kernel lane);
//! * the fresh **complex** path — shared bidiagonalization between
//!   order detection and the Lemma 3.4 projection;
//! * the **session-retained** path — a streamed clean workload realized
//!   from the updater's retained thin factors.
//!
//! `verify.sh` runs this binary at 1 and N workers and fails on any
//! digest mismatch: realized models must be bit-identical at every
//! worker count.
//!
//! Usage: `MFTI_THREADS=k cargo run --release -p mfti-bench --bin
//! realize_smoke` (prints `realize digest: <hex>`).

use mfti_core::{FitSession, Fitter, Mfti, RealizationPath};
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};

fn main() {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };

    // Order-14 system, 2 ports, full weights: K = 96 — deep into the
    // panel path of the stacked (96×192) and shifted (96×96) SVDs.
    let sys = RandomSystemBuilder::new(14, 2, 2)
        .d_rank(2)
        .band(1e6, 1e9)
        .seed(0x4ea112e)
        .build()
        .expect("seeded build");
    let grid = FrequencyGrid::log_space(1e6, 1e9, 48).expect("valid grid");
    let all = SampleSet::from_system(&sys, &grid).expect("sampling");

    // Fresh one-shot fits: real and complex rank-limited paths.
    let real_fit = Mfti::new().fit(&all).expect("real fit");
    let model = real_fit.model().as_real().expect("real path");
    let (e, a, b, c, d) = model.real_matrices();
    for m in [e, a, b, c, d] {
        for x in m.iter() {
            absorb(x.to_bits());
        }
    }
    let cplx_fit = Mfti::new()
        .realization(RealizationPath::Complex)
        .fit(&all)
        .expect("complex fit");
    let cmodel = cplx_fit.model().as_complex().expect("complex path");
    for m in [cmodel.e(), cmodel.a(), cmodel.b(), cmodel.c(), cmodel.d()] {
        for x in m.as_slice() {
            absorb(x.re.to_bits());
            absorb(x.im.to_bits());
        }
    }

    // Session-retained path: stream the same samples pairwise so the
    // updater materializes, then realize from its retained factors.
    let mut session = FitSession::new(Mfti::new());
    let k = all.len();
    session
        .append(&all.subset(&[0, k - 1]).expect("edges"))
        .expect("append");
    let mut i = 1;
    while i + 1 < k - 1 {
        session
            .append(&all.subset(&[i, i + 1]).expect("pair"))
            .expect("append");
        i += 2;
    }
    let retained = session.retained_rank().expect("streamed updater");
    assert!(
        2 * retained <= session.pencil_order(),
        "stream retained too much rank for the retained realize path"
    );
    let streamed = session.realize().expect("session realize");
    let smodel = streamed.model().as_real().expect("real path");
    let (e, a, b, c, d) = smodel.real_matrices();
    for m in [e, a, b, c, d] {
        for x in m.iter() {
            absorb(x.to_bits());
        }
    }

    println!(
        "realize digest: {hash:016x} (K {}, fresh order {}, streamed order {}, retained {})",
        session.pencil_order(),
        real_fit.order(),
        streamed.order(),
        retained,
    );
}
