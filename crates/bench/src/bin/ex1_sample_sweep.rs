//! Regenerates the **Example 1 in-text claim**: VFTI needs about 30×
//! the samples of MFTI to recover the order-150 / 30-port system
//! (paper: 180 matrix samples vs 6), plus the Theorem 3.5 bounds.
//!
//! Run: `cargo run --release -p mfti-bench --bin ex1_sample_sweep`

use mfti_bench::{example1_samples, example1_system, print_table};
use mfti_core::{metrics, minimal_samples, vfti_minimal_samples, Fitter, Mfti, Vfti};
use mfti_sampling::{FrequencyGrid, SampleSet};

const RECOVERY_ERR: f64 = 1e-6;

fn main() {
    println!("Example 1 sample sweep: when does each method recover the system?");
    println!("(recovery = ERR < 1e-6 on a dense off-sample validation grid)\n");
    // Validation data: the true system on a dense grid the fits never see.
    let validation = SampleSet::from_system(
        &example1_system(),
        &FrequencyGrid::log_space(1.5e1, 0.9e5, 48).expect("valid grid"),
    )
    .expect("sampling");
    let bounds = minimal_samples(150, 150, 30, 30, 30);
    println!(
        "Theorem 3.5 bounds (matrix samples): lower {}, empirical {}, upper {}",
        bounds.lower, bounds.empirical, bounds.upper
    );
    println!(
        "VFTI minimum (order + rank(D) vector samples): {}\n",
        vfti_minimal_samples(150, 30)
    );

    // --- MFTI sweep ---------------------------------------------------
    let mut rows = Vec::new();
    let mut mfti_min = None;
    for k in [2usize, 4, 6, 8, 10] {
        let samples = example1_samples(k);
        let outcome = Mfti::new().fit(&samples);
        let (err, order) = match &outcome {
            Ok(fit) => (
                metrics::err_rms_of(fit.model(), &validation).unwrap_or(f64::INFINITY),
                fit.order().to_string(),
            ),
            Err(e) => {
                println!("MFTI k={k}: {e}");
                (f64::INFINITY, "-".to_string())
            }
        };
        let recovered = err < RECOVERY_ERR;
        if recovered && mfti_min.is_none() {
            mfti_min = Some(k);
        }
        rows.push(vec![
            format!("{k}"),
            order,
            format!("{err:.3e}"),
            if recovered { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("MFTI (t = 30):");
    print_table(&["k samples", "order", "ERR", "recovered"], &rows);

    // --- VFTI sweep ----------------------------------------------------
    let mut rows = Vec::new();
    let mut vfti_min = None;
    for k in [60usize, 120, 160, 176, 178, 180, 184, 200] {
        let samples = example1_samples(k);
        let outcome = Vfti::new().fit(&samples);
        let (err, order) = match &outcome {
            Ok(fit) => (
                metrics::err_rms_of(fit.model(), &validation).unwrap_or(f64::INFINITY),
                fit.order().to_string(),
            ),
            Err(e) => {
                println!("VFTI k={k}: {e}");
                (f64::INFINITY, "-".to_string())
            }
        };
        let recovered = err < RECOVERY_ERR;
        if recovered && vfti_min.is_none() {
            vfti_min = Some(k);
        }
        rows.push(vec![
            format!("{k}"),
            order,
            format!("{err:.3e}"),
            if recovered { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("\nVFTI (t = 1):");
    print_table(&["k samples", "order", "ERR", "recovered"], &rows);

    match (mfti_min, vfti_min) {
        (Some(m), Some(v)) => println!(
            "\nMFTI recovers with {m} samples, VFTI with {v}: ratio {:.0}x \
             (paper: 6 vs 180 ⇒ 30x)",
            v as f64 / m as f64
        ),
        _ => println!("\nrecovery threshold not reached in the sweep range"),
    }
}
