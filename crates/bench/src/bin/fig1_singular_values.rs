//! Regenerates **Fig. 1** of the paper: singular-value patterns of `𝕃`,
//! `σ𝕃` and `x𝕃 − σ𝕃` for VFTI vs MFTI on Example 1 (order-150,
//! 30-port system, 8 sampled scattering matrices).
//!
//! Expected shape (paper): VFTI's 8-value spectra show **no drop**;
//! MFTI's spectra drop sharply at 150 (`𝕃`) and 180 (`σ𝕃`,
//! `x𝕃 − σ𝕃`), confirming Theorem 3.5.
//!
//! Run: `cargo run --release -p mfti-bench --bin fig1_singular_values`

use mfti_bench::{example1_samples, largest_drop, print_table};
use mfti_core::{DirectionKind, LoewnerPencil, TangentialData, Weights};

fn spectra(data: &TangentialData) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let pencil = LoewnerPencil::build(data).expect("pencil builds");
    let x0 = pencil.default_x0();
    (
        pencil.ll_singular_values().expect("svd"),
        pencil.sll_singular_values().expect("svd"),
        pencil.shifted_pencil_singular_values(x0).expect("svd"),
    )
}

fn main() {
    let samples = example1_samples(8);
    println!("Fig. 1 reproduction: order-150 / 30-port system, 8 samples\n");

    // --- VFTI: t_i = 1, cyclic vector directions --------------------
    let vfti_data = TangentialData::build(
        &samples,
        DirectionKind::CyclicIdentity,
        &Weights::Uniform(1),
    )
    .expect("valid data");
    let (v_ll, v_sll, v_sh) = spectra(&vfti_data);

    // --- MFTI: t_i = 30 (full), random orthonormal directions -------
    let mfti_data = TangentialData::build(
        &samples,
        DirectionKind::RandomOrthonormal { seed: 7 },
        &Weights::Uniform(30),
    )
    .expect("valid data");
    let (m_ll, m_sll, m_sh) = spectra(&mfti_data);

    println!("VFTI pencil order K = {}", v_ll.len());
    println!("MFTI pencil order K = {}\n", m_ll.len());

    println!("VFTI singular values (all {}):", v_ll.len());
    let rows: Vec<Vec<String>> = (0..v_ll.len())
        .map(|i| {
            vec![
                format!("{}", i + 1),
                format!("{:.4e}", v_ll[i]),
                format!("{:.4e}", v_sll[i]),
                format!("{:.4e}", v_sh[i]),
            ]
        })
        .collect();
    print_table(&["#", "sv(L)", "sv(sL)", "sv(xL-sL)"], &rows);

    let (vd_i, vd_r) = largest_drop(&v_sh);
    println!(
        "\nVFTI largest drop in sv(xL-sL): after value {vd_i} (ratio {vd_r:.2e}) — \
         no usable drop expected\n"
    );

    println!("MFTI singular values (selected indices around the drops):");
    let interesting: Vec<usize> = (0..m_ll.len())
        .filter(|&i| {
            i < 4 || (144..156).contains(&i) || (174..186).contains(&i) || i >= m_ll.len() - 2
        })
        .collect();
    let rows: Vec<Vec<String>> = interesting
        .iter()
        .map(|&i| {
            vec![
                format!("{}", i + 1),
                format!("{:.4e}", m_ll[i]),
                format!("{:.4e}", m_sll[i]),
                format!("{:.4e}", m_sh[i]),
            ]
        })
        .collect();
    print_table(&["#", "sv(L)", "sv(sL)", "sv(xL-sL)"], &rows);

    let (ll_i, ll_r) = largest_drop(&m_ll);
    let (sll_i, sll_r) = largest_drop(&m_sll);
    let (sh_i, sh_r) = largest_drop(&m_sh);
    println!("\nMFTI spectral drops:");
    println!("  sv(L)     drops after {ll_i}  (ratio {ll_r:.2e})   — paper: 150");
    println!("  sv(sL)    drops after {sll_i}  (ratio {sll_r:.2e})   — paper: 180");
    println!("  sv(xL-sL) drops after {sh_i}  (ratio {sh_r:.2e})   — paper: 180");
    println!(
        "\nTheorem 3.5 check: order(Γ)=150, rank(D)=30 ⇒ ranks 150 / 180 / 180; \
         k_min = (150+30)/30 = 6 samples."
    );

    // Full series as CSV on demand for external plotting.
    if std::env::args().any(|a| a == "--csv") {
        println!("\nindex,vfti_ll,vfti_sll,vfti_sh,mfti_ll,mfti_sll,mfti_sh");
        for i in 0..m_ll.len() {
            let v = |s: &[f64]| s.get(i).map(|x| format!("{x:.6e}")).unwrap_or_default();
            println!(
                "{},{},{},{},{},{},{}",
                i + 1,
                v(&v_ll),
                v(&v_sll),
                v(&v_sh),
                v(&m_ll),
                v(&m_sll),
                v(&m_sh)
            );
        }
    }
}
