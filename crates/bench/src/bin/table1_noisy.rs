//! Regenerates **Table 1** of the paper: interpolation of noisy 14-port
//! PDN data (synthetic stand-in; DESIGN.md §4), Tests 1 and 2.
//!
//! Rows: VF (10 iterations) with n = 140 and n = 280, VFTI, two MFTI-1
//! configurations, and the recursive MFTI-2. Columns: reduced order,
//! wall-clock time, relative error `ERR` (against the measured/noisy
//! data, as in the paper).
//!
//! Following the paper, the two MFTI-1 rows mean different things per
//! test: in Test 1 they are the uniform block widths `t_i = 2` and
//! `t_i = 3`; in Test 2 they are two *weighting choices* (`t_i ≥ t_j`
//! for `i < j`, i.e. more columns spent on the sparsely sampled low
//! band): weight 1 = 3/2, weight 2 = 4/3.
//!
//! Expected shape (paper): MFTI ≫ VFTI ≥ VF(140) in accuracy; VF(280)
//! beats VFTI but not MFTI; accuracy grows with `t_i`/weighting; MFTI-2
//! reaches MFTI-1-like accuracy using a subset of the data; everything
//! degrades on the ill-conditioned Test 2 grid, MFTI the least.
//!
//! Run: `cargo run --release -p mfti-bench --bin table1_noisy`

use mfti_bench::{print_table, secs, table1_samples, PDN_NOISE_SIGMA};
use mfti_core::{metrics, Fitter, Mfti, OrderSelection, RecursiveMfti, Vfti, Weights};
use mfti_sampling::SampleSet;
use mfti_vecfit::VectorFitter;

struct Row {
    name: String,
    order: usize,
    time: std::time::Duration,
    err: f64,
}

/// Per-pair weights giving the sparse low-frequency quarter of the
/// samples `t_low` columns and the rest `t_high` (paper Test 2:
/// "t_i ≥ t_j for i < j").
fn low_band_weights(samples: &SampleSet, t_low: usize, t_high: usize) -> Weights {
    let pairs = samples.len() / 2;
    Weights::PerPair(
        (0..pairs)
            .map(|j| if j < pairs / 4 { t_low } else { t_high })
            .collect(),
    )
}

fn run_test(test: usize, noisy: &SampleSet) -> Vec<Row> {
    let selection = OrderSelection::NoiseFloor { factor: 10.0 };

    // Every Table 1 row is a configured engine behind the same trait
    // object; the measurement loop below is fully method-agnostic.
    let mut engines: Vec<(String, Box<dyn Fitter>)> = vec![
        (
            "VF (10 it.) n=140".to_string(),
            Box::new(VectorFitter::new(140).iterations(10)),
        ),
        (
            "VF (10 it.) n=280".to_string(),
            Box::new(VectorFitter::new(280).iterations(10)),
        ),
        (
            "VFTI".to_string(),
            Box::new(Vfti::new().order_selection(selection)),
        ),
    ];
    // MFTI-1: uniform t (Test 1) or low-band weighting (Test 2).
    let configs: Vec<(String, Weights)> = if test == 1 {
        vec![
            ("MFTI-1 t=2".to_string(), Weights::Uniform(2)),
            ("MFTI-1 t=3".to_string(), Weights::Uniform(3)),
        ]
    } else {
        vec![
            ("MFTI-1 weight 1".to_string(), low_band_weights(noisy, 3, 2)),
            ("MFTI-1 weight 2".to_string(), low_band_weights(noisy, 4, 3)),
        ]
    };
    for (name, weights) in configs {
        engines.push((
            name,
            Box::new(Mfti::new().weights(weights).order_selection(selection)),
        ));
    }
    engines.push((
        "MFTI-2 (recursive)".to_string(),
        Box::new(
            RecursiveMfti::new()
                .weights(Weights::Uniform(2))
                .order_selection(selection)
                .batch_pairs(5)
                .threshold(10.0 * PDN_NOISE_SIGMA),
        ),
    ));

    let mut rows = Vec::new();
    for (name, engine) in &engines {
        match engine.fit(noisy) {
            Ok(outcome) => rows.push(Row {
                name: name.clone(),
                order: outcome.order(),
                time: outcome.elapsed(),
                err: metrics::err_rms_of(outcome.model(), noisy).unwrap_or(f64::INFINITY),
            }),
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    }
    rows
}

fn main() {
    println!("Table 1 reproduction: noisy 14-port PDN, 100 samples\n");
    for test in [1usize, 2] {
        let (_, noisy) = table1_samples(test);
        println!(
            "Test {test} ({}):",
            if test == 1 {
                "uniform samples"
            } else {
                "samples concentrated in the high band"
            }
        );
        let rows = run_test(test, &noisy);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.order.to_string(),
                    secs(r.time),
                    format!("{:.2e}", r.err),
                ]
            })
            .collect();
        print_table(&["algorithm", "reduced order", "time(s)", "ERR"], &table);
        println!();
    }
    println!(
        "Paper reference (Test 1): VF n=140 3.72e-1 | VF n=280 7.33e-2 | \
         VFTI 1.32e-1 | MFTI t=2 9.60e-3 | MFTI t=3 1.70e-3 | MFTI-2 9.91e-3"
    );
    println!(
        "Paper reference (Test 2): VF n=140 4.89e-1 | VF n=280 9.11e-2 | \
         VFTI 4.16e-1 | MFTI w1 3.14e-2 | MFTI w2 4.20e-3 | MFTI-2 2.51e-2"
    );
}
