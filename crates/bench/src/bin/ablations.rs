//! Design-choice ablations (DESIGN.md §3, "Ablations (ours)").
//!
//! Sweeps the knobs that the paper leaves implicit — direction
//! generation, realization arithmetic, SVD backend and the recursive
//! admission order — on a fixed noisy PDN workload, reporting accuracy
//! and wall-clock cost for each choice.
//!
//! Run: `cargo run --release -p mfti-bench --bin ablations`

use std::time::Instant;

use mfti_bench::{print_table, secs, table1_samples};
use mfti_core::{
    metrics, DirectionKind, Fitter, Mfti, OrderSelection, RealizationPath, RecursiveMfti,
    SelectionOrder, Weights,
};
use mfti_numeric::{c64, CMatrix, Svd, SvdMethod};

fn main() {
    let (_, noisy) = table1_samples(1);
    let selection = OrderSelection::NoiseFloor { factor: 10.0 };

    // --- Direction kind x realization path ------------------------------
    println!("MFTI t=2 on the Table-1 workload: directions x realization\n");
    let mut rows = Vec::new();
    for (dname, dirs) in [
        (
            "random orthonormal",
            DirectionKind::RandomOrthonormal { seed: 7 },
        ),
        ("cyclic identity", DirectionKind::CyclicIdentity),
    ] {
        for (pname, path) in [
            ("real (Lemma 3.2)", RealizationPath::Real),
            ("complex (Lemma 3.4)", RealizationPath::Complex),
        ] {
            let t0 = Instant::now();
            match Mfti::new()
                .weights(Weights::Uniform(2))
                .directions(dirs)
                .realization(path)
                .order_selection(selection)
                .fit(&noisy)
            {
                Ok(fit) => {
                    let err = metrics::err_rms_of(fit.model(), &noisy).unwrap_or(f64::INFINITY);
                    rows.push(vec![
                        dname.to_string(),
                        pname.to_string(),
                        fit.order().to_string(),
                        secs(t0.elapsed()),
                        format!("{err:.2e}"),
                    ]);
                }
                Err(e) => eprintln!("{dname}/{pname} failed: {e}"),
            }
        }
    }
    print_table(
        &["directions", "realization", "order", "time(s)", "ERR"],
        &rows,
    );

    // --- Recursive admission order ---------------------------------------
    println!("\nAlgorithm 2 admission order (t=2, batch 5):\n");
    let mut rows = Vec::new();
    for (name, order) in [
        ("worst-first (default)", SelectionOrder::WorstFirst),
        (
            "best-first (literal pseudo-code)",
            SelectionOrder::BestFirst,
        ),
    ] {
        let t0 = Instant::now();
        match RecursiveMfti::new()
            .weights(Weights::Uniform(2))
            .order_selection(selection)
            .batch_pairs(5)
            .threshold(1e-3)
            .selection_order(order)
            .fit(&noisy)
        {
            Ok(fit) => {
                let err = metrics::err_rms_of(fit.model(), &noisy).unwrap_or(f64::INFINITY);
                let used = fit.used_pairs().expect("recursive diagnostics");
                let rounds = fit.rounds().expect("recursive diagnostics");
                rows.push(vec![
                    name.to_string(),
                    format!("{}/{}", used.len(), noisy.len() / 2),
                    rounds.len().to_string(),
                    secs(t0.elapsed()),
                    format!("{err:.2e}"),
                ]);
            }
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    }
    print_table(
        &["admission", "pairs used", "rounds", "time(s)", "ERR"],
        &rows,
    );

    // --- SVD backend agreement on the actual pencil ----------------------
    println!("\nSVD backends on a 120x120 complex probe (accuracy cross-check):\n");
    let probe = CMatrix::from_fn(120, 120, |i, j| {
        let x = ((i * 37 + j * 13) % 101) as f64 / 101.0 - 0.5;
        let y = ((i * 17 + j * 71) % 97) as f64 / 97.0 - 0.5;
        c64(x, y)
    });
    let t0 = Instant::now();
    let gk = Svd::compute_with(&probe, SvdMethod::GolubKahan).expect("gk svd");
    let t_gk = t0.elapsed();
    let t0 = Instant::now();
    let ja = Svd::compute_with(&probe, SvdMethod::Jacobi).expect("jacobi svd");
    let t_ja = t0.elapsed();
    let max_dev = gk
        .singular_values()
        .iter()
        .zip(ja.singular_values())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / gk.singular_values()[0];
    println!("golub-kahan: {}   jacobi: {}", secs(t_gk), secs(t_ja));
    println!("max relative singular-value disagreement: {max_dev:.2e}");
}
