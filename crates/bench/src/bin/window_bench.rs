//! Steady-state cost profile of the **bounded-memory sliding window**
//! (`BENCH_session_window.json`).
//!
//! Streams `10 · W` one-pair appends through a `FitSession` under
//! `WindowPolicy::Sliding { capacity: W }` for W ∈ {48, 96} and times
//! every append individually. Once the window fills, each append is a
//! retract-then-extend pencil slide plus a verified
//! `SvdUpdater::downdate_leading` / border update with the probe gate
//! and shadow bookkeeping — all history-independent work, so the
//! per-append cost must be **flat**: the median of the last decile of
//! steady-state appends may not exceed 1.5× the median of the first
//! decile. A superlinear leak anywhere in the eviction path (pencil
//! growth, trajectory replay, shadow re-arm churn) breaks that ratio
//! and this binary exits nonzero (DESIGN.md §9).
//!
//! Also asserts the bounded-memory contract directly: the peak pencil
//! order across the whole stream never exceeds the capacity.
//!
//! Usage: `cargo run --release -p mfti-bench --bin window_bench
//! [OUT.json]` (default: `BENCH_session_window.json` in the current
//! directory; schema shared with the other `BENCH_*.json` snapshots).

use std::time::Instant;

use criterion::BenchResult;
use mfti_core::{FitSession, Mfti, WindowPolicy};
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};

/// (min, median, mean) over a slice of per-append nanosecond timings.
fn stats(ns: &[f64]) -> (f64, f64, f64) {
    let mut sorted = ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    (sorted[0], median, mean)
}

fn row(id: String, ns: &[f64]) -> BenchResult {
    let (min_ns, median_ns, mean_ns) = stats(ns);
    BenchResult {
        id,
        iterations: ns.len() as u64,
        min_ns,
        median_ns,
        mean_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_session_window.json".to_string());

    let mut results: Vec<BenchResult> = Vec::new();
    for capacity in [48usize, 96] {
        // Clean (numerically rank-deficient) 2-port stream, full
        // weights (t = 2): one pair per append carries 4 rows+cols, so
        // the window holds capacity/4 pairs and every steady-state
        // append evicts exactly one pair.
        let appends = 10 * capacity;
        let sys = RandomSystemBuilder::new(10, 2, 2)
            .d_rank(2)
            .band(1e6, 1e9)
            .seed(0x77_1ADE + capacity as u64)
            .build()
            .expect("seeded build");
        let grid = FrequencyGrid::log_space(1e6, 1e9, 2 * appends).expect("valid grid");
        let stream = SampleSet::from_system(&sys, &grid).expect("sampling");

        let mut session = FitSession::new(Mfti::new()).window(WindowPolicy::Sliding { capacity });
        let mut timings_ns = Vec::with_capacity(appends);
        let mut peak = 0;
        for p in 0..appends {
            let batch = stream.subset(&[2 * p, 2 * p + 1]).expect("pair");
            let t0 = Instant::now();
            session.append(&batch).expect("windowed append");
            timings_ns.push(t0.elapsed().as_nanos() as f64);
            peak = peak.max(session.pencil_order());
        }
        assert!(
            peak <= capacity,
            "W={capacity}: peak pencil order {peak} exceeds the window capacity"
        );
        assert_eq!(
            session.pencil_order() + 4 * session.evicted_pairs(),
            4 * appends,
            "W={capacity}: eviction accounting does not cover the stream"
        );
        session.realize().expect("windowed realize");

        // Steady state begins once the window has filled and slid a few
        // times; everything before that is warmup (growth-phase appends
        // are cheaper, which would flatter the ratio).
        let warmup = capacity / 4 + 16;
        let steady = &timings_ns[warmup..];
        let decile = steady.len() / 10;
        let first = &steady[..decile];
        let last = &steady[steady.len() - decile..];
        let (_, first_median, _) = stats(first);
        let (_, last_median, _) = stats(last);
        let ratio = last_median / first_median;
        println!(
            "window W={capacity}: {appends} appends, steady-state first-decile median \
             {:.0} µs | last-decile median {:.0} µs | ratio {ratio:.2}x | peak K {peak}",
            first_median / 1e3,
            last_median / 1e3,
        );
        results.push(row(format!("session_window/w{capacity}/append"), steady));
        results.push(row(
            format!("session_window/w{capacity}/first_decile"),
            first,
        ));
        results.push(row(format!("session_window/w{capacity}/last_decile"), last));
        assert!(
            ratio <= 1.5,
            "W={capacity}: steady-state append cost is not flat \
             (last-decile median {last_median:.0} ns > 1.5x first-decile \
             median {first_median:.0} ns)"
        );
    }

    criterion::write_json(&results, &out_path).expect("write window summary");
    println!("wrote {out_path}");
}
