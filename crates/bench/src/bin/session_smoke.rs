//! Deterministic-parallelism smoke check for the **streaming session**
//! hot path (`scripts/verify.sh`, alongside `sweep_smoke` and
//! `fit_smoke`).
//!
//! Streams a clean 2-port workload through `FitSession` one sample pair
//! at a time under whatever `MFTI_THREADS` says — every append grows
//! the pencil by thin GEMM strips and absorbs them into the
//! rank-revealing `SvdUpdater` (seed decomposition through the blocked
//! backend's fanned trailing update, border updates through the
//! deterministically-chunked kernels) — and prints one FNV-1a digest
//! over every per-append singular value, the order trajectory and the
//! final realized model bits. `verify.sh` runs this binary at 1 and N
//! workers and fails on any digest mismatch: the incremental signal
//! must be bit-identical at every worker count.
//!
//! Usage: `MFTI_THREADS=k cargo run --release -p mfti-bench --bin
//! session_smoke` (prints `session digest: <hex>`).

use mfti_core::{FitSession, Mfti};
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};

fn main() {
    // Order-14 system, 2 ports, full weights (t = 2): every streamed
    // pair grows the pencil by 4, reaching K = 96 after 24 pairs — past
    // the Loewner row-parallel gate (K ≥ 96) and deep into the blocked
    // SVD's panel path for the updater's seed decomposition.
    let sys = RandomSystemBuilder::new(14, 2, 2)
        .d_rank(2)
        .band(1e6, 1e9)
        .seed(0x5e5510)
        .build()
        .expect("seeded build");
    let grid = FrequencyGrid::log_space(1e6, 1e9, 48).expect("valid grid");
    let all = SampleSet::from_system(&sys, &grid).expect("sampling");

    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };

    // Band edges first (they set the normalization), then one pair per
    // append; digest the refreshed signal after every single append.
    let mut session = FitSession::new(Mfti::new());
    let k = all.len();
    let mut batches = vec![all.subset(&[0, k - 1]).expect("edges")];
    let mut i = 1;
    while i + 1 < k - 1 {
        batches.push(all.subset(&[i, i + 1]).expect("pair"));
        i += 2;
    }
    for batch in &batches {
        session.append(batch).expect("append");
        for s in session.singular_values().expect("signal") {
            absorb(s.to_bits());
        }
    }
    for &order in session.order_trajectory() {
        absorb(order as u64);
    }

    let outcome = session.realize().expect("realize");
    let model = outcome.model().as_real().expect("real realization path");
    let (e, a, b, c, d) = model.real_matrices();
    for m in [e, a, b, c, d] {
        for x in m.iter() {
            absorb(x.to_bits());
        }
    }
    println!(
        "session digest: {hash:016x} (K {}, order {}, retained {})",
        session.pencil_order(),
        outcome.order(),
        session.retained_rank().expect("streamed updater"),
    );
}
