//! Shared workloads and reporting helpers for the benchmark harness.
//!
//! Every figure and table of the paper's evaluation section has a
//! regeneration binary in `src/bin/` built on the seeded workloads
//! defined here, so the numbers in EXPERIMENTS.md are reproducible with
//! a single `cargo run` per experiment:
//!
//! | Paper artifact | Binary |
//! |----------------|--------|
//! | Fig. 1 (singular-value patterns)        | `fig1_singular_values` |
//! | Fig. 2 (Bode overlay)                   | `fig2_bode`            |
//! | Example 1 text (30× sample ratio)       | `ex1_sample_sweep`     |
//! | Table 1 (noisy PDN comparison)          | `table1_noisy`         |
//!
//! Criterion micro-benchmarks (`benches/`) cover the ablations listed
//! in DESIGN.md §3.

#![deny(missing_docs)]

use mfti_sampling::generators::{PdnBuilder, RandomSystemBuilder};
use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};
use mfti_statespace::{DescriptorSystem, RationalModel};

/// Seed shared by all paper-reproduction workloads.
pub const PAPER_SEED: u64 = 0x0DAC_2010;

/// Deterministic `n × n` complex matrix with xorshift entries in
/// `[-1, 1]²` — the shared input generator of the GEMM/SVD kernel
/// benches and the `bench_json` snapshot binary.
pub fn random_complex(n: usize, seed: u64) -> mfti_numeric::CMatrix {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    mfti_numeric::CMatrix::from_fn(n, n, |_, _| mfti_numeric::c64(next(), next()))
}

/// Example 1's underlying system: order 150, 30 ports, full-rank `D`
/// (the paper's observed rank pattern 150/180/180 implies
/// `rank(D₀) = 30`), resonances across the Fig. 2 band 10 Hz – 100 kHz.
pub fn example1_system() -> DescriptorSystem<f64> {
    RandomSystemBuilder::new(150, 30, 30)
        .band(1e1, 1e5)
        .d_rank(30)
        .seed(PAPER_SEED)
        .build()
        .expect("static configuration is valid")
}

/// `k` log-spaced samples of the Example 1 system over 10 Hz – 100 kHz.
pub fn example1_samples(k: usize) -> SampleSet {
    let sys = example1_system();
    let grid = FrequencyGrid::log_space(1e1, 1e5, k).expect("valid grid");
    SampleSet::from_system(&sys, &grid).expect("no poles on the imaginary axis")
}

/// The synthetic 14-port PDN standing in for the paper's INC-board
/// measurements (Example 2): 40 resonance pairs (order 80 + rank-14
/// feed-through — unknown to the algorithms, and chosen so the system's
/// effective order sits just inside VFTI's 100-sample pencil capacity,
/// the regime the paper's reported VFTI orders 95–98 imply), 10 MHz – 10 GHz.
pub fn pdn_model() -> RationalModel {
    PdnBuilder::new(14)
        .resonance_pairs(40)
        .band(1e7, 1e10)
        .seed(PAPER_SEED)
        .build()
        .expect("static configuration is valid")
}

/// Relative noise level applied to the PDN "measurements" (-80 dB —
/// a well-averaged VNA measurement).
pub const PDN_NOISE_SIGMA: f64 = 1e-4;

/// Table 1 workloads: `(clean, noisy)` sample pairs.
///
/// * Test 1 — 100 uniformly distributed samples over the band;
/// * Test 2 — 100 samples concentrated in the top decade
///   (ill-conditioned sampling).
///
/// # Panics
///
/// Panics for `test` outside `{1, 2}`.
pub fn table1_samples(test: usize) -> (SampleSet, SampleSet) {
    let pdn = pdn_model();
    let grid = match test {
        1 => FrequencyGrid::linear(1e7, 1e10, 100).expect("valid grid"),
        2 => FrequencyGrid::clustered_high(1e7, 1e10, 100, 0.85, 1.0).expect("valid grid"),
        other => panic!("Table 1 has tests 1 and 2, not {other}"),
    };
    let clean = SampleSet::from_system(&pdn, &grid).expect("stable model");
    let noisy = NoiseModel::additive_relative(PDN_NOISE_SIGMA).apply(&clean, PAPER_SEED);
    (clean, noisy)
}

/// Formats a duration in seconds with three decimals (Table 1 style).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints an aligned text table: a header row then data rows.
///
/// # Panics
///
/// Panics when a row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        line(row.clone());
    }
}

/// Locates the largest relative drop in a descending singular-value
/// profile, returning `(index_after_drop, ratio)` — e.g. a return of
/// `(150, 1e8)` means σ₁₅₀/σ₁₅₁ ≈ 1e8 (1-based counting: the drop is
/// *after* the 150-th value).
pub fn largest_drop(sv: &[f64]) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for i in 1..sv.len() {
        let ratio = sv[i - 1] / sv[i].max(f64::MIN_POSITIVE);
        if ratio > best.1 {
            best = (i, ratio);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_system_has_paper_dimensions() {
        let sys = example1_system();
        assert_eq!(sys.order(), 150);
        assert_eq!(sys.inputs(), 30);
        assert_eq!(sys.outputs(), 30);
        let svd = mfti_numeric::Svd::compute(sys.d()).unwrap();
        assert_eq!(svd.rank(1e-10), 30);
    }

    #[test]
    fn pdn_has_14_ports_and_hidden_order_80() {
        let pdn = pdn_model();
        assert_eq!(pdn.d().dims(), (14, 14));
        assert_eq!(pdn.order(), 80);
        assert!(pdn.is_stable());
    }

    #[test]
    fn table1_grids_differ_in_distribution() {
        let (clean1, noisy1) = table1_samples(1);
        let (clean2, _) = table1_samples(2);
        assert_eq!(clean1.len(), 100);
        assert_eq!(clean2.len(), 100);
        assert_eq!(noisy1.len(), 100);
        // Test 2 crowds the top decade.
        let top = clean2.freqs_hz().iter().filter(|&&f| f >= 1e9).count();
        assert!(top >= 80, "{top} samples in top decade");
        let top1 = clean1.freqs_hz().iter().filter(|&&f| f >= 1e9).count();
        assert!(top1 < 95, "uniform grid has {top1} in top decade");
    }

    #[test]
    fn largest_drop_finds_the_cliff() {
        let sv = [1.0, 0.9, 0.5, 1e-9, 1e-10];
        let (idx, ratio) = largest_drop(&sv);
        assert_eq!(idx, 3);
        assert!(ratio > 1e8);
    }
}
