//! Fault-campaign smoke check for `scripts/verify.sh` (DESIGN.md §8).
//!
//! Runs the seeded fault-injection campaign — every fault class of the
//! taxonomy through all four engines — and prints one line with the
//! campaign digest and outcome counts. `verify.sh` runs this binary at
//! `MFTI_THREADS=1` and `8` and fails on any difference: the error
//! paths must be exactly as deterministic as the success paths. The
//! binary itself fails (exit 1) if any run panicked, so the no-panic
//! contract is enforced even on a single run.
//!
//! Usage: `MFTI_THREADS=k cargo run --release -p mfti-faults --bin
//! fault_smoke` (prints `fault digest: <hex> (…)`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let report = match mfti_faults::run_campaign(0x5107_fa17) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fault_smoke: workload generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.panics() > 0 {
        eprintln!(
            "fault_smoke: {} run(s) panicked across the fit boundary",
            report.panics()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "fault digest: {:016x} (fitted {}, typed-errors {}, panics {})",
        report.digest,
        report.fitted(),
        report.typed_errors(),
        report.panics()
    );
    ExitCode::SUCCESS
}
