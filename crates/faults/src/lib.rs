//! Deterministic fault-injection campaigns for the fitting engines
//! (DESIGN.md §8).
//!
//! The robustness contract of the workspace — no panic escapes a
//! library entry point, every refusal is a typed error, and the
//! determinism invariants survive the error paths — is only credible
//! if something *drives* the failure paths. This crate does that: it
//! injects each failure class of the taxonomy deterministically
//!
//! * **ingestion defects** — NaN/Inf entries, denormal contamination,
//!   duplicated frequencies;
//! * **degenerate problems** — rank-collapsed (constant) sample sets
//!   and near-defective pencils with numerically coincident poles;
//! * **forced breakdowns** — the test-only iteration-budget hooks of
//!   `mfti_numeric::faults` (compiled in through the `fault-injection`
//!   feature) shrink the QR/Jacobi budgets so the recovery ladders'
//!   non-convergent rungs actually run;
//!
//! and fits every faulted workload with all four engines behind
//! `Box<dyn Fitter>`, recording for each run whether it fitted, failed
//! with a typed error, or panicked. A campaign is fully determined by
//! its seed, and its outcome digest (FNV-1a over fault names, engine
//! names, orders, typed-error strings and response bits — never
//! wall-clock times) must be bit-identical at every `MFTI_THREADS`
//! setting; `scripts/verify.sh` pins that with the `fault_smoke`
//! binary at 1 vs 8 workers.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use mfti_core::{FitError, FitSession, Fitter, Mfti, RecursiveMfti, Vfti, WindowPolicy};
use mfti_numeric::faults::InjectedFault;
use mfti_numeric::{c64, CMatrix, Complex};
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet, SamplingError};
use mfti_statespace::{s_at_hz, StateSpaceError};
use mfti_vecfit::VectorFitter;

/// One failure class of the DESIGN.md §8 taxonomy, injected into an
/// otherwise clean seeded workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum FaultKind {
    /// No fault: the baseline every engine must fit.
    Clean,
    /// One sample entry replaced by NaN (validated ingestion must
    /// reject it with the entry's coordinates).
    NanEntry,
    /// One sample entry replaced by +∞.
    InfEntry,
    /// Subnormal contamination added to several entries — legal data
    /// that must neither panic nor destroy determinism.
    DenormalEntries,
    /// Two samples share one frequency (duplicate σ).
    DuplicateFrequency,
    /// Every sample matrix identical: the Loewner pencil collapses to
    /// (numerical) rank zero.
    RankCollapse,
    /// Samples of a transfer function with a near-Jordan double pole —
    /// a nearly defective pencil.
    NearDefectivePencil,
    /// The bidiagonal/Schur QR budgets capped at one iteration: the
    /// Blocked and Golub–Kahan rungs break down and recovery must come
    /// from the Jacobi rung (or surface typed non-convergence).
    QrStall,
    /// Every iterative kernel capped at once: no SVD rung can converge
    /// and the whole ladder must fail *typed*.
    LadderExhaustion,
    /// Sliding-window eviction of the pairs carrying the **dominant**
    /// singular direction (their samples are scaled ×10⁶): the downdate
    /// must either track the collapse or refuse with a conditioning
    /// error and re-anchor — never serve garbage (DESIGN.md §9). Driven
    /// through a windowed [`FitSession`], not the one-shot engines.
    EvictDominantDirection,
    /// After eviction the surviving window is rank-collapsed (every
    /// remaining sample matrix identical): order detection on the
    /// windowed signal must degrade typed, not panic.
    RankCollapseOnEvict,
    /// A storm of near-coincident frequencies and near-identical sample
    /// matrices streamed through a tiny window: every append downdates
    /// under heavy cancellation.
    DowndateCancellationStorm,
    /// A forced re-anchor (always-firing drift threshold) while every
    /// iterative kernel is capped at one sweep: the downdate ladder —
    /// shadow swap, fresh blocked, Golub–Kahan — exhausts and the
    /// windowed append must fail *typed and transactionally*.
    GateFailureExhaustion,
}

impl FaultKind {
    /// Every fault class, in campaign order.
    pub const ALL: [FaultKind; 13] = [
        FaultKind::Clean,
        FaultKind::NanEntry,
        FaultKind::InfEntry,
        FaultKind::DenormalEntries,
        FaultKind::DuplicateFrequency,
        FaultKind::RankCollapse,
        FaultKind::NearDefectivePencil,
        FaultKind::QrStall,
        FaultKind::LadderExhaustion,
        FaultKind::EvictDominantDirection,
        FaultKind::RankCollapseOnEvict,
        FaultKind::DowndateCancellationStorm,
        FaultKind::GateFailureExhaustion,
    ];

    /// Stable name used in reports and digests.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Clean => "clean",
            FaultKind::NanEntry => "nan-entry",
            FaultKind::InfEntry => "inf-entry",
            FaultKind::DenormalEntries => "denormal-entries",
            FaultKind::DuplicateFrequency => "duplicate-frequency",
            FaultKind::RankCollapse => "rank-collapse",
            FaultKind::NearDefectivePencil => "near-defective-pencil",
            FaultKind::QrStall => "qr-stall",
            FaultKind::LadderExhaustion => "ladder-exhaustion",
            FaultKind::EvictDominantDirection => "evict-dominant-direction",
            FaultKind::RankCollapseOnEvict => "rank-collapse-on-evict",
            FaultKind::DowndateCancellationStorm => "downdate-cancellation-storm",
            FaultKind::GateFailureExhaustion => "gate-failure-exhaustion",
        }
    }

    /// Whether this class targets the sliding-window eviction machinery
    /// (driven through one windowed [`FitSession`] instead of the four
    /// one-shot engines).
    pub fn is_window_fault(self) -> bool {
        matches!(
            self,
            FaultKind::EvictDominantDirection
                | FaultKind::RankCollapseOnEvict
                | FaultKind::DowndateCancellationStorm
                | FaultKind::GateFailureExhaustion
        )
    }
}

/// What one engine did with one faulted workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The fit succeeded with this detected order.
    Fitted {
        /// Realized model order.
        order: usize,
    },
    /// The fit refused with a typed [`FitError`] — the contract for
    /// every injected defect.
    TypedError {
        /// The error's `Display` rendering (deterministic, digested).
        message: String,
    },
    /// A panic crossed the `fit` boundary — always a campaign failure.
    Panicked,
}

/// One (fault, engine) campaign cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// The injected failure class.
    pub fault: FaultKind,
    /// The engine's [`Fitter::name`].
    pub engine: &'static str,
    /// What happened.
    pub outcome: RunOutcome,
}

/// Aggregate result of [`run_campaign`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The seed that fully determines the campaign.
    pub seed: u64,
    /// One record per (fault, engine) cell, in campaign order.
    pub records: Vec<RunRecord>,
    /// FNV-1a digest over every record (and the response bits of every
    /// fitted model) — thread-invariant by the determinism contract.
    pub digest: u64,
}

impl CampaignReport {
    /// Number of runs that crossed the boundary as a panic.
    pub fn panics(&self) -> usize {
        self.count(|o| matches!(o, RunOutcome::Panicked))
    }

    /// Number of runs refused with a typed error.
    pub fn typed_errors(&self) -> usize {
        self.count(|o| matches!(o, RunOutcome::TypedError { .. }))
    }

    /// Number of runs that produced a model.
    pub fn fitted(&self) -> usize {
        self.count(|o| matches!(o, RunOutcome::Fitted { .. }))
    }

    /// The records of one fault class.
    pub fn of_fault(&self, fault: FaultKind) -> Vec<&RunRecord> {
        self.records.iter().filter(|r| r.fault == fault).collect()
    }

    fn count(&self, pred: impl Fn(&RunOutcome) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.outcome)).count()
    }
}

/// A campaign could not even construct its workloads (distinct from a
/// fit refusing a faulted workload, which is a [`RunOutcome`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// Seeded sample generation failed.
    Sampling(SamplingError),
    /// Seeded system generation failed.
    StateSpace(StateSpaceError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Sampling(e) => write!(f, "campaign workload generation failed: {e}"),
            CampaignError::StateSpace(e) => write!(f, "campaign system generation failed: {e}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Sampling(e) => Some(e),
            CampaignError::StateSpace(e) => Some(e),
        }
    }
}

impl From<SamplingError> for CampaignError {
    fn from(e: SamplingError) -> Self {
        CampaignError::Sampling(e)
    }
}

impl From<StateSpaceError> for CampaignError {
    fn from(e: StateSpaceError) -> Self {
        CampaignError::StateSpace(e)
    }
}

/// SplitMix64: tiny, deterministic, and good enough to pick fault
/// coordinates (the workload itself comes from the seeded generators).
#[derive(Debug)]
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// FNV-1a, matching the digest idiom of the verify smokes.
#[derive(Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bits(&mut self, bits: u64) {
        for b in bits.to_le_bytes() {
            self.byte(b);
        }
    }

    fn text(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

/// The clean seeded workload every fault perturbs: an order-10 2-port
/// system sampled at 14 log-spaced points — small enough that a full
/// campaign (9 faults × 4 engines) stays in smoke-test territory.
fn base_samples(seed: u64) -> Result<SampleSet, CampaignError> {
    let sys = RandomSystemBuilder::new(10, 2, 2)
        .d_rank(2)
        .seed(seed)
        .build()?;
    let grid = FrequencyGrid::log_space(1e3, 1e6, 14)?;
    Ok(SampleSet::from_system(&sys, &grid)?)
}

/// Samples of `H(s) = R/(s−p) + N/(s−p)² + D` — a Jordan-block double
/// pole, the nearly defective pencil of the taxonomy.
fn near_defective_samples(freqs: &[f64]) -> Result<SampleSet, CampaignError> {
    let p = c64(-2.0e4, 2.0e5);
    let mats = freqs
        .iter()
        .map(|&f| {
            let s: Complex = s_at_hz(f);
            let lin = (s - p).recip();
            let quad = lin * lin;
            CMatrix::from_fn(2, 2, |i, j| {
                let r = c64(1.0 + i as f64 + j as f64, 0.3 * (i as f64 - j as f64));
                let n = c64(0.5 * (1 + i + j) as f64, 0.1);
                let d = c64(if i == j { 0.25 } else { 0.05 }, 0.0);
                r * lin + n * quad + d
            })
        })
        .collect();
    Ok(SampleSet::from_parts(freqs.to_vec(), mats)?)
}

/// Applies `kind` to the clean workload. The iteration-cap faults
/// leave the data untouched (they arm kernel hooks instead; see
/// [`run_campaign`]).
fn inject(
    kind: FaultKind,
    base: &SampleSet,
    rng: &mut SplitMix,
) -> Result<SampleSet, CampaignError> {
    let freqs = base.freqs_hz().to_vec();
    let mut mats: Vec<CMatrix> = base.matrices().to_vec();
    let k = base.len();
    let (p, m) = mats[0].dims();
    match kind {
        // Window fault classes never reach `inject` with their own
        // defects: the campaign drives them through `window_batches`
        // instead, so the sample data itself passes through clean.
        FaultKind::Clean
        | FaultKind::QrStall
        | FaultKind::LadderExhaustion
        | FaultKind::EvictDominantDirection
        | FaultKind::RankCollapseOnEvict
        | FaultKind::DowndateCancellationStorm
        | FaultKind::GateFailureExhaustion => Ok(base.clone()),
        FaultKind::NanEntry => {
            mats[rng.below(k)][(rng.below(p), rng.below(m))] = c64(f64::NAN, 0.0);
            Ok(SampleSet::from_parts(freqs, mats)?)
        }
        FaultKind::InfEntry => {
            mats[rng.below(k)][(rng.below(p), rng.below(m))] = c64(0.0, f64::INFINITY);
            Ok(SampleSet::from_parts(freqs, mats)?)
        }
        FaultKind::DenormalEntries => {
            for _ in 0..4 {
                let sub = f64::from_bits(1 + (rng.next_u64() & 0xffff));
                let entry = &mut mats[rng.below(k)][(rng.below(p), rng.below(m))];
                *entry += c64(sub, -sub);
            }
            Ok(SampleSet::from_parts(freqs, mats)?)
        }
        FaultKind::DuplicateFrequency => {
            let mut dup_freqs = freqs;
            let src = rng.below(k - 1);
            dup_freqs[src + 1] = dup_freqs[src];
            Ok(SampleSet::from_parts(dup_freqs, mats)?)
        }
        FaultKind::RankCollapse => {
            let constant = mats[0].clone();
            Ok(SampleSet::from_parts(freqs, vec![constant; k])?)
        }
        FaultKind::NearDefectivePencil => near_defective_samples(&freqs),
    }
}

/// Builds the batch stream of a window fault class from the clean
/// workload: a 4-sample opening batch (band edges first, setting the
/// normalization) followed by 2-sample appends — sized so the sliding
/// window evicts several times over the drive.
fn window_batches(kind: FaultKind, base: &SampleSet) -> Result<Vec<SampleSet>, CampaignError> {
    let scale_mats = |mats: &[CMatrix], s: f64| -> Vec<CMatrix> {
        mats.iter()
            .map(|m| {
                let mut out = m.clone();
                for z in out.as_mut_slice() {
                    *z *= c64(s, 0.0);
                }
                out
            })
            .collect()
    };
    let subset = |idx: &[usize]| -> Result<SampleSet, CampaignError> {
        let freqs: Vec<f64> = idx.iter().map(|&i| base.freqs_hz()[i]).collect();
        let mats: Vec<CMatrix> = idx.iter().map(|&i| base.matrices()[i].clone()).collect();
        Ok(SampleSet::from_parts(freqs, mats)?)
    };
    let k = base.len();
    let mut order: Vec<usize> = vec![0, k - 1];
    order.extend(1..k - 1);
    match kind {
        FaultKind::EvictDominantDirection => {
            // The opening pairs dominate the spectrum by six decades;
            // their eviction deletes the dominant singular direction.
            let head = subset(&order[..4])?;
            let loud =
                SampleSet::from_parts(head.freqs_hz().to_vec(), scale_mats(head.matrices(), 1e6))?;
            let mut batches = vec![loud];
            for pair in order[4..].chunks(2) {
                batches.push(subset(pair)?);
            }
            Ok(batches)
        }
        FaultKind::RankCollapseOnEvict => {
            // Informative opening pairs, constant tail: once the window
            // slides past the opening, it holds a rank-collapsed set.
            let mut batches = vec![subset(&order[..4])?];
            let constant = base.matrices()[0].clone();
            for pair in order[4..].chunks(2) {
                let freqs: Vec<f64> = pair.iter().map(|&i| base.freqs_hz()[i]).collect();
                batches.push(SampleSet::from_parts(
                    freqs,
                    vec![constant.clone(); pair.len()],
                )?);
            }
            Ok(batches)
        }
        FaultKind::DowndateCancellationStorm => {
            // Near-coincident frequencies with near-identical matrices:
            // the divided differences are enormous and nearly cancel,
            // and a tiny window downdates through the storm.
            let f0 = base.freqs_hz()[0];
            let m0 = base.matrices()[0].clone();
            let batches = (0..6)
                .map(|b| {
                    let mk = |i: usize| {
                        let jitter = 1.0 + (2 * b + i) as f64 * 1e-9;
                        let mut m = m0.clone();
                        for z in m.as_mut_slice() {
                            *z *= c64(1.0 + (2 * b + i) as f64 * 1e-12, 0.0);
                        }
                        (f0 * jitter, m)
                    };
                    let (fa, ma) = mk(1);
                    let (fb, mb) = mk(2);
                    Ok(SampleSet::from_parts(vec![fa, fb], vec![ma, mb])?)
                })
                .collect::<Result<Vec<_>, CampaignError>>()?;
            Ok(batches)
        }
        FaultKind::GateFailureExhaustion => {
            let mut batches = vec![subset(&order[..4])?];
            for pair in order[4..].chunks(2) {
                batches.push(subset(pair)?);
            }
            Ok(batches)
        }
        _ => unreachable!("not a window fault"),
    }
}

/// Drives one window fault class through a sliding-window
/// [`FitSession`], returning the outcome plus (for a fitted drive) the
/// final model's probe-response bits for the digest.
fn drive_window_fault(
    kind: FaultKind,
    batches: &[SampleSet],
    probes: &[f64],
) -> (RunOutcome, Vec<u64>) {
    let capacity = match kind {
        FaultKind::DowndateCancellationStorm => 8,
        _ => 16,
    };
    let mut session = FitSession::new(Mfti::new()).window(WindowPolicy::Sliding { capacity });
    if kind == FaultKind::GateFailureExhaustion {
        // Every advance is quarantined; the ladder must produce (or
        // typed-fail) a replacement on each append.
        session = session.refresh_threshold(-1.0);
    }
    let mut guard = None;
    for (i, batch) in batches.iter().enumerate() {
        if kind == FaultKind::GateFailureExhaustion && i == 2 {
            // Arm the total iteration cap only once the updater exists:
            // the quarantined advance now finds every ladder rung dead.
            guard = Some(InjectedFault::cap_all_iterations(1));
        }
        if let Err(e) = session.append(batch) {
            drop(guard);
            return (
                RunOutcome::TypedError {
                    message: classify(&e),
                },
                Vec::new(),
            );
        }
    }
    drop(guard);
    match session.realize() {
        Ok(fit) => {
            let mut bits = Vec::new();
            match fit.macromodel().response_batch_hz(probes) {
                Ok(resp) => {
                    for mat in &resp {
                        for z in mat.iter() {
                            bits.push(z.re.to_bits());
                            bits.push(z.im.to_bits());
                        }
                    }
                }
                Err(e) => {
                    for b in e.to_string().into_bytes() {
                        bits.push(u64::from(b));
                    }
                }
            }
            (RunOutcome::Fitted { order: fit.order() }, bits)
        }
        Err(e) => (
            RunOutcome::TypedError {
                message: classify(&e),
            },
            Vec::new(),
        ),
    }
}

/// The four engines of the workspace behind the object-safe trait.
fn engines() -> Vec<Box<dyn Fitter>> {
    vec![
        Box::new(Mfti::new()),
        Box::new(Vfti::new()),
        Box::new(RecursiveMfti::new()),
        Box::new(VectorFitter::new(10)),
    ]
}

/// Runs the full campaign: every [`FaultKind`] through every engine,
/// each fit wrapped in `catch_unwind` so a panic is *recorded* (and
/// fails the caller's assertion) rather than aborting the harness.
///
/// Everything — workload, fault coordinates, hook caps — derives from
/// `seed`, and nothing time- or thread-dependent enters the digest, so
/// two runs with one seed are bit-identical regardless of
/// `MFTI_THREADS`.
///
/// # Errors
///
/// [`CampaignError`] when the seeded workload generation itself fails
/// (individual fit failures are [`RunRecord`]s, not errors).
pub fn run_campaign(seed: u64) -> Result<CampaignReport, CampaignError> {
    let base = base_samples(seed)?;
    let probes: Vec<f64> = {
        let f = base.freqs_hz();
        vec![f[0], f[f.len() / 2], f[f.len() - 1]]
    };
    let mut rng = SplitMix(seed);
    let mut records = Vec::new();
    let mut fnv = Fnv::new();
    for kind in FaultKind::ALL {
        if kind.is_window_fault() {
            // Eviction fault classes run through one sliding-window
            // session (the machinery under attack), one record each.
            let batches = window_batches(kind, &base)?;
            let caught = catch_unwind(AssertUnwindSafe(|| {
                drive_window_fault(kind, &batches, &probes)
            }));
            fnv.text(kind.as_str());
            fnv.text("mfti-session-window");
            let outcome = match caught {
                Ok((outcome, bits)) => {
                    match &outcome {
                        RunOutcome::Fitted { order } => {
                            fnv.bits(1);
                            fnv.bits(*order as u64);
                            for b in bits {
                                fnv.bits(b);
                            }
                        }
                        RunOutcome::TypedError { message } => {
                            fnv.bits(2);
                            fnv.text(message);
                        }
                        RunOutcome::Panicked => fnv.bits(3),
                    }
                    outcome
                }
                Err(_) => {
                    fnv.bits(3);
                    RunOutcome::Panicked
                }
            };
            records.push(RunRecord {
                fault: kind,
                engine: "mfti-session-window",
                outcome,
            });
            continue;
        }
        let samples = inject(kind, &base, &mut rng)?;
        for fitter in engines() {
            let guard = match kind {
                FaultKind::QrStall => Some(InjectedFault::cap_qr_iterations(1)),
                FaultKind::LadderExhaustion => Some(InjectedFault::cap_all_iterations(1)),
                _ => None,
            };
            let caught = catch_unwind(AssertUnwindSafe(|| fitter.fit(&samples)));
            drop(guard);
            fnv.text(kind.as_str());
            fnv.text(fitter.name());
            let outcome = match caught {
                Ok(Ok(fit)) => {
                    fnv.bits(1);
                    fnv.bits(fit.order() as u64);
                    // Response bits make the digest sensitive to the
                    // actual model, not just its order. An evaluation
                    // refusal is digested as text — still typed, still
                    // deterministic.
                    match fit.macromodel().response_batch_hz(&probes) {
                        Ok(resp) => {
                            for mat in &resp {
                                for z in mat.iter() {
                                    fnv.bits(z.re.to_bits());
                                    fnv.bits(z.im.to_bits());
                                }
                            }
                        }
                        Err(e) => fnv.text(&e.to_string()),
                    }
                    RunOutcome::Fitted { order: fit.order() }
                }
                Ok(Err(e)) => {
                    let message = classify(&e);
                    fnv.bits(2);
                    fnv.text(&message);
                    RunOutcome::TypedError { message }
                }
                Err(_) => {
                    fnv.bits(3);
                    RunOutcome::Panicked
                }
            };
            records.push(RunRecord {
                fault: kind,
                engine: fitter.name(),
                outcome,
            });
        }
    }
    Ok(CampaignReport {
        seed,
        records,
        digest: fnv.0,
    })
}

/// Stable one-line rendering of a typed refusal: the variant path plus
/// the error's own `Display` (which pins defect coordinates).
fn classify(e: &FitError) -> String {
    let class = match e {
        FitError::Invalid(_) => "invalid",
        FitError::Mfti(_) => "mfti",
        FitError::VecFit(_) => "vecfit",
        FitError::StateSpace(_) => "statespace",
        FitError::Session { .. } => "session",
        _ => "other",
    };
    format!("{class}: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expected campaign size: four engines per one-shot fault class,
    /// one windowed-session record per eviction fault class.
    fn expected_records() -> usize {
        FaultKind::ALL
            .iter()
            .map(|k| if k.is_window_fault() { 1 } else { 4 })
            .sum()
    }

    #[test]
    fn campaign_is_panic_free_and_typed() {
        let report = run_campaign(0x5107_fa17).unwrap();
        assert_eq!(report.records.len(), expected_records());
        assert_eq!(report.panics(), 0, "panic crossed a fit boundary");
        // The clean baseline fits on every engine…
        for r in report.of_fault(FaultKind::Clean) {
            assert!(
                matches!(r.outcome, RunOutcome::Fitted { .. }),
                "{} failed the clean baseline: {:?}",
                r.engine,
                r.outcome
            );
        }
        // …and every non-finite or duplicated workload is refused with
        // the boundary-level ingestion variant.
        for kind in [
            FaultKind::NanEntry,
            FaultKind::InfEntry,
            FaultKind::DuplicateFrequency,
        ] {
            for r in report.of_fault(kind) {
                match &r.outcome {
                    RunOutcome::TypedError { message } => assert!(
                        message.starts_with("invalid:"),
                        "{} under {:?}: expected ingestion refusal, got {message}",
                        r.engine,
                        kind
                    ),
                    other => panic!(
                        "{} under {kind:?}: expected refusal, got {other:?}",
                        r.engine
                    ),
                }
            }
        }
    }

    #[test]
    fn eviction_faults_resolve_without_panic() {
        let report = run_campaign(0x5107_fa17).unwrap();
        for kind in FaultKind::ALL.into_iter().filter(|k| k.is_window_fault()) {
            let cells = report.of_fault(kind);
            assert_eq!(cells.len(), 1, "{kind:?} must run once through the window");
            let r = cells[0];
            assert_eq!(r.engine, "mfti-session-window");
            assert!(
                !matches!(r.outcome, RunOutcome::Panicked),
                "{kind:?} panicked through the windowed session"
            );
        }
        // The exhausted ladder is a refusal, never a model served off a
        // quarantined factorization.
        match &report.of_fault(FaultKind::GateFailureExhaustion)[0].outcome {
            RunOutcome::TypedError { message } => {
                assert!(message.starts_with("mfti:"), "unexpected class: {message}")
            }
            other => panic!("exhausted ladder must refuse, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_ladder_leaves_the_session_serviceable() {
        // Transactionality under total exhaustion: the failing windowed
        // append must leave the previous generation fully intact — the
        // quarantined candidate never replaces it, and the session still
        // realizes from the last committed factorization.
        let base = base_samples(0x5107_fa17).unwrap();
        let batches = window_batches(FaultKind::GateFailureExhaustion, &base).unwrap();
        let mut session = FitSession::new(Mfti::new())
            .window(WindowPolicy::Sliding { capacity: 16 })
            .refresh_threshold(-1.0);
        session.append(&batches[0]).unwrap();
        session.append(&batches[1]).unwrap();
        let k = session.pencil_order();
        let sv = session.singular_values().unwrap().to_vec();
        {
            let _cap = InjectedFault::cap_all_iterations(1);
            assert!(session.append(&batches[2]).is_err(), "ladder must exhaust");
        }
        assert_eq!(session.pencil_order(), k);
        assert_eq!(session.singular_values().unwrap(), &sv[..]);
        assert!(session.realize().is_ok());
        // And with the cap lifted the same append goes through.
        session.append(&batches[2]).unwrap();
    }

    #[test]
    fn ladder_exhaustion_is_typed_never_fatal() {
        let report = run_campaign(0x0bad_cafe).unwrap();
        assert_eq!(report.panics(), 0);
        for r in report.of_fault(FaultKind::LadderExhaustion) {
            assert!(
                !matches!(r.outcome, RunOutcome::Panicked),
                "{} panicked under total iteration exhaustion",
                r.engine
            );
        }
    }

    #[test]
    fn same_seed_same_digest() {
        let a = run_campaign(7).unwrap();
        let b = run_campaign(7).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.records, b.records);
        let c = run_campaign(8).unwrap();
        assert_ne!(a.digest, c.digest, "digest ignores the seed");
    }
}
