//! Operator overloads for [`Matrix`].
//!
//! `+`, `-` and unary `-` are implemented for references (the common case
//! in the algorithms, which reuse operands) and panic on shape mismatch —
//! mirroring the convention of mainstream linear-algebra crates where
//! element-wise shape errors are programming errors. The fallible,
//! allocation-explicit API ([`Matrix::matmul`]) is used for products.

use std::ops::{Add, Mul, Neg, Sub};

use crate::matrix::Matrix;
use crate::scalar::Scalar;

fn assert_same_dims<T: Scalar>(op: &str, a: &Matrix<T>, b: &Matrix<T>) {
    assert_eq!(
        a.dims(),
        b.dims(),
        "{op}: dimension mismatch {:?} vs {:?}",
        a.dims(),
        b.dims()
    );
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_same_dims("add", self, rhs);
        let mut out = self.clone();
        for (o, &r) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o += r;
        }
        out
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_same_dims("sub", self, rhs);
        let mut out = self.clone();
        for (o, &r) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o -= r;
        }
        out
    }
}

impl<T: Scalar> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        self.map(|x| -x)
    }
}

impl<T: Scalar> Mul<T> for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: T) -> Matrix<T> {
        self.map(|x| x * rhs)
    }
}

/// `&a * &b` is shorthand for [`Matrix::matmul`] that panics on shape
/// mismatch; prefer `matmul` when the shapes are not statically known.
impl<T: Scalar> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.matmul(rhs)
            .unwrap_or_else(|e| panic!("matrix product failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use crate::complex::c64;
    use crate::matrix::{CMatrix, RMatrix};

    #[test]
    fn add_sub_neg_roundtrip() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = RMatrix::identity(2);
        let s = &a + &b;
        let d = &s - &b;
        assert!(d.approx_eq(&a, 1e-15));
        let n = -&a;
        assert_eq!(n[(0, 0)], -1.0);
    }

    #[test]
    fn scalar_multiplication() {
        let a = CMatrix::identity(2);
        let b = &a * c64(0.0, 2.0);
        assert_eq!(b[(0, 0)], c64(0.0, 2.0));
        assert_eq!(b[(0, 1)], c64(0.0, 0.0));
    }

    #[test]
    fn mul_operator_matches_matmul() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        let b = RMatrix::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let via_op = &a * &b;
        let via_fn = a.matmul(&b).unwrap();
        assert!(via_op.approx_eq(&via_fn, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_panics_on_shape_mismatch() {
        let a = RMatrix::zeros(2, 2);
        let b = RMatrix::zeros(3, 2);
        let _ = &a + &b;
    }
}
