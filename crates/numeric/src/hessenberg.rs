//! Upper-Hessenberg decomposition with accumulated transform, and a
//! Givens-rotation solver for shifted Hessenberg systems.
//!
//! This is the workhorse of fast frequency sweeps: a descriptor model
//! `H(s) = C (sE − A)⁻¹ B + D` costs one `O(n³)` LU factorization *per
//! frequency* when evaluated naively. Reducing a shift-inverted pencil
//! to Hessenberg form **once** turns every subsequent frequency point
//! into an `O(n²)` triangularization (the Laub/Benner "Hessenberg
//! method" for transfer-function evaluation), which is what
//! `Macromodel::eval_batch` builds on in `mfti-statespace`.

use crate::complex::Complex;
use crate::error::NumericError;
use crate::householder::make_reflector;
use crate::matrix::CMatrix;

/// The factorization `A = Q H Q*` with `H` upper Hessenberg and `Q`
/// unitary (Householder similarity transforms, LAPACK `zgehrd`-style).
///
/// ```
/// use mfti_numeric::{c64, CMatrix, Hessenberg};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = CMatrix::from_fn(5, 5, |i, j| c64((i * j) as f64, i as f64 - j as f64));
/// let hess = Hessenberg::compute(&a)?;
/// // Reconstruction: Q H Q* == A.
/// let back = hess.q().matmul(hess.h())?.mul_adjoint_right(hess.q())?;
/// assert!(back.approx_eq(&a, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Hessenberg {
    h: CMatrix,
    q: CMatrix,
}

impl Hessenberg {
    /// Reduces `a` to upper Hessenberg form, accumulating the unitary
    /// similarity transform.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] for rectangular input and
    /// [`NumericError::NotFinite`] for inputs with NaN/∞ entries.
    pub fn compute(a: &CMatrix) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::NotSquare {
                op: "hessenberg",
                dims: a.dims(),
            });
        }
        if !a.is_finite() {
            return Err(NumericError::NotFinite { op: "hessenberg" });
        }
        let n = a.rows();
        let mut h = a.clone();
        let mut q = CMatrix::identity(n);
        for k in 0..n.saturating_sub(2) {
            let col: Vec<Complex> = (k + 1..n).map(|i| h[(i, k)]).collect();
            let refl = make_reflector(&col);
            if refl.tau == Complex::ZERO {
                continue;
            }
            // β lands on the subdiagonal; everything below is annihilated.
            h[(k + 1, k)] = Complex::from_real(refl.beta);
            for i in k + 2..n {
                h[(i, k)] = Complex::ZERO;
            }
            // Similarity transform H := P* H P …
            refl.apply_left_adjoint(&mut h, k + 1, k + 1);
            refl.apply_right(&mut h, 0, k + 1);
            // … and accumulation Q := Q P (so A = Q H Q*).
            refl.apply_right(&mut q, 0, k + 1);
        }
        Ok(Hessenberg { h, q })
    }

    /// The upper-Hessenberg factor `H`.
    pub fn h(&self) -> &CMatrix {
        &self.h
    }

    /// The unitary factor `Q` (`A = Q H Q*`).
    pub fn q(&self) -> &CMatrix {
        &self.q
    }

    /// Consumes the factorization, returning `(H, Q)`.
    pub fn into_parts(self) -> (CMatrix, CMatrix) {
        (self.h, self.q)
    }
}

/// Solves `(α·I + β·H) X = B` for upper-Hessenberg `H` via one Givens
/// sweep plus back-substitution — `O(n²·(1 + k))` for `k` right-hand
/// sides instead of the `O(n³)` of a fresh LU.
///
/// Entries below the first subdiagonal of `h` are ignored (they are
/// treated as exact zeros), so a full matrix that is Hessenberg "up to
/// roundoff" is handled correctly.
///
/// # Errors
///
/// * [`NumericError::NotSquare`] / [`NumericError::ShapeMismatch`] for
///   inconsistent dimensions;
/// * [`NumericError::Singular`] when `α·I + β·H` is singular to working
///   precision (for sweep evaluators: `s` hit a pole).
pub fn solve_shifted_hessenberg(
    h: &CMatrix,
    alpha: Complex,
    beta: Complex,
    b: &CMatrix,
) -> Result<CMatrix, NumericError> {
    if !h.is_square() {
        return Err(NumericError::NotSquare {
            op: "hessenberg solve",
            dims: h.dims(),
        });
    }
    let n = h.rows();
    if b.rows() != n {
        return Err(NumericError::ShapeMismatch {
            op: "hessenberg solve",
            left: h.dims(),
            right: b.dims(),
        });
    }
    let m = b.cols();
    if n == 0 {
        return Ok(b.clone());
    }

    // The sweep path calls this once per frequency, so the solver works
    // on flat slices throughout: row pairs of R are rotated via
    // `split_at_mut` (rows are contiguous in the row-major layout) and
    // the right-hand sides are kept column-major so back-substitution
    // reduces to contiguous dot products — no bounds-checked 2-D
    // indexing in any inner loop.

    // R := α·I + β·H in one fused pass over the flat storage. Entries
    // below the first subdiagonal are copied but never read.
    let mut r: Vec<Complex> = h.as_slice().iter().map(|&z| z * beta).collect();
    for i in 0..n {
        r[i * n + i] += alpha;
    }
    // X, column-major: one contiguous length-n vector per RHS column.
    let bs = b.as_slice();
    let mut xcols: Vec<Vec<Complex>> = (0..m)
        .map(|j| (0..n).map(|i| bs[i * m + j]).collect())
        .collect();

    // Givens sweep: annihilate the subdiagonal, applying the same
    // rotations to the right-hand sides. The running maximum of the ρ
    // values (the transformed diagonal) doubles as the magnitude scale
    // for the singularity test below.
    let mut scale_sq = r[0].abs_sq().max(f64::MIN_POSITIVE);
    for k in 0..n - 1 {
        let a_kk = r[k * n + k];
        let a_sub = r[(k + 1) * n + k];
        let sub_sq = a_sub.abs_sq();
        if sub_sq == 0.0 {
            scale_sq = scale_sq.max(a_kk.abs_sq());
            continue;
        }
        let rho_sq = a_kk.abs_sq() + sub_sq;
        let rho = rho_sq.sqrt();
        scale_sq = scale_sq.max(rho_sq);
        let c = a_kk.scale(1.0 / rho);
        let s = a_sub.scale(1.0 / rho);
        let (c_conj, s_conj) = (c.conj(), s.conj());
        let (top, bot) = r[k * n..(k + 2) * n].split_at_mut(n);
        for (t, bttm) in top[k..].iter_mut().zip(&mut bot[k..]) {
            let (t0, b0) = (*t, *bttm);
            *t = c_conj * t0 + s_conj * b0;
            *bttm = c * b0 - s * t0;
        }
        // The rotated subdiagonal entry is exactly ρ by construction.
        top[k] = Complex::from_real(rho);
        bot[k] = Complex::ZERO;
        for col in &mut xcols {
            let (t0, b0) = (col[k], col[k + 1]);
            col[k] = c_conj * t0 + s_conj * b0;
            col[k + 1] = c * b0 - s * t0;
        }
    }
    scale_sq = scale_sq.max(r[n * n - 1].abs_sq());

    // Back-substitution on the triangularized system; a vanishing
    // diagonal (relative to the factor's magnitude) flags singularity.
    let cut_sq = (f64::EPSILON * f64::EPSILON) * scale_sq;
    for i in (0..n).rev() {
        let d = r[i * n + i];
        if d.abs_sq() <= cut_sq {
            return Err(NumericError::Singular {
                op: "hessenberg solve",
            });
        }
        let inv = d.recip();
        let row_tail = &r[i * n + i + 1..(i + 1) * n];
        for col in &mut xcols {
            let mut acc = col[i];
            for (&r_e, &x_e) in row_tail.iter().zip(&col[i + 1..]) {
                acc -= r_e * x_e;
            }
            col[i] = acc * inv;
        }
    }
    let mut out = Vec::with_capacity(n * m);
    for i in 0..n {
        for col in &xcols {
            out.push(col[i]);
        }
    }
    CMatrix::from_vec(n, m, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::solve::solve;

    fn pseudo_random(n: usize, cols: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(n, cols, |_, _| c64(next(), next()))
    }

    #[test]
    fn decomposition_reconstructs_the_input() {
        let a = pseudo_random(8, 8, 0x51);
        let hess = Hessenberg::compute(&a).unwrap();
        let back = hess
            .q()
            .matmul(hess.h())
            .unwrap()
            .mul_adjoint_right(hess.q())
            .unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn q_is_unitary_and_h_is_hessenberg() {
        let a = pseudo_random(7, 7, 0x52);
        let hess = Hessenberg::compute(&a).unwrap();
        let qtq = hess.q().adjoint().matmul(hess.q()).unwrap();
        assert!(qtq.approx_eq(&CMatrix::identity(7), 1e-13));
        for i in 0..7usize {
            for j in 0..i.saturating_sub(1) {
                assert!(hess.h()[(i, j)].abs() < 1e-13);
            }
        }
    }

    #[test]
    fn shifted_solve_matches_dense_lu() {
        let a = pseudo_random(9, 9, 0x53);
        let hess = Hessenberg::compute(&a).unwrap();
        let b = pseudo_random(9, 3, 0x54);
        let bt = hess.q().mul_hermitian_left(&b).unwrap();
        let (alpha, beta) = (c64(0.7, -0.2), c64(1.3, 0.4));
        let x = solve_shifted_hessenberg(hess.h(), alpha, beta, &bt).unwrap();
        let x_full = hess.q().matmul(&x).unwrap();
        // Dense reference: (α·I + β·A) X = B.
        let mut dense = a.map(|z| z * beta);
        for i in 0..9 {
            dense[(i, i)] += alpha;
        }
        let want = solve(&dense, &b).unwrap();
        assert!(x_full.approx_eq(&want, 1e-11));
    }

    #[test]
    fn tiny_systems_are_handled() {
        let a = CMatrix::from_rows(&[vec![c64(2.0, 0.0)]]).unwrap();
        let hess = Hessenberg::compute(&a).unwrap();
        let b = CMatrix::from_rows(&[vec![c64(4.0, 0.0)]]).unwrap();
        let x = solve_shifted_hessenberg(hess.h(), Complex::ZERO, Complex::ONE, &b).unwrap();
        assert!((x[(0, 0)] - c64(2.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn singular_shift_is_reported() {
        // H = diag(1, 2): α = −1, β = 1 makes the first pivot vanish.
        let h = CMatrix::from_diag(&[c64(1.0, 0.0), c64(2.0, 0.0)]);
        let b = CMatrix::identity(2);
        let err = solve_shifted_hessenberg(&h, c64(-1.0, 0.0), Complex::ONE, &b).unwrap_err();
        assert!(matches!(err, NumericError::Singular { .. }));
    }

    #[test]
    fn shape_errors_are_rejected() {
        let rect = CMatrix::zeros(2, 3);
        assert!(Hessenberg::compute(&rect).is_err());
        let h = CMatrix::identity(3);
        let b = CMatrix::zeros(2, 1);
        assert!(solve_shifted_hessenberg(&h, Complex::ONE, Complex::ONE, &b).is_err());
    }
}
