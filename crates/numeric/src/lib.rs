//! Dense complex linear algebra kernels for the MFTI macromodeling workspace.
//!
//! This crate implements, from scratch, every matrix computation the
//! Loewner-pencil algorithms of the MFTI paper (Wang et al., DAC 2010) and
//! the vector-fitting baseline rely on:
//!
//! * [`Complex`] — a `f64`-based complex scalar (constructed with [`c64`]),
//! * [`Matrix`] — a dense, row-major matrix generic over [`Scalar`]
//!   (instantiated as [`CMatrix`] and [`RMatrix`]),
//! * [`kernel`] — cache-blocked, transpose-packed GEMM and the fused
//!   product forms (`AᴴB`, `ABᵀ`, `C ← C + αAB`) every dense product in
//!   the workspace routes through,
//! * [`Lu`] — LU factorization with partial pivoting (solve / det / inverse),
//! * [`Hessenberg`] / [`solve_shifted_hessenberg`] — unitary reduction
//!   `A = Q H Q*` with accumulated `Q`, plus an `O(n²)` Givens solver for
//!   `(αI + βH)X = B` — the backbone of batched frequency sweeps,
//! * [`Schur`] / [`solve_shifted_triangular`] — the complex Schur form
//!   `A = Z T Z*` (shifted QR with accumulated transforms) that collapses
//!   each sweep point to one triangular back-substitution,
//! * [`parallel`] — a scoped-thread, deterministically-chunked parallel
//!   map that fans those per-point solves across cores,
//! * [`Qr`] — Householder QR (orthonormal bases, least squares),
//! * [`Svd`] — singular value decomposition of complex matrices via
//!   Golub–Kahan bidiagonalization with an implicit-shift QR sweep, plus an
//!   independent one-sided Jacobi backend used for cross-validation,
//! * [`SvdUpdater`] — rank-revealing *incremental* SVD: streaming
//!   row/column appends absorbed as bordered low-rank updates of the
//!   retained thin factorization instead of fresh decompositions,
//! * [`eigenvalues`] — complex eigenvalues via Hessenberg reduction and a
//!   shifted QR iteration.
//!
//! No LAPACK/BLAS bindings are used; the implementations follow the
//! textbook algorithms (Golub & Van Loan) and are validated by unit and
//! property tests against their defining identities.
//!
//! # Example
//!
//! ```
//! use mfti_numeric::{c64, CMatrix, Svd};
//!
//! let a = CMatrix::from_fn(3, 2, |i, j| c64((i + j) as f64, i as f64 - j as f64));
//! let svd = Svd::compute(&a).expect("svd of a finite matrix");
//! let reconstructed = svd.reconstruct();
//! assert!((&a - &reconstructed).norm_fro() < 1e-12 * a.norm_fro());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod blocks;
mod complex;
mod error;
mod hessenberg;
mod householder;
mod lu;
mod matrix;
mod norms;
mod ops;
mod qr;
mod scalar;
mod schur;
mod solve;

pub mod diag;
pub mod eig;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod kernel;
pub mod parallel;
pub mod svd;

/// Iteration-budget accessors the iterative kernels consult before
/// falling back to their intrinsic budgets; compiled to a constant
/// `None` (and fully optimized out) without the `fault-injection`
/// feature.
mod fault_budget {
    #[inline]
    pub(crate) fn qr_iteration_cap() -> Option<usize> {
        #[cfg(feature = "fault-injection")]
        {
            crate::faults::qr_iteration_cap()
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            None
        }
    }

    #[inline]
    pub(crate) fn jacobi_sweep_cap() -> Option<usize> {
        #[cfg(feature = "fault-injection")]
        {
            crate::faults::jacobi_sweep_cap()
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            None
        }
    }
}

pub use complex::{c64, Complex};
pub use eig::{eigenvalues, generalized_eigenvalues};
pub use error::NumericError;
pub use hessenberg::{solve_shifted_hessenberg, Hessenberg};
pub use lu::Lu;
pub use matrix::{CMatrix, Matrix, RMatrix};
pub use qr::Qr;
pub use scalar::Scalar;
pub use schur::{
    solve_shifted_triangular, solve_shifted_triangular_batch, solve_shifted_triangular_scaled,
    strict_upper_max_abs, triangular_right_eigenvectors, Schur,
};
pub use solve::{lstsq, solve};
pub use svd::{
    PartialSvd, Svd, SvdFactors, SvdMethod, SvdRecovery, SvdUpdater, DEFAULT_UPDATE_FLOOR,
    DOWNDATE_COND_FLOOR,
};

/// Relative machine tolerance used as the default cut-off in rank
/// decisions throughout the workspace.
///
/// ```
/// assert!(mfti_numeric::DEFAULT_RANK_TOL < 1e-10);
/// ```
pub const DEFAULT_RANK_TOL: f64 = 1e-11;
