use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::complex::{c64, Complex};

/// Field element over which [`Matrix`](crate::Matrix) and the generic
/// factorizations are defined.
///
/// Implemented for `f64` (real matrices) and [`Complex`] (the workhorse of
/// the Loewner algorithms). The trait is sealed: the numerical kernels make
/// floating-point assumptions that other fields would violate.
///
/// ```
/// use mfti_numeric::{Scalar, c64};
///
/// fn trace<T: Scalar>(diag: &[T]) -> T {
///     diag.iter().fold(T::ZERO, |acc, &x| acc + x)
/// }
/// assert_eq!(trace(&[1.0, 2.0]), 3.0);
/// assert_eq!(trace(&[c64(1.0, 1.0), c64(0.0, -1.0)]), c64(1.0, 0.0));
/// ```
pub trait Scalar:
    Copy
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Whether the scalar carries an imaginary component.
    const IS_COMPLEX: bool;

    /// Embeds a real number into the field.
    fn from_f64(x: f64) -> Self;
    /// Complex conjugate (identity for real scalars).
    fn conj(self) -> Self;
    /// Modulus (absolute value).
    fn abs(self) -> f64;
    /// Squared modulus.
    fn abs_sq(self) -> f64;
    /// Real part.
    fn re(self) -> f64;
    /// Imaginary part (zero for real scalars).
    fn im(self) -> f64;
    /// Scales by a real factor.
    fn scale(self, s: f64) -> Self;
    /// Principal square root *within the complex plane*; for `f64` inputs
    /// the argument must be non-negative (checked by `debug_assert!`).
    fn sqrt(self) -> Self;
    /// `true` when all components are finite.
    fn is_finite(self) -> bool;
    /// Promotes to [`Complex`].
    fn to_complex(self) -> Complex;
    /// Truncates to the real part (used when demoting provably-real
    /// results of complex computations).
    fn from_complex_lossy(z: Complex) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for super::Complex {}
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const IS_COMPLEX: bool = false;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn abs_sq(self) -> f64 {
        self * self
    }
    #[inline]
    fn re(self) -> f64 {
        self
    }
    #[inline]
    fn im(self) -> f64 {
        0.0
    }
    #[inline]
    fn scale(self, s: f64) -> Self {
        self * s
    }
    #[inline]
    fn sqrt(self) -> Self {
        debug_assert!(self >= 0.0, "real sqrt of negative number");
        f64::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn to_complex(self) -> Complex {
        c64(self, 0.0)
    }
    #[inline]
    fn from_complex_lossy(z: Complex) -> Self {
        z.re
    }
}

impl Scalar for Complex {
    const ZERO: Self = Complex::ZERO;
    const ONE: Self = Complex::ONE;
    const IS_COMPLEX: bool = true;

    #[inline]
    fn from_f64(x: f64) -> Self {
        c64(x, 0.0)
    }
    #[inline]
    fn conj(self) -> Self {
        Complex::conj(self)
    }
    #[inline]
    fn abs(self) -> f64 {
        Complex::abs(self)
    }
    #[inline]
    fn abs_sq(self) -> f64 {
        Complex::abs_sq(self)
    }
    #[inline]
    fn re(self) -> f64 {
        self.re
    }
    #[inline]
    fn im(self) -> f64 {
        self.im
    }
    #[inline]
    fn scale(self, s: f64) -> Self {
        Complex::scale(self, s)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Complex::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Complex::is_finite(self)
    }
    #[inline]
    fn to_complex(self) -> Complex {
        self
    }
    #[inline]
    fn from_complex_lossy(z: Complex) -> Self {
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_scalar_contract() {
        assert_eq!(<f64 as Scalar>::ZERO, 0.0);
        assert_eq!(Scalar::conj(-2.0f64), -2.0);
        assert_eq!(Scalar::abs(-2.0f64), 2.0);
        assert_eq!(Scalar::abs_sq(3.0f64), 9.0);
        assert_eq!(Scalar::im(5.0f64), 0.0);
        assert!(!Scalar::is_finite(f64::NAN));
        assert_eq!(<f64 as Scalar>::from_complex_lossy(c64(2.0, 9.0)), 2.0);
    }

    #[test]
    fn complex_scalar_contract() {
        let z = c64(1.0, -2.0);
        assert_eq!(Scalar::conj(z), c64(1.0, 2.0));
        assert_eq!(Scalar::re(z), 1.0);
        assert_eq!(Scalar::im(z), -2.0);
        const _: () = assert!(Complex::IS_COMPLEX && !f64::IS_COMPLEX);
        assert_eq!(Scalar::to_complex(z), z);
    }

    #[test]
    fn generic_code_compiles_over_both_fields() {
        fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
            a.iter()
                .zip(b)
                .fold(T::ZERO, |acc, (&x, &y)| acc + x.conj() * y)
        }
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let z = dot(&[c64(0.0, 1.0)], &[c64(0.0, 1.0)]);
        assert_eq!(z, c64(1.0, 0.0));
    }
}
