//! Complex Schur decomposition `A = Z T Zᴴ` with accumulated unitary
//! transforms, and a back-substitution solver for shifted triangular
//! systems.
//!
//! This is the frequency-sweep endgame the Hessenberg machinery of
//! [`crate::Hessenberg`] builds toward: reducing the shift-inverted
//! pencil of a descriptor model to **triangular** (not merely
//! Hessenberg) form once means every subsequent frequency point costs a
//! single triangular back-substitution — `O(n²)` flops with
//! triangular-solve constants and *no per-point factorization work at
//! all*, versus the per-point Givens triangularization the Hessenberg
//! path still pays. `Macromodel::eval_batch` in `mfti-statespace`
//! selects between the two by a crossover heuristic.
//!
//! The iteration is the same Wilkinson-shifted explicit QR used by
//! [`crate::eigenvalues`] (see `eig::qr_algorithm`), extended in two
//! ways: every rotation is applied across the **full** matrix (not just
//! the active window) so the limit is upper triangular everywhere, and
//! the rotations are accumulated into the unitary factor `Z`.

use crate::complex::{c64, Complex};
use crate::eig::qr_algorithm::{wilkinson_shift, zrotg};
use crate::error::NumericError;
use crate::hessenberg::Hessenberg;
use crate::matrix::CMatrix;

/// The complex Schur form `A = Z T Zᴴ` with `T` upper triangular and
/// `Z` unitary.
///
/// The eigenvalues of `A` are the diagonal of `T`, in deflation order.
///
/// ```
/// use mfti_numeric::{c64, CMatrix, Schur};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = CMatrix::from_fn(6, 6, |i, j| c64((i + 2 * j) as f64, i as f64 - j as f64));
/// let schur = Schur::compute(&a)?;
/// // Reconstruction: Z T Zᴴ == A.
/// let back = schur.z().matmul(schur.t())?.mul_adjoint_right(schur.z())?;
/// assert!(back.approx_eq(&a, 1e-10 * a.norm_fro()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Schur {
    t: CMatrix,
    z: CMatrix,
}

impl Schur {
    /// Computes the Schur form of a general square matrix: Householder
    /// reduction to Hessenberg form, then the accumulated QR iteration.
    ///
    /// # Errors
    ///
    /// * [`NumericError::NotSquare`] / [`NumericError::NotFinite`] for
    ///   invalid input;
    /// * [`NumericError::NoConvergence`] when the QR iteration exceeds
    ///   its budget (pathological; not observed on this repo's
    ///   workloads).
    pub fn compute(a: &CMatrix) -> Result<Self, NumericError> {
        Self::from_hessenberg(&Hessenberg::compute(a)?)
    }

    /// Runs the accumulated QR iteration on an existing Hessenberg
    /// factorization `A = Q H Qᴴ`, returning `A = Z T Zᴴ` (the
    /// accumulation starts from `Q`, so `Z` maps all the way back to the
    /// original basis).
    ///
    /// Sweep evaluators that already hold a [`Hessenberg`] use this to
    /// upgrade to the triangular form without re-reducing.
    ///
    /// # Errors
    ///
    /// [`NumericError::NoConvergence`] when the QR iteration exceeds its
    /// budget; the caller still owns the Hessenberg form and can fall
    /// back to it.
    pub fn from_hessenberg(hess: &Hessenberg) -> Result<Self, NumericError> {
        schur_iterate(hess.h().clone(), hess.q().clone())
    }

    /// The upper-triangular factor `T`.
    pub fn t(&self) -> &CMatrix {
        &self.t
    }

    /// The unitary factor `Z` (`A = Z T Zᴴ`).
    pub fn z(&self) -> &CMatrix {
        &self.z
    }

    /// The eigenvalues of `A`: the diagonal of `T`, in deflation order.
    pub fn eigenvalues(&self) -> Vec<Complex> {
        (0..self.t.rows()).map(|i| self.t[(i, i)]).collect()
    }

    /// Consumes the factorization, returning `(T, Z)`.
    pub fn into_parts(self) -> (CMatrix, CMatrix) {
        (self.t, self.z)
    }
}

/// Wilkinson-shifted explicit QR with full-matrix rotation application
/// and accumulation into `z`. `t` must be upper Hessenberg; on entry
/// `A = z t zᴴ` holds and every step preserves it.
fn schur_iterate(mut t: CMatrix, mut z: CMatrix) -> Result<Schur, NumericError> {
    let n = t.rows();
    if n <= 1 {
        return Ok(Schur { t, z });
    }
    let eps = f64::EPSILON;
    let tiny = f64::MIN_POSITIVE;
    let mut hi = n - 1;
    let mut iters_this_window = 0usize;
    // Intrinsic budget, unless a fault-injection cap shrinks it to
    // force the NoConvergence exit (crate::fault_budget).
    let max_iters_per_eig = crate::fault_budget::qr_iteration_cap().unwrap_or(300);

    loop {
        // Deflate negligible subdiagonals (scanning up from the bottom of
        // the active window, exactly as the eigenvalue-only iteration).
        let mut lo = hi;
        while lo > 0 {
            let sub = t[(lo, lo - 1)].abs();
            if sub <= tiny + eps * (t[(lo - 1, lo - 1)].abs() + t[(lo, lo)].abs()) {
                t[(lo, lo - 1)] = Complex::ZERO;
                break;
            }
            lo -= 1;
        }

        if lo == hi {
            // 1×1 block converged. (Unlike the eigenvalue-only iteration
            // there is no analytic 2×2 escape: a 2×2 window must be
            // rotated to triangular form, which the Wilkinson shift does
            // in one or two sweeps — the shift is then an exact
            // eigenvalue, so the QR step deflates it to roundoff.)
            iters_this_window = 0;
            if hi == 0 {
                break;
            }
            hi -= 1;
            continue;
        }

        iters_this_window += 1;
        if iters_this_window > max_iters_per_eig {
            return Err(NumericError::NoConvergence {
                op: "schur qr",
                iterations: iters_this_window,
            });
        }

        // Shift: Wilkinson by default; occasionally an exceptional shift
        // to break symmetry-induced cycling.
        let mu = if iters_this_window.is_multiple_of(24) {
            let lower = if hi >= 2 {
                t[(hi - 1, hi - 2)].abs()
            } else {
                0.0
            };
            let m = t[(hi, hi - 1)].abs() + lower;
            t[(hi, hi)] + c64(0.75 * m, 0.3 * m)
        } else {
            wilkinson_shift(
                t[(hi - 1, hi - 1)],
                t[(hi - 1, hi)],
                t[(hi, hi - 1)],
                t[(hi, hi)],
            )
        };

        // Explicit QR step on the window: T − μI = QR, then T := RQ + μI.
        // The μ bookkeeping is confined to the window diagonal, but every
        // rotation is applied across the full matrix — left over columns
        // k+1..n, right over rows 0..=k+1 — and accumulated into Z, so
        // A = Z T Zᴴ is preserved exactly and the limit is globally
        // triangular.
        for i in lo..=hi {
            t[(i, i)] -= mu;
        }
        let mut rot = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let (c, s, r) = zrotg(t[(k, k)], t[(k + 1, k)]);
            t[(k, k)] = r;
            t[(k + 1, k)] = Complex::ZERO;
            for j in k + 1..n {
                let t1 = t[(k, j)];
                let t2 = t[(k + 1, j)];
                t[(k, j)] = t1.scale(c) + s * t2;
                t[(k + 1, j)] = t2.scale(c) - s.conj() * t1;
            }
            rot.push((c, s));
        }
        for (idx, &(c, s)) in rot.iter().enumerate() {
            let k = lo + idx;
            // T := T Gᴴ on columns k, k+1 (rows 0..=k+1 are the only
            // structurally nonzero ones in the R factor)…
            for i in 0..=k + 1 {
                let u = t[(i, k)];
                let v = t[(i, k + 1)];
                t[(i, k)] = u.scale(c) + v * s.conj();
                t[(i, k + 1)] = v.scale(c) - u * s;
            }
            // … and the accumulation Z := Z Gᴴ over all rows.
            for i in 0..n {
                let u = z[(i, k)];
                let v = z[(i, k + 1)];
                z[(i, k)] = u.scale(c) + v * s.conj();
                z[(i, k + 1)] = v.scale(c) - u * s;
            }
        }
        for i in lo..=hi {
            t[(i, i)] += mu;
        }
    }

    // The strictly-lower part is structurally zero (subdiagonals were
    // deflated to exact zeros, everything below was never touched); clear
    // any entry the loop left behind so callers can rely on exact
    // triangularity.
    for i in 1..n {
        for j in 0..i {
            t[(i, j)] = Complex::ZERO;
        }
    }
    Ok(Schur { t, z })
}

/// How many shifts march down the rows together in one back-substitution
/// block. Each row's `T` column then feeds `SHIFT_BLOCK × m` independent
/// axpy streams (instruction-level parallelism the serial per-shift
/// recurrence cannot offer), while the block's scratch planes
/// (`SHIFT_BLOCK · m · n` reals per plane) stay cache-resident.
const SHIFT_BLOCK: usize = 8;

/// Column-sweep back-substitution for a **block** of shifts in lockstep
/// over split-complex scratch planes: for each row `i` (bottom-up) and
/// each of the block's `B·m` columns, finalize `x[i] ← x[i]·dᵢ⁻¹` and
/// push its contribution up into rows `0..i` with one contiguous
/// `x ← x − w·t` axpy — no dot-product reductions, just independent
/// real FMA streams sharing one load of `T`'s column.
///
/// Every shift's arithmetic sequence is independent of the block
/// composition, which is what keeps batched, blocked, and one-at-a-time
/// solves bit-identical.
///
/// `tc_re`/`tc_im` hold the strict upper triangle of `T` column-major
/// (column `i` at offset `i·n`); `x_re`/`x_im` hold `m` columns of
/// length `n` per shift; `inv_diag` holds shift `k`'s pivot inverses at
/// `k·n + i`.
#[allow(clippy::too_many_arguments)]
fn backsub_block(
    tc_re: &[f64],
    tc_im: &[f64],
    inv_diag: &[Complex],
    betas: &[Complex],
    x_re: &mut [f64],
    x_im: &mut [f64],
    n: usize,
    m: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::kernel::fma_available() {
            // SAFETY: feature availability checked on this host. One
            // dispatch per block — every inner loop inlines inside the
            // target-feature context, so results are consistent within
            // any one host, exactly like the GEMM layer.
            unsafe {
                backsub_block_fma(tc_re, tc_im, inv_diag, betas, x_re, x_im, n, m);
            }
            return;
        }
    }
    backsub_block_generic(tc_re, tc_im, inv_diag, betas, x_re, x_im, n, m);
}

/// AVX2+FMA instantiation of [`backsub_block`] (the `target_feature`
/// context keeps the axpy micro-kernel inlined across the whole block
/// instead of paying a call boundary per row).
///
/// # Safety
///
/// Callers must ensure the host CPU supports `avx2` and `fma`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn backsub_block_fma(
    tc_re: &[f64],
    tc_im: &[f64],
    inv_diag: &[Complex],
    betas: &[Complex],
    x_re: &mut [f64],
    x_im: &mut [f64],
    n: usize,
    m: usize,
) {
    // Per row: finalize every stream's x[i] first (streams are disjoint
    // columns, so the order is immaterial), then drain the updates in
    // pairs — the two-column axpy shares each load of T's column between
    // two independent FMA streams. `streams` holds (w.re, w.im, column
    // offset) per update.
    let total = betas.len() * m;
    let mut streams: Vec<(f64, f64, usize)> = Vec::with_capacity(total);
    let xr_ptr = x_re.as_mut_ptr();
    let xi_ptr = x_im.as_mut_ptr();
    for i in (0..n).rev() {
        let col_re = &tc_re[i * n..i * n + i];
        let col_im = &tc_im[i * n..i * n + i];
        streams.clear();
        for (k, &beta) in betas.iter().enumerate() {
            let inv = inv_diag[k * n + i];
            for c in 0..m {
                let base = (k * m + c) * n;
                let xi = c64(*xr_ptr.add(base + i), *xi_ptr.add(base + i)) * inv;
                *xr_ptr.add(base + i) = xi.re;
                *xi_ptr.add(base + i) = xi.im;
                // The β factor folds into the update coefficient, so the
                // axpy subtracts β·xᵢ·T[0..i, i] in one pass.
                let w = beta * xi;
                streams.push((w.re, w.im, base));
            }
        }
        // SAFETY: the reconstructed slices live at distinct column
        // offsets (disjoint `base..base+i` ranges, one per stream) of
        // the scratch planes borrowed mutably by this function.
        let mut pairs = streams.chunks_exact(2);
        for pair in &mut pairs {
            let (w, v) = (pair[0], pair[1]);
            crate::kernel::caxpy2_neg_fma(
                w.0,
                w.1,
                v.0,
                v.1,
                col_re,
                col_im,
                std::slice::from_raw_parts_mut(xr_ptr.add(w.2), i),
                std::slice::from_raw_parts_mut(xi_ptr.add(w.2), i),
                std::slice::from_raw_parts_mut(xr_ptr.add(v.2), i),
                std::slice::from_raw_parts_mut(xi_ptr.add(v.2), i),
            );
        }
        for w in pairs.remainder() {
            crate::kernel::caxpy_neg_fma(
                w.0,
                w.1,
                col_re,
                col_im,
                std::slice::from_raw_parts_mut(xr_ptr.add(w.2), i),
                std::slice::from_raw_parts_mut(xi_ptr.add(w.2), i),
            );
        }
    }
}

/// Portable instantiation of [`backsub_block`] (same loop structure as
/// the FMA path; mul/sub instead of fused ops).
#[allow(clippy::too_many_arguments)]
fn backsub_block_generic(
    tc_re: &[f64],
    tc_im: &[f64],
    inv_diag: &[Complex],
    betas: &[Complex],
    x_re: &mut [f64],
    x_im: &mut [f64],
    n: usize,
    m: usize,
) {
    for i in (0..n).rev() {
        let col_re = &tc_re[i * n..i * n + i];
        let col_im = &tc_im[i * n..i * n + i];
        for (k, &beta) in betas.iter().enumerate() {
            let inv = inv_diag[k * n + i];
            for c in 0..m {
                let base = (k * m + c) * n;
                let xi = c64(x_re[base + i], x_im[base + i]) * inv;
                x_re[base + i] = xi.re;
                x_im[base + i] = xi.im;
                let w = beta * xi;
                let (xre, xim) = (&mut x_re[base..base + i], &mut x_im[base..base + i]);
                for ((tr, ti), (xr, xim_e)) in col_re
                    .iter()
                    .zip(col_im)
                    .zip(xre.iter_mut().zip(xim.iter_mut()))
                {
                    let r = *xr - (w.re * *tr - w.im * *ti);
                    let im = *xim_e - (w.re * *ti + w.im * *tr);
                    *xr = r;
                    *xim_e = im;
                }
            }
        }
    }
}

/// Solves `(α·I + β·T) X = B` for upper-triangular `T` by pure
/// back-substitution — `O(n²)` per right-hand side with no factorization
/// work at all, the per-frequency kernel of Schur-form sweeps.
///
/// Entries below the diagonal of `t` are ignored (treated as exact
/// zeros), so a matrix that is triangular "up to roundoff" is handled
/// correctly. The shifted matrix `α·I + β·T` is never materialized: the
/// diagonal is formed on the fly and each row's off-diagonal dot product
/// is scaled by `β` once.
///
/// # Errors
///
/// * [`NumericError::NotSquare`] / [`NumericError::ShapeMismatch`] for
///   inconsistent dimensions;
/// * [`NumericError::Singular`] when some `α + β·Tᵢᵢ` vanishes relative
///   to the magnitude of `α·I + β·T` (for sweep evaluators: `s` hit a
///   pole).
pub fn solve_shifted_triangular(
    t: &CMatrix,
    alpha: Complex,
    beta: Complex,
    b: &CMatrix,
) -> Result<CMatrix, NumericError> {
    solve_shifted_triangular_scaled(t, alpha, beta, b, strict_upper_max_abs(t))
}

/// The largest modulus over the strict upper triangle of `t` — the
/// precomputable part of [`solve_shifted_triangular`]'s singularity
/// scale. Sweep evaluators call this once per factorization and pass the
/// result to [`solve_shifted_triangular_scaled`] for every frequency,
/// keeping the per-point cost at pure back-substitution.
pub fn strict_upper_max_abs(t: &CMatrix) -> f64 {
    let n = t.cols();
    let ts = t.as_slice();
    let mut max_sq = 0.0f64;
    for i in 0..t.rows() {
        for &e in &ts[i * n + (i + 1).min(n)..(i + 1) * n] {
            max_sq = max_sq.max(e.abs_sq());
        }
    }
    max_sq.sqrt()
}

/// [`solve_shifted_triangular`] with the strict-upper-triangle magnitude
/// of `t` supplied by the caller (see [`strict_upper_max_abs`]), so the
/// per-point work is exactly one back-substitution — no `O(n²)` scan.
///
/// # Errors
///
/// Same as [`solve_shifted_triangular`].
pub fn solve_shifted_triangular_scaled(
    t: &CMatrix,
    alpha: Complex,
    beta: Complex,
    b: &CMatrix,
    t_upper_max_abs: f64,
) -> Result<CMatrix, NumericError> {
    // One shift through the batch kernel: a single implementation keeps
    // the scalar and multi-shift paths bit-identical by construction.
    let mut out = solve_shifted_triangular_batch(t, &[(alpha, beta)], b, t_upper_max_abs)?;
    out.pop().ok_or(NumericError::InvalidArgument {
        what: "one-shift batch solve produced no solution",
    })
}

/// Multi-shift variant of [`solve_shifted_triangular_scaled`]: solves
/// `(αₖ·I + βₖ·T) Xₖ = B` for a whole batch of shifts sharing one
/// triangular factor and one right-hand side — the inner kernel of
/// Schur-form frequency sweeps, where every frequency contributes one
/// `(αₖ, βₖ)` pair.
///
/// The back-substitution streams each row tail of `T` across **all**
/// shifts and right-hand-side columns while it is hot in cache, so the
/// `O(n²)` factor traffic is paid once per batch instead of once per
/// shift. Per shift, the arithmetic (operation order included) is
/// exactly that of [`solve_shifted_triangular_scaled`], so batched and
/// one-at-a-time solves produce **bit-identical** results — the property
/// the deterministic parallel sweeps in `mfti-statespace` rely on when
/// they split a sweep into per-worker blocks.
///
/// # Errors
///
/// * Shape errors as [`solve_shifted_triangular`];
/// * [`NumericError::Singular`] if **any** shift makes `αₖ·I + βₖ·T`
///   singular to working precision (detected upfront on the diagonal;
///   callers that need to know *which* shift hit a pole re-run the
///   scalar solver per shift).
pub fn solve_shifted_triangular_batch(
    t: &CMatrix,
    shifts: &[(Complex, Complex)],
    b: &CMatrix,
    t_upper_max_abs: f64,
) -> Result<Vec<CMatrix>, NumericError> {
    if !t.is_square() {
        return Err(NumericError::NotSquare {
            op: "triangular batch solve",
            dims: t.dims(),
        });
    }
    let n = t.rows();
    if b.rows() != n {
        return Err(NumericError::ShapeMismatch {
            op: "triangular batch solve",
            left: t.dims(),
            right: b.dims(),
        });
    }
    let m = b.cols();
    let k_shifts = shifts.len();
    if n == 0 || k_shifts == 0 {
        return Ok(vec![b.clone(); k_shifts]);
    }
    let ts = t.as_slice();

    // Pivot pass: every shift's diagonal and singularity cut, up front.
    // (A triangular matrix with a vanishing diagonal entry is singular
    // no matter how large the off-diagonal part — but the cut must be
    // *relative* to that part, or mildly scaled systems would pass.)
    let mut inv_diag: Vec<Complex> = Vec::with_capacity(k_shifts * n);
    for &(alpha, beta) in shifts {
        let mut scale_sq = (beta.abs() * t_upper_max_abs)
            .powi(2)
            .max(f64::MIN_POSITIVE);
        for i in 0..n {
            scale_sq = scale_sq.max((alpha + beta * ts[i * n + i]).abs_sq());
        }
        let cut_sq = (f64::EPSILON * f64::EPSILON) * scale_sq;
        for i in 0..n {
            let d = alpha + beta * ts[i * n + i];
            if d.abs_sq() <= cut_sq {
                return Err(NumericError::Singular {
                    op: "triangular batch solve",
                });
            }
            inv_diag.push(d.recip());
        }
    }

    // Split the strict upper triangle of T into **column-major** re/im
    // planes once per batch. The back-substitution then runs as a column
    // sweep: finalizing x[i] pushes its contribution up into rows 0..i
    // with one contiguous split-complex axpy — no dot-product reductions
    // at all, just straight-line FMA streams.
    let mut tc_re = vec![0.0f64; n * n];
    let mut tc_im = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..i {
            let z = ts[j * n + i];
            tc_re[i * n + j] = z.re;
            tc_im[i * n + j] = z.im;
        }
    }

    // Blocks of SHIFT_BLOCK shifts march down the rows in lockstep over
    // one reused pair of scratch planes: each load of a `T` column feeds
    // the whole block's independent axpy streams, and the block's
    // columns stay cache-resident across the sweep.
    let bs = b.as_slice();
    let mut x_re = vec![0.0f64; SHIFT_BLOCK * m * n];
    let mut x_im = vec![0.0f64; SHIFT_BLOCK * m * n];
    let mut out = Vec::with_capacity(k_shifts);
    for (kb, block) in shifts.chunks(SHIFT_BLOCK).enumerate() {
        let block_len = block.len();
        for (k, _) in block.iter().enumerate() {
            for c in 0..m {
                let base = (k * m + c) * n;
                for i in 0..n {
                    let z = bs[i * m + c];
                    x_re[base + i] = z.re;
                    x_im[base + i] = z.im;
                }
            }
        }
        let betas: Vec<Complex> = block.iter().map(|&(_, beta)| beta).collect();
        let inv_block = &inv_diag[kb * SHIFT_BLOCK * n..kb * SHIFT_BLOCK * n + block_len * n];
        backsub_block(
            &tc_re,
            &tc_im,
            inv_block,
            &betas,
            &mut x_re[..block_len * m * n],
            &mut x_im[..block_len * m * n],
            n,
            m,
        );
        for k in 0..block_len {
            let mut data = Vec::with_capacity(n * m);
            for i in 0..n {
                for c in 0..m {
                    let base = (k * m + c) * n;
                    data.push(c64(x_re[base + i], x_im[base + i]));
                }
            }
            out.push(CMatrix::from_vec(n, m, data)?);
        }
    }
    Ok(out)
}

/// Right eigenvector matrix of an upper-triangular `t` with
/// (near-)distinct diagonal: returns an upper-triangular `V` with
/// unit-2-norm columns satisfying `T·V ≈ V·diag(T)`, computed column by
/// column with one back-substitution each (`O(n³/6)` total).
///
/// Returns `None` when two diagonal entries are too close for a stable
/// division (clustered or defective spectrum) — callers that wanted to
/// diagonalize a sweep fall back to per-point back-substitution, which
/// works for every matrix. Closeness is judged relative to the largest
/// eigenvalue magnitude; the resulting `V` can still be arbitrarily
/// ill-conditioned, so callers must validate (e.g. probe-point
/// comparison against the non-diagonalized path) before trusting it.
pub fn triangular_right_eigenvectors(t: &CMatrix) -> Option<CMatrix> {
    if !t.is_square() {
        return None;
    }
    let n = t.rows();
    let ts = t.as_slice();
    let lam_scale = (0..n)
        .map(|i| ts[i * n + i].abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let sep_floor = 1e-14 * lam_scale;
    let mut v = vec![Complex::ZERO; n * n];
    let mut col: Vec<Complex> = Vec::new();
    for k in 0..n {
        let lam = ts[k * n + k];
        col.clear();
        col.resize(k + 1, Complex::ZERO);
        col[k] = Complex::ONE;
        for i in (0..k).rev() {
            let mut acc = Complex::ZERO;
            for (j, &v_j) in col.iter().enumerate().take(k + 1).skip(i + 1) {
                acc += ts[i * n + j] * v_j;
            }
            let denom = lam - ts[i * n + i];
            if denom.abs() <= sep_floor {
                return None;
            }
            col[i] = acc / denom;
        }
        let norm = col.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        if !norm.is_finite() || norm == 0.0 {
            return None;
        }
        let inv_norm = norm.recip();
        for (i, &v_i) in col.iter().enumerate() {
            v[i * n + k] = v_i.scale(inv_norm);
        }
    }
    CMatrix::from_vec(n, n, v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::solve::solve;

    fn pseudo_random(n: usize, cols: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(n, cols, |_, _| c64(next(), next()))
    }

    fn assert_schur_of(a: &CMatrix, schur: &Schur, tol: f64) {
        let n = a.rows();
        // T upper triangular (exactly, by construction).
        for i in 0..n {
            for j in 0..i {
                assert_eq!(schur.t()[(i, j)], Complex::ZERO, "T not triangular");
            }
        }
        // Z unitary.
        let ztz = schur.z().adjoint().matmul(schur.z()).unwrap();
        assert!(ztz.approx_eq(&CMatrix::identity(n), 1e-12), "Z not unitary");
        // Reconstruction.
        let back = schur
            .z()
            .matmul(schur.t())
            .unwrap()
            .mul_adjoint_right(schur.z())
            .unwrap();
        let rel = (&back - a).norm_fro() / a.norm_fro().max(f64::MIN_POSITIVE);
        assert!(rel < tol, "reconstruction residual {rel:.2e}");
    }

    #[test]
    fn schur_of_random_dense_matrix_reconstructs() {
        for (n, seed) in [(2usize, 0x11u64), (5, 0x22), (12, 0x33), (24, 0x44)] {
            let a = pseudo_random(n, n, seed);
            let schur = Schur::compute(&a).unwrap();
            assert_schur_of(&a, &schur, 1e-12);
        }
    }

    #[test]
    fn schur_eigenvalues_match_qr_eigenvalues() {
        let a = pseudo_random(9, 9, 0x55);
        let mut from_schur = Schur::compute(&a).unwrap().eigenvalues();
        let mut from_qr = crate::eig::eigenvalues(&a).unwrap();
        let key = |z: &Complex| (z.re, z.im);
        from_schur.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        from_qr.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        for (s, q) in from_schur.iter().zip(&from_qr) {
            assert!((*s - *q).abs() < 1e-9, "eigenvalue mismatch: {s} vs {q}");
        }
    }

    #[test]
    fn from_hessenberg_starts_at_the_original_basis() {
        let a = pseudo_random(10, 10, 0x66);
        let hess = Hessenberg::compute(&a).unwrap();
        let schur = Schur::from_hessenberg(&hess).unwrap();
        assert_schur_of(&a, &schur, 1e-12);
    }

    #[test]
    fn tiny_and_empty_matrices() {
        let empty = Schur::compute(&CMatrix::zeros(0, 0)).unwrap();
        assert!(empty.eigenvalues().is_empty());
        let one = CMatrix::from_rows(&[vec![c64(3.0, -1.0)]]).unwrap();
        let schur = Schur::compute(&one).unwrap();
        assert_eq!(schur.t()[(0, 0)], c64(3.0, -1.0));
        assert_eq!(schur.z()[(0, 0)], Complex::ONE);
    }

    #[test]
    fn defective_matrix_still_triangularizes() {
        // Jordan block: defective (one eigenvector), but the Schur form
        // exists for every matrix.
        let mut a = CMatrix::zeros(4, 4);
        for i in 0..4 {
            a[(i, i)] = c64(2.0, 1.0);
            if i + 1 < 4 {
                a[(i, i + 1)] = Complex::ONE;
            }
        }
        let schur = Schur::compute(&a).unwrap();
        assert_schur_of(&a, &schur, 1e-12);
    }

    #[test]
    fn triangular_solve_matches_dense_lu() {
        let a = pseudo_random(11, 11, 0x77);
        let schur = Schur::compute(&a).unwrap();
        let b = pseudo_random(11, 3, 0x78);
        let bt = schur.z().mul_hermitian_left(&b).unwrap();
        let (alpha, beta) = (c64(0.9, 0.4), c64(-0.3, 1.1));
        let x = solve_shifted_triangular(schur.t(), alpha, beta, &bt).unwrap();
        let x_full = schur.z().matmul(&x).unwrap();
        // Dense reference: (α·I + β·A) X = B.
        let mut dense = a.map(|z| z * beta);
        for i in 0..11 {
            dense[(i, i)] += alpha;
        }
        let want = solve(&dense, &b).unwrap();
        assert!(x_full.approx_eq(&want, 1e-10));
    }

    #[test]
    fn singular_shift_is_reported() {
        let t = CMatrix::from_diag(&[c64(1.0, 0.0), c64(2.0, 0.0)]);
        let b = CMatrix::identity(2);
        let err = solve_shifted_triangular(&t, c64(-2.0, 0.0), Complex::ONE, &b).unwrap_err();
        assert!(matches!(err, NumericError::Singular { .. }));
    }

    #[test]
    fn near_singular_shift_relative_to_offdiagonal_is_reported() {
        // Diagonal ~1e-20 but off-diagonal O(1): singular to working
        // precision relative to the matrix magnitude.
        let t = CMatrix::from_rows(&[
            vec![c64(1e-20, 0.0), c64(1.0, 0.0)],
            vec![Complex::ZERO, c64(1e-20, 0.0)],
        ])
        .unwrap();
        let b = CMatrix::identity(2);
        let err = solve_shifted_triangular(&t, Complex::ZERO, Complex::ONE, &b).unwrap_err();
        assert!(matches!(err, NumericError::Singular { .. }));
    }

    #[test]
    fn shape_errors_are_rejected() {
        let rect = CMatrix::zeros(2, 3);
        let b1 = CMatrix::zeros(2, 1);
        assert!(solve_shifted_triangular(&rect, Complex::ONE, Complex::ONE, &b1).is_err());
        let t = CMatrix::identity(3);
        let b2 = CMatrix::zeros(2, 1);
        assert!(solve_shifted_triangular(&t, Complex::ONE, Complex::ONE, &b2).is_err());
        assert!(Schur::compute(&rect).is_err());
    }

    #[test]
    fn zero_dimension_solve_passes_through() {
        let t = CMatrix::zeros(0, 0);
        let b = CMatrix::zeros(0, 0);
        let x = solve_shifted_triangular(&t, Complex::ONE, Complex::ONE, &b).unwrap();
        assert_eq!(x.dims(), (0, 0));
    }

    #[test]
    fn batch_solve_is_bit_identical_to_scalar_solves() {
        let a = pseudo_random(17, 17, 0x99);
        let schur = Schur::compute(&a).unwrap();
        let (tm, _) = schur.into_parts();
        let upper = strict_upper_max_abs(&tm);
        let b = pseudo_random(17, 3, 0x9a);
        let shifts: Vec<(Complex, Complex)> = (0..29)
            .map(|k| (Complex::ONE, c64(0.05 * k as f64, -0.3 + 0.07 * k as f64)))
            .collect();
        let batch = solve_shifted_triangular_batch(&tm, &shifts, &b, upper).unwrap();
        for (&(alpha, beta), x_batch) in shifts.iter().zip(&batch) {
            let x_scalar = solve_shifted_triangular_scaled(&tm, alpha, beta, &b, upper).unwrap();
            assert!(
                x_batch
                    .as_slice()
                    .iter()
                    .zip(x_scalar.as_slice())
                    .all(|(p, q)| p.re.to_bits() == q.re.to_bits()
                        && p.im.to_bits() == q.im.to_bits()),
                "batch and scalar solves differ in bits"
            );
        }
    }

    #[test]
    fn batch_solve_flags_a_singular_shift() {
        let tm = CMatrix::from_diag(&[c64(1.0, 0.0), c64(2.0, 0.0)]);
        let b = CMatrix::identity(2);
        let shifts = [
            (Complex::ONE, Complex::ONE),
            (c64(-2.0, 0.0), Complex::ONE), // hits the λ = 2 pivot
        ];
        let err = solve_shifted_triangular_batch(&tm, &shifts, &b, 0.0).unwrap_err();
        assert!(matches!(err, NumericError::Singular { .. }));
    }

    #[test]
    fn batch_solve_handles_empty_inputs() {
        let tm = CMatrix::identity(3);
        let b = CMatrix::zeros(3, 2);
        assert!(solve_shifted_triangular_batch(&tm, &[], &b, 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn triangular_eigenvectors_diagonalize_separated_spectra() {
        let n = 14;
        let a = pseudo_random(n, n, 0xabc);
        let schur = Schur::compute(&a).unwrap();
        let (tm, _) = schur.into_parts();
        let v = triangular_right_eigenvectors(&tm).expect("random spectra are separated");
        // V upper triangular with unit columns.
        for i in 0..n {
            for j in 0..i {
                assert_eq!(v[(i, j)], Complex::ZERO);
            }
            let norm: f64 = (0..n).map(|r| v[(r, i)].abs_sq()).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
        // T·V = V·diag(T), column by column.
        let tv = tm.matmul(&v).unwrap();
        for k in 0..n {
            let lam = tm[(k, k)];
            for i in 0..n {
                let resid = (tv[(i, k)] - v[(i, k)] * lam).abs();
                assert!(resid < 1e-10, "eigen residual {resid:.2e} at ({i},{k})");
            }
        }
    }

    #[test]
    fn triangular_eigenvectors_reject_repeated_eigenvalues() {
        // A Jordan block has a defective (repeated) diagonal: no full
        // eigenvector basis exists and the routine must bail out.
        let mut t = CMatrix::zeros(4, 4);
        for i in 0..4 {
            t[(i, i)] = c64(1.0, 1.0);
            if i + 1 < 4 {
                t[(i, i + 1)] = Complex::ONE;
            }
        }
        assert!(triangular_right_eigenvectors(&t).is_none());
        assert!(triangular_right_eigenvectors(&CMatrix::zeros(2, 3)).is_none());
    }
}
