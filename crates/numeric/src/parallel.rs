//! Scoped-thread parallel executor with **deterministic static chunking**.
//!
//! The offline build environment precludes rayon, so the workspace ships
//! its own minimal fan-out primitive built on [`std::thread::scope`].
//! It is deliberately simple — no work stealing, no dynamic scheduling —
//! because the frequency-sweep workloads it serves
//! (`Macromodel::eval_batch` in `mfti-statespace`, passivity scans,
//! fit-error metrics) consist of uniform, independent per-item jobs.
//!
//! # Determinism guarantee
//!
//! [`map`] and [`map_with`] compute `out[i] = f(i, &items[i])` where `f`
//! sees **only** the item index and value — never the chunk layout, the
//! worker id, or any shared mutable state. Each worker writes a disjoint,
//! contiguous slice of the output (static chunk assignment, one chunk per
//! worker), so the result is **bit-identical for every thread count**,
//! including the serial `threads == 1` path. The test suite asserts this
//! at 1, 2 and `N` threads.
//!
//! # Thread-count control
//!
//! [`available_threads`] is the default worker count used by the sweep
//! paths: the `MFTI_THREADS` environment variable when it parses as a
//! positive integer, otherwise [`std::thread::available_parallelism`].
//! Callers that need explicit control (benchmarks, servers with their own
//! pools) use the `*_with` variants and pass a count directly.
//!
//! ```
//! let squares = mfti_numeric::parallel::map_with(4, &[1i64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

/// Hard ceiling on the worker count: beyond this, thread spawn overhead
/// dwarfs any per-chunk win for the dense-sweep workloads in this repo.
const MAX_THREADS: usize = 256;

/// Default worker count for parallel sweeps: the `MFTI_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when even that is unknown).
/// The result is clamped to `1..=256`.
pub fn available_threads() -> usize {
    let default = || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let n = match std::env::var("MFTI_THREADS") {
        Ok(v) => parse_thread_override(&v).unwrap_or_else(default),
        Err(_) => default(),
    };
    n.clamp(1, MAX_THREADS)
}

/// Parses an `MFTI_THREADS`-style override; `None` for anything that is
/// not a positive integer (the caller then falls back to the hardware
/// count).
fn parse_thread_override(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Parallel `out[i] = f(i, &items[i])` with [`available_threads`] workers.
///
/// See [`map_with`] for the chunking and determinism contract.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(available_threads(), items, f)
}

/// Parallel `out[i] = f(i, &items[i])` over at most `threads` scoped
/// workers.
///
/// Items are split into `⌈len / workers⌉`-sized contiguous chunks, one
/// per worker, assigned statically in index order; each worker fills its
/// own disjoint output slice. Because `f` never observes the chunk
/// layout, the output is bit-identical for every `threads` value. With
/// `threads <= 1` (or a single item) no thread is spawned at all.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, MAX_THREADS).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (ci, (in_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let base = ci * chunk;
                for (k, (x, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(base + k, x));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every chunk slot filled")) // mfti-lint: allow(MFTI-D7) — chunks(chunk) tiles 0..n exactly; the scope joined every writer
        .collect()
}

/// Fallible variant of [`map_with`]: runs every item, then returns the
/// error of the **lowest-index** failing item (matching what a serial
/// fail-fast loop would report), independent of thread count.
///
/// # Errors
///
/// The error produced by the lowest-index item whose `f` failed.
pub fn try_map_with<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    map_with(threads, items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let serial: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| i * 1000 + x)
            .collect();
        for threads in [1, 2, 3, 7, 16, 200] {
            let par = map_with(threads, &items, |i, &x| i * 1000 + x);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // The determinism contract is *bit* identity, not approximate
        // equality: compare the raw f64 bit patterns.
        let items: Vec<f64> = (0..257).map(|i| 1.0 + i as f64 * 0.7).collect();
        let work = |_: usize, &x: &f64| (x.sin() * x.sqrt()).ln_1p() / (x + 0.3);
        let one = map_with(1, &items, work);
        for threads in [2, 5, 64] {
            let many = map_with(threads, &items, work);
            assert!(
                one.iter()
                    .zip(&many)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_with(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map_with(8, &[41u8], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn zero_threads_degrades_to_serial() {
        assert_eq!(map_with(0, &[1, 2, 3], |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn try_map_reports_the_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 8] {
            let got: Result<Vec<usize>, usize> =
                try_map_with(
                    threads,
                    &items,
                    |i, &x| {
                        if x % 10 == 7 {
                            Err(i)
                        } else {
                            Ok(x)
                        }
                    },
                );
            assert_eq!(got.unwrap_err(), 7, "threads = {threads}");
        }
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override("  12\n"), Some(12));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override("-3"), None);
        assert_eq!(parse_thread_override("many"), None);
        assert_eq!(parse_thread_override(""), None);
    }

    #[test]
    fn available_threads_is_positive_and_bounded() {
        let n = available_threads();
        assert!((1..=MAX_THREADS).contains(&n));
    }
}
