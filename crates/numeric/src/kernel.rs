//! Cache-blocked dense product kernels — the single hot path every
//! matrix product in the workspace routes through.
//!
//! The Loewner-pencil algorithms spend almost all of their time in a
//! handful of dense product shapes (pencil assembly, shifted-pencil SVD
//! inputs, the Lemma 3.4 projections). This module implements them over
//! raw row-major slices with:
//!
//! * **transpose packing** — the right operand is packed so that both
//!   operands of every inner product are contiguous in the shared `k`
//!   dimension (and bounds checks vanish from the inner loop),
//! * **cache blocking** — panels of `KC`×`NB` keep the packed
//!   working set resident in L1/L2 across the `i` sweep,
//! * **register tiling** — a 1×4 micro-kernel reuses each element of
//!   the left row across four output columns with independent
//!   accumulator chains,
//! * **fused operand transposes** — [`mul_hermitian_left`] (`AᴴB`) and
//!   [`mul_transpose_right`] (`ABᵀ`) fold the transpose into the packing
//!   (or skip packing entirely: `ABᵀ` is already two row-major
//!   `k`-contiguous operands), so call sites never materialize an
//!   explicit conjugate-transpose temporary,
//! * **fused accumulation** — [`accumulate_scaled`] computes
//!   `C ← C + αAB` without allocating the product.
//!
//! [`mul_naive`] keeps the textbook per-element triple loop as the
//! correctness reference for property tests and the benchmark baseline
//! (`crates/bench/benches/gemm_kernels.rs` tracks the speedup).

use crate::error::NumericError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Block length along the shared `k` dimension: a packed row panel of
/// `KC` scalars (4 KiB for complex) stays in L1 while it is reused.
const KC: usize = 256;

/// Right-operand rows per panel: `NB × KC` packed scalars (~192 KiB for
/// complex) stay L2-resident across the whole `i` sweep of a block.
const NB: usize = 48;

/// Inner product of two equal-length contiguous slices with four
/// independent accumulator chains.
#[inline(always)]
fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    let mut acc0 = T::ZERO;
    let mut acc1 = T::ZERO;
    let mut acc2 = T::ZERO;
    let mut acc3 = T::ZERO;
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for (xa, ya) in (&mut xc).zip(&mut yc) {
        acc0 += xa[0] * ya[0];
        acc1 += xa[1] * ya[1];
        acc2 += xa[2] * ya[2];
        acc3 += xa[3] * ya[3];
    }
    let mut tail = T::ZERO;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail += a * b;
    }
    ((acc0 + acc1) + (acc2 + acc3)) + tail
}

/// 1×4 micro-kernel: four inner products sharing one pass over `x`.
#[inline(always)]
fn dot4<T: Scalar>(x: &[T], y0: &[T], y1: &[T], y2: &[T], y3: &[T]) -> [T; 4] {
    let n = x.len();
    let (y0, y1, y2, y3) = (&y0[..n], &y1[..n], &y2[..n], &y3[..n]);
    let mut a0 = T::ZERO;
    let mut a1 = T::ZERO;
    let mut a2 = T::ZERO;
    let mut a3 = T::ZERO;
    for i in 0..n {
        let xv = x[i];
        a0 += xv * y0[i];
        a1 += xv * y1[i];
        a2 += xv * y2[i];
        a3 += xv * y3[i];
    }
    [a0, a1, a2, a3]
}

/// Splits a complex matrix into separate re/im planes, row-major.
///
/// Split storage is what makes the complex kernels fast: a complex
/// multiply-accumulate over interleaved storage defeats the loop
/// vectorizer, while the same product over split planes is four
/// independent real FMA chains that vectorize to full width.
fn split_rows<T: Scalar>(m: &Matrix<T>, conjugate: bool) -> (Vec<f64>, Vec<f64>) {
    let src = m.as_slice();
    let re: Vec<f64> = src.iter().map(|z| z.re()).collect();
    let im: Vec<f64> = if conjugate {
        src.iter().map(|z| -z.im()).collect()
    } else {
        src.iter().map(|z| z.im()).collect()
    };
    (re, im)
}

/// Splits the transpose of `m` into re/im planes of shape `cols × rows`
/// (optionally conjugating), tiled the same way as [`pack_transpose`].
fn split_transpose<T: Scalar>(m: &Matrix<T>, conjugate: bool) -> (Vec<f64>, Vec<f64>) {
    let (rows, cols) = m.dims();
    let src = m.as_slice();
    let mut re = vec![0.0f64; rows * cols];
    let mut im = vec![0.0f64; rows * cols];
    const TILE: usize = 32;
    for ib in (0..rows).step_by(TILE) {
        let iend = (ib + TILE).min(rows);
        for jb in (0..cols).step_by(TILE) {
            let jend = (jb + TILE).min(cols);
            for i in ib..iend {
                let src_row = &src[i * cols..(i + 1) * cols];
                for j in jb..jend {
                    let z = src_row[j];
                    re[j * rows + i] = z.re();
                    im[j * rows + i] = if conjugate { -z.im() } else { z.im() };
                }
            }
        }
    }
    (re, im)
}

/// Four-chain real inner product of a split-complex row pair:
/// returns `(Σ aᵣbᵣ − Σ aᵢbᵢ, Σ aᵣbᵢ + Σ aᵢbᵣ)`.
///
/// Scalar fallback; [`gemm_split`] dispatches to [`cdot_fma`] when the
/// host supports AVX2+FMA. The explicit intrinsic path exists because
/// Rust's strict FP semantics (rightly) forbid the compiler from
/// reassociating reductions or fusing mul+add, so this loop compiles to
/// scalar code no matter the target flags.
#[inline(always)]
pub(crate) fn cdot_scalar(are: &[f64], aim: &[f64], bre: &[f64], bim: &[f64]) -> (f64, f64) {
    let n = are.len();
    let (aim, bre, bim) = (&aim[..n], &bre[..n], &bim[..n]);
    let mut rr = 0.0f64;
    let mut ii = 0.0f64;
    let mut ri = 0.0f64;
    let mut ir = 0.0f64;
    for k in 0..n {
        rr += are[k] * bre[k];
        ii += aim[k] * bim[k];
        ri += are[k] * bim[k];
        ir += aim[k] * bre[k];
    }
    (rr - ii, ri + ir)
}

/// AVX2+FMA widening of [`cdot_scalar`]: 4-lane f64 FMAs, two
/// accumulator sets per chain to cover the FMA latency.
///
/// # Safety
///
/// Callers must ensure the host CPU supports `avx2` and `fma` (checked
/// once per [`gemm_split`] via `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn cdot_fma(are: &[f64], aim: &[f64], bre: &[f64], bim: &[f64]) -> (f64, f64) {
    use std::arch::x86_64::*;
    let n = are.len();
    debug_assert!(aim.len() == n && bre.len() == n && bim.len() == n);
    let mut rr0 = _mm256_setzero_pd();
    let mut ii0 = _mm256_setzero_pd();
    let mut ri0 = _mm256_setzero_pd();
    let mut ir0 = _mm256_setzero_pd();
    let mut rr1 = _mm256_setzero_pd();
    let mut ii1 = _mm256_setzero_pd();
    let mut ri1 = _mm256_setzero_pd();
    let mut ir1 = _mm256_setzero_pd();
    let mut k = 0;
    while k + 8 <= n {
        let ar = _mm256_loadu_pd(are.as_ptr().add(k));
        let ai = _mm256_loadu_pd(aim.as_ptr().add(k));
        let br = _mm256_loadu_pd(bre.as_ptr().add(k));
        let bi = _mm256_loadu_pd(bim.as_ptr().add(k));
        rr0 = _mm256_fmadd_pd(ar, br, rr0);
        ii0 = _mm256_fmadd_pd(ai, bi, ii0);
        ri0 = _mm256_fmadd_pd(ar, bi, ri0);
        ir0 = _mm256_fmadd_pd(ai, br, ir0);
        let ar = _mm256_loadu_pd(are.as_ptr().add(k + 4));
        let ai = _mm256_loadu_pd(aim.as_ptr().add(k + 4));
        let br = _mm256_loadu_pd(bre.as_ptr().add(k + 4));
        let bi = _mm256_loadu_pd(bim.as_ptr().add(k + 4));
        rr1 = _mm256_fmadd_pd(ar, br, rr1);
        ii1 = _mm256_fmadd_pd(ai, bi, ii1);
        ri1 = _mm256_fmadd_pd(ar, bi, ri1);
        ir1 = _mm256_fmadd_pd(ai, br, ir1);
        k += 8;
    }
    // SAFETY: pure lane arithmetic on an owned register — callers must
    // (and do) run under the enclosing function's avx2+fma
    // `target_feature` context; no pointers are dereferenced.
    #[inline(always)]
    unsafe fn sum4(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s))
    }
    let mut rr = sum4(_mm256_add_pd(rr0, rr1));
    let mut ii = sum4(_mm256_add_pd(ii0, ii1));
    let mut ri = sum4(_mm256_add_pd(ri0, ri1));
    let mut ir = sum4(_mm256_add_pd(ir0, ir1));
    while k < n {
        rr += are[k] * bre[k];
        ii += aim[k] * bim[k];
        ri += are[k] * bim[k];
        ir += aim[k] * bre[k];
        k += 1;
    }
    (rr - ii, ri + ir)
}

/// AVX2+FMA split-complex `x ← x − w·t` over re/im planes — the inner
/// loop of the triangular back-substitution column sweep in
/// `crate::schur`. Four f64 lanes per iteration, two fused chains per
/// plane; the scalar tail uses the same mul/sub shape so lane results
/// differ from the fallback only by FMA's single rounding (consistent
/// on any one host, like the GEMM micro-kernel).
///
/// # Safety
///
/// Callers must ensure the host CPU supports `avx2` and `fma`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
pub(crate) unsafe fn caxpy_neg_fma(
    wre: f64,
    wim: f64,
    tre: &[f64],
    tim: &[f64],
    xre: &mut [f64],
    xim: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = tre.len();
    debug_assert!(tim.len() == n && xre.len() == n && xim.len() == n);
    let wr = _mm256_set1_pd(wre);
    let wi = _mm256_set1_pd(wim);
    let mut k = 0;
    while k + 4 <= n {
        let tr = _mm256_loadu_pd(tre.as_ptr().add(k));
        let ti = _mm256_loadu_pd(tim.as_ptr().add(k));
        let xr = _mm256_loadu_pd(xre.as_ptr().add(k));
        let xi = _mm256_loadu_pd(xim.as_ptr().add(k));
        // xr ← xr − (wre·tr − wim·ti),  xi ← xi − (wre·ti + wim·tr)
        let xr2 = _mm256_fmadd_pd(wi, ti, _mm256_fnmadd_pd(wr, tr, xr));
        let xi2 = _mm256_fnmadd_pd(wi, tr, _mm256_fnmadd_pd(wr, ti, xi));
        _mm256_storeu_pd(xre.as_mut_ptr().add(k), xr2);
        _mm256_storeu_pd(xim.as_mut_ptr().add(k), xi2);
        k += 4;
    }
    while k < n {
        let (tr, ti) = (tre[k], tim[k]);
        xre[k] -= wre * tr - wim * ti;
        xim[k] -= wre * ti + wim * tr;
        k += 1;
    }
}

/// Two-column variant of [`caxpy_neg_fma`]: one load of the `t` planes
/// feeds two independent update streams (`x ← x − w·t`, `y ← y − v·t`),
/// doubling the FMA-per-load ratio that bounds the short-vector axpy.
/// Lane arithmetic per column is identical to the single-column kernel.
///
/// # Safety
///
/// Callers must ensure the host CPU supports `avx2` and `fma`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn caxpy2_neg_fma(
    wre: f64,
    wim: f64,
    vre: f64,
    vim: f64,
    tre: &[f64],
    tim: &[f64],
    xre: &mut [f64],
    xim: &mut [f64],
    yre: &mut [f64],
    yim: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = tre.len();
    debug_assert!(
        tim.len() == n && xre.len() == n && xim.len() == n && yre.len() == n && yim.len() == n
    );
    let wr = _mm256_set1_pd(wre);
    let wi = _mm256_set1_pd(wim);
    let vr = _mm256_set1_pd(vre);
    let vi = _mm256_set1_pd(vim);
    let mut k = 0;
    while k + 4 <= n {
        let tr = _mm256_loadu_pd(tre.as_ptr().add(k));
        let ti = _mm256_loadu_pd(tim.as_ptr().add(k));
        let xr = _mm256_loadu_pd(xre.as_ptr().add(k));
        let xi = _mm256_loadu_pd(xim.as_ptr().add(k));
        let xr2 = _mm256_fmadd_pd(wi, ti, _mm256_fnmadd_pd(wr, tr, xr));
        let xi2 = _mm256_fnmadd_pd(wi, tr, _mm256_fnmadd_pd(wr, ti, xi));
        _mm256_storeu_pd(xre.as_mut_ptr().add(k), xr2);
        _mm256_storeu_pd(xim.as_mut_ptr().add(k), xi2);
        let yr = _mm256_loadu_pd(yre.as_ptr().add(k));
        let yi = _mm256_loadu_pd(yim.as_ptr().add(k));
        let yr2 = _mm256_fmadd_pd(vi, ti, _mm256_fnmadd_pd(vr, tr, yr));
        let yi2 = _mm256_fnmadd_pd(vi, tr, _mm256_fnmadd_pd(vr, ti, yi));
        _mm256_storeu_pd(yre.as_mut_ptr().add(k), yr2);
        _mm256_storeu_pd(yim.as_mut_ptr().add(k), yi2);
        k += 4;
    }
    while k < n {
        let (tr, ti) = (tre[k], tim[k]);
        xre[k] -= wre * tr - wim * ti;
        xim[k] -= wre * ti + wim * tr;
        yre[k] -= vre * tr - vim * ti;
        yim[k] -= vre * ti + vim * tr;
        k += 1;
    }
}

/// `true` when the AVX2+FMA micro-kernel is usable on this host.
/// The detection macro caches, so this is a relaxed atomic load.
#[inline]
pub(crate) fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Blocked split-complex kernel:
/// `out[i·n + j] += α · Σ_k (atᵣ + i·atᵢ)[i,k] · (btᵣ + i·btᵢ)[j,k]`.
///
/// Both operand pairs are `k`-contiguous plane pairs (`m × kdim` and
/// `n × kdim`). `out` is interleaved `Matrix` storage and must come in
/// zeroed unless accumulating.
#[allow(clippy::too_many_arguments)]
fn gemm_split<T: Scalar>(
    atre: &[f64],
    atim: &[f64],
    btre: &[f64],
    btim: &[f64],
    m: usize,
    n: usize,
    kdim: usize,
    alpha: T,
    out: &mut [T],
) {
    debug_assert_eq!(atre.len(), m * kdim);
    debug_assert_eq!(btre.len(), n * kdim);
    debug_assert_eq!(out.len(), m * n);
    let scale = alpha != T::ONE;
    let use_fma = fma_available();
    for jb in (0..n).step_by(NB) {
        let jend = (jb + NB).min(n);
        for kb in (0..kdim).step_by(KC) {
            let kend = (kb + KC).min(kdim);
            for i in 0..m {
                let arow_re = &atre[i * kdim + kb..i * kdim + kend];
                let arow_im = &atim[i * kdim + kb..i * kdim + kend];
                let out_row = &mut out[i * n..(i + 1) * n];
                for j in jb..jend {
                    let brow_re = &btre[j * kdim + kb..j * kdim + kend];
                    let brow_im = &btim[j * kdim + kb..j * kdim + kend];
                    #[cfg(target_arch = "x86_64")]
                    let (re, im) = if use_fma {
                        // SAFETY: `use_fma` witnessed avx2+fma support.
                        unsafe { cdot_fma(arow_re, arow_im, brow_re, brow_im) }
                    } else {
                        cdot_scalar(arow_re, arow_im, brow_re, brow_im)
                    };
                    #[cfg(not(target_arch = "x86_64"))]
                    let (re, im) = {
                        let _ = use_fma;
                        cdot_scalar(arow_re, arow_im, brow_re, brow_im)
                    };
                    let v = T::from_complex_lossy(crate::complex::c64(re, im));
                    out_row[j] += if scale { alpha * v } else { v };
                }
            }
        }
    }
}

/// Packs the transpose of `m` (optionally conjugated) into a row-major
/// `cols × rows` buffer, so its rows are contiguous in `m`'s row index.
fn pack_transpose<T: Scalar>(m: &Matrix<T>, conjugate: bool) -> Vec<T> {
    let (rows, cols) = m.dims();
    let src = m.as_slice();
    let mut packed = vec![T::ZERO; rows * cols];
    // Tile the transpose so both source and destination touch a bounded
    // set of cache lines per tile.
    const TILE: usize = 32;
    for ib in (0..rows).step_by(TILE) {
        let iend = (ib + TILE).min(rows);
        for jb in (0..cols).step_by(TILE) {
            let jend = (jb + TILE).min(cols);
            for i in ib..iend {
                let src_row = &src[i * cols..(i + 1) * cols];
                if conjugate {
                    for j in jb..jend {
                        packed[j * rows + i] = src_row[j].conj();
                    }
                } else {
                    for j in jb..jend {
                        packed[j * rows + i] = src_row[j];
                    }
                }
            }
        }
    }
    packed
}

/// Core blocked kernel over pre-arranged operands:
/// `out[i·n + j] (+)= α · Σ_k at[i·kdim + k] · bt[j·kdim + k]`.
///
/// Both operands are "k-contiguous": `at` holds `m` rows of length
/// `kdim`, `bt` holds `n` rows of length `kdim`. When `accumulate` is
/// false, `out` must come in zeroed.
fn gemm_packed<T: Scalar>(
    at: &[T],
    bt: &[T],
    m: usize,
    n: usize,
    kdim: usize,
    alpha: T,
    out: &mut [T],
) {
    debug_assert_eq!(at.len(), m * kdim);
    debug_assert_eq!(bt.len(), n * kdim);
    debug_assert_eq!(out.len(), m * n);
    let scale = alpha != T::ONE;
    for jb in (0..n).step_by(NB) {
        let jend = (jb + NB).min(n);
        for kb in (0..kdim).step_by(KC) {
            let kend = (kb + KC).min(kdim);
            for i in 0..m {
                let arow = &at[i * kdim + kb..i * kdim + kend];
                let out_row = &mut out[i * n..(i + 1) * n];
                let mut j = jb;
                while j + 4 <= jend {
                    let base = j * kdim + kb;
                    let len = kend - kb;
                    let [d0, d1, d2, d3] = dot4(
                        arow,
                        &bt[base..base + len],
                        &bt[base + kdim..base + kdim + len],
                        &bt[base + 2 * kdim..base + 2 * kdim + len],
                        &bt[base + 3 * kdim..base + 3 * kdim + len],
                    );
                    if scale {
                        out_row[j] += alpha * d0;
                        out_row[j + 1] += alpha * d1;
                        out_row[j + 2] += alpha * d2;
                        out_row[j + 3] += alpha * d3;
                    } else {
                        out_row[j] += d0;
                        out_row[j + 1] += d1;
                        out_row[j + 2] += d2;
                        out_row[j + 3] += d3;
                    }
                    j += 4;
                }
                while j < jend {
                    let d = dot(arow, &bt[j * kdim + kb..j * kdim + kend]);
                    out_row[j] += if scale { alpha * d } else { d };
                    j += 1;
                }
            }
        }
    }
}

/// Products with at most this many multiply-accumulates skip packing:
/// below it the split-plane allocations cost more than they save, and
/// per-frequency hot loops (`DescriptorSystem::eval`'s `C·x`, the
/// recursive fitter's tangential residuals) live entirely in this range.
const SMALL_GEMM_OPS: usize = 4096;

/// Streaming `i-k-j` product over row slices — no packing, no extra
/// allocations beyond the output. The small-shape fast path of [`mul`].
fn mul_small<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (k, &aik) in a_row.iter().enumerate().take(kdim) {
            let b_row = &b.as_slice()[k * n..(k + 1) * n];
            for (o, &r) in out_row.iter_mut().zip(b_row) {
                *o += aik * r;
            }
        }
    }
    out
}

fn shape_err<T: Scalar>(op: &'static str, a: &Matrix<T>, b: &Matrix<T>) -> NumericError {
    NumericError::ShapeMismatch {
        op,
        left: a.dims(),
        right: b.dims(),
    }
}

/// Blocked product `A·B`.
///
/// The left operand's rows are already `k`-contiguous; the right operand
/// is transpose-packed once and reused across the whole sweep.
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn mul<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, NumericError> {
    if a.cols() != b.rows() {
        return Err(shape_err("matmul", a, b));
    }
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    if m * kdim * n <= SMALL_GEMM_OPS {
        return Ok(mul_small(a, b));
    }
    mul_blocked(a, b)
}

/// `A·B` through the blocked kernel **unconditionally** — no
/// small-product shortcut. The blocked kernel accumulates each output
/// element over fixed-size `k`-panels (`KC`-wide, one panel when
/// `k ≤ 256`), so its per-element accumulation order depends only on
/// `kdim` — never on how many other columns ride in the same call. A
/// given output column's rounding is therefore a function of that
/// column's operands alone; batched frequency sweeps rely on this to
/// stay bit-identical when the per-call column count varies with the
/// worker count. (Do not make `KC`/`NB` depend on the operand shape —
/// that would break this invariant.)
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn mul_blocked<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, NumericError> {
    if a.cols() != b.rows() {
        return Err(shape_err("matmul", a, b));
    }
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if T::IS_COMPLEX {
        let (are, aim) = split_rows(a, false);
        let (bre, bim) = split_transpose(b, false);
        gemm_split(
            &are,
            &aim,
            &bre,
            &bim,
            m,
            n,
            kdim,
            T::ONE,
            out.as_mut_slice(),
        );
    } else {
        let bt = pack_transpose(b, false);
        gemm_packed(a.as_slice(), &bt, m, n, kdim, T::ONE, out.as_mut_slice());
    }
    Ok(out)
}

/// Fused `Aᴴ·B` (conjugate-transpose folded into the packing).
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.rows() != b.rows()`.
pub fn mul_hermitian_left<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<Matrix<T>, NumericError> {
    if a.rows() != b.rows() {
        return Err(shape_err("mul_hermitian_left", a, b));
    }
    let (m, kdim, n) = (a.cols(), a.rows(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if T::IS_COMPLEX {
        let (are, aim) = split_transpose(a, true);
        let (bre, bim) = split_transpose(b, false);
        gemm_split(
            &are,
            &aim,
            &bre,
            &bim,
            m,
            n,
            kdim,
            T::ONE,
            out.as_mut_slice(),
        );
    } else {
        let at = pack_transpose(a, true);
        let bt = pack_transpose(b, false);
        gemm_packed(&at, &bt, m, n, kdim, T::ONE, out.as_mut_slice());
    }
    Ok(out)
}

/// Fused `A·Bᵀ` (no conjugation, and **no packing at all**: both
/// operands are already row-major over the shared dimension).
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.cols() != b.cols()`.
pub fn mul_transpose_right<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<Matrix<T>, NumericError> {
    if a.cols() != b.cols() {
        return Err(shape_err("mul_transpose_right", a, b));
    }
    let (m, kdim, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    if T::IS_COMPLEX {
        let (are, aim) = split_rows(a, false);
        let (bre, bim) = split_rows(b, false);
        gemm_split(
            &are,
            &aim,
            &bre,
            &bim,
            m,
            n,
            kdim,
            T::ONE,
            out.as_mut_slice(),
        );
    } else {
        gemm_packed(
            a.as_slice(),
            b.as_slice(),
            m,
            n,
            kdim,
            T::ONE,
            out.as_mut_slice(),
        );
    }
    Ok(out)
}

/// Fused `A·Bᴴ` (conjugation folded into the sweep; like
/// [`mul_transpose_right`] both operands are already `k`-contiguous, the
/// right one is conjugate-packed to keep the inner loop branch-free).
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.cols() != b.cols()`.
pub fn mul_adjoint_right<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<Matrix<T>, NumericError> {
    if a.cols() != b.cols() {
        return Err(shape_err("mul_adjoint_right", a, b));
    }
    if !T::IS_COMPLEX {
        return mul_transpose_right(a, b);
    }
    let (m, kdim, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    let (are, aim) = split_rows(a, false);
    let (bre, bim) = split_rows(b, true);
    gemm_split(
        &are,
        &aim,
        &bre,
        &bim,
        m,
        n,
        kdim,
        T::ONE,
        out.as_mut_slice(),
    );
    Ok(out)
}

/// Fused scaled accumulate `C ← C + α·A·B`, no product temporary.
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.cols() != b.rows()`
/// or `c.dims() != (a.rows(), b.cols())`.
pub fn accumulate_scaled<T: Scalar>(
    c: &mut Matrix<T>,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<(), NumericError> {
    if a.cols() != b.rows() {
        return Err(shape_err("accumulate_scaled", a, b));
    }
    if c.dims() != (a.rows(), b.cols()) {
        return Err(NumericError::ShapeMismatch {
            op: "accumulate_scaled",
            left: c.dims(),
            right: (a.rows(), b.cols()),
        });
    }
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    if T::IS_COMPLEX {
        let (are, aim) = split_rows(a, false);
        let (bre, bim) = split_transpose(b, false);
        gemm_split(&are, &aim, &bre, &bim, m, n, kdim, alpha, c.as_mut_slice());
    } else {
        let bt = pack_transpose(b, false);
        gemm_packed(a.as_slice(), &bt, m, n, kdim, alpha, c.as_mut_slice());
    }
    Ok(())
}

/// Fused scaled accumulate `C ← C + α·A·Bᴴ` — the adjoint-right
/// counterpart of [`accumulate_scaled`]. Like [`mul_adjoint_right`],
/// both operands are already `k`-contiguous (no packing pass); the
/// conjugation of `B` is folded into the plane split. This is the
/// trailing-matrix update shape of the panel-blocked bidiagonalization
/// (`A ← A − V·Yᴴ − X·Uᴴ`).
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.cols() != b.cols()`
/// or `c.dims() != (a.rows(), b.rows())`.
pub fn accumulate_scaled_adjoint_right<T: Scalar>(
    c: &mut Matrix<T>,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<(), NumericError> {
    if a.cols() != b.cols() {
        return Err(shape_err("accumulate_scaled_adjoint_right", a, b));
    }
    if c.dims() != (a.rows(), b.rows()) {
        return Err(NumericError::ShapeMismatch {
            op: "accumulate_scaled_adjoint_right",
            left: c.dims(),
            right: (a.rows(), b.rows()),
        });
    }
    let (m, kdim, n) = (a.rows(), a.cols(), b.rows());
    if T::IS_COMPLEX {
        let (are, aim) = split_rows(a, false);
        let (bre, bim) = split_rows(b, true);
        gemm_split(&are, &aim, &bre, &bim, m, n, kdim, alpha, c.as_mut_slice());
    } else {
        gemm_packed(
            a.as_slice(),
            b.as_slice(),
            m,
            n,
            kdim,
            alpha,
            c.as_mut_slice(),
        );
    }
    Ok(())
}

/// Reference textbook product: per-element `i-j-k` triple loop through
/// the `Index` operator. Kept as the oracle for property tests and the
/// baseline the `gemm_kernels` bench measures the blocked path against.
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn mul_naive<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, NumericError> {
    if a.cols() != b.rows() {
        return Err(shape_err("matmul", a, b));
    }
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for k in 0..kdim {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::{CMatrix, RMatrix};

    fn cmat(rows: usize, cols: usize, seed: u64) -> CMatrix {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        CMatrix::from_fn(rows, cols, |_, _| c64(next(), next()))
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (4, 4, 4),
            (7, 13, 5),
            (17, 33, 9),
            (48, 50, 52),
            (65, 3, 70),
            (1, 300, 1),
        ] {
            let a = cmat(m, k, (m * 1000 + k) as u64);
            let b = cmat(k, n, (k * 1000 + n) as u64);
            let fast = mul(&a, &b).unwrap();
            let slow = mul_naive(&a, &b).unwrap();
            assert!(
                fast.approx_eq(&slow, 1e-13 * (k as f64).max(1.0)),
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn empty_dimensions_produce_empty_or_zero_results() {
        let a = CMatrix::zeros(0, 4);
        let b = CMatrix::zeros(4, 3);
        assert_eq!(mul(&a, &b).unwrap().dims(), (0, 3));
        let a = CMatrix::zeros(3, 0);
        let b = CMatrix::zeros(0, 2);
        let p = mul(&a, &b).unwrap();
        assert_eq!(p.dims(), (3, 2));
        assert!(p.iter().all(|&z| z == c64(0.0, 0.0)));
        assert_eq!(
            mul_hermitian_left(&CMatrix::zeros(0, 2), &CMatrix::zeros(0, 5))
                .unwrap()
                .dims(),
            (2, 5)
        );
        assert_eq!(
            mul_transpose_right(&CMatrix::zeros(2, 0), &CMatrix::zeros(5, 0))
                .unwrap()
                .dims(),
            (2, 5)
        );
    }

    #[test]
    fn hermitian_left_matches_explicit_adjoint() {
        let a = cmat(9, 4, 1);
        let b = cmat(9, 6, 2);
        let fused = mul_hermitian_left(&a, &b).unwrap();
        let explicit = a.adjoint().matmul(&b).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-13));
    }

    #[test]
    fn transpose_right_matches_explicit_transpose() {
        let a = cmat(5, 8, 3);
        let b = cmat(7, 8, 4);
        let fused = mul_transpose_right(&a, &b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-13));
    }

    #[test]
    fn adjoint_right_matches_explicit_adjoint() {
        let a = cmat(5, 8, 5);
        let b = cmat(7, 8, 6);
        let fused = mul_adjoint_right(&a, &b).unwrap();
        let explicit = a.matmul(&b.adjoint()).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-13));
        // Real path short-circuits to the transpose kernel.
        let ar = RMatrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64 - 5.0);
        let br = RMatrix::from_fn(2, 4, |i, j| (i * 3 + j) as f64 * 0.5);
        let fr = mul_adjoint_right(&ar, &br).unwrap();
        let er = ar.matmul(&br.transpose()).unwrap();
        assert!(fr.approx_eq(&er, 1e-14));
    }

    #[test]
    fn accumulate_scaled_fuses_product_and_sum() {
        let a = cmat(6, 10, 7);
        let b = cmat(10, 5, 8);
        let alpha = c64(0.3, -1.2);
        let mut c = cmat(6, 5, 9);
        let expect = &c + &(&a.matmul(&b).unwrap() * alpha);
        accumulate_scaled(&mut c, alpha, &a, &b).unwrap();
        assert!(c.approx_eq(&expect, 1e-13));
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(mul(&a, &b).is_err());
        assert!(mul_hermitian_left(&CMatrix::zeros(3, 2), &CMatrix::zeros(4, 2)).is_err());
        assert!(mul_transpose_right(&CMatrix::zeros(2, 3), &CMatrix::zeros(2, 4)).is_err());
        let mut c = CMatrix::zeros(2, 2);
        assert!(accumulate_scaled(&mut c, c64(1.0, 0.0), &CMatrix::zeros(2, 3), &b).is_err());
        let mut c_bad = CMatrix::zeros(3, 3);
        let a_ok = CMatrix::zeros(2, 3);
        let b_ok = CMatrix::zeros(3, 2);
        assert!(accumulate_scaled(&mut c_bad, c64(1.0, 0.0), &a_ok, &b_ok).is_err());
    }

    #[test]
    fn real_matrices_use_the_same_kernels() {
        let a = RMatrix::from_fn(13, 21, |i, j| ((i * 31 + j * 7) % 11) as f64 - 5.0);
        let b = RMatrix::from_fn(21, 8, |i, j| ((i * 13 + j * 5) % 9) as f64 - 4.0);
        let fast = mul(&a, &b).unwrap();
        let slow = mul_naive(&a, &b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-11));
    }
}
