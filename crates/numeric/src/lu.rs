use crate::error::NumericError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// LU factorization with partial pivoting: `P A = L U`.
///
/// Works over both real and complex matrices and backs
/// [`solve`](crate::solve), determinants and inverses. The factorization
/// itself never fails on singular input; *using* it to solve does.
///
/// ```
/// use mfti_numeric::{CMatrix, Lu, c64};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = CMatrix::from_rows(&[
///     vec![c64(2.0, 0.0), c64(1.0, 1.0)],
///     vec![c64(0.0, -1.0), c64(3.0, 0.0)],
/// ])?;
/// let lu = Lu::compute(&a)?;
/// let x = lu.solve(&CMatrix::identity(2))?;
/// assert!(a.matmul(&x)?.approx_eq(&CMatrix::identity(2), 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu<T: Scalar> {
    factors: Matrix<T>,
    pivots: Vec<usize>,
    swap_count: usize,
    smallest_pivot: f64,
    largest_pivot: f64,
}

impl<T: Scalar> Lu<T> {
    /// Factors `a` as `P A = L U` with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] for rectangular input and
    /// [`NumericError::NotFinite`] when `a` contains NaN/∞.
    pub fn compute(a: &Matrix<T>) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::NotSquare {
                op: "lu",
                dims: a.dims(),
            });
        }
        if !a.is_finite() {
            return Err(NumericError::NotFinite { op: "lu" });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots = Vec::with_capacity(n);
        let mut swap_count = 0;
        let mut smallest = f64::INFINITY;
        let mut largest: f64 = 0.0;
        for k in 0..n {
            // Pivot: largest modulus in column k at or below the diagonal.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in k + 1..n {
                let m = lu[(i, k)].abs();
                if m > best {
                    best = m;
                    p = i;
                }
            }
            pivots.push(p);
            if p != k {
                lu.swap_rows(p, k);
                swap_count += 1;
            }
            smallest = smallest.min(best);
            largest = largest.max(best);
            let pivot = lu[(k, k)];
            if pivot.abs() == 0.0 {
                // Leave the zero column; solves will fail cleanly.
                continue;
            }
            let inv = T::ONE / pivot;
            for i in k + 1..n {
                let factor = lu[(i, k)] * inv;
                lu[(i, k)] = factor;
                if factor == T::ZERO {
                    continue;
                }
                for j in k + 1..n {
                    let adj = factor * lu[(k, j)];
                    lu[(i, j)] -= adj;
                }
            }
        }
        if n == 0 {
            smallest = 0.0;
        }
        Ok(Lu {
            factors: lu,
            pivots,
            swap_count,
            smallest_pivot: smallest,
            largest_pivot: largest,
        })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.factors.rows()
    }

    /// `true` when a pivot vanished exactly (the matrix is singular to
    /// working precision).
    pub fn is_singular(&self) -> bool {
        self.smallest_pivot == 0.0 && self.order() > 0
    }

    /// Crude reciprocal condition estimate `min|pivot| / max|pivot|`.
    ///
    /// Zero means singular; values near machine epsilon flag
    /// ill-conditioning. This is a byproduct of the factorization, not a
    /// rigorous condition number.
    pub fn rcond_estimate(&self) -> f64 {
        if self.largest_pivot == 0.0 {
            0.0
        } else {
            self.smallest_pivot / self.largest_pivot
        }
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> T {
        let n = self.order();
        let mut d = if self.swap_count.is_multiple_of(2) {
            T::ONE
        } else {
            -T::ONE
        };
        for i in 0..n {
            d *= self.factors[(i, i)];
        }
        d
    }

    /// Solves `A X = B` for every column of `b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Singular`] when a pivot vanished and
    /// [`NumericError::ShapeMismatch`] when `b.rows() != order`.
    pub fn solve(&self, b: &Matrix<T>) -> Result<Matrix<T>, NumericError> {
        let n = self.order();
        if b.rows() != n {
            return Err(NumericError::ShapeMismatch {
                op: "lu solve",
                left: self.factors.dims(),
                right: b.dims(),
            });
        }
        if self.is_singular() {
            return Err(NumericError::Singular { op: "lu solve" });
        }
        let mut x = b.clone();
        // Apply row permutation in factorization order.
        for (k, &p) in self.pivots.iter().enumerate() {
            if p != k {
                x.swap_rows(p, k);
            }
        }
        // Forward substitution with unit-diagonal L.
        for k in 0..n {
            for i in k + 1..n {
                let f = self.factors[(i, k)];
                if f == T::ZERO {
                    continue;
                }
                for j in 0..x.cols() {
                    let adj = f * x[(k, j)];
                    x[(i, j)] -= adj;
                }
            }
        }
        // Back substitution with U.
        for k in (0..n).rev() {
            let inv = T::ONE / self.factors[(k, k)];
            for j in 0..x.cols() {
                x[(k, j)] *= inv;
            }
            for i in 0..k {
                let f = self.factors[(i, k)];
                if f == T::ZERO {
                    continue;
                }
                for j in 0..x.cols() {
                    let adj = f * x[(k, j)];
                    x[(i, j)] -= adj;
                }
            }
        }
        Ok(x)
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Same as [`Lu::solve`].
    pub fn solve_vec(&self, b: &[T]) -> Result<Vec<T>, NumericError> {
        let x = self.solve(&Matrix::col_vector(b))?;
        Ok(x.col(0))
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Singular`] when the matrix is singular.
    pub fn inverse(&self) -> Result<Matrix<T>, NumericError> {
        self.solve(&Matrix::identity(self.order()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::{CMatrix, RMatrix};

    #[test]
    fn reconstructs_real_matrix() {
        let a = RMatrix::from_rows(&[
            vec![4.0, 3.0, 2.0],
            vec![2.0, -1.0, 0.0],
            vec![1.0, 2.0, 7.0],
        ])
        .unwrap();
        let lu = Lu::compute(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&RMatrix::identity(3), 1e-12));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        assert!((lu.det() - (-2.0)).abs() < 1e-14);
    }

    #[test]
    fn complex_solve_matches_hand_result() {
        // (1+i) x = 2  =>  x = 1 - i
        let a = CMatrix::from_rows(&[vec![c64(1.0, 1.0)]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        let x = lu.solve_vec(&[c64(2.0, 0.0)]).unwrap();
        assert!((x[0] - c64(1.0, -1.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        assert!(lu.is_singular());
        assert!(lu.solve(&RMatrix::identity(2)).is_err());
        assert_eq!(lu.rcond_estimate(), 0.0);
    }

    #[test]
    fn rejects_rectangular_and_nonfinite() {
        assert!(Lu::compute(&RMatrix::zeros(2, 3)).is_err());
        let mut bad = RMatrix::identity(2);
        bad[(0, 0)] = f64::NAN;
        assert!(matches!(
            Lu::compute(&bad),
            Err(NumericError::NotFinite { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = RMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        let x = lu.solve_vec(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
        assert!((lu.det() - (-1.0)).abs() < 1e-14);
    }

    #[test]
    fn solve_multiple_rhs_matches_individual_solves() {
        let a = RMatrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        let b = RMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let x = lu.solve(&b).unwrap();
        for j in 0..2 {
            let xj = lu.solve_vec(&b.col(j)).unwrap();
            for i in 0..2 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn random_complex_round_trip() {
        // Deterministic pseudo-random fill (no rng dependency needed here).
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let a = CMatrix::from_fn(8, 8, |_, _| c64(next(), next()));
        let lu = Lu::compute(&a).unwrap();
        let b = CMatrix::from_fn(8, 3, |_, _| c64(next(), next()));
        let x = lu.solve(&b).unwrap();
        let res = &a.matmul(&x).unwrap() - &b;
        assert!(res.norm_fro() < 1e-10 * b.norm_fro().max(1.0));
    }
}
