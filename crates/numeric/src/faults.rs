//! Test-only fault-injection hooks (the `fault-injection` feature).
//!
//! The iterative kernels — the bidiagonal-QR sweep behind the Blocked
//! and Golub–Kahan SVD backends, the Schur/eigenvalue QR iterations,
//! and the one-sided Jacobi sweep — all carry generous iteration
//! budgets whose `NumericError::NoConvergence` exits are essentially
//! unreachable on real data. That makes the breakdown-recovery ladders
//! built on top of them untestable from the outside. This module gives
//! the fault harness (`mfti-faults`) a deterministic way to shrink
//! those budgets and *force* the non-convergent paths.
//!
//! Design constraints (DESIGN.md §8):
//!
//! * **Pass-through by default.** Cargo feature unification switches
//!   `fault-injection` on workspace-wide whenever `mfti-faults` is in
//!   the build graph, so an unarmed hook must change nothing: the cap
//!   statics start at 0 (= unlimited) and the kernels fall back to
//!   their intrinsic budgets.
//! * **Deterministic and thread-uniform.** A cap is a process-global
//!   that applies identically to every thread, so 1-thread and
//!   8-thread runs of a capped kernel fail (or converge) identically.
//! * **Exclusive while armed.** [`InjectedFault`] holds a global mutex
//!   for its lifetime, serializing concurrent test threads so one
//!   test's fault cannot leak into another's kernels.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// 0 means "unarmed": the kernel uses its intrinsic budget.
static QR_ITERATION_CAP: AtomicUsize = AtomicUsize::new(0);
static JACOBI_SWEEP_CAP: AtomicUsize = AtomicUsize::new(0);
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard arming one or more iteration-budget caps; dropping it
/// disarms every hook. Holding it serializes fault injection across
/// threads (see the module docs).
#[derive(Debug)]
pub struct InjectedFault {
    _exclusive: MutexGuard<'static, ()>,
}

impl InjectedFault {
    fn armed() -> Self {
        // A panic while armed poisons the lock but leaves the caps in a
        // defined state (Drop ran); recover the guard and continue.
        let guard = HOOK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        InjectedFault { _exclusive: guard }
    }

    /// Caps the implicit-shift QR iterations (bidiagonal-QR, Schur and
    /// eigenvalue sweeps) at `cap` (≥ 1), forcing
    /// `NumericError::NoConvergence` on any matrix that needs more.
    #[must_use]
    pub fn cap_qr_iterations(cap: usize) -> Self {
        let fault = Self::armed();
        QR_ITERATION_CAP.store(cap.max(1), Ordering::SeqCst);
        fault
    }

    /// Caps the one-sided Jacobi SVD at `cap` (≥ 1) sweeps.
    #[must_use]
    pub fn cap_jacobi_sweeps(cap: usize) -> Self {
        let fault = Self::armed();
        JACOBI_SWEEP_CAP.store(cap.max(1), Ordering::SeqCst);
        fault
    }

    /// Caps every iterative kernel at once — QR iterations *and* Jacobi
    /// sweeps — so no SVD backend on the recovery ladder can converge.
    #[must_use]
    pub fn cap_all_iterations(cap: usize) -> Self {
        let fault = Self::armed();
        QR_ITERATION_CAP.store(cap.max(1), Ordering::SeqCst);
        JACOBI_SWEEP_CAP.store(cap.max(1), Ordering::SeqCst);
        fault
    }
}

impl Drop for InjectedFault {
    fn drop(&mut self) {
        QR_ITERATION_CAP.store(0, Ordering::SeqCst);
        JACOBI_SWEEP_CAP.store(0, Ordering::SeqCst);
    }
}

pub(crate) fn qr_iteration_cap() -> Option<usize> {
    match QR_ITERATION_CAP.load(Ordering::SeqCst) {
        0 => None,
        cap => Some(cap),
    }
}

pub(crate) fn jacobi_sweep_cap() -> Option<usize> {
    match JACOBI_SWEEP_CAP.load(Ordering::SeqCst) {
        0 => None,
        cap => Some(cap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CMatrix;
    use crate::svd::{Svd, SvdMethod};
    use crate::NumericError;

    fn pseudo_random(n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(n, n, |_, _| crate::c64(next(), next()))
    }

    #[test]
    fn unarmed_hooks_pass_through() {
        assert_eq!(qr_iteration_cap(), None);
        assert_eq!(jacobi_sweep_cap(), None);
        let a = pseudo_random(8, 0xfa);
        assert!(Svd::compute(&a).is_ok());
    }

    #[test]
    fn capped_qr_forces_no_convergence_and_disarms_on_drop() {
        let a = pseudo_random(10, 0xfb);
        {
            let _fault = InjectedFault::cap_qr_iterations(1);
            let err = Svd::compute_with(&a, SvdMethod::Blocked);
            assert!(
                matches!(err, Err(NumericError::NoConvergence { .. })),
                "expected forced non-convergence, got {err:?}"
            );
            // Jacobi is untouched by the QR cap — the ladder's last rung.
            assert!(Svd::compute_with(&a, SvdMethod::Jacobi).is_ok());
        }
        assert!(Svd::compute_with(&a, SvdMethod::Blocked).is_ok());
    }

    #[test]
    fn capped_jacobi_forces_no_convergence() {
        let a = pseudo_random(10, 0xfc);
        let _fault = InjectedFault::cap_jacobi_sweeps(1);
        let err = Svd::compute_with(&a, SvdMethod::Jacobi);
        assert!(matches!(err, Err(NumericError::NoConvergence { .. })));
    }
}
