use std::fmt;
use std::ops::{Index, IndexMut};

use crate::complex::Complex;
use crate::error::NumericError;
use crate::scalar::Scalar;

/// Dense row-major matrix over a [`Scalar`] field.
///
/// This is the single matrix type used throughout the workspace; the
/// aliases [`CMatrix`] (complex) and [`RMatrix`] (real) cover the two
/// instantiations. Storage is a contiguous `Vec<T>` in row-major order.
///
/// ```
/// use mfti_numeric::{CMatrix, c64};
///
/// let a = CMatrix::identity(2);
/// let b = CMatrix::from_rows(&[
///     vec![c64(1.0, 0.0), c64(0.0, 1.0)],
///     vec![c64(0.0, -1.0), c64(2.0, 0.0)],
/// ]).unwrap();
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c[(1, 0)], c64(0.0, -1.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

/// Complex dense matrix — the workhorse of the Loewner algorithms.
pub type CMatrix = Matrix<Complex>;
/// Real dense matrix — used for realified state-space models.
pub type RMatrix = Matrix<f64>;

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![T::ZERO; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when rows have unequal
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<T>]) -> Result<Self, NumericError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericError::InvalidArgument {
                what: "from_rows requires a non-empty rectangle",
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(NumericError::InvalidArgument {
                what: "from_rows requires rows of equal length",
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, NumericError> {
        if data.len() != rows * cols {
            return Err(NumericError::InvalidArgument {
                what: "from_vec requires data.len() == rows * cols",
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Creates a square matrix with `diag` on the main diagonal.
    pub fn from_diag(diag: &[T]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a column vector (`n × 1`).
    pub fn col_vector(v: &[T]) -> Self {
        Matrix {
            data: v.to_vec(),
            rows: v.len(),
            cols: 1,
        }
    }

    /// Creates a row vector (`1 × n`).
    pub fn row_vector(v: &[T]) -> Self {
        Matrix {
            data: v.to_vec(),
            rows: 1,
            cols: v.len(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when `rows == cols`.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// `true` when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let cols = self.cols;
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Copies column `j` into a fresh `Vec`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<T> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterates over all entries in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Transpose (without conjugation).
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate (Hermitian) transpose `A*`.
    ///
    /// For real matrices this equals [`Matrix::transpose`].
    pub fn adjoint(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Self {
        self.map(|z| z.conj())
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Promotes to a complex matrix (no-op cost for complex input).
    pub fn to_complex(&self) -> CMatrix {
        self.map(|x| x.to_complex())
    }

    /// Scales every entry by a real factor.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|x| x.scale(s))
    }

    /// Largest entry modulus, `max_ij |a_ij|` (zero for empty matrices).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` when all imaginary parts are at most `tol` in magnitude.
    pub fn is_real_within(&self, tol: f64) -> bool {
        self.data.iter().all(|x| x.im().abs() <= tol)
    }

    /// Discards imaginary parts, returning a real matrix.
    ///
    /// Intended for results that are real by construction (e.g. after the
    /// Lemma 3.2 realification); combine with [`Matrix::is_real_within`]
    /// to assert that assumption.
    pub fn real_part(&self) -> RMatrix {
        self.map(|x| x.re())
    }

    /// Imaginary parts as a real matrix.
    pub fn imag_part(&self) -> RMatrix {
        self.map(|x| x.im())
    }

    /// `true` when `self` and `other` agree entry-wise within `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.dims() == other.dims()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Matrix product `self · rhs`.
    ///
    /// Routes through the cache-blocked, transpose-packed
    /// [`kernel`](crate::kernel) layer (as do the fused variants
    /// [`Matrix::mul_hermitian_left`] and [`Matrix::mul_transpose_right`]).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Self) -> Result<Self, NumericError> {
        crate::kernel::mul(self, rhs)
    }

    /// Fused product `selfᴴ · rhs` without materializing the adjoint.
    ///
    /// For real matrices this is `selfᵀ · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `self.rows != rhs.rows`.
    pub fn mul_hermitian_left(&self, rhs: &Self) -> Result<Self, NumericError> {
        crate::kernel::mul_hermitian_left(self, rhs)
    }

    /// Fused product `self · rhsᵀ` (no conjugation) without materializing
    /// the transpose — both operands are already contiguous along the
    /// shared dimension, so this is the cheapest product shape of all.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `self.cols != rhs.cols`.
    pub fn mul_transpose_right(&self, rhs: &Self) -> Result<Self, NumericError> {
        crate::kernel::mul_transpose_right(self, rhs)
    }

    /// Fused product `self · rhsᴴ` without materializing the adjoint.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `self.cols != rhs.cols`.
    pub fn mul_adjoint_right(&self, rhs: &Self) -> Result<Self, NumericError> {
        crate::kernel::mul_adjoint_right(self, rhs)
    }

    /// Fused scaled accumulate `self ← self + α·a·b` without allocating
    /// the intermediate product.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `a.cols != b.rows` or
    /// `self.dims() != (a.rows, b.cols)`.
    pub fn add_scaled_mul(&mut self, alpha: T, a: &Self, b: &Self) -> Result<(), NumericError> {
        crate::kernel::accumulate_scaled(self, alpha, a, b)
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[T]) -> Result<Vec<T>, NumericError> {
        if v.len() != self.cols {
            return Err(NumericError::ShapeMismatch {
                op: "matvec",
                left: self.dims(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(T::ZERO, |acc, (&a, &x)| acc + a * x)
            })
            .collect())
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn trace(&self) -> T {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).fold(T::ZERO, |acc, i| acc + self[(i, i)])
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  ")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:>14} ", self[(i, j)])?;
            }
            if self.cols > max_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn zeros_identity_and_indexing() {
        let z = RMatrix::zeros(2, 3);
        assert_eq!(z.dims(), (2, 3));
        assert!(z.iter().all(|&x| x == 0.0));
        let i3 = RMatrix::identity(3);
        assert_eq!(i3[(1, 1)], 1.0);
        assert_eq!(i3[(0, 2)], 0.0);
        assert_eq!(i3.trace(), 3.0);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(RMatrix::from_rows(&[]).is_err());
        assert!(RMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(RMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = RMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn transpose_and_adjoint_differ_for_complex() {
        let a = CMatrix::from_rows(&[vec![c64(1.0, 2.0), c64(3.0, -1.0)]]).unwrap();
        let t = a.transpose();
        let h = a.adjoint();
        assert_eq!(t.dims(), (2, 1));
        assert_eq!(t[(0, 0)], c64(1.0, 2.0));
        assert_eq!(h[(0, 0)], c64(1.0, -2.0));
    }

    #[test]
    fn matmul_against_hand_computed_product() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = RMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = RMatrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expect, 0.0));
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = RMatrix::zeros(2, 3);
        let b = RMatrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(NumericError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = CMatrix::from_fn(3, 3, |i, j| c64(i as f64, j as f64));
        let v = vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(-1.0, 0.0)];
        let got = a.matvec(&v).unwrap();
        let col = CMatrix::col_vector(&v);
        let want = a.matmul(&col).unwrap();
        for i in 0..3 {
            assert!((got[i] - want[(i, 0)]).abs() < 1e-15);
        }
    }

    #[test]
    fn swap_rows_is_involutive() {
        let mut m = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let orig = m.clone();
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)], 5.0);
        m.swap_rows(2, 0);
        assert!(m.approx_eq(&orig, 0.0));
    }

    #[test]
    fn real_imag_split_round_trips() {
        let a = CMatrix::from_fn(2, 2, |i, j| c64(i as f64, j as f64 + 1.0));
        let re = a.real_part();
        let im = a.imag_part();
        let back = CMatrix::from_fn(2, 2, |i, j| c64(re[(i, j)], im[(i, j)]));
        assert!(back.approx_eq(&a, 0.0));
        assert!(!a.is_real_within(0.5));
        assert!(a.is_real_within(3.0));
    }

    #[test]
    fn map_preserves_dims_and_changes_field() {
        let a = RMatrix::identity(2);
        let c = a.map(|x| c64(0.0, x));
        assert_eq!(c[(0, 0)], c64(0.0, 1.0));
        assert_eq!(c.dims(), (2, 2));
    }

    #[test]
    fn row_and_col_accessors() {
        let m = RMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = RMatrix::zeros(1, 1);
        let _ = m.row(1);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let m = RMatrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}
