//! Lazy two-phase SVD: bidiagonalize once, read the values, accumulate
//! only the factor columns a consumer actually projects with.
//!
//! The realization stage of the MFTI pipeline reads the singular values
//! of a pencil to *pick* a reduced order `r`, then reads only the
//! leading `r` columns of each singular-vector factor to project with —
//! yet [`svd_blocked`](super::blocked) always accumulates all
//! `min(m, n)` WY columns before anything is truncated. [`PartialSvd`]
//! splits the decomposition at exactly that seam:
//!
//! 1. [`Svd::bidiagonalize`](super::Svd::bidiagonalize) runs the panel
//!    bidiagonalization (the `zgebrd`/`zlabrd` phase shared with the
//!    blocked backend) and keeps the reflector tails (`W`), the scaling
//!    factors `tauq`/`taup` and the real bidiagonal alive. The singular
//!    values are resolved eagerly with a factor-less QR iteration — the
//!    rotation stream does not depend on which factors absorb it, so
//!    they are bit-identical to any later factor-bearing run.
//! 2. [`PartialSvd::accumulate`] first replays the QR rotations into
//!    **compact** `n × n` identity factors (cheap: the rotations touch
//!    `n`-vectors, never `m`-vectors), normalizes signs/order, truncates
//!    to the leading `r` columns, and only then applies the Householder
//!    reflectors through backward WY blocks to an `m × r` slab instead
//!    of the full `m × min(m, n)` factor — the accumulation GEMMs
//!    shrink by `min(m, n)/r`.
//!
//! **Bit-identity contract.** `accumulate(_, r)` returns exactly the
//! leading `r` columns of `accumulate(_, min(m, n))`, bit for bit, at
//! every `MFTI_THREADS`. Two implementation rules make this hold:
//!
//! * every slab GEMM routes through width-stable kernels
//!   ([`kernel::mul_hermitian_left`], [`kernel::mul_blocked`],
//!   [`kernel::accumulate_scaled`] — never [`kernel::mul`], whose
//!   small-product shortcut would change the accumulation order with
//!   the slab width), and
//! * slab widths and parallel column chunks are padded to multiples of
//!   4 so every column runs the same `dot4` micro-kernel lane of the
//!   packed real kernel (the ≤ 3-column remainder loop sums in a
//!   different association order).
//!
//! The compact-rotation ordering differs from the blocked backend's
//! (which rotates the full accumulated factors), so full-rank
//! `PartialSvd` factors agree with [`svd_blocked`](super::blocked)
//! factors only to roundoff — the singular values still match bit for
//! bit above the panel threshold.

use std::sync::OnceLock;

use crate::error::NumericError;
use crate::kernel;
use crate::matrix::Matrix;
use crate::parallel;
use crate::qr::reflector;
use crate::scalar::Scalar;
use crate::svd::bidiag_qr::finish_bidiagonal;
use crate::svd::blocked::{bidiag_panel, larft, trailing_update, NB};
use crate::svd::{validate_input, SvdFactors};

/// Minimum slab columns assigned per worker before the accumulation
/// fan-out spawns another thread; a multiple of 4 so chunk boundaries
/// never split a `dot4` group.
const PAR_MIN_SLAB_COLS_PER_WORKER: usize = 16;

/// Tall inputs at least this many times taller than wide take the
/// QR-first route (R-bidiagonalization, LAPACK's `dgesvd` tall path):
/// a Q-less blocked Householder QR — whose trailing updates are pure
/// GEMMs — reduces the `m×n` bidiagonalization (half of whose flops
/// are memory-bound GEMVs) to `n×n`. The realization stage's stacked
/// pencils are exactly 2:1, so they always take it; right-factor
/// requests never touch `Q` at all.
const QR_FIRST_RATIO: usize = 2;

/// Rounds a slab width up to a multiple of 4: every column then runs
/// the same `dot4` micro-kernel lane regardless of how many neighbors
/// ride in the call (see the module docs' bit-identity contract).
fn pad4(cols: usize) -> usize {
    cols.div_ceil(4) * 4
}

/// A bidiagonalized matrix whose singular values are known and whose
/// singular-vector factors can be accumulated lazily, truncated to any
/// leading rank (see the module docs).
///
/// Created by [`Svd::bidiagonalize`](super::Svd::bidiagonalize).
///
/// ```
/// use mfti_numeric::{CMatrix, Svd, SvdFactors, c64};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = CMatrix::from_fn(20, 12, |i, j| {
///     c64(1.0 / (1.0 + i as f64 + j as f64), 0.1 * (i as f64 - j as f64))
/// });
/// let partial = Svd::bidiagonalize(&a)?;
/// // Pick a rank from the values alone …
/// let r = partial.singular_values().iter().filter(|&&s| s > 1e-10).count();
/// // … then pay only for the columns the projection reads.
/// let (u, v) = partial.accumulate(SvdFactors::Both, r)?;
/// assert_eq!(u.dims(), (20, r));
/// assert_eq!(v.dims(), (12, r));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PartialSvd<T: Scalar> {
    /// Q-less blocked QR state when the tall input took the QR-first
    /// route (`m ≥ 2n`, see [`QR_FIRST_RATIO`]): the bidiagonalization
    /// then ran on the `n × n` triangle `R`, and left-factor requests
    /// lift their slab back through these reflectors. `None` on the
    /// direct route.
    qr: Option<QrFirst<T>>,
    /// Reflector tails in the tall (`m ≥ n`) orientation: left tails
    /// below the diagonal, right tails beyond the superdiagonal —
    /// exactly where the panel sweep zeroed them out.
    w: Matrix<T>,
    /// Left reflector scaling factors (`n`).
    tauq: Vec<T>,
    /// Right reflector scaling factors (`n − 1`).
    taup: Vec<T>,
    /// Real bidiagonal diagonal, pre-rescale.
    d: Vec<f64>,
    /// Real bidiagonal superdiagonal, pre-rescale.
    e: Vec<f64>,
    /// Undoes the overflow-guard input scaling on the values.
    rescale: f64,
    /// Singular values, descending (resolved eagerly, factor-free).
    values: Vec<f64>,
    /// The input was wide and is stored as its adjoint: factor requests
    /// and results swap through `A = UΣV*  ⇔  A* = VΣU*`.
    swapped: bool,
    /// Replayed compact rotation factors (`n × n`, tall orientation),
    /// cached on the first accumulation per side: the bidiagonal-QR
    /// rotation stream is deterministic, so every replay produces the
    /// same bits — repeated accumulations (a session re-realizing at a
    /// new order) skip the replay and pay only the rank-limited WY
    /// application.
    compact_u: OnceLock<Matrix<T>>,
    /// Right-side counterpart of [`Self::compact_u`].
    compact_v: OnceLock<Matrix<T>>,
}

/// The packed output of the Q-less blocked Householder QR that fronts
/// the bidiagonalization of very tall inputs: `R` on and above the
/// diagonal of `w` (`m × n`), reflector tails below, scaling factors in
/// `taus` — `Q = H_0 ⋯ H_{n−1}` is never formed.
#[derive(Debug, Clone)]
struct QrFirst<T: Scalar> {
    w: Matrix<T>,
    taus: Vec<T>,
}

impl<T: Scalar> PartialSvd<T> {
    /// Panel-bidiagonalizes `a` and resolves its singular values; the
    /// factor state stays latent until [`accumulate`](Self::accumulate).
    ///
    /// # Errors
    ///
    /// As [`Svd::compute`](super::Svd::compute): empty or non-finite
    /// input, QR-sweep stall.
    pub(super) fn compute(a: &Matrix<T>) -> Result<Self, NumericError> {
        validate_input(a)?;
        if a.rows() < a.cols() {
            let mut partial = Self::compute_tall(&a.adjoint())?;
            partial.swapped = true;
            return Ok(partial);
        }
        Self::compute_tall(a)
    }

    /// The tall-orientation worker: the same scaling guard and panel
    /// sweep as [`svd_blocked`](super::blocked::svd_blocked), minus the
    /// factor accumulation and with the QR iteration run factor-free.
    fn compute_tall(a: &Matrix<T>) -> Result<Self, NumericError> {
        let (m, n) = a.dims();
        debug_assert!(m >= n);
        let scale = a.max_abs();
        let out_of_range = scale > 0.0 && !(1e-150..=1e150).contains(&scale);
        let mut w = if out_of_range {
            a.scale(1.0 / scale)
        } else {
            a.clone()
        };
        let rescale = if out_of_range { scale } else { 1.0 };
        let threads = parallel::available_threads();

        // Very tall inputs: QR first, then bidiagonalize the n×n `R`.
        let qr = if m >= QR_FIRST_RATIO * n && n >= 2 {
            let (qr, r_mat) = qr_factor(w, threads)?;
            w = r_mat;
            Some(qr)
        } else {
            None
        };

        let mut d = vec![0.0f64; n];
        let mut e = vec![0.0f64; n.saturating_sub(1)];
        let mut tauq = vec![T::ZERO; n];
        let mut taup = vec![T::ZERO; n.saturating_sub(1)];
        let mut i0 = 0usize;
        while i0 < n {
            let nb = NB.min(n - i0);
            let acc = bidiag_panel(&mut w, i0, nb, &mut d, &mut e, &mut tauq, &mut taup);
            if i0 + nb < n {
                trailing_update(&mut w, i0, nb, &acc, threads)?;
            }
            i0 += nb;
        }

        // Values now: the rotation stream is factor-independent, so a
        // factor-free run yields the same bits as any later
        // `accumulate` replay.
        let (_, values, _) = finish_bidiagonal(
            Matrix::<T>::zeros(0, 0),
            Matrix::<T>::zeros(0, 0),
            d.clone(),
            e.clone(),
            false,
            false,
            rescale,
        )?;
        Ok(PartialSvd {
            qr,
            w,
            tauq,
            taup,
            d,
            e,
            rescale,
            values,
            swapped: false,
            compact_u: OnceLock::new(),
            compact_v: OnceLock::new(),
        })
    }

    /// Dimensions of the decomposed matrix (original orientation).
    pub fn dims(&self) -> (usize, usize) {
        let n = self.w.cols();
        let m = self.qr.as_ref().map_or(self.w.rows(), |qr| qr.w.rows());
        if self.swapped {
            (n, m)
        } else {
            (m, n)
        }
    }

    /// Singular values in descending order — available without paying
    /// for any factor accumulation.
    pub fn singular_values(&self) -> &[f64] {
        &self.values
    }

    /// Numerical rank: values above `rel_tol · σ₁` (mirrors
    /// [`Svd::rank`](super::Svd::rank)).
    pub fn rank(&self, rel_tol: f64) -> usize {
        let smax = self.values.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.values
            .iter()
            .take_while(|&&x| x > rel_tol * smax)
            .count()
    }

    /// Accumulates the requested factors restricted to the leading `r`
    /// columns: `(U m×r, V n×r)` with skipped factors returned as `0×0`
    /// matrices. The result is bit-identical to the leading `r` columns
    /// of a full-rank accumulation, at every worker count (module docs).
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] when `r` is zero or exceeds
    /// `min(m, n)`; propagates QR-sweep and shape failures.
    pub fn accumulate(
        &self,
        factors: SvdFactors,
        r: usize,
    ) -> Result<(Matrix<T>, Matrix<T>), NumericError> {
        let n = self.w.cols();
        if r == 0 || r > n {
            return Err(NumericError::InvalidArgument {
                what: "partial svd accumulation rank out of range",
            });
        }
        // Factor requests read through the adjoint for wide inputs.
        let tall = if self.swapped {
            factors.swapped()
        } else {
            factors
        };
        let (want_u, want_v) = (tall.left(), tall.right());

        // Replay the QR rotations into compact n×n factors, once per
        // side. The stream (and the σ ordering the sort sees) matches
        // the eager values run bit for bit, so the cached factors are
        // indistinguishable from a fresh replay.
        let need_u = want_u && self.compact_u.get().is_none();
        let need_v = want_v && self.compact_v.get().is_none();
        if need_u || need_v {
            let ub = if need_u {
                Matrix::<T>::identity(n)
            } else {
                Matrix::<T>::zeros(0, 0)
            };
            let vb = if need_v {
                Matrix::<T>::identity(n)
            } else {
                Matrix::<T>::zeros(0, 0)
            };
            let (ub, values, vb) = finish_bidiagonal(
                ub,
                vb,
                self.d.clone(),
                self.e.clone(),
                need_u,
                need_v,
                self.rescale,
            )?;
            debug_assert_eq!(values, self.values);
            if need_u {
                let _ = self.compact_u.set(ub);
            }
            if need_v {
                let _ = self.compact_v.set(vb);
            }
        }

        let u = if want_u {
            let ub = self.compact_u.get().ok_or(NumericError::InvalidArgument {
                what: "partial svd left factor cache missing after replay",
            })?;
            self.apply_left_reflectors(ub, r)?
        } else {
            Matrix::<T>::zeros(0, 0)
        };
        let v = if want_v {
            let vb = self.compact_v.get().ok_or(NumericError::InvalidArgument {
                what: "partial svd right factor cache missing after replay",
            })?;
            self.apply_right_reflectors(vb, r)?
        } else {
            Matrix::<T>::zeros(0, 0)
        };
        if self.swapped {
            Ok((v, u))
        } else {
            Ok((u, v))
        }
    }

    /// Left factor only, truncated to `r` columns (`m × r`).
    ///
    /// # Errors
    ///
    /// See [`PartialSvd::accumulate`].
    pub fn accumulate_u(&self, r: usize) -> Result<Matrix<T>, NumericError> {
        Ok(self.accumulate(SvdFactors::Left, r)?.0)
    }

    /// Right factor only, truncated to `r` columns (`n × r`).
    ///
    /// # Errors
    ///
    /// See [`PartialSvd::accumulate`].
    pub fn accumulate_v(&self, r: usize) -> Result<Matrix<T>, NumericError> {
        Ok(self.accumulate(SvdFactors::Right, r)?.1)
    }

    /// Applies `Q = H_0 ⋯ H_{n−1}` (left reflectors, tails below `w`'s
    /// diagonal) to the slab `[Ub(:, 1..r); 0]` (`m × r`), one backward
    /// WY block at a time, columns fanned across workers. On the
    /// QR-first route this runs on the `n`-row `R`-bidiagonalization
    /// slab, which is then lifted through the stored QR reflectors by
    /// the same backward-WY machinery — so the leading-`r` bits still
    /// match the full-rank run at every worker count.
    fn apply_left_reflectors(&self, ub: &Matrix<T>, r: usize) -> Result<Matrix<T>, NumericError> {
        let (m, n) = self.w.dims();
        let rp = pad4(r);
        let mut slab = Matrix::<T>::zeros(m, rp);
        for i in 0..n {
            let src = &ub.row(i)[..r];
            slab.row_mut(i)[..r].copy_from_slice(src);
        }
        let starts: Vec<usize> = (0..n).step_by(NB).collect();
        let mut blocks = Vec::new();
        for &i0 in starts.iter().rev() {
            let nb = NB.min(n - i0);
            let rows = m - i0;
            let mut vblk = Matrix::<T>::zeros(rows, nb);
            for j in 0..nb {
                let k = i0 + j;
                vblk[(j, j)] = T::ONE;
                for row in k + 1..m {
                    vblk[(row - i0, j)] = self.w[(row, k)];
                }
            }
            let tmat = larft(&vblk, &self.tauq[i0..i0 + nb]);
            blocks.push((i0, vblk, tmat));
        }
        apply_wy_blocks(&mut slab, &blocks)?;
        let Some(qr) = &self.qr else {
            return slab.submatrix(0, 0, m, r);
        };

        // QR-first lift: U = Q_qr · U_R, with Q_qr's panels applied as
        // backward WY blocks on the zero-extended `mq × rp` slab.
        let mq = qr.w.rows();
        let mut big = Matrix::<T>::zeros(mq, rp);
        for i in 0..m {
            big.row_mut(i).copy_from_slice(slab.row(i));
        }
        let mut blocks = Vec::new();
        for &i0 in starts.iter().rev() {
            let nb = NB.min(n - i0);
            let rows = mq - i0;
            let mut vblk = Matrix::<T>::zeros(rows, nb);
            for j in 0..nb {
                let k = i0 + j;
                vblk[(j, j)] = T::ONE;
                for row in k + 1..mq {
                    vblk[(row - i0, j)] = qr.w[(row, k)];
                }
            }
            let tmat = larft(&vblk, &qr.taus[i0..i0 + nb]);
            blocks.push((i0, vblk, tmat));
        }
        apply_wy_blocks(&mut big, &blocks)?;
        big.submatrix(0, 0, mq, r)
    }

    /// Applies `P = P_0 ⋯ P_{n−2}` (right reflectors, tails beyond `w`'s
    /// superdiagonal; reflector `k` acts on coordinates `k+1..n`) to the
    /// slab `Vb(:, 1..r)` (`n × r`).
    fn apply_right_reflectors(&self, vb: &Matrix<T>, r: usize) -> Result<Matrix<T>, NumericError> {
        let n = self.w.cols();
        let rp = pad4(r);
        let mut slab = Matrix::<T>::zeros(n, rp);
        for i in 0..n {
            let src = &vb.row(i)[..r];
            slab.row_mut(i)[..r].copy_from_slice(src);
        }
        if n < 2 {
            return slab.submatrix(0, 0, n, r);
        }
        let mut blocks = Vec::new();
        let starts: Vec<usize> = (0..n).step_by(NB).collect();
        for &i0 in starts.iter().rev() {
            let nb = NB.min(n - i0).min(n - 1 - i0);
            if nb == 0 {
                continue;
            }
            let rows = n - i0 - 1;
            let mut vblk = Matrix::<T>::zeros(rows, nb);
            for j in 0..nb {
                let k = i0 + j;
                vblk[(j, j)] = T::ONE;
                for c in k + 2..n {
                    vblk[(c - i0 - 1, j)] = self.w[(k, c)];
                }
            }
            let tmat = larft(&vblk, &self.taup[i0..i0 + nb]);
            blocks.push((i0 + 1, vblk, tmat));
        }
        apply_wy_blocks(&mut slab, &blocks)?;
        slab.submatrix(0, 0, n, r)
    }
}

/// Applies a backward sequence of WY blocks to `slab`, fanning the
/// columns across workers in 4-aligned chunks. Block `(row0, vblk, t)`
/// encodes `I − V·T·Vᴴ` acting on slab rows `row0 .. row0 + vblk.rows`;
/// each chunk walks the whole block sequence independently, so the
/// per-column bits match the serial sweep for every worker count.
fn apply_wy_blocks<T: Scalar>(
    slab: &mut Matrix<T>,
    blocks: &[(usize, Matrix<T>, Matrix<T>)],
) -> Result<(), NumericError> {
    let (rows, cols) = slab.dims();
    if blocks.is_empty() || cols == 0 {
        return Ok(());
    }
    let threads = parallel::available_threads();
    let workers = threads
        .min(cols.div_ceil(PAR_MIN_SLAB_COLS_PER_WORKER))
        .max(1);
    let chunk = pad4(cols.div_ceil(workers));
    let ranges: Vec<(usize, usize)> = (0..cols)
        .step_by(chunk)
        .map(|c0| (c0, (c0 + chunk).min(cols)))
        .collect();
    let minus_one = T::from_f64(-1.0);
    let updated = parallel::try_map_with(workers, &ranges, |_, &(ca, cb)| {
        let width = cb - ca;
        let mut sub = slab.submatrix(0, ca, rows, width)?;
        for (row0, vblk, tmat) in blocks {
            let span = vblk.rows();
            let mut ssub = sub.submatrix(*row0, 0, span, width)?;
            let w1 = kernel::mul_hermitian_left(vblk, &ssub)?;
            // mul_blocked, not matmul: the small-product shortcut would
            // change the accumulation order with the slab width.
            let w2 = kernel::mul_blocked(tmat, &w1)?;
            kernel::accumulate_scaled(&mut ssub, minus_one, vblk, &w2)?;
            sub.set_block(*row0, 0, &ssub)?;
        }
        Ok::<Matrix<T>, NumericError>(sub)
    })?;
    for (&(ca, _), block) in ranges.iter().zip(updated) {
        slab.set_block(0, ca, &block)?;
    }
    Ok(())
}

/// Blocked Q-less Householder QR of a tall matrix (consumed): classic
/// panel factorization with the level-3 trailing update
/// `C := C − V·(Tᴴ·(Vᴴ·C))` routed through the same width-stable
/// kernels and 4-aligned parallel column chunks as the WY accumulation
/// above, so `R` — and everything downstream of it — is bit-identical
/// at every worker count. Returns the packed reflectors and the `n × n`
/// triangle `R`.
fn qr_factor<T: Scalar>(
    mut a: Matrix<T>,
    threads: usize,
) -> Result<(QrFirst<T>, Matrix<T>), NumericError> {
    let (m, n) = a.dims();
    debug_assert!(m >= n);
    let mut taus = vec![T::ZERO; n];
    let mut i0 = 0usize;
    while i0 < n {
        let nb = NB.min(n - i0);
        // Unblocked panel: reflector k eliminates column k below the
        // diagonal, then H_k* hits the remaining panel columns — swept
        // row-wise (contiguous slices in the row-major layout), with
        // the same per-element summation order over `i` as the textbook
        // column sweep, so the bits don't depend on the orientation.
        for j in 0..nb {
            let k = i0 + j;
            let col: Vec<T> = (k..m).map(|i| a[(i, k)]).collect();
            let (v, tau, beta) = reflector(&col);
            a[(k, k)] = T::from_f64(beta);
            for (i, &vi) in v.iter().enumerate() {
                a[(k + 1 + i, k)] = vi;
            }
            taus[k] = tau;
            let rest = k + 1..i0 + nb;
            if tau != T::ZERO && !rest.is_empty() {
                // t = τ* · (v̂ᴴ · A[k.., rest]),  v̂ = [1, v…].
                let mut t: Vec<T> = a.row(k)[rest.clone()].to_vec();
                for (i, &vi) in v.iter().enumerate() {
                    let vic = vi.conj();
                    for (tc, &ac) in t.iter_mut().zip(&a.row(k + 1 + i)[rest.clone()]) {
                        *tc += vic * ac;
                    }
                }
                let tauc = tau.conj();
                t.iter_mut().for_each(|tc| *tc = tauc * *tc);
                // A[k.., rest] −= v̂ · t.
                for (ac, &tc) in a.row_mut(k)[rest.clone()].iter_mut().zip(&t) {
                    *ac -= tc;
                }
                for (i, &vi) in v.iter().enumerate() {
                    for (ac, &tc) in a.row_mut(k + 1 + i)[rest.clone()].iter_mut().zip(&t) {
                        *ac -= tc * vi;
                    }
                }
            }
        }
        // Level-3 trailing update with the panel's compound reflector:
        // C := (I − V·T·Vᴴ)ᴴ·C = C − V·(Tᴴ·(Vᴴ·C)).
        if i0 + nb < n {
            let rows = m - i0;
            let mut vblk = Matrix::<T>::zeros(rows, nb);
            for j in 0..nb {
                let k = i0 + j;
                vblk[(j, j)] = T::ONE;
                for row in k + 1..m {
                    vblk[(row - i0, j)] = a[(row, k)];
                }
            }
            let tmat = larft(&vblk, &taus[i0..i0 + nb]);
            let c0 = i0 + nb;
            let width = n - c0;
            let workers = threads
                .min(width.div_ceil(PAR_MIN_SLAB_COLS_PER_WORKER))
                .max(1);
            let chunk = pad4(width.div_ceil(workers));
            let ranges: Vec<(usize, usize)> = (0..width)
                .step_by(chunk)
                .map(|ca| (ca, (ca + chunk).min(width)))
                .collect();
            let minus_one = T::from_f64(-1.0);
            let updated = parallel::try_map_with(workers, &ranges, |_, &(ca, cb)| {
                let mut c = a.submatrix(i0, c0 + ca, rows, cb - ca)?;
                let w1 = kernel::mul_hermitian_left(&vblk, &c)?;
                let w2 = kernel::mul_hermitian_left(&tmat, &w1)?;
                kernel::accumulate_scaled(&mut c, minus_one, &vblk, &w2)?;
                Ok::<Matrix<T>, NumericError>(c)
            })?;
            for (&(ca, _), block) in ranges.iter().zip(updated) {
                a.set_block(i0, c0 + ca, &block)?;
            }
        }
        i0 += nb;
    }
    let r_mat = Matrix::from_fn(n, n, |i, j| if j >= i { a[(i, j)] } else { T::ZERO });
    Ok((QrFirst { w: a, taus }, r_mat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::CMatrix;
    use crate::svd::Svd;

    fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn full_rank_accumulation_reconstructs() {
        // (97, 40) and (40, 96) cross the QR-first threshold (m ≥ 2n in
        // the tall orientation), including a non-multiple-of-NB height.
        for &(m, n) in &[
            (64, 64),
            (96, 64),
            (64, 96),
            (97, 40),
            (40, 96),
            (20, 12),
            (9, 13),
        ] {
            let a = pseudo_random_complex(m, n, (m * 41 + n) as u64);
            let partial = Svd::bidiagonalize(&a).unwrap();
            let r = m.min(n);
            let (u, v) = partial.accumulate(SvdFactors::Both, r).unwrap();
            let s = partial.singular_values();
            let mut us = u.clone();
            for j in 0..r {
                for i in 0..m {
                    us[(i, j)] = us[(i, j)].scale(s[j]);
                }
            }
            let err = (&us.mul_adjoint_right(&v).unwrap() - &a).norm_fro();
            assert!(
                err < 1e-12 * a.norm_fro(),
                "({m},{n}): reconstruction error {err}"
            );
        }
    }

    #[test]
    fn values_match_the_one_shot_backend() {
        for &(m, n) in &[(70, 50), (50, 70), (10, 10)] {
            let a = pseudo_random_complex(m, n, (m * 7 + n) as u64);
            let partial = Svd::bidiagonalize(&a).unwrap();
            let fresh = Svd::singular_values_of(&a).unwrap();
            for (x, y) in partial.singular_values().iter().zip(&fresh) {
                assert!((x - y).abs() <= 1e-12 * fresh[0], "σ drift {x} vs {y}");
            }
        }
    }

    #[test]
    fn rejects_out_of_range_rank_and_bad_input() {
        let a = pseudo_random_complex(8, 6, 3);
        let partial = Svd::bidiagonalize(&a).unwrap();
        assert!(partial.accumulate(SvdFactors::Both, 0).is_err());
        assert!(partial.accumulate(SvdFactors::Both, 7).is_err());
        assert!(Svd::bidiagonalize(&CMatrix::zeros(0, 0)).is_err());
    }
}
