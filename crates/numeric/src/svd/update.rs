//! Rank-revealing incremental SVD updates for streaming row/column
//! appends.
//!
//! The MFTI serving path refits a model per arriving measurement: every
//! `FitSession` append grows the shifted Loewner pencil `x₀𝕃 − σ𝕃` by
//! a border of new rows and columns, and order detection re-reads its
//! singular-value decay. Recomputing a fresh decomposition is `O(K³)`
//! per append; this module replaces it with a *bordered update* of the
//! retained thin factorization (Businger/Bunch-style updating, in the
//! streaming form popularized by Brand's incremental SVD):
//!
//! Given `A ≈ U Σ V*` (thin, rank `q`) and the grown matrix
//!
//! ```text
//! A' = [ A  C ]      C : m×kc (new columns over old rows)
//!      [ R  D ]      R : kr×n, D : kr×kc
//! ```
//!
//! project the border onto the retained bases (`Cᵤ = U*C`, `Rᵥ = RV`),
//! orthonormalize the residuals into `Q_c = qr(C − U Cᵤ)` and
//! `Q_r = qr((R − Rᵥ V*)*)`, and absorb everything into the **bordered
//! core**
//!
//! ```text
//!     [ Σ    0    Cᵤ  ]      A' = [U Q_c 0; 0 0 I] · B · [V Q_r 0; 0 0 I]*
//! B = [ 0    0    R_c ]
//!     [ Rᵥ   L_r  D   ]
//! ```
//!
//! whose singular values are those of `A'` (up to the retained-tail
//! error, tracked by [`SvdUpdater::error_bound`]). `B` is only
//! `(q + kc + kr)`-sized, so one small re-bidiagonalization — through
//! the same [`householder`](crate::householder) reflectors,
//! [`bidiag_qr`](super::bidiag_qr) iteration and blocked
//! [`kernel`] GEMMs as the full backends — plus two thin basis-rotation
//! GEMMs absorb the append in `O((m + n)(q + k)²)` work instead of
//! `O(K³)`. *Rank-revealing*: after every update the tail below
//! `rel_floor · σ₁` is truncated, so `q` tracks the numerical rank of
//! the stream — for the structurally rank-deficient pencils of the MFTI
//! pipeline (Lemma 3.3: rank ≤ n + rank D), `q` stays near the system
//! order while `K` grows without bound. Dense full-rank streams degrade
//! gracefully: everything is retained and the update approaches (but
//! never exceeds by more than the border bookkeeping) fresh-SVD cost.
//!
//! The updater is generic over the scalar: realified *real* pencils keep
//! every GEMM, reflector and rotation on the packed real path — no
//! complex promotion anywhere in the update loop. All arithmetic routes
//! through deterministically-chunked kernels, so updated singular
//! values are **bit-identical for every `MFTI_THREADS`** (asserted by
//! `tests/svd_update_thread_invariance.rs`).

use crate::error::NumericError;
use crate::kernel;
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::scalar::Scalar;
use crate::svd::bidiag_qr::SvdTriplet;
use crate::svd::{Svd, SvdMethod};

/// Default relative retained-tail floor: singular values below
/// `1e-13 · σ₁` are truncated from the retained factorization after
/// every update. Chosen to sit below every order-detection threshold
/// the pipeline uses (`OrderSelection::Threshold(1e-12)` and the
/// `1e-11` numeric floor) while staying above the `≈ K·ε·σ₁` roundoff
/// tail of exactly rank-deficient pencils, so truncation never disturbs
/// a rank decision yet keeps `q` at the numerical rank.
pub const DEFAULT_UPDATE_FLOOR: f64 = 1e-13;

/// Ill-conditioning floor for the downdate's restriction factors: the
/// row-deleted bases `U₂`, `V₂` have columns of at most unit norm, so
/// the diagonal of their QR `R` factors measures (in `[0, 1]`) how much
/// of each retained direction *survives* the eviction. A diagonal entry
/// at or below this floor means an evicted block essentially spanned a
/// retained singular direction — the core re-decomposition would divide
/// signal by roundoff — and [`SvdUpdater::downdate_leading`] refuses
/// with [`NumericError::Singular`] instead (callers degrade to a fresh
/// decomposition of the live window, DESIGN.md §9).
pub const DOWNDATE_COND_FLOOR: f64 = 1e-8;

/// A rank-revealing, incrementally updatable thin SVD
/// `A ≈ U diag(σ) V*`.
///
/// Create one from the initial matrix ([`SvdUpdater::new`]), then
/// absorb appended rows/columns ([`SvdUpdater::append_rows`],
/// [`SvdUpdater::append_cols`]) or a simultaneous border of both
/// ([`SvdUpdater::append_border`] — the shape of a growing square
/// pencil). Every append costs `O((m + n)(q + k)²)` with `q` the
/// retained rank, instead of the `O(min(m,n)²·max(m,n))` of a fresh
/// decomposition.
///
/// ```
/// use mfti_numeric::{CMatrix, Svd, SvdUpdater, c64};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = CMatrix::from_fn(6, 6, |i, j| c64(1.0 / (1.0 + i as f64 + j as f64), 0.0));
/// let mut upd = SvdUpdater::new(&a)?;
///
/// // Grow by a border of one row and one column.
/// let grown = CMatrix::from_fn(7, 7, |i, j| c64(1.0 / (1.0 + i as f64 + j as f64), 0.0));
/// let cols = grown.submatrix(0, 6, 6, 1)?;
/// let rows = grown.submatrix(6, 0, 1, 6)?;
/// let corner = grown.submatrix(6, 6, 1, 1)?;
/// upd.append_border(&cols, &rows, &corner)?;
///
/// let fresh = Svd::singular_values_of(&grown)?;
/// for (a, b) in upd.singular_values().iter().zip(&fresh) {
///     assert!((a - b).abs() < 1e-12 * fresh[0]);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SvdUpdater<T: Scalar> {
    /// Left basis, `rows × q` with (numerically) orthonormal columns.
    u: Matrix<T>,
    /// Retained singular values, descending.
    s: Vec<f64>,
    /// Right basis, `cols × q`.
    v: Matrix<T>,
    rows: usize,
    cols: usize,
    rel_floor: f64,
    /// Accumulated Frobenius-norm bound on everything truncated so far —
    /// by Weyl's inequality, a bound on the perturbation of every
    /// reported singular value.
    discarded: f64,
}

impl<T: Scalar> SvdUpdater<T> {
    /// Seeds the updater with a full decomposition of `a` (blocked
    /// backend, both factors) truncated to the retained rank at the
    /// [default floor](DEFAULT_UPDATE_FLOOR).
    ///
    /// # Errors
    ///
    /// Same as [`Svd::compute`]: empty or non-finite input, QR-sweep
    /// stall.
    pub fn new(a: &Matrix<T>) -> Result<Self, NumericError> {
        Self::with_floor(a, DEFAULT_UPDATE_FLOOR)
    }

    /// Seeds the updater with an explicit relative retained-tail floor
    /// (`0 ≤ rel_floor < 1`); singular values below `rel_floor · σ₁`
    /// are dropped from the retained state after the seed decomposition
    /// and after every append. `0.0` retains everything (exact but no
    /// longer sublinear for full-rank streams).
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] for a floor outside `[0, 1)`;
    /// otherwise as [`SvdUpdater::new`].
    pub fn with_floor(a: &Matrix<T>, rel_floor: f64) -> Result<Self, NumericError> {
        Self::with_floor_method(a, rel_floor, SvdMethod::Blocked)
    }

    /// [`SvdUpdater::with_floor`] with an explicit seed backend — the
    /// re-anchoring ladder (DESIGN.md §9) needs a Golub–Kahan-seeded
    /// updater when the blocked seed itself has stalled. Only the
    /// scalar-generic backends ([`SvdMethod::Blocked`],
    /// [`SvdMethod::GolubKahan`]) are supported.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] for a floor outside `[0, 1)`
    /// or the complex-only Jacobi backend; otherwise as
    /// [`SvdUpdater::new`].
    pub fn with_floor_method(
        a: &Matrix<T>,
        rel_floor: f64,
        method: SvdMethod,
    ) -> Result<Self, NumericError> {
        if !(0.0..1.0).contains(&rel_floor) {
            return Err(NumericError::InvalidArgument {
                what: "svd update floor must lie in [0, 1)",
            });
        }
        let (u, s, v) = Svd::factors_native_with(a, method, true, true)?;
        let mut updater = SvdUpdater {
            u,
            s,
            v,
            rows: a.rows(),
            cols: a.cols(),
            rel_floor,
            discarded: 0.0,
        };
        updater.discarded += updater.truncate_retained();
        Ok(updater)
    }

    /// Dimensions of the (virtually) factored matrix.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of retained singular triplets `q` — the working set every
    /// append re-decomposes. Tracks the numerical rank of the stream.
    pub fn retained_rank(&self) -> usize {
        self.s.len()
    }

    /// Retained singular values, descending. Values of the factored
    /// matrix below the retained floor are *absent* (callers comparing
    /// against a fresh decomposition should treat missing entries as
    /// zero).
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// Retained left singular vectors (`rows × q`).
    pub fn left(&self) -> &Matrix<T> {
        &self.u
    }

    /// Retained right singular vectors (`cols × q`), not conjugated:
    /// `A ≈ U diag(σ) V*`.
    pub fn right(&self) -> &Matrix<T> {
        &self.v
    }

    /// The leading `r` retained triplets `(U_r, σ_r, V_r)` in the
    /// **native scalar type** — real streams hand back real factors, so
    /// downstream projections stay on the packed real GEMM path (the
    /// realization stage consumes this on the session's retained-factor
    /// fast path instead of re-decomposing the grown pencil).
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] when `r` exceeds the retained
    /// rank — the truncated tail is gone; callers needing more columns
    /// must fall back to a fresh decomposition.
    pub fn truncate_native(&self, r: usize) -> Result<SvdTriplet<T>, NumericError> {
        if r > self.s.len() {
            return Err(NumericError::InvalidArgument {
                what: "truncation rank exceeds the retained rank",
            });
        }
        let idx: Vec<usize> = (0..r).collect();
        Ok((
            self.u.select_cols(&idx)?,
            self.s[..r].to_vec(),
            self.v.select_cols(&idx)?,
        ))
    }

    /// Upper bound (Frobenius, hence Weyl) on the deviation of any
    /// reported singular value from the exact one, accumulated over all
    /// truncations so far.
    pub fn error_bound(&self) -> f64 {
        self.discarded
    }

    /// The current **absolute** retained floor `rel_floor · σ₁`: every
    /// truncated singular value was at or below this level. Consumers
    /// that pad the retained spectrum back to full length should pad
    /// with this value rather than zero — it is below every sensible
    /// rank threshold (like the truncated values themselves) but keeps
    /// ratio-based gap detection from manufacturing an infinite drop at
    /// the truncation boundary.
    pub fn retain_floor(&self) -> f64 {
        self.rel_floor * self.s.first().copied().unwrap_or(0.0)
    }

    /// Numerical rank: retained values above `rel_tol · σ₁` (mirrors
    /// [`Svd::rank`]).
    pub fn rank(&self, rel_tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > rel_tol * smax).count()
    }

    /// Absorbs a simultaneous border append: the factored matrix grows
    /// from `rows × cols` to `(rows + kr) × (cols + kc)` with `cols_new`
    /// (`rows × kc`) the new columns over the old rows, `rows_new`
    /// (`kr × cols`) the new rows over the old columns and `corner`
    /// (`kr × kc`) the new corner block. Either `kc` or `kr` may be
    /// zero (empty matrices of matching outer dimension).
    ///
    /// The update is transactional: on error the retained state is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// [`NumericError::ShapeMismatch`] for inconsistent border shapes,
    /// [`NumericError::NotFinite`] for NaN/∞ entries, and SVD failures
    /// from the core re-decomposition.
    pub fn append_border(
        &mut self,
        cols_new: &Matrix<T>,
        rows_new: &Matrix<T>,
        corner: &Matrix<T>,
    ) -> Result<(), NumericError> {
        let kc = cols_new.cols();
        let kr = rows_new.rows();
        if cols_new.rows() != self.rows && kc > 0 {
            return Err(NumericError::ShapeMismatch {
                op: "svd update: appended columns",
                left: (self.rows, self.cols),
                right: cols_new.dims(),
            });
        }
        if rows_new.cols() != self.cols && kr > 0 {
            return Err(NumericError::ShapeMismatch {
                op: "svd update: appended rows",
                left: (self.rows, self.cols),
                right: rows_new.dims(),
            });
        }
        if corner.dims() != (kr, kc) {
            return Err(NumericError::ShapeMismatch {
                op: "svd update: corner block",
                left: (kr, kc),
                right: corner.dims(),
            });
        }
        if kc == 0 && kr == 0 {
            return Ok(());
        }
        for block in [cols_new, rows_new, corner] {
            if !block.is_finite() {
                return Err(NumericError::NotFinite { op: "svd update" });
            }
        }

        let q = self.s.len();
        let minus_one = T::from_f64(-1.0);
        // Truncation mass of this append; committed only on success.
        let mut dropped = 0.0f64;

        // --- Column side: Cᵤ = U*C, residual ⊥ span(U) ------------------
        // Two projection passes (classical Gram–Schmidt "twice is
        // enough"): when the new columns lie mostly inside the retained
        // span, one pass leaves an O(ε‖C‖) component along U that the
        // normalized residual basis would amplify.
        let (cu, qc, rc) = if kc > 0 {
            let mut cu = kernel::mul_hermitian_left(&self.u, cols_new)?;
            let mut resid = cols_new.clone();
            kernel::accumulate_scaled(&mut resid, minus_one, &self.u, &cu)?;
            let refine = kernel::mul_hermitian_left(&self.u, &resid)?;
            kernel::accumulate_scaled(&mut resid, minus_one, &self.u, &refine)?;
            cu = &cu + &refine;
            if q < self.rows {
                let qr = Qr::compute(&resid)?;
                (cu, Some(qr.q_thin()), Some(qr.r()))
            } else {
                // The retained left basis is already complete: the
                // residual is pure roundoff and is discarded.
                dropped += resid.norm_fro();
                (cu, None, None)
            }
        } else {
            (Matrix::<T>::zeros(q, 0), None, None)
        };

        // --- Row side: Rᵥ = R V, residual ⊥ span(V) ---------------------
        let (rv, qr_basis, lr) = if kr > 0 {
            let mut rv = kernel::mul_blocked(rows_new, &self.v)?;
            let mut resid = rows_new.clone();
            kernel::accumulate_scaled_adjoint_right(&mut resid, minus_one, &rv, &self.v)?;
            let refine = kernel::mul_blocked(&resid, &self.v)?;
            kernel::accumulate_scaled_adjoint_right(&mut resid, minus_one, &refine, &self.v)?;
            rv = &rv + &refine;
            if q < self.cols {
                // R − Rᵥ V* = L_r Q_r* via QR of the adjoint.
                let qr = Qr::compute(&resid.adjoint())?;
                (rv, Some(qr.q_thin()), Some(qr.r().adjoint()))
            } else {
                dropped += resid.norm_fro();
                (rv, None, None)
            }
        } else {
            (Matrix::<T>::zeros(0, q), None, None)
        };
        let kcb = qc.as_ref().map_or(0, Matrix::cols);
        let krb = qr_basis.as_ref().map_or(0, Matrix::cols);

        // --- Bordered core B --------------------------------------------
        let mut b = Matrix::<T>::zeros(q + kcb + kr, q + krb + kc);
        for (i, &sv) in self.s.iter().enumerate() {
            b[(i, i)] = T::from_f64(sv);
        }
        if kc > 0 {
            b.set_block(0, q + krb, &cu)?;
            if let Some(rc) = &rc {
                b.set_block(q, q + krb, rc)?;
            }
        }
        if kr > 0 {
            b.set_block(q + kcb, 0, &rv)?;
            if let Some(lr) = &lr {
                b.set_block(q + kcb, q, lr)?;
            }
            if kc > 0 {
                b.set_block(q + kcb, q + krb, corner)?;
            }
        }
        let (ub, s_new, vb) = Svd::factors_native(&b, true, true)?;
        let rmin = s_new.len();

        // --- Rotate the bases into the new singular directions ----------
        // U' = [U Q_c 0; 0 0 I]·U_B — a thin GEMM on the old-coordinate
        // rows, a copy on the new ones (and symmetrically for V').
        let left_basis = match &qc {
            Some(qc) => self.u.append_cols(qc)?,
            None => self.u.clone(),
        };
        let mut u_new = kernel::mul_blocked(&left_basis, &ub.submatrix(0, 0, q + kcb, rmin)?)?;
        if kr > 0 {
            u_new = u_new.append_rows(&ub.submatrix(q + kcb, 0, kr, rmin)?)?;
        }
        let right_basis = match &qr_basis {
            Some(qr) => self.v.append_cols(qr)?,
            None => self.v.clone(),
        };
        let mut v_new = kernel::mul_blocked(&right_basis, &vb.submatrix(0, 0, q + krb, rmin)?)?;
        if kc > 0 {
            v_new = v_new.append_rows(&vb.submatrix(q + krb, 0, kc, rmin)?)?;
        }

        // --- Commit + rank-revealing truncation -------------------------
        self.u = u_new;
        self.s = s_new;
        self.v = v_new;
        self.rows += kr;
        self.cols += kc;
        dropped += self.truncate_retained();
        self.discarded += dropped;
        Ok(())
    }

    /// Absorbs `kr` appended rows (`kr × cols`); see
    /// [`SvdUpdater::append_border`].
    ///
    /// # Errors
    ///
    /// Same as [`SvdUpdater::append_border`].
    pub fn append_rows(&mut self, rows_new: &Matrix<T>) -> Result<(), NumericError> {
        let empty_cols = Matrix::<T>::zeros(self.rows, 0);
        let empty_corner = Matrix::<T>::zeros(rows_new.rows(), 0);
        self.append_border(&empty_cols, rows_new, &empty_corner)
    }

    /// Absorbs `kc` appended columns (`rows × kc`); see
    /// [`SvdUpdater::append_border`].
    ///
    /// # Errors
    ///
    /// Same as [`SvdUpdater::append_border`].
    pub fn append_cols(&mut self, cols_new: &Matrix<T>) -> Result<(), NumericError> {
        let empty_rows = Matrix::<T>::zeros(0, self.cols);
        let empty_corner = Matrix::<T>::zeros(0, cols_new.cols());
        self.append_border(cols_new, &empty_rows, &empty_corner)
    }

    /// Removes the leading `kr` rows and `kc` columns from the factored
    /// matrix — the dual of [`SvdUpdater::append_border`], for sliding-
    /// window streams whose oldest border strips expire.
    ///
    /// Deleting rows restricts the factorization: with
    /// `U₂ = U[kr.., ..]` and `V₂ = V[kc.., ..]` (orthonormality lost),
    /// QR-factor `U₂ = Q_u R_u`, `V₂ = Q_v R_v` and re-decompose the
    /// small `q × q` core `R_u · diag(σ) · R_v*`; rotating the thin `Q`
    /// bases by the core's singular vectors restores a thin SVD of the
    /// surviving window in `O((m + n) q²)` work. The retained-tail
    /// [`SvdUpdater::error_bound`] remains valid — restriction never
    /// grows the Frobenius norm of the truncated tail — but because the
    /// *retained* mass shrinks too, the relative drift grows, which is
    /// exactly the signal a session uses to schedule re-anchoring.
    ///
    /// **Numerically treacherous when ill-conditioned**: if the evicted
    /// rows essentially spanned a retained singular direction, `R_u` (or
    /// `R_v`) is singular to working precision and the core
    /// re-decomposition would manufacture garbage by catastrophic
    /// cancellation. That case is *detected* (diagonal of `R` below
    /// [`DOWNDATE_COND_FLOOR`]) and refused with a typed
    /// [`NumericError::Singular`] — callers degrade to a fresh
    /// decomposition of the live window (DESIGN.md §9).
    ///
    /// The update is transactional: on error the retained state is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] when the downdate would leave
    /// an empty window or a window smaller than the retained rank (the
    /// truncated tail is gone — no restriction of the retained factors
    /// can represent it; callers must re-decompose the live window),
    /// [`NumericError::Singular`] for a detected ill-conditioned
    /// eviction, and SVD failures from the core re-decomposition.
    pub fn downdate_leading(&mut self, kr: usize, kc: usize) -> Result<(), NumericError> {
        if kr == 0 && kc == 0 {
            return Ok(());
        }
        if kr >= self.rows || kc >= self.cols {
            return Err(NumericError::InvalidArgument {
                what: "svd downdate must leave a nonempty window",
            });
        }
        let q = self.s.len();
        let m2 = self.rows - kr;
        let n2 = self.cols - kc;
        if q > m2 || q > n2 {
            return Err(NumericError::InvalidArgument {
                what: "retained rank exceeds the downdated window",
            });
        }

        // Row-deleted bases and their QR restriction factors.
        let u2 = self.u.submatrix(kr, 0, m2, q)?;
        let v2 = self.v.submatrix(kc, 0, n2, q)?;
        let qr_u = Qr::compute(&u2)?;
        let qr_v = Qr::compute(&v2)?;
        let ru = qr_u.r();
        let rv = qr_v.r();

        // Ill-conditioning gate: columns of U₂/V₂ have norm ≤ 1, so the
        // R diagonals measure surviving mass per retained direction.
        for r in [&ru, &rv] {
            for i in 0..q {
                if r[(i, i)].abs() <= DOWNDATE_COND_FLOOR {
                    return Err(NumericError::Singular {
                        op: "svd downdate: eviction spans a retained direction",
                    });
                }
            }
        }

        // Core R_u · diag(σ) · R_v* (q × q), then its SVD.
        let mut scaled = ru.clone();
        for j in 0..q {
            let sv = T::from_f64(self.s[j]);
            for i in 0..q {
                scaled[(i, j)] *= sv;
            }
        }
        let core = kernel::mul_adjoint_right(&scaled, &rv)?;
        let (ub, s_new, vb) = Svd::factors_native(&core, true, true)?;

        // Rotate the orthonormal bases into the new singular directions.
        let u_new = kernel::mul_blocked(&qr_u.q_thin(), &ub)?;
        let v_new = kernel::mul_blocked(&qr_v.q_thin(), &vb)?;

        // Commit + rank-revealing truncation.
        self.u = u_new;
        self.s = s_new;
        self.v = v_new;
        self.rows = m2;
        self.cols = n2;
        let dropped = self.truncate_retained();
        self.discarded += dropped;
        Ok(())
    }

    /// Residual-verification probe: Frobenius norm of
    /// `reference − (U Σ V*)[.., indices]`, where `reference` holds the
    /// true columns of the factored matrix at `indices` (caller-
    /// assembled — the updater never sees the full matrix). Sessions
    /// probe a handful of deterministic sample columns of the live
    /// window after every downdate; a residual above the drift
    /// threshold quarantines the factorization (DESIGN.md §9).
    ///
    /// The probe is read-only and routes through the same
    /// deterministically-chunked GEMM as the updates, so its value is
    /// bit-identical at every `MFTI_THREADS`.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] for an out-of-range column
    /// index, [`NumericError::ShapeMismatch`] when `reference` is not
    /// `rows × indices.len()`.
    pub fn residual_on_columns(
        &self,
        reference: &Matrix<T>,
        indices: &[usize],
    ) -> Result<f64, NumericError> {
        if reference.dims() != (self.rows, indices.len()) {
            return Err(NumericError::ShapeMismatch {
                op: "svd downdate probe: reference columns",
                left: (self.rows, indices.len()),
                right: reference.dims(),
            });
        }
        if indices.iter().any(|&j| j >= self.cols) {
            return Err(NumericError::InvalidArgument {
                what: "svd downdate probe: column index out of range",
            });
        }
        let q = self.s.len();
        // Coefficients of the probed columns in the left basis:
        // A[.., j] = U · (σ_t · conj(V[j, t]))_t.
        let mut coef = Matrix::<T>::zeros(q, indices.len());
        for (p, &j) in indices.iter().enumerate() {
            for t in 0..q {
                coef[(t, p)] = T::from_f64(self.s[t]) * self.v[(j, t)].conj();
            }
        }
        let mut diff = reference.clone();
        kernel::accumulate_scaled(&mut diff, T::from_f64(-1.0), &self.u, &coef)?;
        Ok(diff.norm_fro())
    }

    /// Drops retained triplets below `rel_floor · σ₁` (keeping at least
    /// one and at most `min(rows, cols)`), returning the Frobenius mass
    /// of what was dropped.
    fn truncate_retained(&mut self) -> f64 {
        let total = self.s.len();
        if total == 0 {
            return 0.0;
        }
        let smax = self.s[0];
        let floor = self.rel_floor * smax;
        let limit = self.rows.min(self.cols).max(1);
        let keep = self
            .s
            .iter()
            .take_while(|&&x| x > floor)
            .count()
            .clamp(1, total)
            .min(limit);
        if keep == total {
            return 0.0;
        }
        let mass: f64 = self.s[keep..].iter().map(|x| x * x).sum::<f64>().sqrt();
        self.s.truncate(keep);
        self.u = self
            .u
            .submatrix(0, 0, self.u.rows(), keep)
            .expect("keep <= retained"); // mfti-lint: allow(MFTI-D7) — keep ≤ total ≤ u.cols() by the clamp above
        self.v = self
            .v
            .submatrix(0, 0, self.v.rows(), keep)
            .expect("keep <= retained"); // mfti-lint: allow(MFTI-D7) — keep ≤ total ≤ v.cols() by the clamp above
        mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::{CMatrix, RMatrix};

    fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    fn assert_sv_close(updater: &[f64], fresh: &[f64], tol_rel: f64) {
        let smax = fresh.first().copied().unwrap_or(0.0).max(1e-300);
        for i in 0..fresh.len().max(updater.len()) {
            let a = updater.get(i).copied().unwrap_or(0.0);
            let b = fresh.get(i).copied().unwrap_or(0.0);
            assert!(
                (a - b).abs() <= tol_rel * smax,
                "σ[{i}]: updated {a:e} vs fresh {b:e}"
            );
        }
    }

    #[test]
    fn border_append_matches_fresh_svd() {
        let full = pseudo_random_complex(20, 20, 0xfeed);
        let a = full.submatrix(0, 0, 16, 16).unwrap();
        let mut upd = SvdUpdater::new(&a).unwrap();
        upd.append_border(
            &full.submatrix(0, 16, 16, 4).unwrap(),
            &full.submatrix(16, 0, 4, 16).unwrap(),
            &full.submatrix(16, 16, 4, 4).unwrap(),
        )
        .unwrap();
        let fresh = Svd::singular_values_of(&full).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-12);
        assert_eq!(upd.dims(), (20, 20));
    }

    #[test]
    fn row_and_column_appends_match_fresh_svd() {
        let full = pseudo_random_complex(14, 10, 0xabcd);
        let a = full.submatrix(0, 0, 10, 10).unwrap();
        let mut upd = SvdUpdater::new(&a).unwrap();
        upd.append_rows(&full.submatrix(10, 0, 4, 10).unwrap())
            .unwrap();
        let fresh = Svd::singular_values_of(&full).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-12);

        // And columns on the adjoint shape.
        let wide = pseudo_random_complex(10, 14, 0x1234);
        let a = wide.submatrix(0, 0, 10, 10).unwrap();
        let mut upd = SvdUpdater::new(&a).unwrap();
        upd.append_cols(&wide.submatrix(0, 10, 10, 4).unwrap())
            .unwrap();
        let fresh = Svd::singular_values_of(&wide).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-12);
    }

    #[test]
    fn low_rank_stream_keeps_a_small_working_set() {
        // Rank-3 outer product grown one border at a time: the retained
        // rank must stay near 3 no matter how large the matrix gets.
        let left = pseudo_random_complex(40, 3, 7);
        let right = pseudo_random_complex(3, 40, 8);
        let full = left.matmul(&right).unwrap();
        let mut upd = SvdUpdater::new(&full.submatrix(0, 0, 10, 10).unwrap()).unwrap();
        for k in 10..40 {
            upd.append_border(
                &full.submatrix(0, k, k, 1).unwrap(),
                &full.submatrix(k, 0, 1, k).unwrap(),
                &full.submatrix(k, k, 1, 1).unwrap(),
            )
            .unwrap();
        }
        assert_eq!(upd.dims(), (40, 40));
        assert!(
            upd.retained_rank() <= 6,
            "retained rank {} for a rank-3 stream",
            upd.retained_rank()
        );
        assert_eq!(upd.rank(1e-8), 3);
        let fresh = Svd::singular_values_of(&full).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-11);
    }

    #[test]
    fn real_scalar_updates_stay_real_and_accurate() {
        let full = RMatrix::from_fn(18, 18, |i, j| ((i * 13 + j * 5) % 17) as f64 / 17.0 - 0.4);
        let mut upd = SvdUpdater::new(&full.submatrix(0, 0, 12, 12).unwrap()).unwrap();
        for k in (12..18).step_by(2) {
            upd.append_border(
                &full.submatrix(0, k, k, 2).unwrap(),
                &full.submatrix(k, 0, 2, k).unwrap(),
                &full.submatrix(k, k, 2, 2).unwrap(),
            )
            .unwrap();
        }
        let fresh = Svd::singular_values_of(&full).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-11);
    }

    #[test]
    fn empty_append_is_a_no_op_and_shapes_are_validated() {
        let a = pseudo_random_complex(8, 8, 3);
        let mut upd = SvdUpdater::new(&a).unwrap();
        let before = upd.singular_values().to_vec();
        upd.append_border(
            &CMatrix::zeros(8, 0),
            &CMatrix::zeros(0, 8),
            &CMatrix::zeros(0, 0),
        )
        .unwrap();
        assert_eq!(upd.singular_values(), &before[..]);

        // Wrong row count on the appended columns.
        assert!(upd.append_cols(&pseudo_random_complex(7, 2, 4)).is_err());
        // Wrong corner shape.
        assert!(upd
            .append_border(
                &pseudo_random_complex(8, 2, 5),
                &pseudo_random_complex(2, 8, 6),
                &CMatrix::zeros(1, 1),
            )
            .is_err());
        // Failed appends leave the state untouched.
        assert_eq!(upd.singular_values(), &before[..]);
        assert_eq!(upd.dims(), (8, 8));
    }

    #[test]
    fn rejects_invalid_floor_and_nonfinite_borders() {
        let a = pseudo_random_complex(6, 6, 9);
        assert!(SvdUpdater::with_floor(&a, 1.5).is_err());
        assert!(SvdUpdater::with_floor(&a, -0.1).is_err());
        let mut upd = SvdUpdater::new(&a).unwrap();
        let mut bad = pseudo_random_complex(6, 1, 10);
        bad[(0, 0)] = c64(f64::NAN, 0.0);
        assert!(upd.append_cols(&bad).is_err());
    }

    #[test]
    fn downdate_matches_fresh_svd_of_the_surviving_window() {
        // Rank-6 stream (the pencil regime: retained rank ≪ window), so
        // the restriction fits inside the surviving window.
        let left = pseudo_random_complex(20, 6, 0xd0d0);
        let right = pseudo_random_complex(6, 20, 0x0d0d);
        let full = left.matmul(&right).unwrap();
        let mut upd = SvdUpdater::new(&full).unwrap();
        upd.downdate_leading(4, 4).unwrap();
        let window = full.submatrix(4, 4, 16, 16).unwrap();
        let fresh = Svd::singular_values_of(&window).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-11);
        assert_eq!(upd.dims(), (16, 16));

        // And the restored factors actually reconstruct the window.
        let resid = upd
            .residual_on_columns(&window.submatrix(0, 0, 16, 3).unwrap(), &[0, 1, 2])
            .unwrap();
        assert!(resid <= 1e-10 * fresh[0], "probe residual {resid:e}");
    }

    #[test]
    fn asymmetric_downdate_matches_fresh_svd() {
        let left = pseudo_random_complex(18, 5, 0xbead);
        let right = pseudo_random_complex(5, 14, 0xdaeb);
        let full = left.matmul(&right).unwrap();
        let mut upd = SvdUpdater::new(&full).unwrap();
        upd.downdate_leading(6, 2).unwrap();
        let window = full.submatrix(6, 2, 12, 12).unwrap();
        let fresh = Svd::singular_values_of(&window).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-11);
    }

    #[test]
    fn update_downdate_round_trip_tracks_a_sliding_window() {
        // Slide a 12×12 window along a rank-4 24×24 stream one border
        // at a time: append the new strip, downdate the expired one.
        let left = pseudo_random_complex(24, 4, 0x51de);
        let right = pseudo_random_complex(4, 24, 0xed15);
        let full = left.matmul(&right).unwrap();
        let mut upd = SvdUpdater::new(&full.submatrix(0, 0, 12, 12).unwrap()).unwrap();
        for k in 12..24 {
            let lead = k - 12;
            upd.append_border(
                &full.submatrix(lead, k, 12, 1).unwrap(),
                &full.submatrix(k, lead, 1, 12).unwrap(),
                &full.submatrix(k, k, 1, 1).unwrap(),
            )
            .unwrap();
            upd.downdate_leading(1, 1).unwrap();
        }
        let window = full.submatrix(12, 12, 12, 12).unwrap();
        let fresh = Svd::singular_values_of(&window).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-9);
        assert_eq!(upd.dims(), (12, 12));
    }

    #[test]
    fn real_scalar_downdate_stays_real_and_accurate() {
        let left = RMatrix::from_fn(16, 4, |i, j| ((i * 7 + j * 11) % 19) as f64 / 19.0 - 0.3);
        let right = RMatrix::from_fn(4, 16, |i, j| ((i * 5 + j * 13) % 23) as f64 / 23.0 - 0.4);
        let full = left.matmul(&right).unwrap();
        let mut upd = SvdUpdater::new(&full).unwrap();
        upd.downdate_leading(3, 3).unwrap();
        let window = full.submatrix(3, 3, 13, 13).unwrap();
        let fresh = Svd::singular_values_of(&window).unwrap();
        assert_sv_close(upd.singular_values(), &fresh, 1e-11);
    }

    #[test]
    fn downdate_is_transactional_on_invalid_requests() {
        let a = pseudo_random_complex(10, 10, 0x7007);
        let mut upd = SvdUpdater::new(&a).unwrap();
        let before = upd.singular_values().to_vec();
        // Emptying the window is refused.
        assert!(upd.downdate_leading(10, 0).is_err());
        // Shrinking below the retained rank is refused (full-rank
        // stream: q = 10 > 10 − 4).
        assert!(upd.downdate_leading(4, 4).is_err());
        assert_eq!(upd.singular_values(), &before[..]);
        assert_eq!(upd.dims(), (10, 10));
        // A no-op downdate is fine.
        upd.downdate_leading(0, 0).unwrap();
        assert_eq!(upd.singular_values(), &before[..]);
    }

    #[test]
    fn ill_conditioned_eviction_is_refused_not_garbage() {
        // Rank-2 stream whose dominant direction lives *entirely* in the
        // leading rows/columns: evicting them leaves R_u singular.
        let mut a = CMatrix::zeros(12, 12);
        // Direction 1: supported only on rows/cols 0..2.
        for i in 0..2 {
            for j in 0..2 {
                a[(i, j)] = c64(5.0, 0.0);
            }
        }
        // Direction 2: supported on the tail.
        for i in 4..12 {
            for j in 4..12 {
                a[(i, j)] = c64(0.5, 0.1);
            }
        }
        let mut upd = SvdUpdater::new(&a).unwrap();
        let before = upd.singular_values().to_vec();
        let err = upd.downdate_leading(2, 2).unwrap_err();
        assert!(matches!(err, NumericError::Singular { .. }), "{err:?}");
        assert_eq!(upd.singular_values(), &before[..]);
        assert_eq!(upd.dims(), (12, 12));
    }

    #[test]
    fn probe_validates_reference_shape_and_indices() {
        let a = pseudo_random_complex(8, 8, 0xfade);
        let upd = SvdUpdater::new(&a).unwrap();
        let cols = a.submatrix(0, 0, 8, 2).unwrap();
        assert!(upd.residual_on_columns(&cols, &[0]).is_err());
        assert!(upd.residual_on_columns(&cols, &[0, 8]).is_err());
        let resid = upd.residual_on_columns(&cols, &[0, 1]).unwrap();
        assert!(resid <= 1e-12 * upd.singular_values()[0]);
    }

    #[test]
    fn golub_kahan_seed_matches_the_blocked_seed() {
        let a = pseudo_random_complex(10, 10, 0x6b6b);
        let blocked = SvdUpdater::new(&a).unwrap();
        let gk =
            SvdUpdater::with_floor_method(&a, DEFAULT_UPDATE_FLOOR, SvdMethod::GolubKahan).unwrap();
        assert_sv_close(gk.singular_values(), blocked.singular_values(), 1e-12);
        assert!(matches!(
            SvdUpdater::with_floor_method(&a, DEFAULT_UPDATE_FLOOR, SvdMethod::Jacobi),
            Err(NumericError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn error_bound_tracks_truncation() {
        // With floor 0 no singular value is ever truncated; the only
        // recorded discard is the roundoff-level border residual of the
        // already-complete 8×8 seed basis.
        let full = pseudo_random_complex(12, 12, 0xcafe);
        let mut exact = SvdUpdater::with_floor(&full.submatrix(0, 0, 8, 8).unwrap(), 0.0).unwrap();
        exact
            .append_border(
                &full.submatrix(0, 8, 8, 4).unwrap(),
                &full.submatrix(8, 0, 4, 8).unwrap(),
                &full.submatrix(8, 8, 4, 4).unwrap(),
            )
            .unwrap();
        let smax = exact.singular_values()[0];
        assert!(exact.error_bound() < 1e-13 * smax);
        assert_eq!(exact.retained_rank(), 12);

        // The default floor on a low-rank stream *does* truncate, and
        // says so.
        let left = pseudo_random_complex(12, 2, 1);
        let right = pseudo_random_complex(2, 12, 2);
        let lowrank = left.matmul(&right).unwrap();
        let mut upd = SvdUpdater::new(&lowrank.submatrix(0, 0, 8, 8).unwrap()).unwrap();
        upd.append_border(
            &lowrank.submatrix(0, 8, 8, 4).unwrap(),
            &lowrank.submatrix(8, 0, 4, 8).unwrap(),
            &lowrank.submatrix(8, 8, 4, 4).unwrap(),
        )
        .unwrap();
        assert!(upd.retained_rank() < 12);
        assert!(upd.error_bound() > 0.0);
        assert!(upd.error_bound() < 1e-11 * upd.singular_values()[0]);
    }
}
