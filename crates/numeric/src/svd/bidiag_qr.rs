//! Implicit-shift QR iteration on a real bidiagonal, shared by the
//! Golub–Kahan and panel-blocked bidiagonalization front-ends.
//!
//! The iteration is a 0-indexed port of the LINPACK `dsvdc` loop (as
//! popularized by JAMA), which handles splitting, deflation and
//! negligible singular values case by case. Rotations are accumulated
//! into the **transposed** factors `Uᵀ`/`Vᵀ`: a plane rotation of two
//! *columns* of `U` is a rotation of two contiguous *rows* of `Uᵀ`, so
//! the accumulation sweeps run over cache-line-friendly slices instead
//! of strided column walks. Either factor may be omitted (`None`) when
//! the caller only needs singular values or a single factor — the
//! rotation stream, and therefore the computed singular values, is
//! identical either way.

use crate::error::NumericError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::svd::normalize_triplets;

/// `(U, σ, V)` triple both bidiagonalization front-ends produce.
pub(crate) type SvdTriplet<T> = (Matrix<T>, Vec<f64>, Matrix<T>);

/// Shared finishing sequence of both bidiagonalization front-ends:
/// rotate the transposed factors through the implicit-shift QR
/// iteration, transpose back, normalize signs/order
/// ([`normalize_triplets`]) and undo the input pre-scaling. Factors
/// whose `want_*` flag is false arrive as `0×0` placeholders and stay
/// that way.
pub(super) fn finish_bidiagonal<T: Scalar>(
    mut u: Matrix<T>,
    mut v: Matrix<T>,
    mut d: Vec<f64>,
    mut e: Vec<f64>,
    want_u: bool,
    want_v: bool,
    rescale: f64,
) -> Result<SvdTriplet<T>, NumericError> {
    let mut ut = if want_u {
        u.transpose()
    } else {
        Matrix::<T>::zeros(0, 0)
    };
    let mut vt = if want_v {
        v.transpose()
    } else {
        Matrix::<T>::zeros(0, 0)
    };
    bidiag_qr(
        &mut d,
        &mut e,
        want_u.then_some(&mut ut),
        want_v.then_some(&mut vt),
    )?;
    if want_u {
        u = ut.transpose();
    }
    if want_v {
        v = vt.transpose();
    }
    normalize_triplets(&mut u, &mut d, &mut v);
    if rescale != 1.0 {
        for x in &mut d {
            *x *= rescale;
        }
    }
    Ok((u, d, v))
}

/// Rotates rows `a`,`b` of a complex matrix by a real plane rotation
/// (the transposed-layout equivalent of rotating columns `a`,`b`):
/// `row_a ← cs·row_a + sn·row_b`, `row_b ← cs·row_b − sn·row_a`.
#[inline]
fn rotate_rows<T: Scalar>(m: &mut Matrix<T>, a: usize, b: usize, cs: f64, sn: f64) {
    debug_assert_ne!(a, b);
    let cols = m.cols();
    let s = m.as_mut_slice();
    let (ra, rb): (&mut [T], &mut [T]) = if a < b {
        let (head, tail) = s.split_at_mut(b * cols);
        (&mut head[a * cols..(a + 1) * cols], &mut tail[..cols])
    } else {
        let (head, tail) = s.split_at_mut(a * cols);
        (&mut tail[..cols], &mut head[b * cols..(b + 1) * cols])
    };
    for (x, y) in ra.iter_mut().zip(rb.iter_mut()) {
        let t = x.scale(cs) + y.scale(sn);
        *y = y.scale(cs) - x.scale(sn);
        *x = t;
    }
}

#[inline]
fn rotate_opt<T: Scalar>(m: &mut Option<&mut Matrix<T>>, a: usize, b: usize, cs: f64, sn: f64) {
    if let Some(m) = m.as_deref_mut() {
        rotate_rows(m, a, b, cs, sn);
    }
}

/// Diagonalizes the real bidiagonal `(d, e)` in place, accumulating the
/// left rotations into `ut` (= `Uᵀ`) and the right rotations into `vt`
/// (= `Vᵀ`), either of which may be absent.
///
/// `d` may end up with negative entries; the caller normalizes signs
/// (see [`normalize_triplets`](super::normalize_triplets)).
fn bidiag_qr<T: Scalar>(
    d: &mut [f64],
    e_in: &mut [f64],
    mut ut: Option<&mut Matrix<T>>,
    mut vt: Option<&mut Matrix<T>>,
) -> Result<(), NumericError> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    // The iteration uses e[0..n] with e[n-1] unused (kept 0).
    let mut e = vec![0.0f64; n];
    e[..n - 1].copy_from_slice(e_in);

    let eps = f64::EPSILON;
    let tiny = f64::MIN_POSITIVE / eps;
    let mut p = n;
    let mut iter = 0usize;
    // Intrinsic budget, unless a fault-injection cap shrinks it to
    // force the NoConvergence exit (crate::fault_budget).
    let max_total_iters = crate::fault_budget::qr_iteration_cap().unwrap_or(80 * n.max(8));
    let mut total = 0usize;

    while p > 0 {
        total += 1;
        if total > max_total_iters * 4 {
            return Err(NumericError::NoConvergence {
                op: "bidiagonal qr",
                iterations: total,
            });
        }

        // Find the largest k in [-1, p-2] with negligible e[k].
        let mut k: isize = p as isize - 2;
        while k >= 0 {
            let ku = k as usize;
            if e[ku].abs() <= tiny + eps * (d[ku].abs() + d[ku + 1].abs()) {
                e[ku] = 0.0;
                break;
            }
            k -= 1;
        }

        let kase;
        if k == p as isize - 2 {
            kase = 4; // s[p-1] converged
        } else {
            // Look for a negligible diagonal entry in (k, p-1].
            let mut ks: isize = p as isize - 1;
            while ks > k {
                let ksu = ks as usize;
                let t = if ks != p as isize - 1 {
                    e[ksu].abs()
                } else {
                    0.0
                } + if ks != k + 1 { e[ksu - 1].abs() } else { 0.0 };
                if d[ksu].abs() <= tiny + eps * t {
                    d[ksu] = 0.0;
                    break;
                }
                ks -= 1;
            }
            if ks == k {
                kase = 3; // one QR step
            } else if ks == p as isize - 1 {
                kase = 1; // zero the last diagonal entry
            } else {
                kase = 2; // split at the zero diagonal
                k = ks;
            }
        }
        let k = (k + 1) as usize;

        match kase {
            // Deflate negligible d[p-1]: chase e[p-2] upward, rotating V.
            1 => {
                let mut f = e[p - 2];
                e[p - 2] = 0.0;
                for j in (k..p - 1).rev() {
                    let t = d[j].hypot(f);
                    let cs = d[j] / t;
                    let sn = f / t;
                    d[j] = t;
                    if j != k {
                        f = -sn * e[j - 1];
                        e[j - 1] *= cs;
                    }
                    rotate_opt(&mut vt, j, p - 1, cs, sn);
                }
            }
            // Split: zero e[k-1] by chasing it rightward, rotating U.
            2 => {
                let mut f = e[k - 1];
                e[k - 1] = 0.0;
                for j in k..p {
                    let t = d[j].hypot(f);
                    let cs = d[j] / t;
                    let sn = f / t;
                    d[j] = t;
                    f = -sn * e[j];
                    e[j] *= cs;
                    rotate_opt(&mut ut, j, k - 1, cs, sn);
                }
            }
            // One implicit-shift QR step on the window [k, p-1].
            3 => {
                iter += 1;
                if iter > max_total_iters {
                    return Err(NumericError::NoConvergence {
                        op: "bidiagonal qr",
                        iterations: iter,
                    });
                }
                let scale = d[p - 1]
                    .abs()
                    .max(d[p - 2].abs())
                    .max(e[p - 2].abs())
                    .max(d[k].abs())
                    .max(e[k].abs());
                let sp = d[p - 1] / scale;
                let spm1 = d[p - 2] / scale;
                let epm1 = e[p - 2] / scale;
                let sk = d[k] / scale;
                let ek = e[k] / scale;
                let b = ((spm1 + sp) * (spm1 - sp) + epm1 * epm1) / 2.0;
                let c = (sp * epm1) * (sp * epm1);
                let mut shift = 0.0;
                if b != 0.0 || c != 0.0 {
                    shift = (b * b + c).sqrt();
                    if b < 0.0 {
                        shift = -shift;
                    }
                    shift = c / (b + shift);
                }
                let mut f = (sk + sp) * (sk - sp) + shift;
                let mut g = sk * ek;
                for j in k..p - 1 {
                    let mut t = f.hypot(g);
                    let mut cs = f / t;
                    let mut sn = g / t;
                    if j != k {
                        e[j - 1] = t;
                    }
                    f = cs * d[j] + sn * e[j];
                    e[j] = cs * e[j] - sn * d[j];
                    g = sn * d[j + 1];
                    d[j + 1] *= cs;
                    rotate_opt(&mut vt, j, j + 1, cs, sn);
                    t = f.hypot(g);
                    cs = f / t;
                    sn = g / t;
                    d[j] = t;
                    f = cs * e[j] + sn * d[j + 1];
                    d[j + 1] = -sn * e[j] + cs * d[j + 1];
                    g = sn * e[j + 1];
                    e[j + 1] *= cs;
                    rotate_opt(&mut ut, j, j + 1, cs, sn);
                }
                e[p - 2] = f;
            }
            // Convergence of d[k] (sign fixed later by normalize_triplets;
            // local ordering handled there too).
            _ => {
                iter = 0;
                p -= 1;
            }
        }
    }
    Ok(())
}
