//! Panel-blocked SVD backend: the LAPACK `zgebrd`/`zungbr` structure on
//! top of the workspace GEMM kernels.
//!
//! The Golub–Kahan reference ([`super::golub_kahan`]) applies every
//! Householder reflector to the full trailing matrix as a rank-1 sweep,
//! so the `O(mn²)` bidiagonalization runs at memory speed. This backend
//! restructures both expensive phases around the blocked product
//! kernels:
//!
//! 1. **Panel bidiagonalization** (`zlabrd` shape): reflectors of an
//!    `NB`-wide panel are generated against *deferred* trailing updates
//!    tracked in four thin accumulators (`Wq`, `Y`, `X`, `P` — the
//!    left/right reflector vectors and their update vectors), then the
//!    whole trailing matrix absorbs the panel in two fused
//!    `C ← C − A·Bᴴ` GEMMs ([`kernel::accumulate_scaled_adjoint_right`]).
//!    The trailing update is fanned across cores per contiguous column
//!    block through [`parallel`]; the blocked kernel computes every
//!    output column independently of its neighbors, so the result is
//!    **bit-identical for every worker count** (the same guarantee the
//!    sweep executor gives frequency sweeps).
//! 2. **Factor accumulation** (`zungbr` shape): the reflectors of each
//!    panel are aggregated into the compact WY form `I − V·T·Vᴴ`
//!    (`zlarft`) and applied to `U`/`V` with three GEMMs per panel
//!    instead of `NB` rank-1 sweeps.
//!
//! The bidiagonal QR iteration is shared with the reference backend
//! ([`super::bidiag_qr`]), rotating contiguous rows of the transposed
//! factors; factors the caller skips ([`super::SvdFactors`]) skip both
//! their accumulation and their rotation sweeps.
//!
//! The whole pipeline is generic over the scalar: **real inputs are
//! never promoted to complex** — every conjugation degenerates to a
//! copy and the GEMMs run the packed real kernel at a quarter of the
//! complex flop count (the Lemma 3.2 realification hands the
//! realization stage real stacked pencils, which is exactly this case).
//! The factors come back in the input scalar type; the [`Svd`](super::Svd)
//! dispatcher promotes them to complex only at its scalar-agnostic
//! container boundary, while [`SvdUpdater`](super::SvdUpdater) keeps
//! them native.

use crate::error::NumericError;
use crate::householder::make_reflector;
use crate::kernel;
use crate::matrix::Matrix;
use crate::parallel;
use crate::scalar::Scalar;
use crate::svd::bidiag_qr::{finish_bidiagonal, SvdTriplet};
use crate::svd::golub_kahan;

/// Panel width: wide enough that the trailing GEMMs dominate, narrow
/// enough that the four `·×NB` accumulators stay cache-resident.
/// Shared with the lazy two-phase front-end ([`super::partial`]), whose
/// WY blocks must tile the reflectors exactly as they were generated.
pub(super) const NB: usize = 32;

/// Below this column count the panel machinery cannot amortize its
/// bookkeeping and the rank-1 reference path is faster.
const MIN_BLOCKED_COLS: usize = 48;

/// Minimum trailing-update columns assigned per worker before the
/// fan-out spawns another thread (the update is `O(rows·NB)` per
/// column; thinner shares are pure spawn overhead).
const PAR_MIN_COLS_PER_WORKER: usize = 64;

/// Computes the thin SVD of `a` (`m × n`, requires `m ≥ n`): returns
/// `(U m×n, s n, V n×n)` with `A = U diag(s) V*`, in the **input scalar
/// type** (real factors for real input). Factors whose `want_*` flag is
/// false are skipped and returned as `0×0` matrices; the singular
/// values are bit-identical either way.
pub(crate) fn svd_blocked<T: Scalar>(
    a: &Matrix<T>,
    want_u: bool,
    want_v: bool,
) -> Result<SvdTriplet<T>, NumericError> {
    let (m, n) = a.dims();
    debug_assert!(m >= n, "caller must pre-transpose wide matrices");
    if n < MIN_BLOCKED_COLS {
        return golub_kahan::svd_golub_kahan(a, want_u, want_v);
    }

    // Scale to avoid overflow/underflow in the squared quantities.
    let scale = a.max_abs();
    let out_of_range = scale > 0.0 && !(1e-150..=1e150).contains(&scale);
    let mut w = if out_of_range {
        a.scale(1.0 / scale)
    } else {
        a.clone()
    };
    let rescale = if out_of_range { scale } else { 1.0 };

    // --- Phase 1: panel-blocked bidiagonalization ------------------------
    // Reflector tails live in `w` (left below the diagonal, right beyond
    // the superdiagonal), exactly where the panel zeroed them out.
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n - 1];
    let mut tauq = vec![T::ZERO; n];
    let mut taup = vec![T::ZERO; n - 1];
    let threads = parallel::available_threads();
    let mut i0 = 0usize;
    while i0 < n {
        let nb = NB.min(n - i0);
        let acc = bidiag_panel(&mut w, i0, nb, &mut d, &mut e, &mut tauq, &mut taup);
        if i0 + nb < n {
            trailing_update(&mut w, i0, nb, &acc, threads)?;
        }
        i0 += nb;
    }

    // --- Phase 2: WY-blocked accumulation of the requested factors -------
    let u = if want_u {
        accumulate_u(&w, &tauq)?
    } else {
        Matrix::<T>::zeros(0, 0)
    };
    let v = if want_v {
        accumulate_v(&w, &taup)?
    } else {
        Matrix::<T>::zeros(0, 0)
    };

    // --- Phases 3+4: shared QR iteration + normalization -----------------
    finish_bidiagonal(u, v, d, e, want_u, want_v, rescale)
}

/// The four thin panel accumulators. With `i` the global panel column
/// `i0 + j`, the deferred state of the trailing matrix is
///
/// ```text
/// A_true = A_stored − Wq·Yᴴ − X·Pᴴ
/// ```
///
/// where column `j` holds the left reflector vector `w_j` (`Wq`), its
/// update vector `y_j = τq·A_trueᴴ w_j` (`Y`), the right reflector
/// vector `u_j` (`P`) and its update vector `x_j = τp·A_true u_j` (`X`).
pub(super) struct PanelAcc<T: Scalar> {
    /// Left reflector vectors, rows `i0..m` (unit at local row `j`).
    wq: Matrix<T>,
    /// Right-update vectors, rows `i0..m`.
    x: Matrix<T>,
    /// Left-update vectors, rows `i0..n` (indexed by column).
    y: Matrix<T>,
    /// Right reflector vectors, rows `i0..n` (unit at local row `j+1`).
    p: Matrix<T>,
}

/// Bidiagonalizes panel columns/rows `i0 .. i0+nb`, storing reflector
/// tails in `w`, real bidiagonal entries in `d`/`e` and scaling factors
/// in `tauq`/`taup`. The trailing matrix beyond the panel is **not**
/// touched; the returned accumulators encode the pending update.
/// Eight-chain unrolled dot product `Σ a[k]·b[k]`.
///
/// The panel GEMVs reduce into a single scalar; a naive loop serializes
/// on the FMA latency chain (< 1 GF/s), while eight independent
/// accumulators let the chains pipeline/vectorize. The summation order
/// is fixed (lane `k mod 8`, then a balanced pairwise combine), so the
/// result is deterministic and identical for every thread count — it
/// only differs from the naive order at the ulp level, which the
/// tolerance-based SVD contracts absorb.
#[inline]
fn dot8<T: Scalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [T::ZERO; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..8 {
            acc[k] += xa[k] * xb[k];
        }
    }
    let mut tail = T::ZERO;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    let q0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let q1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    (q0 + q1) + tail
}

/// [`dot8`] with the second operand conjugated: `Σ a[k]·conj(b[k])`.
#[inline]
fn dot8_conj<T: Scalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [T::ZERO; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..8 {
            acc[k] += xa[k] * xb[k].conj();
        }
    }
    let mut tail = T::ZERO;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y.conj();
    }
    let q0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let q1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    (q0 + q1) + tail
}

pub(super) fn bidiag_panel<T: Scalar>(
    w: &mut Matrix<T>,
    i0: usize,
    nb: usize,
    d: &mut [f64],
    e: &mut [f64],
    tauq: &mut [T],
    taup: &mut [T],
) -> PanelAcc<T> {
    let (m, n) = w.dims();
    let rm = m - i0;
    let cn = n - i0;
    let mut wq = Matrix::<T>::zeros(rm, nb);
    let mut x = Matrix::<T>::zeros(rm, nb);
    let mut y = Matrix::<T>::zeros(cn, nb);
    let mut p = Matrix::<T>::zeros(cn, nb);

    for j in 0..nb {
        let i = i0 + j;

        // 1. Bring column i (rows i..m) up to date with the deferred
        //    panel updates: a ← a − Wq·conj(Y[i,:]) − X·conj(P[i,:]).
        if j > 0 {
            let yrow: Vec<T> = y.row(j)[..j].iter().map(|z| z.conj()).collect();
            let prow: Vec<T> = p.row(j)[..j].iter().map(|z| z.conj()).collect();
            for r in i..m {
                let lr = r - i0;
                let wr = &wq.row(lr)[..j];
                let xr = &x.row(lr)[..j];
                w[(r, i)] -= dot8(wr, &yrow) + dot8(xr, &prow);
            }
        }

        // 2. Left reflector annihilating rows i+1..m of column i; the
        //    tail stays in `w` for the phase-2 accumulation.
        let col: Vec<T> = (i..m).map(|r| w[(r, i)]).collect();
        let refl = make_reflector(&col);
        d[i] = refl.beta;
        tauq[i] = refl.tau;
        w[(i, i)] = T::from_f64(refl.beta);
        for (r, &vv) in (i + 1..m).zip(&refl.v) {
            w[(r, i)] = vv;
        }
        wq[(j, j)] = T::ONE;
        for (lr, &vv) in (j + 1..rm).zip(&refl.v) {
            wq[(lr, j)] = vv;
        }
        let mut wcur = Vec::with_capacity(m - i);
        wcur.push(T::ONE);
        wcur.extend_from_slice(&refl.v);

        if i + 1 >= n {
            continue; // last column: no right reflector, nothing deferred
        }

        // 3. y_j = τq · A_trueᴴ w_j over columns i+1..n (A_true folds in
        //    the j prior deferred updates).
        let width = n - i - 1;
        let mut yv = vec![T::ZERO; width];
        for r in i..m {
            let xr = wcur[r - i];
            let row = &w.row(r)[i + 1..n];
            for (acc, &a_rc) in yv.iter_mut().zip(row) {
                *acc += a_rc.conj() * xr;
            }
        }
        if j > 0 {
            // t1 = Wqᴴ·w_j, t2 = Xᴴ·w_j (rows i..m of the accumulators).
            let mut t1 = vec![T::ZERO; j];
            let mut t2 = vec![T::ZERO; j];
            for r in i..m {
                let lr = r - i0;
                let xr = wcur[r - i];
                let wr = &wq.row(lr)[..j];
                let xrow = &x.row(lr)[..j];
                for k in 0..j {
                    t1[k] += wr[k].conj() * xr;
                    t2[k] += xrow[k].conj() * xr;
                }
            }
            for c in i + 1..n {
                let lc = c - i0;
                let yr = &y.row(lc)[..j];
                let pr = &p.row(lc)[..j];
                let mut corr = T::ZERO;
                for k in 0..j {
                    corr += yr[k] * t1[k] + pr[k] * t2[k];
                }
                yv[c - i - 1] -= corr;
            }
        }
        let tq = tauq[i];
        for (lc, val) in yv.iter_mut().enumerate() {
            *val *= tq;
            y[(j + 1 + lc, j)] = *val;
        }

        // 4. Bring row i (cols i+1..n) up to date and fold in the left
        //    reflector's action on it (the k == j term of Wq·Yᴴ).
        {
            let wrow: Vec<T> = wq.row(j)[..=j].to_vec();
            let xrow: Vec<T> = x.row(j)[..j].to_vec();
            let row_i = w.row_mut(i);
            for (c, out) in row_i.iter_mut().enumerate().skip(i + 1) {
                let lc = c - i0;
                let yr = &y.row(lc)[..=j];
                let pr = &p.row(lc)[..j];
                *out -= dot8_conj(&wrow, yr) + dot8_conj(&xrow, pr);
            }
        }

        // 5. Right reflector annihilating cols i+2..n of row i. Generated
        //    from the conjugated row so the right application lands a real
        //    β on the superdiagonal (zgebrd convention, as in the
        //    reference backend).
        let row_conj: Vec<T> = (i + 1..n).map(|c| w[(i, c)].conj()).collect();
        let reflp = make_reflector(&row_conj);
        e[i] = reflp.beta;
        taup[i] = reflp.tau;
        w[(i, i + 1)] = T::from_f64(reflp.beta);
        for (c, &vv) in (i + 2..n).zip(&reflp.v) {
            w[(i, c)] = vv;
        }
        p[(j + 1, j)] = T::ONE;
        for (lc, &vv) in (j + 2..cn).zip(&reflp.v) {
            p[(lc, j)] = vv;
        }
        let mut ucur = Vec::with_capacity(n - i - 1);
        ucur.push(T::ONE);
        ucur.extend_from_slice(&reflp.v);

        // 6. x_j = τp · A_true u_j over rows i+1..m (A_true now folds in
        //    the left reflector j as well: k ≤ j left terms, k < j right).
        let mut xv = vec![T::ZERO; m - i - 1];
        for r in i + 1..m {
            let row = &w.row(r)[i + 1..n];
            xv[r - i - 1] = dot8(row, &ucur);
        }
        let mut s1 = vec![T::ZERO; j + 1];
        let mut s2 = vec![T::ZERO; j];
        for c in i + 1..n {
            let lc = c - i0;
            let uu = ucur[c - i - 1];
            let yr = &y.row(lc)[..=j];
            let pr = &p.row(lc)[..j];
            for k in 0..j {
                s1[k] += yr[k].conj() * uu;
                s2[k] += pr[k].conj() * uu;
            }
            s1[j] += yr[j].conj() * uu;
        }
        for r in i + 1..m {
            let lr = r - i0;
            let wr = &wq.row(lr)[..=j];
            let xrow = &x.row(lr)[..j];
            xv[r - i - 1] -= dot8(wr, &s1) + dot8(xrow, &s2);
        }
        let tp = taup[i];
        for (lr, val) in xv.iter_mut().enumerate() {
            *val *= tp;
            x[(j + 1 + lr, j)] = *val;
        }
    }
    PanelAcc { wq, x, y, p }
}

/// Applies the panel's deferred update to the trailing matrix:
/// `A[i0+nb.., i0+nb..] ← A − Wq·Yᴴ − X·Pᴴ`, fanned across `threads`
/// workers per contiguous column block. Every output column's bits
/// depend only on its own operands (blocked-kernel guarantee), so the
/// result is identical for every worker count.
pub(super) fn trailing_update<T: Scalar>(
    w: &mut Matrix<T>,
    i0: usize,
    nb: usize,
    acc: &PanelAcc<T>,
    threads: usize,
) -> Result<(), NumericError> {
    let (m, n) = w.dims();
    let r0 = i0 + nb;
    let c0 = i0 + nb;
    let rows = m - r0;
    let cols = n - c0;
    if rows == 0 || cols == 0 {
        return Ok(());
    }
    let wq_t = acc.wq.submatrix(nb, 0, rows, nb)?;
    let x_t = acc.x.submatrix(nb, 0, rows, nb)?;
    let workers = threads
        .min(cols.div_ceil(PAR_MIN_COLS_PER_WORKER))
        .max(1)
        .min(cols);
    let chunk = cols.div_ceil(workers);
    let ranges: Vec<(usize, usize)> = (0..workers)
        .map(|k| (c0 + k * chunk, (c0 + (k + 1) * chunk).min(n)))
        .filter(|(a, b)| a < b)
        .collect();
    let updated = parallel::try_map_with(workers, &ranges, |_, &(ca, cb)| {
        let width = cb - ca;
        let mut a_chunk = w.submatrix(r0, ca, rows, width)?;
        let y_chunk = acc.y.submatrix(ca - i0, 0, width, nb)?;
        let p_chunk = acc.p.submatrix(ca - i0, 0, width, nb)?;
        let minus_one = T::from_f64(-1.0);
        kernel::accumulate_scaled_adjoint_right(&mut a_chunk, minus_one, &wq_t, &y_chunk)?;
        kernel::accumulate_scaled_adjoint_right(&mut a_chunk, minus_one, &x_t, &p_chunk)?;
        Ok::<Matrix<T>, NumericError>(a_chunk)
    })?;
    for (&(ca, _), block) in ranges.iter().zip(updated) {
        w.set_block(r0, ca, &block)?;
    }
    Ok(())
}

/// Compact WY triangular factor (LAPACK `zlarft`, forward columnwise):
/// for reflectors `H_j = I − τ_j v_j v_jᴴ` with `v_j` the columns of
/// `v`, builds upper-triangular `T` with
/// `H_0 H_1 ⋯ H_{k−1} = I − V·T·Vᴴ`. A zero τ leaves its column zero
/// (the identity reflector contributes nothing).
pub(super) fn larft<T: Scalar>(v: &Matrix<T>, taus: &[T]) -> Matrix<T> {
    let nb = taus.len();
    let rows = v.rows();
    let mut t = Matrix::<T>::zeros(nb, nb);
    for j in 0..nb {
        let tau = taus[j];
        if tau == T::ZERO {
            continue;
        }
        // tvec = V[:, :j]ᴴ · v_j (v_j is zero above its unit row, so the
        // structural-zero rows contribute nothing and are skipped).
        let mut tvec = vec![T::ZERO; j];
        for r in 0..rows {
            let row = v.row(r);
            let vj = row[j];
            if vj != T::ZERO {
                for (tv, &vk) in tvec.iter_mut().zip(&row[..j]) {
                    *tv += vk.conj() * vj;
                }
            }
        }
        // T[..j, j] = −τ · T[..j, ..j] · tvec; T[j, j] = τ.
        for a in 0..j {
            let mut acc = T::ZERO;
            for b in a..j {
                acc += t[(a, b)] * tvec[b];
            }
            t[(a, j)] = -(tau * acc);
        }
        t[(j, j)] = tau;
    }
    t
}

/// Accumulates `U = H_0 H_1 ⋯ H_{n−1}` (left reflectors, tails stored
/// below `w`'s diagonal) applied to the leading `m × n` identity,
/// one WY block at a time from the last panel backwards. Applying the
/// block at `i0` only touches rows/columns `i0..`, because every
/// untouched column is still a unit vector supported above `i0`.
fn accumulate_u<T: Scalar>(w: &Matrix<T>, tauq: &[T]) -> Result<Matrix<T>, NumericError> {
    let (m, n) = w.dims();
    let mut u = Matrix::<T>::zeros(m, n);
    for i in 0..n {
        u[(i, i)] = T::ONE;
    }
    let starts: Vec<usize> = (0..n).step_by(NB).collect();
    for &i0 in starts.iter().rev() {
        let nb = NB.min(n - i0);
        let rows = m - i0;
        let mut vblk = Matrix::<T>::zeros(rows, nb);
        for j in 0..nb {
            let k = i0 + j;
            vblk[(j, j)] = T::ONE;
            for r in k + 1..m {
                vblk[(r - i0, j)] = w[(r, k)];
            }
        }
        let tmat = larft(&vblk, &tauq[i0..i0 + nb]);
        let mut usub = u.submatrix(i0, i0, rows, n - i0)?;
        let w1 = kernel::mul_hermitian_left(&vblk, &usub)?;
        let w2 = tmat.matmul(&w1)?;
        kernel::accumulate_scaled(&mut usub, T::from_f64(-1.0), &vblk, &w2)?;
        u.set_block(i0, i0, &usub)?;
    }
    Ok(u)
}

/// Accumulates `V = P_0 P_1 ⋯ P_{n−2}` (right reflectors, tails stored
/// right of `w`'s superdiagonal; reflector `k` acts on coordinates
/// `k+1..n`), by the same backward WY blocks as [`accumulate_u`].
fn accumulate_v<T: Scalar>(w: &Matrix<T>, taup: &[T]) -> Result<Matrix<T>, NumericError> {
    let n = w.cols();
    let mut v = Matrix::<T>::identity(n);
    if n < 2 {
        return Ok(v);
    }
    let starts: Vec<usize> = (0..n).step_by(NB).collect();
    for &i0 in starts.iter().rev() {
        let nb = NB.min(n - i0).min(n - 1 - i0);
        if nb == 0 {
            continue;
        }
        let rows = n - i0 - 1; // coordinates i0+1..n
        let mut vblk = Matrix::<T>::zeros(rows, nb);
        for j in 0..nb {
            let k = i0 + j;
            vblk[(j, j)] = T::ONE;
            for c in k + 2..n {
                vblk[(c - i0 - 1, j)] = w[(k, c)];
            }
        }
        let tmat = larft(&vblk, &taup[i0..i0 + nb]);
        let mut vsub = v.submatrix(i0 + 1, i0 + 1, rows, rows)?;
        let w1 = kernel::mul_hermitian_left(&vblk, &vsub)?;
        let w2 = tmat.matmul(&w1)?;
        kernel::accumulate_scaled(&mut vsub, T::from_f64(-1.0), &vblk, &w2)?;
        v.set_block(i0 + 1, i0 + 1, &vsub)?;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, Complex};
    use crate::matrix::CMatrix;
    use crate::svd::{Svd, SvdMethod};

    fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn blocked_reconstructs_above_the_panel_threshold() {
        // 64 > MIN_BLOCKED_COLS exercises the panel path proper (smaller
        // inputs delegate to the reference backend).
        for &(m, n) in &[(64, 64), (96, 64), (70, 50)] {
            let a = pseudo_random_complex(m, n, (m * 37 + n) as u64);
            let svd = Svd::compute_with(&a, SvdMethod::Blocked).unwrap();
            let err = (&svd.reconstruct() - &a).norm_fro();
            assert!(
                err < 1e-12 * a.norm_fro(),
                "({m},{n}): reconstruction error {err}"
            );
        }
    }

    #[test]
    fn larft_reproduces_the_reflector_product() {
        // Compare I − V·T·Vᴴ against the explicit product of the
        // individual reflector matrices.
        let nvec = 7;
        let k = 3;
        let mut v = CMatrix::zeros(nvec, k);
        let mut taus = Vec::new();
        for j in 0..k {
            let col: Vec<Complex> = (j..nvec)
                .map(|r| {
                    c64(
                        (r * 3 + j) as f64 * 0.17 - 1.0,
                        (r + 2 * j) as f64 * 0.11 - 0.5,
                    )
                })
                .collect();
            let refl = make_reflector(&col);
            v[(j, j)] = Complex::ONE;
            for (r, &vv) in (j + 1..nvec).zip(&refl.v) {
                v[(r, j)] = vv;
            }
            taus.push(refl.tau);
        }
        let t = larft(&v, &taus);
        // Dense product H_0 H_1 H_2.
        let mut dense = CMatrix::identity(nvec);
        for j in 0..k {
            let wv: Vec<Complex> = (0..nvec).map(|r| v[(r, j)]).collect();
            let h = CMatrix::from_fn(nvec, nvec, |a, b| {
                let delta = if a == b { Complex::ONE } else { Complex::ZERO };
                delta - taus[j] * wv[a] * wv[b].conj()
            });
            dense = dense.matmul(&h).unwrap();
        }
        // I − V T Vᴴ.
        let vt = v.matmul(&t).unwrap();
        let wy = &CMatrix::identity(nvec) - &vt.mul_adjoint_right(&v).unwrap();
        assert!(
            wy.approx_eq(&dense, 1e-13),
            "WY form deviates from the reflector product"
        );
    }
}
