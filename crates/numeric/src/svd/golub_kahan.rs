//! Golub–Kahan SVD: Householder bidiagonalization followed by an
//! implicit-shift bidiagonal QR iteration, generic over the scalar.
//!
//! The bidiagonalization uses `zlarfg`-style reflectors whose β is real,
//! so the resulting bidiagonal is real and the iteration can run entirely
//! in real arithmetic while accumulating real plane rotations into the
//! `U`/`V` factors. Reflectors are applied one at a time with rank-1
//! sweeps — the structurally simple reference the panel-blocked backend
//! ([`super::blocked`]) is validated against. Over `f64` every
//! conjugation degenerates to a copy (the reflector generator is exactly
//! `dlarfg`), so real inputs — small realified pencils, the bordered
//! cores of [`SvdUpdater`](super::SvdUpdater) — never pay for complex
//! arithmetic.

use crate::error::NumericError;
use crate::householder::{make_reflector, Reflector};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::svd::bidiag_qr::{finish_bidiagonal, SvdTriplet};

/// Computes the thin SVD of `a` (`m × n`, requires `m ≥ n`):
/// returns `(U m×n, s n, V n×n)` with `A = U diag(s) V*`. Factors whose
/// `want_*` flag is false are skipped entirely and returned as `0×0`
/// matrices; the singular values are identical either way.
pub(crate) fn svd_golub_kahan<T: Scalar>(
    a: &Matrix<T>,
    want_u: bool,
    want_v: bool,
) -> Result<SvdTriplet<T>, NumericError> {
    let (m, n) = a.dims();
    debug_assert!(m >= n, "caller must pre-transpose wide matrices");

    // Scale to avoid overflow/underflow in the squared quantities.
    let scale = a.max_abs();
    let mut w = if scale > 0.0 && !(1e-150..=1e150).contains(&scale) {
        a.scale(1.0 / scale)
    } else {
        a.clone()
    };
    let rescale = if scale > 0.0 && !(1e-150..=1e150).contains(&scale) {
        scale
    } else {
        1.0
    };

    // --- Phase 1: bidiagonalization -------------------------------------
    let mut left: Vec<Reflector<T>> = Vec::with_capacity(n);
    let mut right: Vec<Option<Reflector<T>>> = Vec::with_capacity(n);
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n.saturating_sub(1)];

    for k in 0..n {
        // Eliminate column k below the diagonal (and rotate the diagonal
        // entry onto the real axis).
        let col: Vec<T> = (k..m).map(|i| w[(i, k)]).collect();
        let refl = make_reflector(&col);
        d[k] = refl.beta;
        w[(k, k)] = T::from_f64(refl.beta);
        for i in k + 1..m {
            w[(i, k)] = T::ZERO;
        }
        refl.apply_left_adjoint(&mut w, k, k + 1);
        left.push(refl);

        if k + 1 < n {
            // Eliminate row k to the right of the superdiagonal. The
            // reflector is generated from the *conjugated* row so that the
            // right application `A (I − τ w w*)` lands a real β on the
            // superdiagonal (see the zgebrd convention).
            let row_conj: Vec<T> = (k + 1..n).map(|j| w[(k, j)].conj()).collect();
            let refl = make_reflector(&row_conj);
            e[k] = refl.beta;
            w[(k, k + 1)] = T::from_f64(refl.beta);
            for j in k + 2..n {
                w[(k, j)] = T::ZERO;
            }
            refl.apply_right(&mut w, k + 1, k + 1);
            right.push(Some(refl));
        } else {
            right.push(None);
        }
    }

    // --- Phase 2: accumulate the requested factors -----------------------
    let u = if want_u {
        let mut u = Matrix::<T>::zeros(m, n);
        for i in 0..n {
            u[(i, i)] = T::ONE;
        }
        for k in (0..n).rev() {
            left[k].apply_left(&mut u, k, 0);
        }
        u
    } else {
        Matrix::<T>::zeros(0, 0)
    };
    let v = if want_v {
        let mut v = Matrix::<T>::identity(n);
        for k in (0..n.saturating_sub(1)).rev() {
            if let Some(refl) = &right[k] {
                // The right reflector acts on coordinates k+1..n.
                refl.apply_left(&mut v, k + 1, 0);
            }
        }
        v
    } else {
        Matrix::<T>::zeros(0, 0)
    };

    // --- Phases 3+4: shared QR iteration + normalization -----------------
    // (contiguous row rotations on the transposed factors — bit-identical
    // arithmetic to column rotations).
    finish_bidiagonal(u, v, d, e, want_u, want_v, rescale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, Complex};
    use crate::matrix::{CMatrix, RMatrix};
    use crate::svd::{Svd, SvdMethod};

    fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn bidiagonalization_invariants_via_full_svd() {
        // The SVD wrapper asserts U/V unitarity and reconstruction; here we
        // stress shapes that exercise every branch of the bidiagonalizer.
        for &(m, n) in &[(1, 1), (2, 1), (2, 2), (3, 2), (5, 5), (8, 3), (13, 11)] {
            let a = pseudo_random_complex(m, n, (m * 100 + n) as u64);
            let svd = Svd::compute_with(&a, SvdMethod::GolubKahan).unwrap();
            let err = (&svd.reconstruct() - &a).norm_fro();
            assert!(
                err < 1e-12 * a.norm_fro().max(1.0),
                "({m},{n}): reconstruction error {err}"
            );
        }
    }

    #[test]
    fn real_scalar_path_matches_the_complexified_run() {
        // Real inputs run the generic phase loops over f64. Embedding
        // the same matrix in complex arithmetic keeps every imaginary
        // part at exact zero (so the complex factors are exactly real),
        // but complex *division* rounds through the (ac+bd)/(c²+d²)
        // formula, so the two runs agree to roundoff rather than
        // bit-for-bit.
        let a = RMatrix::from_fn(9, 6, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let (u_r, s_r, v_r) = svd_golub_kahan(&a, true, true).unwrap();
        let (u_c, s_c, v_c) = svd_golub_kahan(&a.to_complex(), true, true).unwrap();
        let smax = s_c[0];
        for (x, y) in s_r.iter().zip(&s_c) {
            assert!((x - y).abs() < 1e-13 * smax, "σ drift: {x} vs {y}");
        }
        assert!(u_r.to_complex().approx_eq(&u_c, 1e-12));
        assert!(v_r.to_complex().approx_eq(&v_c, 1e-12));
        assert_eq!(
            u_c.imag_part().max_abs(),
            0.0,
            "complex run left the real axis"
        );
        assert_eq!(v_c.imag_part().max_abs(), 0.0);
    }

    #[test]
    fn graded_matrix_small_singular_values_resolved() {
        // Diagonal matrix spanning 12 orders of magnitude.
        let diag: Vec<f64> = (0..8).map(|i| 10f64.powi(-(2 * i))).collect();
        let a = CMatrix::from_fn(8, 8, |i, j| {
            if i == j {
                c64(diag[i], 0.0)
            } else {
                Complex::ZERO
            }
        });
        let svd = Svd::compute(&a).unwrap();
        for (got, want) in svd.singular_values().iter().zip(&diag) {
            assert!(
                (got - want).abs() < 1e-15 + 1e-10 * want,
                "got {got}, want {want}"
            );
        }
    }

    #[test]
    fn rank_deficient_matrix_exposes_zero_singular_values() {
        // Two identical columns.
        let base = pseudo_random_complex(6, 1, 5);
        let a = CMatrix::from_fn(6, 3, |i, j| {
            if j < 2 {
                base[(i, 0)]
            } else {
                base[(i, 0)].scale(2.0)
            }
        });
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.singular_values()[1] < 1e-12 * svd.singular_values()[0]);
    }

    #[test]
    fn handles_matrix_with_zero_rows_inside() {
        let mut a = pseudo_random_complex(5, 4, 17);
        for j in 0..4 {
            a[(2, j)] = Complex::ZERO;
        }
        let svd = Svd::compute(&a).unwrap();
        let err = (&svd.reconstruct() - &a).norm_fro();
        assert!(err < 1e-12 * a.norm_fro());
    }

    #[test]
    fn extreme_scaling_does_not_overflow() {
        let a = pseudo_random_complex(4, 4, 9).scale(1e200);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.singular_values().iter().all(|s| s.is_finite()));
        // Compare via max-abs: Frobenius norms overflow at this scale.
        let err = (&svd.reconstruct() - &a).max_abs();
        assert!(err < 1e-12 * a.max_abs());
        let b = pseudo_random_complex(4, 4, 10).scale(1e-200);
        let svd = Svd::compute(&b).unwrap();
        assert!(svd.singular_values()[0] > 0.0);
    }

    #[test]
    fn partial_factor_runs_reproduce_the_full_run() {
        // Skipping a factor must not perturb the singular values (the
        // rotation stream is identical) or the surviving factor.
        for &(m, n) in &[(9, 6), (12, 12), (20, 7)] {
            let a = pseudo_random_complex(m, n, (m * 7 + n) as u64);
            let (u_full, s_full, v_full) = svd_golub_kahan(&a, true, true).unwrap();
            let (u_only, s_u, v_skip) = svd_golub_kahan(&a, true, false).unwrap();
            let (u_skip, s_v, v_only) = svd_golub_kahan(&a, false, true).unwrap();
            let (u_none, s_none, v_none) = svd_golub_kahan(&a, false, false).unwrap();
            assert!(v_skip.is_empty() && u_skip.is_empty());
            assert!(u_none.is_empty() && v_none.is_empty());
            for s in [&s_u, &s_v, &s_none] {
                assert_eq!(&s_full, s, "singular values must match bit-for-bit");
            }
            assert!(u_only.approx_eq(&u_full, 0.0), "left factor drifted");
            assert!(v_only.approx_eq(&v_full, 0.0), "right factor drifted");
        }
    }
}
