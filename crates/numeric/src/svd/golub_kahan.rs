//! Golub–Kahan SVD: complex Householder bidiagonalization followed by an
//! implicit-shift bidiagonal QR iteration.
//!
//! The bidiagonalization uses `zlarfg`-style reflectors whose β is real,
//! so the resulting bidiagonal is real and the iteration can run entirely
//! in real arithmetic while accumulating real plane rotations into the
//! complex `U`/`V` factors. The iteration itself is a 0-indexed port of
//! the LINPACK `dsvdc` loop (as popularized by JAMA), which handles
//! splitting, deflation and negligible singular values case by case.

use crate::complex::Complex;
use crate::error::NumericError;
use crate::householder::{make_reflector, Reflector};
use crate::matrix::CMatrix;
use crate::svd::normalize_triplets;

/// Computes the thin SVD of `a` (`m × n`, requires `m ≥ n`):
/// returns `(U m×n, s n, V n×n)` with `A = U diag(s) V*`.
pub(crate) fn svd_golub_kahan(a: &CMatrix) -> Result<(CMatrix, Vec<f64>, CMatrix), NumericError> {
    let (m, n) = a.dims();
    debug_assert!(m >= n, "caller must pre-transpose wide matrices");

    // Scale to avoid overflow/underflow in the squared quantities.
    let scale = a.max_abs();
    let mut w = if scale > 0.0 && !(1e-150..=1e150).contains(&scale) {
        a.scale(1.0 / scale)
    } else {
        a.clone()
    };
    let rescale = if scale > 0.0 && !(1e-150..=1e150).contains(&scale) {
        scale
    } else {
        1.0
    };

    // --- Phase 1: bidiagonalization -------------------------------------
    let mut left: Vec<Reflector> = Vec::with_capacity(n);
    let mut right: Vec<Option<Reflector>> = Vec::with_capacity(n);
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n.saturating_sub(1)];

    for k in 0..n {
        // Eliminate column k below the diagonal (and rotate the diagonal
        // entry onto the real axis).
        let col: Vec<Complex> = (k..m).map(|i| w[(i, k)]).collect();
        let refl = make_reflector(&col);
        d[k] = refl.beta;
        w[(k, k)] = Complex::from_real(refl.beta);
        for i in k + 1..m {
            w[(i, k)] = Complex::ZERO;
        }
        refl.apply_left_adjoint(&mut w, k, k + 1);
        left.push(refl);

        if k + 1 < n {
            // Eliminate row k to the right of the superdiagonal. The
            // reflector is generated from the *conjugated* row so that the
            // right application `A (I − τ w w*)` lands a real β on the
            // superdiagonal (see the zgebrd convention).
            let row_conj: Vec<Complex> = (k + 1..n).map(|j| w[(k, j)].conj()).collect();
            let refl = make_reflector(&row_conj);
            e[k] = refl.beta;
            w[(k, k + 1)] = Complex::from_real(refl.beta);
            for j in k + 2..n {
                w[(k, j)] = Complex::ZERO;
            }
            refl.apply_right(&mut w, k + 1, k + 1);
            right.push(Some(refl));
        } else {
            right.push(None);
        }
    }

    // --- Phase 2: accumulate U (m×n) and V (n×n) -------------------------
    let mut u = CMatrix::zeros(m, n);
    for i in 0..n {
        u[(i, i)] = Complex::ONE;
    }
    for k in (0..n).rev() {
        left[k].apply_left(&mut u, k, 0);
    }
    let mut v = CMatrix::identity(n);
    for k in (0..n.saturating_sub(1)).rev() {
        if let Some(refl) = &right[k] {
            // The right reflector acts on coordinates k+1..n.
            refl.apply_left(&mut v, k + 1, 0);
        }
    }

    // --- Phase 3: implicit-shift QR on the real bidiagonal ---------------
    bidiag_qr(&mut d, &mut e, &mut u, &mut v)?;

    // --- Phase 4: sign/sort normalization --------------------------------
    normalize_triplets(&mut u, &mut d, &mut v);
    if rescale != 1.0 {
        for x in d.iter_mut() {
            *x *= rescale;
        }
    }
    Ok((u, d, v))
}

/// Rotates columns `a`,`b` of a complex matrix by a real plane rotation.
#[inline]
fn rotate_cols(m: &mut CMatrix, a: usize, b: usize, cs: f64, sn: f64) {
    for i in 0..m.rows() {
        let t = m[(i, a)].scale(cs) + m[(i, b)].scale(sn);
        let s = m[(i, b)].scale(cs) - m[(i, a)].scale(sn);
        m[(i, a)] = t;
        m[(i, b)] = s;
    }
}

/// Diagonalizes the real bidiagonal `(d, e)` in place, accumulating the
/// left rotations into `u` and the right rotations into `v`.
///
/// Port of the LINPACK `dsvdc` / JAMA iteration (0-indexed). `d` may end
/// up with negative entries; the caller normalizes signs.
fn bidiag_qr(
    d: &mut [f64],
    e_in: &mut [f64],
    u: &mut CMatrix,
    v: &mut CMatrix,
) -> Result<(), NumericError> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    // The iteration uses e[0..n] with e[n-1] unused (kept 0).
    let mut e = vec![0.0f64; n];
    e[..n - 1].copy_from_slice(e_in);

    let eps = f64::EPSILON;
    let tiny = f64::MIN_POSITIVE / eps;
    let mut p = n;
    let mut iter = 0usize;
    let max_total_iters = 80 * n.max(8);
    let mut total = 0usize;

    while p > 0 {
        total += 1;
        if total > max_total_iters * 4 {
            return Err(NumericError::NoConvergence {
                op: "bidiagonal qr",
                iterations: total,
            });
        }

        // Find the largest k in [-1, p-2] with negligible e[k].
        let mut k: isize = p as isize - 2;
        while k >= 0 {
            let ku = k as usize;
            if e[ku].abs() <= tiny + eps * (d[ku].abs() + d[ku + 1].abs()) {
                e[ku] = 0.0;
                break;
            }
            k -= 1;
        }

        let kase;
        if k == p as isize - 2 {
            kase = 4; // s[p-1] converged
        } else {
            // Look for a negligible diagonal entry in (k, p-1].
            let mut ks: isize = p as isize - 1;
            while ks > k {
                let ksu = ks as usize;
                let t = if ks != p as isize - 1 {
                    e[ksu].abs()
                } else {
                    0.0
                } + if ks != k + 1 { e[ksu - 1].abs() } else { 0.0 };
                if d[ksu].abs() <= tiny + eps * t {
                    d[ksu] = 0.0;
                    break;
                }
                ks -= 1;
            }
            if ks == k {
                kase = 3; // one QR step
            } else if ks == p as isize - 1 {
                kase = 1; // zero the last diagonal entry
            } else {
                kase = 2; // split at the zero diagonal
                k = ks;
            }
        }
        let k = (k + 1) as usize;

        match kase {
            // Deflate negligible d[p-1]: chase e[p-2] upward, rotating V.
            1 => {
                let mut f = e[p - 2];
                e[p - 2] = 0.0;
                for j in (k..p - 1).rev() {
                    let t = d[j].hypot(f);
                    let cs = d[j] / t;
                    let sn = f / t;
                    d[j] = t;
                    if j != k {
                        f = -sn * e[j - 1];
                        e[j - 1] *= cs;
                    }
                    rotate_cols(v, j, p - 1, cs, sn);
                }
            }
            // Split: zero e[k-1] by chasing it rightward, rotating U.
            2 => {
                let mut f = e[k - 1];
                e[k - 1] = 0.0;
                for j in k..p {
                    let t = d[j].hypot(f);
                    let cs = d[j] / t;
                    let sn = f / t;
                    d[j] = t;
                    f = -sn * e[j];
                    e[j] *= cs;
                    rotate_cols(u, j, k - 1, cs, sn);
                }
            }
            // One implicit-shift QR step on the window [k, p-1].
            3 => {
                iter += 1;
                if iter > max_total_iters {
                    return Err(NumericError::NoConvergence {
                        op: "bidiagonal qr",
                        iterations: iter,
                    });
                }
                let scale = d[p - 1]
                    .abs()
                    .max(d[p - 2].abs())
                    .max(e[p - 2].abs())
                    .max(d[k].abs())
                    .max(e[k].abs());
                let sp = d[p - 1] / scale;
                let spm1 = d[p - 2] / scale;
                let epm1 = e[p - 2] / scale;
                let sk = d[k] / scale;
                let ek = e[k] / scale;
                let b = ((spm1 + sp) * (spm1 - sp) + epm1 * epm1) / 2.0;
                let c = (sp * epm1) * (sp * epm1);
                let mut shift = 0.0;
                if b != 0.0 || c != 0.0 {
                    shift = (b * b + c).sqrt();
                    if b < 0.0 {
                        shift = -shift;
                    }
                    shift = c / (b + shift);
                }
                let mut f = (sk + sp) * (sk - sp) + shift;
                let mut g = sk * ek;
                for j in k..p - 1 {
                    let mut t = f.hypot(g);
                    let mut cs = f / t;
                    let mut sn = g / t;
                    if j != k {
                        e[j - 1] = t;
                    }
                    f = cs * d[j] + sn * e[j];
                    e[j] = cs * e[j] - sn * d[j];
                    g = sn * d[j + 1];
                    d[j + 1] *= cs;
                    rotate_cols(v, j, j + 1, cs, sn);
                    t = f.hypot(g);
                    cs = f / t;
                    sn = g / t;
                    d[j] = t;
                    f = cs * e[j] + sn * d[j + 1];
                    d[j + 1] = -sn * e[j] + cs * d[j + 1];
                    g = sn * e[j + 1];
                    e[j + 1] *= cs;
                    rotate_cols(u, j, j + 1, cs, sn);
                }
                e[p - 2] = f;
            }
            // Convergence of d[k] (sign fixed later by normalize_triplets;
            // local ordering handled there too).
            _ => {
                iter = 0;
                p -= 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::svd::{Svd, SvdMethod};

    fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn bidiagonalization_invariants_via_full_svd() {
        // The SVD wrapper asserts U/V unitarity and reconstruction; here we
        // stress shapes that exercise every branch of the bidiagonalizer.
        for &(m, n) in &[(1, 1), (2, 1), (2, 2), (3, 2), (5, 5), (8, 3), (13, 11)] {
            let a = pseudo_random_complex(m, n, (m * 100 + n) as u64);
            let svd = Svd::compute_with(&a, SvdMethod::GolubKahan).unwrap();
            let err = (&svd.reconstruct() - &a).norm_fro();
            assert!(
                err < 1e-12 * a.norm_fro().max(1.0),
                "({m},{n}): reconstruction error {err}"
            );
        }
    }

    #[test]
    fn graded_matrix_small_singular_values_resolved() {
        // Diagonal matrix spanning 12 orders of magnitude.
        let diag: Vec<f64> = (0..8).map(|i| 10f64.powi(-(2 * i))).collect();
        let a = CMatrix::from_fn(8, 8, |i, j| {
            if i == j {
                c64(diag[i], 0.0)
            } else {
                Complex::ZERO
            }
        });
        let svd = Svd::compute(&a).unwrap();
        for (got, want) in svd.singular_values().iter().zip(&diag) {
            assert!(
                (got - want).abs() < 1e-15 + 1e-10 * want,
                "got {got}, want {want}"
            );
        }
    }

    #[test]
    fn rank_deficient_matrix_exposes_zero_singular_values() {
        // Two identical columns.
        let base = pseudo_random_complex(6, 1, 5);
        let a = CMatrix::from_fn(6, 3, |i, j| {
            if j < 2 {
                base[(i, 0)]
            } else {
                base[(i, 0)].scale(2.0)
            }
        });
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.singular_values()[1] < 1e-12 * svd.singular_values()[0]);
    }

    #[test]
    fn handles_matrix_with_zero_rows_inside() {
        let mut a = pseudo_random_complex(5, 4, 17);
        for j in 0..4 {
            a[(2, j)] = Complex::ZERO;
        }
        let svd = Svd::compute(&a).unwrap();
        let err = (&svd.reconstruct() - &a).norm_fro();
        assert!(err < 1e-12 * a.norm_fro());
    }

    #[test]
    fn extreme_scaling_does_not_overflow() {
        let a = pseudo_random_complex(4, 4, 9).scale(1e200);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.singular_values().iter().all(|s| s.is_finite()));
        // Compare via max-abs: Frobenius norms overflow at this scale.
        let err = (&svd.reconstruct() - &a).max_abs();
        assert!(err < 1e-12 * a.max_abs());
        let b = pseudo_random_complex(4, 4, 10).scale(1e-200);
        let svd = Svd::compute(&b).unwrap();
        assert!(svd.singular_values()[0] > 0.0);
    }
}
