//! One-sided complex Jacobi SVD.
//!
//! Orthogonalizes the columns of `A` by a sequence of complex plane
//! rotations; on convergence the column norms are the singular values and
//! the normalized columns form `U`. Independent of the Golub–Kahan path,
//! which makes it a valuable cross-check (the two backends share no code
//! beyond the `Matrix` type) and an ablation point for the benches.
//!
//! Accuracy note: one-sided Jacobi is known for *high relative accuracy*
//! on small singular values, which is exactly what the order-detection
//! experiments (paper Fig. 1) look at.

use crate::complex::Complex;
use crate::error::NumericError;
use crate::matrix::CMatrix;
use crate::svd::normalize_triplets;

const MAX_SWEEPS: usize = 64;

/// Computes the thin SVD of `a` (`m × n`, requires `m ≥ n`):
/// returns `(U m×n, s n, V n×n)` with `A = U diag(s) V*`.
pub(crate) fn svd_jacobi(a: &CMatrix) -> Result<(CMatrix, Vec<f64>, CMatrix), NumericError> {
    let (m, n) = a.dims();
    debug_assert!(m >= n, "caller must pre-transpose wide matrices");
    let mut w = a.clone();
    let mut v = CMatrix::identity(n);
    let eps = f64::EPSILON;

    // Intrinsic budget, unless a fault-injection cap shrinks it to
    // force the NoConvergence exit (crate::fault_budget).
    let max_sweeps = crate::fault_budget::jacobi_sweep_cap().unwrap_or(MAX_SWEEPS);
    let mut converged = false;
    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n.saturating_sub(1) {
            for q in p + 1..n {
                // Implicit 2x2 Gram block of columns p, q.
                let mut app = 0.0f64;
                let mut aqq = 0.0f64;
                let mut apq = Complex::ZERO;
                for i in 0..m {
                    let cp = w[(i, p)];
                    let cq = w[(i, q)];
                    app += cp.abs_sq();
                    aqq += cq.abs_sq();
                    apq += cp.conj() * cq;
                }
                let gamma = apq.abs();
                if gamma <= eps * (app * aqq).sqrt() + f64::MIN_POSITIVE {
                    continue;
                }
                rotated = true;
                // De-phase column q so the 2x2 Gram block becomes real
                // symmetric [[app, γ], [γ, aqq]], then apply the classical
                // real Jacobi rotation that annihilates γ.
                let phase = apq.scale(1.0 / gamma); // unit modulus
                let phase_conj = phase.conj();
                let tau = (aqq - app) / (2.0 * gamma);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for i in 0..m {
                    let cp = w[(i, p)];
                    let cq = w[(i, q)] * phase_conj;
                    w[(i, p)] = cp.scale(c) - cq.scale(s);
                    w[(i, q)] = cp.scale(s) + cq.scale(c);
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)] * phase_conj;
                    v[(i, p)] = vp.scale(c) - vq.scale(s);
                    v[(i, q)] = vp.scale(s) + vq.scale(c);
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(NumericError::NoConvergence {
            op: "jacobi svd",
            iterations: max_sweeps,
        });
    }

    // Column norms are the singular values; normalized columns form U.
    let mut s = vec![0.0f64; n];
    let mut u = w;
    for j in 0..n {
        let norm = (0..m).map(|i| u[(i, j)].abs_sq()).sum::<f64>().sqrt();
        s[j] = norm;
        if norm > 0.0 {
            for i in 0..m {
                u[(i, j)] = u[(i, j)].scale(1.0 / norm);
            }
        }
    }
    normalize_triplets(&mut u, &mut s, &mut v);
    Ok((u, s, v))
}

#[cfg(test)]
mod tests {
    use crate::complex::c64;
    use crate::matrix::CMatrix;
    use crate::svd::{Svd, SvdMethod};

    #[test]
    fn hilbert_like_ill_conditioned_matrix() {
        // Complex Hilbert-flavoured matrix: notoriously ill-conditioned.
        let n = 7;
        let a = CMatrix::from_fn(n, n, |i, j| {
            c64(1.0 / (i + j + 1) as f64, 0.1 / (i + j + 2) as f64)
        });
        let svd = Svd::compute_with(&a, SvdMethod::Jacobi).unwrap();
        let err = (&svd.reconstruct() - &a).norm_fro();
        assert!(err < 1e-12 * a.norm_fro());
        // Condition number must be huge but finite.
        assert!(svd.cond() > 1e6);
    }

    #[test]
    fn orthonormal_input_gives_unit_singular_values() {
        // A permutation matrix times a diagonal phase is unitary.
        let n = 5;
        let a = CMatrix::from_fn(n, n, |i, j| {
            if (i + 1) % n == j {
                c64(0.0, 1.0)
            } else {
                c64(0.0, 0.0)
            }
        });
        let svd = Svd::compute_with(&a, SvdMethod::Jacobi).unwrap();
        for &s in svd.singular_values() {
            assert!((s - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn single_column_matrix() {
        let a = CMatrix::from_rows(&[vec![c64(3.0, 0.0)], vec![c64(0.0, 4.0)]]).unwrap();
        let svd = Svd::compute_with(&a, SvdMethod::Jacobi).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-13);
    }
}
