//! Singular value decomposition of dense complex (and real) matrices.
//!
//! Three independent backends are provided:
//!
//! * [`SvdMethod::Blocked`] — panel-blocked Householder bidiagonalization
//!   with GEMM trailing updates and WY-blocked factor accumulation (the
//!   LAPACK `zgebrd`/`zungbr` structure), followed by the shared
//!   implicit-shift bidiagonal QR iteration. This is the default and the
//!   fastest at the pencil sizes the fitting pipeline produces.
//! * [`SvdMethod::GolubKahan`] — the same mathematics applied one
//!   reflector at a time (the LINPACK/JAMA structure). Kept as the
//!   rank-1 reference oracle the blocked path is validated against.
//! * [`SvdMethod::Jacobi`] — one-sided complex Jacobi. Slower but
//!   structurally unrelated, which makes it a strong cross-check in tests
//!   and an ablation point in the benchmark suite.
//!
//! For *streams* of row/column appends — the `FitSession` serving path,
//! where the shifted Loewner pencil grows with every arriving
//! measurement — recomputing any backend from scratch is `O(n³)` per
//! append. [`SvdUpdater`] instead retains the thin factorization and
//! absorbs each append as a bordered low-rank update, re-decomposing
//! only a small core matrix whose size tracks the *numerical rank* of
//! the stream (see the [`SvdUpdater`] docs).
//!
//! The SVD is the analytical heart of the MFTI paper: singular values of
//! the shifted Loewner pencil reveal the underlying system order (Fig. 1)
//! and the truncated factors build the reduced realization (Lemma 3.4).
//! Order detection needs *only* the singular values and the Lemma 3.4
//! projections need *one* factor each, so [`Svd::compute_factors`] lets
//! callers skip the factors they never read — the accumulation phase and
//! the per-factor rotation sweeps of the QR iteration vanish for skipped
//! factors while the singular values stay bit-identical.

mod bidiag_qr;
mod blocked;
mod golub_kahan;
mod jacobi;
mod partial;
mod update;

pub use partial::PartialSvd;
pub use update::{SvdUpdater, DEFAULT_UPDATE_FLOOR, DOWNDATE_COND_FLOOR};

use crate::error::NumericError;
use crate::matrix::{CMatrix, Matrix};
use crate::scalar::Scalar;

/// Backend used by [`Svd::compute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SvdMethod {
    /// Panel-blocked bidiagonalization + implicit QR (default, fastest).
    #[default]
    Blocked,
    /// Unblocked Golub–Kahan bidiagonalization + implicit QR (rank-1
    /// reference oracle for the blocked path).
    GolubKahan,
    /// One-sided complex Jacobi (independent cross-check).
    Jacobi,
}

impl SvdMethod {
    /// The degradation ladder starting at `self`:
    /// `Blocked → GolubKahan → Jacobi` (DESIGN.md §8).
    ///
    /// The first two rungs share the implicit-shift bidiagonal QR
    /// iteration, so a genuine QR stall usually takes both down; the
    /// one-sided Jacobi rung shares no code with them and survives.
    /// [`Svd::compute_recovering`] walks this ladder on
    /// [`NumericError::NoConvergence`].
    #[must_use]
    pub fn ladder(self) -> &'static [SvdMethod] {
        match self {
            SvdMethod::Blocked => &[SvdMethod::Blocked, SvdMethod::GolubKahan, SvdMethod::Jacobi],
            SvdMethod::GolubKahan => &[SvdMethod::GolubKahan, SvdMethod::Jacobi],
            SvdMethod::Jacobi => &[SvdMethod::Jacobi],
        }
    }
}

/// Outcome of [`Svd::compute_recovering`]: the decomposition together
/// with the record of backends that broke down before one converged.
#[derive(Debug, Clone)]
pub struct SvdRecovery {
    /// The successful decomposition.
    pub svd: Svd,
    /// The backend that produced [`SvdRecovery::svd`].
    pub method: SvdMethod,
    /// Backends that failed with [`NumericError::NoConvergence`] before
    /// `method` succeeded, in attempt order; empty on a first-try
    /// success.
    pub fallbacks: Vec<(SvdMethod, NumericError)>,
}

impl SvdRecovery {
    /// Whether any ladder rung broke down before the decomposition
    /// succeeded (a "logged recovery" in the fault-harness taxonomy).
    #[must_use]
    pub fn recovered(&self) -> bool {
        !self.fallbacks.is_empty()
    }
}

/// Which singular-vector factors [`Svd::compute_factors`] materializes.
///
/// Skipped factors are returned as empty (`0×0`) matrices; the singular
/// values are **bit-identical** across all four variants (the QR
/// iteration's rotation stream does not depend on which factors absorb
/// it). Sign normalization lands in the right factor when present, so a
/// factor computed alone matches the same factor of a
/// [`SvdFactors::Both`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SvdFactors {
    /// Both `U` and `V` (the [`Svd::compute`] behavior).
    #[default]
    Both,
    /// Only the left factor `U` (e.g. the row-space projection of the
    /// Lemma 3.4 realization).
    Left,
    /// Only the right factor `V` (e.g. the column-space projection).
    Right,
    /// Singular values only (order detection, rank and norm queries).
    ValuesOnly,
}

impl SvdFactors {
    fn left(self) -> bool {
        matches!(self, SvdFactors::Both | SvdFactors::Left)
    }

    fn right(self) -> bool {
        matches!(self, SvdFactors::Both | SvdFactors::Right)
    }

    /// The factor request seen through the adjoint (`A = UΣV*` ⇔
    /// `A* = VΣU*`): left and right swap.
    fn swapped(self) -> Self {
        match self {
            SvdFactors::Left => SvdFactors::Right,
            SvdFactors::Right => SvdFactors::Left,
            other => other,
        }
    }
}

/// A (thin) singular value decomposition `A = U Σ V*`.
///
/// `U` is `m × r`, `V` is `n × r` with `r = min(m, n)`; singular values
/// are sorted in descending order.
///
/// ```
/// use mfti_numeric::{CMatrix, Svd, c64};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = CMatrix::from_rows(&[
///     vec![c64(0.0, 2.0), c64(0.0, 0.0)],
///     vec![c64(0.0, 0.0), c64(1.0, 0.0)],
/// ])?;
/// let svd = Svd::compute(&a)?;
/// assert!((svd.singular_values()[0] - 2.0).abs() < 1e-12);
/// assert!((svd.singular_values()[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: CMatrix,
    s: Vec<f64>,
    v: CMatrix,
}

impl Svd {
    /// Computes the SVD with the default (blocked) backend.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] for empty input,
    /// [`NumericError::NotFinite`] for NaN/∞ entries and
    /// [`NumericError::NoConvergence`] if the QR sweep stalls (not observed
    /// in practice; the iteration budget is generous).
    pub fn compute<T: Scalar>(a: &Matrix<T>) -> Result<Self, NumericError> {
        Self::compute_with(a, SvdMethod::default())
    }

    /// Computes the SVD with an explicitly chosen backend.
    ///
    /// # Errors
    ///
    /// See [`Svd::compute`].
    pub fn compute_with<T: Scalar>(a: &Matrix<T>, method: SvdMethod) -> Result<Self, NumericError> {
        Self::compute_factors(a, method, SvdFactors::Both)
    }

    /// Computes the SVD, materializing only the requested factors.
    ///
    /// Skipped factors come back as empty (`0×0`) matrices from
    /// [`Svd::u`]/[`Svd::v`] and skip both their accumulation phase and
    /// their share of the QR rotation sweeps; the singular values are
    /// bit-identical to a [`SvdFactors::Both`] run. [`Svd::reconstruct`]
    /// and [`Svd::solve_min_norm`] require both factors.
    ///
    /// # Errors
    ///
    /// See [`Svd::compute`].
    pub fn compute_factors<T: Scalar>(
        a: &Matrix<T>,
        method: SvdMethod,
        factors: SvdFactors,
    ) -> Result<Self, NumericError> {
        validate_input(a)?;
        // All backends assume m >= n; handle wide matrices through the
        // adjoint: A = U Σ V*  ⇔  A* = V Σ U*. The transpose happens in
        // the input scalar type — real inputs stay real all the way into
        // the blocked backend.
        if a.rows() < a.cols() {
            let adj = a.adjoint();
            let svd = Self::dispatch(&adj, method, factors.swapped())?;
            return Ok(Svd {
                u: svd.v,
                s: svd.s,
                v: svd.u,
            });
        }
        Self::dispatch(a, method, factors)
    }

    /// Computes the SVD with breakdown recovery: walks the degradation
    /// ladder [`SvdMethod::ladder`] starting at `method`, retrying the
    /// next rung whenever the current one fails with
    /// [`NumericError::NoConvergence`]. Input defects
    /// ([`NumericError::InvalidArgument`], [`NumericError::NotFinite`])
    /// are not recoverable by a backend change and propagate
    /// immediately.
    ///
    /// This is the defensive entry point of the fitting pipeline
    /// (DESIGN.md §8): a stalled QR sweep degrades to the structurally
    /// unrelated Jacobi rung instead of failing the whole fit, and the
    /// caller gets the breakdown trail in
    /// [`SvdRecovery::fallbacks`] to log.
    ///
    /// # Errors
    ///
    /// The last rung's [`NumericError::NoConvergence`] when every rung
    /// stalls, or the first non-convergence-related error.
    pub fn compute_recovering<T: Scalar>(
        a: &Matrix<T>,
        method: SvdMethod,
        factors: SvdFactors,
    ) -> Result<SvdRecovery, NumericError> {
        let mut fallbacks: Vec<(SvdMethod, NumericError)> = Vec::new();
        for &rung in method.ladder() {
            match Self::compute_factors(a, rung, factors) {
                Ok(svd) => {
                    return Ok(SvdRecovery {
                        svd,
                        method: rung,
                        fallbacks,
                    })
                }
                Err(e @ NumericError::NoConvergence { .. }) => fallbacks.push((rung, e)),
                Err(e) => return Err(e),
            }
        }
        match fallbacks.pop() {
            Some((_, e)) => Err(e),
            // `ladder()` is never empty; reachable only if that changes.
            None => Err(NumericError::InvalidArgument {
                what: "empty svd recovery ladder",
            }),
        }
    }

    /// Singular values of `a` in descending order — the cheapest query:
    /// both factor accumulations and all rotation sweeps are skipped.
    ///
    /// # Errors
    ///
    /// See [`Svd::compute`].
    pub fn singular_values_of<T: Scalar>(a: &Matrix<T>) -> Result<Vec<f64>, NumericError> {
        Ok(Self::compute_factors(a, SvdMethod::default(), SvdFactors::ValuesOnly)?.s)
    }

    /// Splits the decomposition at the bidiagonal: the returned
    /// [`PartialSvd`] resolves the singular values immediately and
    /// defers factor accumulation until a consumer knows which leading
    /// rank it actually reads ([`PartialSvd::accumulate`]). This is the
    /// detect-then-project shape of the realization stage: order
    /// selection needs only the values, the projections only `r`
    /// columns of each factor.
    ///
    /// The factors come back in the input scalar type (real stays
    /// real). Runs the panel-blocked path at every size, so small
    /// problems are better served by [`Svd::compute_factors`].
    ///
    /// # Errors
    ///
    /// See [`Svd::compute`].
    pub fn bidiagonalize<T: Scalar>(a: &Matrix<T>) -> Result<PartialSvd<T>, NumericError> {
        PartialSvd::compute(a)
    }

    /// Thin SVD in the **input scalar type** (real factors for real
    /// input): `(U m×r, σ r, V n×r)` with `r = min(m, n)`, through the
    /// default blocked backend (which delegates small problems to the
    /// rank-1 reference path). This is the factorization engine of
    /// [`SvdUpdater`], which must keep realified pencils on the packed
    /// real GEMM path across updates; [`Svd`] promotes the same triplet
    /// to complex at its container boundary.
    pub(crate) fn factors_native<T: Scalar>(
        a: &Matrix<T>,
        want_u: bool,
        want_v: bool,
    ) -> Result<bidiag_qr::SvdTriplet<T>, NumericError> {
        Self::factors_native_with(a, SvdMethod::Blocked, want_u, want_v)
    }

    /// [`Svd::factors_native`] with an explicit backend — the
    /// degradation rungs of [`SvdUpdater`] re-anchoring need a native
    /// Golub–Kahan seed when the blocked path has already stalled.
    /// Only the scalar-generic backends are supported (the one-sided
    /// Jacobi rung is complex-only and lives behind [`Svd::compute_with`]).
    pub(crate) fn factors_native_with<T: Scalar>(
        a: &Matrix<T>,
        method: SvdMethod,
        want_u: bool,
        want_v: bool,
    ) -> Result<bidiag_qr::SvdTriplet<T>, NumericError> {
        validate_input(a)?;
        if a.rows() < a.cols() {
            // A = U Σ V*  ⇔  A* = V Σ U*: factor wants swap through the
            // adjoint, exactly as in `compute_factors`.
            let (v, s, u) = Self::backend_native(&a.adjoint(), method, want_v, want_u)?;
            return Ok((u, s, v));
        }
        Self::backend_native(a, method, want_u, want_v)
    }

    fn backend_native<T: Scalar>(
        a: &Matrix<T>,
        method: SvdMethod,
        want_u: bool,
        want_v: bool,
    ) -> Result<bidiag_qr::SvdTriplet<T>, NumericError> {
        match method {
            SvdMethod::Blocked => blocked::svd_blocked(a, want_u, want_v),
            SvdMethod::GolubKahan => golub_kahan::svd_golub_kahan(a, want_u, want_v),
            SvdMethod::Jacobi => Err(NumericError::InvalidArgument {
                what: "native factorization supports the blocked and Golub–Kahan backends",
            }),
        }
    }

    fn dispatch<T: Scalar>(
        a: &Matrix<T>,
        method: SvdMethod,
        factors: SvdFactors,
    ) -> Result<Self, NumericError> {
        let (want_u, want_v) = (factors.left(), factors.right());
        let (u, s, v) = match method {
            // The blocked and Golub–Kahan backends are scalar-generic:
            // real matrices run the real path (a quarter of the complex
            // flops) and only the returned factors are promoted, here at
            // the scalar-agnostic container boundary.
            SvdMethod::Blocked => {
                let (u, s, v) = blocked::svd_blocked(a, want_u, want_v)?;
                (u.to_complex(), s, v.to_complex())
            }
            SvdMethod::GolubKahan => {
                let (u, s, v) = golub_kahan::svd_golub_kahan(a, want_u, want_v)?;
                (u.to_complex(), s, v.to_complex())
            }
            SvdMethod::Jacobi => {
                // The one-sided Jacobi iteration produces both factors as
                // a by-product; honoring the request means dropping the
                // unwanted ones after the fact.
                let (u, s, v) = jacobi::svd_jacobi(&a.to_complex())?;
                (
                    if want_u { u } else { CMatrix::zeros(0, 0) },
                    s,
                    if want_v { v } else { CMatrix::zeros(0, 0) },
                )
            }
        };
        Ok(Svd { u, s, v })
    }

    /// Left singular vectors (`m × min(m,n)`); empty (`0×0`) when the
    /// decomposition was computed without them.
    pub fn u(&self) -> &CMatrix {
        &self.u
    }

    /// Singular values in descending order.
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// Right singular vectors (`n × min(m,n)`), *not* conjugated:
    /// `A = U diag(s) V*`; empty (`0×0`) when the decomposition was
    /// computed without them.
    pub fn v(&self) -> &CMatrix {
        &self.v
    }

    /// Numerical rank: number of singular values above
    /// `rel_tol · s_max` (with an absolute floor for the zero matrix).
    pub fn rank(&self, rel_tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > rel_tol * smax).count()
    }

    /// Rebuilds `U Σ V*` (used by tests and examples to bound the backward
    /// error).
    ///
    /// # Panics
    ///
    /// Panics when the decomposition was computed with a skipped factor
    /// ([`Svd::compute_factors`]) — there is nothing to rebuild from.
    pub fn reconstruct(&self) -> CMatrix {
        assert!(
            !self.u.is_empty() && !self.v.is_empty(),
            "reconstruct requires both factors; this decomposition \
             skipped one (SvdFactors)"
        );
        let r = self.s.len();
        let mut us = self.u.clone();
        for j in 0..r {
            for i in 0..us.rows() {
                us[(i, j)] = us[(i, j)].scale(self.s[j]);
            }
        }
        us.matmul(&self.v.adjoint()).expect("dims agree") // mfti-lint: allow(MFTI-D7) — U (m×r) and V* (r×n) conform by construction; reconstruct documents its panic contract
    }

    /// Truncates to the leading `r` singular triplets, returning
    /// `(U_r, s_r, V_r)`. A factor skipped at compute time stays an
    /// empty matrix.
    ///
    /// # Panics
    ///
    /// Panics when `r` exceeds the number of singular values.
    pub fn truncate(&self, r: usize) -> (CMatrix, Vec<f64>, CMatrix) {
        assert!(
            r <= self.s.len(),
            "truncation rank {r} exceeds {}",
            self.s.len()
        );
        let idx: Vec<usize> = (0..r).collect();
        let take = |m: &CMatrix| {
            if m.is_empty() {
                CMatrix::zeros(0, 0)
            } else {
                m.select_cols(&idx).expect("in range") // mfti-lint: allow(MFTI-D7) — r ≤ s.len() asserted above; truncate documents its panic contract
            }
        };
        (take(&self.u), self.s[..r].to_vec(), take(&self.v))
    }

    /// Minimum-norm least-squares solution of `A x = b` through the
    /// pseudo-inverse, truncating singular values below `rel_tol · s_max`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `b.rows()` differs from
    /// `u.rows()`.
    pub fn solve_min_norm(&self, b: &CMatrix, rel_tol: f64) -> Result<CMatrix, NumericError> {
        if b.rows() != self.u.rows() {
            return Err(NumericError::ShapeMismatch {
                op: "svd solve",
                left: self.u.dims(),
                right: b.dims(),
            });
        }
        let r = self.rank(rel_tol);
        let mut y = self.u.adjoint().matmul(b)?; // r_full × nrhs
        for i in 0..y.rows() {
            let scale = if i < r { 1.0 / self.s[i] } else { 0.0 };
            for j in 0..y.cols() {
                y[(i, j)] = y[(i, j)].scale(scale);
            }
        }
        self.v.matmul(&y)
    }

    /// Spectral condition number `s_max / s_min` (∞ when singular).
    pub fn cond(&self) -> f64 {
        match (self.s.first(), self.s.last()) {
            (Some(&max), Some(&min)) if min > 0.0 => max / min,
            (Some(_), _) => f64::INFINITY,
            _ => f64::NAN,
        }
    }
}

/// Shared input gate of every decomposition entry point: empty and
/// non-finite matrices are rejected before any backend runs.
fn validate_input<T: Scalar>(a: &Matrix<T>) -> Result<(), NumericError> {
    if a.is_empty() {
        return Err(NumericError::InvalidArgument {
            what: "svd of empty matrix",
        });
    }
    if !a.is_finite() {
        return Err(NumericError::NotFinite { op: "svd" });
    }
    Ok(())
}

/// Sorts singular triplets descending and flips signs so every σ ≥ 0.
///
/// Either factor may be an empty (`0×0`) placeholder when it was skipped
/// at compute time: the column loops then degenerate to no-ops and the
/// sign flip is absorbed by the phantom factor, which keeps a factor
/// computed alone bit-identical to the same factor of a full run.
pub(crate) fn normalize_triplets<T: Scalar>(u: &mut Matrix<T>, s: &mut [f64], v: &mut Matrix<T>) {
    let r = s.len();
    // Flip negative singular values into V.
    for j in 0..r {
        if s[j] < 0.0 {
            s[j] = -s[j];
            for i in 0..v.rows() {
                v[(i, j)] = -v[(i, j)];
            }
        }
    }
    // Selection-sort columns by descending σ (r is small relative to m·n).
    for a in 0..r {
        let mut best = a;
        for b in a + 1..r {
            if s[b] > s[best] {
                best = b;
            }
        }
        if best != a {
            s.swap(a, best);
            swap_cols(u, a, best);
            swap_cols(v, a, best);
        }
    }
}

fn swap_cols<T: Scalar>(m: &mut Matrix<T>, a: usize, b: usize) {
    for i in 0..m.rows() {
        let t: T = m[(i, a)];
        m[(i, a)] = m[(i, b)];
        m[(i, b)] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::RMatrix;

    fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    fn check_svd(a: &CMatrix, svd: &Svd, tol: f64) {
        let r = a.rows().min(a.cols());
        assert_eq!(svd.u().dims(), (a.rows(), r));
        assert_eq!(svd.v().dims(), (a.cols(), r));
        assert_eq!(svd.singular_values().len(), r);
        // Descending non-negative singular values.
        for w in svd.singular_values().windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "not sorted: {:?}",
                svd.singular_values()
            );
        }
        assert!(svd.singular_values().iter().all(|&x| x >= 0.0));
        // Reconstruction.
        let err = (&svd.reconstruct() - a).norm_fro();
        assert!(
            err <= tol * a.norm_fro().max(1.0),
            "reconstruction error {err}"
        );
        // Orthonormality.
        let uhu = svd.u().adjoint().matmul(svd.u()).unwrap();
        assert!(
            uhu.approx_eq(&CMatrix::identity(r), 1e-10),
            "U not orthonormal"
        );
        let vhv = svd.v().adjoint().matmul(svd.v()).unwrap();
        assert!(
            vhv.approx_eq(&CMatrix::identity(r), 1e-10),
            "V not orthonormal"
        );
    }

    #[test]
    fn both_backends_handle_random_square() {
        let a = pseudo_random_complex(12, 12, 42);
        for method in [SvdMethod::GolubKahan, SvdMethod::Jacobi] {
            let svd = Svd::compute_with(&a, method).unwrap();
            check_svd(&a, &svd, 1e-11);
        }
    }

    #[test]
    fn both_backends_handle_tall_and_wide() {
        for &(m, n) in &[(9, 4), (4, 9), (15, 3), (2, 7)] {
            let a = pseudo_random_complex(m, n, (m * 31 + n) as u64);
            for method in [SvdMethod::GolubKahan, SvdMethod::Jacobi] {
                let svd = Svd::compute_with(&a, method).unwrap();
                check_svd(&a, &svd, 1e-11);
            }
        }
    }

    #[test]
    fn backends_agree_on_singular_values() {
        let a = pseudo_random_complex(10, 7, 7);
        let gk = Svd::compute_with(&a, SvdMethod::GolubKahan).unwrap();
        let ja = Svd::compute_with(&a, SvdMethod::Jacobi).unwrap();
        for (x, y) in gk.singular_values().iter().zip(ja.singular_values()) {
            assert!((x - y).abs() < 1e-9 * gk.singular_values()[0]);
        }
    }

    #[test]
    fn rank_of_outer_product_is_one() {
        let u = pseudo_random_complex(8, 1, 3);
        let v = pseudo_random_complex(1, 6, 5);
        let a = u.matmul(&v).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        check_svd(&a, &svd, 1e-11);
    }

    #[test]
    fn diagonal_matrix_singular_values_are_absolute_entries() {
        let a = RMatrix::from_diag(&[-5.0, 3.0, 1.0, 0.0]);
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] - 5.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
        assert!(s[3].abs() < 1e-12);
        assert_eq!(svd.rank(1e-12), 3);
    }

    #[test]
    fn zero_matrix_has_zero_rank() {
        let a = CMatrix::zeros(4, 3);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-12), 0);
        assert!(svd.singular_values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn min_norm_solve_matches_exact_solution_when_invertible() {
        let a = pseudo_random_complex(6, 6, 77);
        let x_true = pseudo_random_complex(6, 2, 78);
        let b = a.matmul(&x_true).unwrap();
        let svd = Svd::compute(&a).unwrap();
        let x = svd.solve_min_norm(&b, 1e-13).unwrap();
        assert!(x.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn min_norm_solve_of_underdetermined_system_is_consistent() {
        let a = pseudo_random_complex(3, 8, 11);
        let b = pseudo_random_complex(3, 1, 12);
        let svd = Svd::compute(&a).unwrap();
        let x = svd.solve_min_norm(&b, 1e-12).unwrap();
        let resid = &a.matmul(&x).unwrap() - &b;
        assert!(resid.norm_fro() < 1e-10 * b.norm_fro());
    }

    #[test]
    fn truncate_keeps_leading_triplets() {
        let a = pseudo_random_complex(6, 5, 1);
        let svd = Svd::compute(&a).unwrap();
        let (u2, s2, v2) = svd.truncate(2);
        assert_eq!(u2.dims(), (6, 2));
        assert_eq!(v2.dims(), (5, 2));
        assert_eq!(s2.len(), 2);
        assert_eq!(s2[0], svd.singular_values()[0]);
    }

    #[test]
    fn spectral_norm_agrees_with_largest_singular_value() {
        let a = pseudo_random_complex(9, 9, 1312);
        let svd = Svd::compute(&a).unwrap();
        assert!((a.norm_2() - svd.singular_values()[0]).abs() < 1e-8);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Svd::compute(&CMatrix::zeros(0, 0)).is_err());
        let mut bad = CMatrix::identity(2);
        bad[(0, 1)] = c64(f64::NAN, 0.0);
        assert!(Svd::compute(&bad).is_err());
    }

    #[test]
    fn recovering_svd_succeeds_first_try_on_healthy_input() {
        let a = pseudo_random_complex(9, 6, 99);
        let rec = Svd::compute_recovering(&a, SvdMethod::Blocked, SvdFactors::Both).unwrap();
        assert_eq!(rec.method, SvdMethod::Blocked);
        assert!(!rec.recovered());
        check_svd(&a, &rec.svd, 1e-11);
    }

    #[test]
    fn recovering_svd_propagates_input_defects_without_retrying() {
        let mut bad = CMatrix::identity(3);
        bad[(1, 2)] = c64(f64::INFINITY, 0.0);
        let err = Svd::compute_recovering(&bad, SvdMethod::Blocked, SvdFactors::Both).unwrap_err();
        assert!(matches!(err, NumericError::NotFinite { .. }));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn recovering_svd_degrades_to_jacobi_under_forced_qr_stall() {
        let a = pseudo_random_complex(10, 10, 1234);
        let _fault = crate::faults::InjectedFault::cap_qr_iterations(1);
        let rec = Svd::compute_recovering(&a, SvdMethod::Blocked, SvdFactors::Both).unwrap();
        assert_eq!(rec.method, SvdMethod::Jacobi);
        assert_eq!(rec.fallbacks.len(), 2);
        assert!(rec.recovered());
        check_svd(&a, &rec.svd, 1e-10);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn recovering_svd_reports_last_rung_error_when_all_stall() {
        let a = pseudo_random_complex(10, 10, 4321);
        let _fault = crate::faults::InjectedFault::cap_all_iterations(1);
        let err = Svd::compute_recovering(&a, SvdMethod::Blocked, SvdFactors::Both).unwrap_err();
        assert!(matches!(
            err,
            NumericError::NoConvergence {
                op: "jacobi svd",
                ..
            }
        ));
    }

    #[test]
    fn ladder_orders_are_fixed() {
        assert_eq!(
            SvdMethod::Blocked.ladder(),
            &[SvdMethod::Blocked, SvdMethod::GolubKahan, SvdMethod::Jacobi]
        );
        assert_eq!(SvdMethod::Jacobi.ladder(), &[SvdMethod::Jacobi]);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let svd = Svd::compute(&CMatrix::identity(4)).unwrap();
        assert!((svd.cond() - 1.0).abs() < 1e-12);
    }
}
