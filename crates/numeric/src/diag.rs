//! Feature-gated wall-clock diagnostics.
//!
//! Every `elapsed` field the fitting drivers report flows through
//! [`Stopwatch`], the one module in the library crates permitted to
//! read a clock (DESIGN.md §7, rule MFTI-D5). The `timing` cargo
//! feature (default on) gates the actual `Instant` reads: without it a
//! stopwatch carries no state and [`Stopwatch::elapsed`] is a constant
//! `Duration::ZERO` — a compile-time proof that wall-clock readings can
//! only ever decorate results, never steer numeric control flow.

use std::time::Duration;

/// A started wall-clock timer; reads compile out without the `timing`
/// feature.
///
/// ```
/// let clock = mfti_numeric::diag::Stopwatch::start();
/// let elapsed = clock.elapsed(); // Duration::ZERO when `timing` is off
/// assert!(elapsed >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(feature = "timing")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts a stopwatch (a no-op carrying no state when `timing` is
    /// disabled).
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            #[cfg(feature = "timing")]
            start: std::time::Instant::now(),
        }
    }

    /// Wall time since [`Stopwatch::start`]; `Duration::ZERO` when the
    /// `timing` feature is disabled.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        #[cfg(feature = "timing")]
        {
            self.start.elapsed()
        }
        #[cfg(not(feature = "timing"))]
        {
            Duration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let clock = Stopwatch::start();
        let a = clock.elapsed();
        let b = clock.elapsed();
        assert!(b >= a);
    }

    #[cfg(feature = "timing")]
    #[test]
    fn timing_feature_reports_real_time() {
        let clock = Stopwatch::start();
        // Burn a little work so the reading is strictly positive even on
        // coarse clocks.
        let mut acc = 0.0f64;
        for i in 0..200_000 {
            acc += (i as f64).sqrt();
        }
        assert!(acc > 0.0);
        assert!(clock.elapsed() > Duration::ZERO);
    }
}
