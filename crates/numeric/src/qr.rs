use crate::error::NumericError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Householder QR factorization `A = Q R` (thin form), generic over real
/// and complex matrices.
///
/// Used for orthonormalizing tangential direction blocks, for least-squares
/// solves in the vector-fitting baseline, and for the stacked-SVD
/// realization path.
///
/// ```
/// use mfti_numeric::{Qr, RMatrix};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = RMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]])?;
/// let qr = Qr::compute(&a)?;
/// let q = qr.q_thin();
/// // Q has orthonormal columns and QR reproduces A.
/// assert!(q.adjoint().matmul(&q)?.approx_eq(&RMatrix::identity(2), 1e-12));
/// assert!(q.matmul(&qr.r())?.approx_eq(&a, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr<T: Scalar> {
    /// Packed factors: R on and above the diagonal, Householder tails below.
    factors: Matrix<T>,
    taus: Vec<T>,
}

/// Generates a Householder reflector `H = I − τ w w*`, `w = [1, v…]`, with
/// `H* x = β e₁` and β **real** (LAPACK `zlarfg` convention, degenerates to
/// `dlarfg` over `f64`).
pub(crate) fn reflector<T: Scalar>(x: &[T]) -> (Vec<T>, T, f64) {
    debug_assert!(!x.is_empty());
    let alpha = x[0];
    let tail_norm_sq: f64 = x[1..].iter().map(|z| z.abs_sq()).sum();
    if tail_norm_sq == 0.0 && alpha.im() == 0.0 {
        return (vec![T::ZERO; x.len() - 1], T::ZERO, alpha.re());
    }
    let norm = (alpha.abs_sq() + tail_norm_sq).sqrt();
    let beta = if alpha.re() >= 0.0 { -norm } else { norm };
    let beta_t = T::from_f64(beta);
    let tau = (beta_t - alpha) / beta_t;
    let scale = T::ONE / (alpha - beta_t);
    let v = x[1..].iter().map(|&z| z * scale).collect();
    (v, tau, beta)
}

impl<T: Scalar> Qr<T> {
    /// Factors `a` (any shape) into `Q R` using Householder reflections.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotFinite`] when `a` contains NaN/∞ and
    /// [`NumericError::InvalidArgument`] for empty matrices.
    pub fn compute(a: &Matrix<T>) -> Result<Self, NumericError> {
        if a.is_empty() {
            return Err(NumericError::InvalidArgument {
                what: "qr of empty matrix",
            });
        }
        if !a.is_finite() {
            return Err(NumericError::NotFinite { op: "qr" });
        }
        let (m, n) = a.dims();
        let steps = m.min(n);
        let mut f = a.clone();
        let mut taus = Vec::with_capacity(steps);
        for k in 0..steps {
            let col: Vec<T> = (k..m).map(|i| f[(i, k)]).collect();
            let (v, tau, beta) = reflector(&col);
            f[(k, k)] = T::from_f64(beta);
            for (i, &vi) in v.iter().enumerate() {
                f[(k + 1 + i, k)] = vi;
            }
            // Apply H* to the trailing columns.
            if tau != T::ZERO {
                for j in k + 1..n {
                    let mut s = f[(k, j)];
                    for (i, &vi) in v.iter().enumerate() {
                        s += vi.conj() * f[(k + 1 + i, j)];
                    }
                    let t = tau.conj() * s;
                    f[(k, j)] -= t;
                    for (i, &vi) in v.iter().enumerate() {
                        let upd = f[(k + 1 + i, j)] - t * vi;
                        f[(k + 1 + i, j)] = upd;
                    }
                }
            }
            taus.push(tau);
        }
        Ok(Qr { factors: f, taus })
    }

    /// The upper-trapezoidal factor `R` (`min(m,n) × n`).
    pub fn r(&self) -> Matrix<T> {
        let (m, n) = self.factors.dims();
        let k = m.min(n);
        Matrix::from_fn(k, n, |i, j| {
            if j >= i {
                self.factors[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Thin orthonormal factor `Q` (`m × min(m,n)`).
    pub fn q_thin(&self) -> Matrix<T> {
        let (m, n) = self.factors.dims();
        let k = m.min(n);
        let mut q = Matrix::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = T::ONE;
        }
        // Q = H_0 H_1 … H_{k-1} · I, applied back to front.
        for step in (0..k).rev() {
            let tau = self.taus[step];
            if tau == T::ZERO {
                continue;
            }
            for j in 0..k {
                let mut s = q[(step, j)];
                for i in step + 1..m {
                    s += self.factors[(i, step)].conj() * q[(i, j)];
                }
                let t = tau * s;
                q[(step, j)] -= t;
                for i in step + 1..m {
                    let upd = q[(i, j)] - t * self.factors[(i, step)];
                    q[(i, j)] = upd;
                }
            }
        }
        q
    }

    /// Applies `Q*` to `b` in place semantics (returns the product).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `b.rows() != m`.
    pub fn q_adjoint_mul(&self, b: &Matrix<T>) -> Result<Matrix<T>, NumericError> {
        let (m, n) = self.factors.dims();
        if b.rows() != m {
            return Err(NumericError::ShapeMismatch {
                op: "q_adjoint_mul",
                left: (m, n),
                right: b.dims(),
            });
        }
        let mut x = b.clone();
        for step in 0..m.min(n) {
            let tau = self.taus[step];
            if tau == T::ZERO {
                continue;
            }
            for j in 0..x.cols() {
                let mut s = x[(step, j)];
                for i in step + 1..m {
                    s += self.factors[(i, step)].conj() * x[(i, j)];
                }
                let t = tau.conj() * s;
                x[(step, j)] -= t;
                for i in step + 1..m {
                    let upd = x[(i, j)] - t * self.factors[(i, step)];
                    x[(i, j)] = upd;
                }
            }
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` for each column
    /// of `b`; requires `m ≥ n` and full column rank.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] when `m < n`,
    /// [`NumericError::Singular`] when `R` has a (numerically) zero
    /// diagonal, [`NumericError::ShapeMismatch`] on row-count mismatch.
    pub fn solve_least_squares(&self, b: &Matrix<T>) -> Result<Matrix<T>, NumericError> {
        let (m, n) = self.factors.dims();
        if m < n {
            return Err(NumericError::InvalidArgument {
                what: "least squares requires m >= n (use lstsq for the general case)",
            });
        }
        let tol = {
            let max_diag = (0..n)
                .map(|i| self.factors[(i, i)].abs())
                .fold(0.0, f64::max);
            max_diag * f64::EPSILON * (m.max(n) as f64)
        };
        let qtb = self.q_adjoint_mul(b)?;
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            for i in (0..n).rev() {
                let mut s = qtb[(i, j)];
                for k in i + 1..n {
                    let adj = self.factors[(i, k)] * x[(k, j)];
                    s -= adj;
                }
                let d = self.factors[(i, i)];
                if d.abs() <= tol {
                    return Err(NumericError::Singular {
                        op: "qr least squares",
                    });
                }
                x[(i, j)] = s / d;
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::{CMatrix, RMatrix};

    fn pseudo_random_real(m: usize, n: usize, mut seed: u64) -> RMatrix {
        RMatrix::from_fn(m, n, |_, _| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn qr_reconstructs_tall_complex_matrix() {
        let a = pseudo_random_complex(7, 4, 42);
        let qr = Qr::compute(&a).unwrap();
        let q = qr.q_thin();
        let r = qr.r();
        assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-12));
        let qhq = q.adjoint().matmul(&q).unwrap();
        assert!(qhq.approx_eq(&CMatrix::identity(4), 1e-12));
    }

    #[test]
    fn qr_reconstructs_wide_matrix() {
        let a = pseudo_random_real(3, 6, 7);
        let qr = Qr::compute(&a).unwrap();
        let q = qr.q_thin();
        let r = qr.r();
        assert_eq!(q.dims(), (3, 3));
        assert_eq!(r.dims(), (3, 6));
        assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular_with_real_diagonal_for_complex_input() {
        let a = pseudo_random_complex(5, 5, 99);
        let qr = Qr::compute(&a).unwrap();
        let r = qr.r();
        for i in 0..5 {
            assert!(r[(i, i)].im.abs() < 1e-13, "diagonal should be real");
            for j in 0..i {
                assert_eq!(r[(i, j)], c64(0.0, 0.0));
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = pseudo_random_real(10, 3, 1234);
        let b = pseudo_random_real(10, 2, 5678);
        let qr = Qr::compute(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // Residual must be orthogonal to the column space: Aᵀ(Ax − b) = 0.
        let resid = &a.matmul(&x).unwrap() - &b;
        let ortho = a.transpose().matmul(&resid).unwrap();
        assert!(ortho.norm_fro() < 1e-10);
    }

    #[test]
    fn least_squares_exact_for_square_systems() {
        let a = pseudo_random_complex(4, 4, 3);
        let x_true = pseudo_random_complex(4, 1, 11);
        let b = a.matmul(&x_true).unwrap();
        let qr = Qr::compute(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn rank_deficient_least_squares_errors() {
        let mut a = RMatrix::zeros(4, 2);
        for i in 0..4 {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = 2.0; // second column is a multiple of the first
        }
        let qr = Qr::compute(&a).unwrap();
        let b = RMatrix::zeros(4, 1);
        assert!(matches!(
            qr.solve_least_squares(&b),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn underdetermined_least_squares_rejected() {
        let a = RMatrix::zeros(2, 3);
        let mut a = a;
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        let qr = Qr::compute(&a).unwrap();
        assert!(qr.solve_least_squares(&RMatrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn empty_and_nonfinite_rejected() {
        assert!(Qr::compute(&RMatrix::zeros(0, 0)).is_err());
        let mut bad = RMatrix::identity(2);
        bad[(1, 1)] = f64::INFINITY;
        assert!(Qr::compute(&bad).is_err());
    }

    #[test]
    fn q_adjoint_mul_is_inverse_action_of_q() {
        let a = pseudo_random_complex(6, 3, 21);
        let qr = Qr::compute(&a).unwrap();
        let q = qr.q_thin();
        // Q* Q b == b for b in the span basis coordinates.
        let b = pseudo_random_complex(3, 2, 8);
        let qb = q.matmul(&b).unwrap();
        let back = qr.q_adjoint_mul(&qb).unwrap();
        let top = back.submatrix(0, 0, 3, 2).unwrap();
        assert!(top.approx_eq(&b, 1e-12));
    }
}
