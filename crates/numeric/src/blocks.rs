//! Block extraction, insertion and stacking.
//!
//! The Loewner pencil of the MFTI paper is assembled block-by-block
//! (Eqs. 11–12) and grown incrementally by Algorithm 2, so cheap block
//! surgery is a first-class operation here.

use crate::error::NumericError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

impl<T: Scalar> Matrix<T> {
    /// Copies the block with top-left corner `(row, col)` and shape
    /// `(height, width)` into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when the block exceeds the
    /// matrix bounds.
    pub fn submatrix(
        &self,
        row: usize,
        col: usize,
        height: usize,
        width: usize,
    ) -> Result<Self, NumericError> {
        if row + height > self.rows() || col + width > self.cols() {
            return Err(NumericError::InvalidArgument {
                what: "submatrix exceeds matrix bounds",
            });
        }
        Ok(Matrix::from_fn(height, width, |i, j| {
            self[(row + i, col + j)]
        }))
    }

    /// Copies the listed rows (in order, repeats allowed) into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when an index is out of
    /// bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self, NumericError> {
        if indices.iter().any(|&i| i >= self.rows()) {
            return Err(NumericError::InvalidArgument {
                what: "select_rows index out of bounds",
            });
        }
        Ok(Matrix::from_fn(indices.len(), self.cols(), |i, j| {
            self[(indices[i], j)]
        }))
    }

    /// Copies the listed columns (in order, repeats allowed) into a new
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when an index is out of
    /// bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Result<Self, NumericError> {
        if indices.iter().any(|&j| j >= self.cols()) {
            return Err(NumericError::InvalidArgument {
                what: "select_cols index out of bounds",
            });
        }
        Ok(Matrix::from_fn(self.rows(), indices.len(), |i, j| {
            self[(i, indices[j])]
        }))
    }

    /// Overwrites the block with top-left corner `(row, col)` with `block`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when the block exceeds the
    /// matrix bounds.
    pub fn set_block(&mut self, row: usize, col: usize, block: &Self) -> Result<(), NumericError> {
        if row + block.rows() > self.rows() || col + block.cols() > self.cols() {
            return Err(NumericError::InvalidArgument {
                what: "set_block exceeds matrix bounds",
            });
        }
        for i in 0..block.rows() {
            for j in 0..block.cols() {
                self[(row + i, col + j)] = block[(i, j)];
            }
        }
        Ok(())
    }

    /// Stacks matrices left-to-right: `[a | b | …]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when the input is empty or
    /// row counts differ.
    pub fn hstack(parts: &[&Self]) -> Result<Self, NumericError> {
        let first = parts.first().ok_or(NumericError::InvalidArgument {
            what: "hstack of zero matrices",
        })?;
        let rows = first.rows();
        if parts.iter().any(|p| p.rows() != rows) {
            return Err(NumericError::InvalidArgument {
                what: "hstack requires equal row counts",
            });
        }
        let cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for p in parts {
            out.set_block(0, offset, p)?;
            offset += p.cols();
        }
        Ok(out)
    }

    /// Stacks matrices top-to-bottom: `[a; b; …]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when the input is empty or
    /// column counts differ.
    pub fn vstack(parts: &[&Self]) -> Result<Self, NumericError> {
        let first = parts.first().ok_or(NumericError::InvalidArgument {
            what: "vstack of zero matrices",
        })?;
        let cols = first.cols();
        if parts.iter().any(|p| p.cols() != cols) {
            return Err(NumericError::InvalidArgument {
                what: "vstack requires equal column counts",
            });
        }
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for p in parts {
            out.set_block(offset, 0, p)?;
            offset += p.rows();
        }
        Ok(out)
    }

    /// Builds a block-diagonal matrix from the given square or rectangular
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] when the input is empty.
    pub fn block_diag(parts: &[&Self]) -> Result<Self, NumericError> {
        if parts.is_empty() {
            return Err(NumericError::InvalidArgument {
                what: "block_diag of zero matrices",
            });
        }
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        let cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Matrix::zeros(rows, cols);
        let (mut r, mut c) = (0, 0);
        for p in parts {
            out.set_block(r, c, p)?;
            r += p.rows();
            c += p.cols();
        }
        Ok(out)
    }

    /// Appends `block` to the right edge (grows columns).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] on row-count mismatch.
    pub fn append_cols(&self, block: &Self) -> Result<Self, NumericError> {
        Self::hstack(&[self, block])
    }

    /// Appends `block` to the bottom edge (grows rows).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] on column-count mismatch.
    pub fn append_rows(&self, block: &Self) -> Result<Self, NumericError> {
        Self::vstack(&[self, block])
    }
}

#[cfg(test)]
mod tests {
    use crate::matrix::RMatrix;

    fn counting(rows: usize, cols: usize) -> RMatrix {
        RMatrix::from_fn(rows, cols, |i, j| (i * cols + j) as f64)
    }

    #[test]
    fn submatrix_extracts_expected_block() {
        let m = counting(4, 4);
        let b = m.submatrix(1, 2, 2, 2).unwrap();
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(1, 1)], m[(2, 3)]);
        assert!(m.submatrix(3, 3, 2, 2).is_err());
    }

    #[test]
    fn select_rows_and_cols_allow_permutation_and_repeats() {
        let m = counting(3, 3);
        let r = m.select_rows(&[2, 0, 2]).unwrap();
        assert_eq!(r.rows(), 3);
        assert_eq!(r[(0, 0)], m[(2, 0)]);
        assert_eq!(r[(2, 1)], m[(2, 1)]);
        let c = m.select_cols(&[1]).unwrap();
        assert_eq!(c.dims(), (3, 1));
        assert_eq!(c[(2, 0)], m[(2, 1)]);
        assert!(m.select_rows(&[3]).is_err());
        assert!(m.select_cols(&[9]).is_err());
    }

    #[test]
    fn hstack_vstack_shapes_and_contents() {
        let a = counting(2, 2);
        let b = RMatrix::identity(2);
        let h = RMatrix::hstack(&[&a, &b]).unwrap();
        assert_eq!(h.dims(), (2, 4));
        assert_eq!(h[(1, 3)], 1.0);
        let v = RMatrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(v.dims(), (4, 2));
        assert_eq!(v[(2, 0)], 1.0);
    }

    #[test]
    fn stack_rejects_mismatch_and_empty() {
        let a = counting(2, 2);
        let b = counting(3, 3);
        assert!(RMatrix::hstack(&[&a, &b]).is_err());
        assert!(RMatrix::vstack(&[&a, &b]).is_err());
        assert!(RMatrix::hstack(&[]).is_err());
        assert!(RMatrix::block_diag(&[]).is_err());
    }

    #[test]
    fn block_diag_places_blocks_disjointly() {
        let a = counting(1, 2);
        let b = counting(2, 1);
        let d = RMatrix::block_diag(&[&a, &b]).unwrap();
        assert_eq!(d.dims(), (3, 3));
        assert_eq!(d[(0, 0)], a[(0, 0)]);
        assert_eq!(d[(0, 1)], a[(0, 1)]);
        assert_eq!(d[(1, 2)], b[(0, 0)]);
        assert_eq!(d[(2, 2)], b[(1, 0)]);
        assert_eq!(d[(1, 0)], 0.0);
    }

    #[test]
    fn append_grows_in_one_dimension() {
        let a = counting(2, 2);
        let wide = a.append_cols(&a).unwrap();
        assert_eq!(wide.dims(), (2, 4));
        let tall = a.append_rows(&a).unwrap();
        assert_eq!(tall.dims(), (4, 2));
    }

    #[test]
    fn set_block_overwrites_in_place() {
        let mut m = RMatrix::zeros(3, 3);
        let b = RMatrix::identity(2);
        m.set_block(1, 1, &b).unwrap();
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 2)], 1.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert!(m.set_block(2, 2, &b).is_err());
    }
}
