//! Matrix and vector norms.
//!
//! The paper's error metric (Section 5) uses the spectral norm
//! `‖H(j2πf_i) − S(f_i)‖₂`; [`Matrix::norm_2`] computes it via the largest
//! singular value with a power-iteration fast path for small matrices.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

impl<T: Scalar> Matrix<T> {
    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn norm_fro(&self) -> f64 {
        self.iter().map(|x| x.abs_sq()).sum::<f64>().sqrt()
    }

    /// Maximum absolute column sum (induced 1-norm).
    pub fn norm_1(&self) -> f64 {
        (0..self.cols())
            .map(|j| (0..self.rows()).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute row sum (induced ∞-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows())
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Spectral norm (largest singular value, induced 2-norm).
    ///
    /// Computed by power iteration on `A*A`, which converges fast for the
    /// well-separated spectra arising from scattering matrices; falls back
    /// to the Frobenius norm bound on (pathological) non-convergence.
    pub fn norm_2(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        // Power iteration on the Gram operator v -> A* (A v).
        let a = self.to_complex();
        let at = a.adjoint();
        let n = a.cols();
        let mut v: Vec<crate::Complex> = (0..n)
            .map(|i| crate::c64(1.0 + (i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut norm_v = v.iter().map(|x| x.abs_sq()).sum::<f64>().sqrt();
        if norm_v == 0.0 {
            return 0.0;
        }
        for x in &mut v {
            *x = x.scale(1.0 / norm_v);
        }
        let mut sigma_sq = 0.0;
        for _ in 0..200 {
            // The shapes agree by construction; the Frobenius bound is
            // the documented fallback if that ever stops holding.
            let Ok(av) = a.matvec(&v) else {
                return self.norm_fro();
            };
            let Ok(atav) = at.matvec(&av) else {
                return self.norm_fro();
            };
            norm_v = atav.iter().map(|x| x.abs_sq()).sum::<f64>().sqrt();
            if norm_v == 0.0 {
                return 0.0;
            }
            let prev = sigma_sq;
            sigma_sq = norm_v;
            v = atav.iter().map(|x| x.scale(1.0 / norm_v)).collect();
            if (sigma_sq - prev).abs() <= 1e-13 * sigma_sq.max(1.0) {
                break;
            }
        }
        sigma_sq.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use crate::complex::c64;
    use crate::matrix::{CMatrix, RMatrix};

    #[test]
    fn frobenius_norm_of_identity() {
        let i3 = RMatrix::identity(3);
        assert!((i3.norm_fro() - 3f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn one_and_inf_norms() {
        let m = RMatrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.norm_1(), 6.0); // column 1: |−2| + |4| = 6
        assert_eq!(m.norm_inf(), 7.0); // row 1: |3| + |4| = 7
    }

    #[test]
    fn spectral_norm_of_diagonal_matrix_is_max_entry() {
        let d = RMatrix::from_diag(&[3.0, -7.0, 2.0]);
        assert!((d.norm_2() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_norm_of_unitary_is_one() {
        // 2x2 rotation-like unitary.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let u = CMatrix::from_rows(&[
            vec![c64(s, 0.0), c64(0.0, s)],
            vec![c64(0.0, s), c64(s, 0.0)],
        ])
        .unwrap();
        assert!((u.norm_2() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn norm_inequalities_hold() {
        let m = CMatrix::from_fn(4, 3, |i, j| c64((i + 1) as f64, (j as f64) - 1.0));
        let two = m.norm_2();
        let fro = m.norm_fro();
        assert!(two <= fro + 1e-12);
        assert!(fro <= two * (3f64).sqrt() + 1e-9);
    }

    #[test]
    fn empty_and_zero_matrices() {
        let z = RMatrix::zeros(2, 2);
        assert_eq!(z.norm_2(), 0.0);
        assert_eq!(z.norm_fro(), 0.0);
    }
}
