use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// The workspace deliberately implements its own complex scalar instead of
/// binding an external crate so that the numerical kernels are fully
/// self-contained. Construct values with [`c64`] or [`Complex::new`].
///
/// ```
/// use mfti_numeric::c64;
///
/// let z = c64(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z * z.conj(), c64(25.0, 0.0));
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Constructs a [`Complex`] from its real and imaginary parts.
///
/// This free function mirrors the `c64` shorthand common in numerical
/// codebases and keeps call sites compact:
///
/// ```
/// use mfti_numeric::c64;
/// let s = c64(0.0, 2.0 * std::f64::consts::PI * 1e3);
/// assert_eq!(s.re, 0.0);
/// ```
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex {
    Complex { re, im }
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = c64(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Creates a purely imaginary complex number `0 + im·i`.
    #[inline]
    pub const fn from_imag(im: f64) -> Self {
        c64(0.0, im)
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use mfti_numeric::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate `re − im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Modulus `|z|`, computed with `hypot` for overflow safety.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|² = re² + im²`.
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Uses Smith's algorithm to avoid overflow for extreme magnitudes.
    /// Returns infinities when `z == 0`, matching `f64` semantics.
    #[inline]
    pub fn recip(self) -> Self {
        // Smith's algorithm: scale by the larger component.
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            c64(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            c64(r / d, -1.0 / d)
        }
    }

    /// Principal square root.
    ///
    /// ```
    /// use mfti_numeric::c64;
    /// let z = c64(-4.0, 0.0).sqrt();
    /// assert!((z - c64(0.0, 2.0)).abs() < 1e-15);
    /// ```
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex::ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) / 2.0).sqrt();
        let im = ((m - self.re) / 2.0).sqrt();
        c64(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// Unit-modulus phase factor `z/|z|`, or `1` when `z == 0`.
    ///
    /// Used by the SVD to rotate a complex bidiagonal onto the real axis.
    #[inline]
    pub fn unit_phase(self) -> Self {
        let m = self.abs();
        if m == 0.0 {
            Complex::ONE
        } else {
            c64(self.re / m, self.im / m)
        }
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w ≡ z·w⁻¹ with a guarded reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(1.5, -2.5);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!(close(z * z.recip(), Complex::ONE, 1e-15));
    }

    #[test]
    fn division_matches_multiplication_by_reciprocal() {
        let a = c64(3.0, -1.0);
        let b = c64(-2.0, 7.0);
        assert!(close(a / b * b, a, 1e-14));
    }

    #[test]
    fn conjugate_properties() {
        let z = c64(2.0, 3.0);
        assert_eq!(z.conj().conj(), z);
        assert_eq!((z * z.conj()).im, 0.0);
        assert!((z.abs_sq() - 13.0).abs() < 1e-15);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-9.0, 0.0),
            (3.0, 4.0),
            (-1.0, -1.0),
            (0.0, 2.0),
        ] {
            let z = c64(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt failed for {z}");
            assert!(r.re >= 0.0, "principal branch has non-negative real part");
        }
    }

    #[test]
    fn sqrt_of_zero_is_zero() {
        assert_eq!(Complex::ZERO.sqrt(), Complex::ZERO);
    }

    #[test]
    fn exp_of_imaginary_pi_is_minus_one() {
        let z = Complex::from_imag(std::f64::consts::PI).exp();
        assert!(close(z, c64(-1.0, 0.0), 1e-15));
    }

    #[test]
    fn polar_round_trip() {
        let z = c64(-3.0, 4.0);
        let back = Complex::from_polar(z.abs(), z.arg());
        assert!(close(back, z, 1e-12));
    }

    #[test]
    fn unit_phase_has_modulus_one() {
        assert_eq!(Complex::ZERO.unit_phase(), Complex::ONE);
        let p = c64(-3.0, 4.0).unit_phase();
        assert!((p.abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = c64(1.1, -0.3);
        let mut acc = Complex::ONE;
        for _ in 0..7 {
            acc *= z;
        }
        assert!(close(z.powi(7), acc, 1e-12));
        assert!(close(z.powi(-2) * z.powi(2), Complex::ONE, 1e-12));
        assert_eq!(z.powi(0), Complex::ONE);
    }

    #[test]
    fn recip_of_tiny_and_huge_values_is_finite() {
        let tiny = c64(1e-300, -1e-300);
        let huge = c64(1e300, 1e300);
        assert!(tiny.recip().is_finite());
        assert!(huge.recip().is_finite());
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(c64(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_and_product_fold() {
        let zs = [c64(1.0, 1.0), c64(2.0, -1.0), c64(0.5, 0.0)];
        let s: Complex = zs.iter().copied().sum();
        assert!(close(s, c64(3.5, 0.0), 1e-15));
        let p: Complex = zs.iter().copied().product();
        assert!(close(
            p,
            c64(1.0, 1.0) * c64(2.0, -1.0) * c64(0.5, 0.0),
            1e-15
        ));
    }
}
