//! Shifted QR iteration on complex Hessenberg matrices.
//!
//! Single complex (Wilkinson) shifts suffice over ℂ — the real Francis
//! double-shift is unnecessary — so each sweep is an explicit
//! `QR`-then-`RQ` pass with complex Givens rotations confined to the
//! active window.

use crate::complex::{c64, Complex};
use crate::error::NumericError;
use crate::matrix::CMatrix;

/// Complex Givens rotation `G = [[c, s], [-s̄, c]]` (c real) with
/// `G · [a; b] = [r; 0]`. Shared with the Schur iteration in
/// `crate::schur`, which accumulates the same rotations into a unitary
/// factor.
pub(crate) fn zrotg(a: Complex, b: Complex) -> (f64, Complex, Complex) {
    let norm = (a.abs_sq() + b.abs_sq()).sqrt();
    if norm == 0.0 {
        return (1.0, Complex::ZERO, Complex::ZERO);
    }
    if a.abs() == 0.0 {
        // Pure swap with phase alignment.
        let phase_b = b.unit_phase();
        return (0.0, phase_b.conj(), c64(b.abs(), 0.0));
    }
    let phase_a = a.unit_phase();
    let c = a.abs() / norm;
    let s = phase_a * b.conj().scale(1.0 / norm);
    let r = phase_a.scale(norm);
    (c, s, r)
}

/// Eigenvalue of the 2×2 block `[[a, b], [c, d]]` closest to `d`
/// (the Wilkinson shift).
pub(crate) fn wilkinson_shift(a: Complex, b: Complex, c: Complex, d: Complex) -> Complex {
    let half_delta = (a - d).scale(0.5);
    let disc = (half_delta * half_delta + b * c).sqrt();
    // Pick the sign that maximizes |half_delta + disc| for a stable
    // division, then use λ = d − bc / (half_delta ± disc).
    let denom = if (half_delta + disc).abs() >= (half_delta - disc).abs() {
        half_delta + disc
    } else {
        half_delta - disc
    };
    if denom.abs() == 0.0 {
        // a == d and bc == 0: the block is already triangular-ish.
        return d;
    }
    d - (b * c) / denom
}

/// Both eigenvalues of a 2×2 complex block.
fn eig_2x2(a: Complex, b: Complex, c: Complex, d: Complex) -> (Complex, Complex) {
    let mean = (a + d).scale(0.5);
    let half_delta = (a - d).scale(0.5);
    let disc = (half_delta * half_delta + b * c).sqrt();
    (mean + disc, mean - disc)
}

/// Consumes a Hessenberg matrix and returns its eigenvalues.
pub(crate) fn hessenberg_eigenvalues(mut h: CMatrix) -> Result<Vec<Complex>, NumericError> {
    let n = h.rows();
    let mut ev = Vec::with_capacity(n);
    if n == 0 {
        return Ok(ev);
    }
    let eps = f64::EPSILON;
    let tiny = f64::MIN_POSITIVE;
    let mut hi = n - 1;
    let mut iters_this_window = 0usize;
    // Intrinsic budget, unless a fault-injection cap shrinks it to
    // force the NoConvergence exit (crate::fault_budget).
    let max_iters_per_eig = crate::fault_budget::qr_iteration_cap().unwrap_or(300);

    loop {
        // Deflate negligible subdiagonals.
        let mut lo = hi;
        while lo > 0 {
            let sub = h[(lo, lo - 1)].abs();
            if sub <= tiny + eps * (h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs()) {
                h[(lo, lo - 1)] = Complex::ZERO;
                break;
            }
            lo -= 1;
        }

        if lo == hi {
            // 1x1 block converged.
            ev.push(h[(hi, hi)]);
            iters_this_window = 0;
            if hi == 0 {
                break;
            }
            hi -= 1;
            continue;
        }
        if hi - lo == 1 {
            // Solve the 2x2 block analytically.
            let (l1, l2) = eig_2x2(h[(lo, lo)], h[(lo, hi)], h[(hi, lo)], h[(hi, hi)]);
            ev.push(l1);
            ev.push(l2);
            iters_this_window = 0;
            if lo == 0 {
                break;
            }
            hi = lo - 1;
            continue;
        }

        iters_this_window += 1;
        if iters_this_window > max_iters_per_eig {
            return Err(NumericError::NoConvergence {
                op: "hessenberg qr",
                iterations: iters_this_window,
            });
        }

        // Shift: Wilkinson by default; occasionally an exceptional shift to
        // break symmetry-induced cycling.
        let mu = if iters_this_window.is_multiple_of(24) {
            let m = h[(hi, hi - 1)].abs() + h[(hi - 1, hi - 2)].abs();
            h[(hi, hi)] + c64(0.75 * m, 0.3 * m)
        } else {
            wilkinson_shift(
                h[(hi - 1, hi - 1)],
                h[(hi - 1, hi)],
                h[(hi, hi - 1)],
                h[(hi, hi)],
            )
        };

        // Explicit QR step on the window: H − μI = QR, then H := RQ + μI.
        for i in lo..=hi {
            h[(i, i)] -= mu;
        }
        let mut rot = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let (c, s, r) = zrotg(h[(k, k)], h[(k + 1, k)]);
            h[(k, k)] = r;
            h[(k + 1, k)] = Complex::ZERO;
            for j in k + 1..=hi {
                let t1 = h[(k, j)];
                let t2 = h[(k + 1, j)];
                h[(k, j)] = t1.scale(c) + s * t2;
                h[(k + 1, j)] = t2.scale(c) - s.conj() * t1;
            }
            rot.push((c, s));
        }
        for (k, &(c, s)) in rot.iter().enumerate() {
            let k = lo + k;
            // Apply G* from the right to columns k, k+1 of rows lo..=k+1.
            for i in lo..=(k + 1).min(hi) {
                let u = h[(i, k)];
                let v = h[(i, k + 1)];
                h[(i, k)] = u.scale(c) + v * s.conj();
                h[(i, k + 1)] = v.scale(c) - u * s;
            }
        }
        for i in lo..=hi {
            h[(i, i)] += mu;
        }
    }
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zrotg_annihilates_second_entry() {
        let cases = [
            (c64(1.0, 2.0), c64(-3.0, 0.5)),
            (c64(0.0, 0.0), c64(2.0, -1.0)),
            (c64(4.0, 0.0), c64(0.0, 0.0)),
            (c64(-1e-8, 1e-8), c64(1e8, -1e8)),
        ];
        for (a, b) in cases {
            let (c, s, r) = zrotg(a, b);
            // G [a; b] = [r; 0]
            let top = a.scale(c) + s * b;
            let bot = b.scale(c) - s.conj() * a;
            assert!(
                (top - r).abs() < 1e-9 * r.abs().max(1.0),
                "top residual for ({a},{b})"
            );
            assert!(
                bot.abs() < 1e-9 * (a.abs() + b.abs()).max(1.0),
                "bottom {bot}"
            );
            // Unitarity: c² + |s|² = 1.
            assert!((c * c + s.abs_sq() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn wilkinson_shift_picks_eigenvalue_near_d() {
        // [[0, 1], [1, 10]]: eigenvalues ≈ -0.0990, 10.0990.
        let mu = wilkinson_shift(c64(0.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(10.0, 0.0));
        assert!((mu.re - 10.099).abs() < 1e-2, "shift {mu}");
    }

    #[test]
    fn diagonal_hessenberg_returns_diagonal() {
        let h = CMatrix::from_diag(&[c64(1.0, 1.0), c64(2.0, -2.0), c64(3.0, 0.0)]);
        let mut ev = hessenberg_eigenvalues(h).unwrap();
        ev.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        assert!((ev[0] - c64(1.0, 1.0)).abs() < 1e-12);
        assert!((ev[2] - c64(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn repeated_eigenvalues_converge() {
        // Jordan-ish block: eigenvalue 2 with multiplicity 3.
        let mut h = CMatrix::zeros(3, 3);
        for i in 0..3 {
            h[(i, i)] = c64(2.0, 0.0);
            if i + 1 < 3 {
                h[(i, i + 1)] = c64(1.0, 0.0);
            }
        }
        // Perturb the subdiagonal slightly so it is a true Hessenberg case.
        h[(1, 0)] = c64(1e-8, 0.0);
        h[(2, 1)] = c64(1e-8, 0.0);
        // A perturbation ε of a Jordan block moves eigenvalues by O(ε^{1/k});
        // here ε = 1e-8, k ≈ 2..3 so the true eigenvalues sit ~1.4e-4 away.
        let ev = hessenberg_eigenvalues(h).unwrap();
        for e in ev {
            assert!((e - c64(2.0, 0.0)).abs() < 1e-3, "eigenvalue {e}");
        }
    }
}
