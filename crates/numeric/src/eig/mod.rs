//! Complex eigenvalue computation.
//!
//! Poles of fitted macromodels (`eig(E⁻¹A)` after Loewner projection) and
//! the pole-relocation step of vector fitting (`eig(A − b c̃ᵀ)`) both need
//! eigenvalues of general complex matrices. The implementation reduces to
//! Hessenberg form with Householder similarity transforms and runs a
//! Wilkinson-shifted QR iteration with deflation.

mod hessenberg;
pub(crate) mod qr_algorithm;

use crate::complex::{c64, Complex};
use crate::error::NumericError;
use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Computes all eigenvalues of a square matrix (real or complex input).
///
/// Eigenvalues are returned in no particular order; callers that need
/// determinism should sort (see the state-space crate's pole helpers).
///
/// # Errors
///
/// Returns [`NumericError::NotSquare`] for rectangular input,
/// [`NumericError::NotFinite`] for NaN/∞ entries and
/// [`NumericError::NoConvergence`] when the QR iteration exceeds its
/// budget (pathological; not observed on the workloads in this repo).
///
/// ```
/// use mfti_numeric::{eigenvalues, RMatrix};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = RMatrix::from_rows(&[vec![0.0, -1.0], vec![1.0, 0.0]])?;
/// let mut ev = eigenvalues(&a)?;
/// ev.sort_by(|x, y| x.im.partial_cmp(&y.im).unwrap());
/// assert!((ev[0].im + 1.0).abs() < 1e-12 && (ev[1].im - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues<T: Scalar>(a: &Matrix<T>) -> Result<Vec<Complex>, NumericError> {
    if !a.is_square() {
        return Err(NumericError::NotSquare {
            op: "eigenvalues",
            dims: a.dims(),
        });
    }
    if !a.is_finite() {
        return Err(NumericError::NotFinite { op: "eigenvalues" });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![a[(0, 0)].to_complex()]);
    }
    let mut h = a.to_complex();
    hessenberg::reduce_to_hessenberg(&mut h);
    qr_algorithm::hessenberg_eigenvalues(h)
}

/// Eigenvalues of the pencil `(A, E)`, i.e. values λ with
/// `det(A − λE) = 0`, for possibly **singular** `E`.
///
/// Returns the finite eigenvalues together with the count of infinite
/// ones (rank deficiency of `E`). Implemented by the shift-and-invert
/// trick: pick a shift `s₀` making `A − s₀E` invertible, compute
/// `μ ∈ eig((A − s₀E)⁻¹ E)` and map back `λ = s₀ + 1/μ` (μ ≈ 0 ⇒ λ = ∞).
///
/// # Errors
///
/// Propagates shape/finiteness errors and returns
/// [`NumericError::Singular`] when no shift in the probe set renders
/// `A − s₀E` invertible (the pencil is singular).
pub fn generalized_eigenvalues<T: Scalar>(
    a: &Matrix<T>,
    e: &Matrix<T>,
) -> Result<(Vec<Complex>, usize), NumericError> {
    if a.dims() != e.dims() {
        return Err(NumericError::ShapeMismatch {
            op: "generalized eigenvalues",
            left: a.dims(),
            right: e.dims(),
        });
    }
    if !a.is_square() {
        return Err(NumericError::NotSquare {
            op: "generalized eigenvalues",
            dims: a.dims(),
        });
    }
    let ac = a.to_complex();
    let ec = e.to_complex();
    let n = ac.rows();
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    let scale = ac.norm_fro().max(ec.norm_fro()).max(1.0);
    // Probe a few shifts of increasing eccentricity; a random direction in
    // the complex plane almost surely avoids the spectrum.
    let probes = [
        c64(0.0, 0.0),
        c64(0.618_033_988_749, 1.0),
        c64(-1.324_717_957, 0.756_423_2),
        c64(2.5029, -1.8312),
    ];
    for &p in &probes {
        let s0 = p.scale(scale);
        let shifted = &ac - &ec.map(|x| x * s0);
        let Ok(lu) = Lu::compute(&shifted) else {
            continue;
        };
        if lu.is_singular() || lu.rcond_estimate() < 1e-14 {
            continue;
        }
        let inv_e = lu.solve(&ec)?;
        let mu = eigenvalues(&inv_e)?;
        let mut finite = Vec::with_capacity(n);
        let mut infinite = 0usize;
        for m in mu {
            // μ≈0 corresponds to an infinite eigenvalue of the pencil.
            if m.abs() < 1e-12 {
                infinite += 1;
            } else {
                finite.push(s0 + m.recip());
            }
        }
        return Ok((finite, infinite));
    }
    Err(NumericError::Singular {
        op: "generalized eigenvalues (singular pencil)",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{CMatrix, RMatrix};

    fn sort_by_re_im(ev: &mut [Complex]) {
        ev.sort_by(|a, b| {
            (a.re, a.im)
                .partial_cmp(&(b.re, b.im))
                .expect("finite eigenvalues")
        });
    }

    #[test]
    fn eigenvalues_of_triangular_matrix_are_its_diagonal() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 2.0), c64(5.0, 0.0), c64(1.0, -1.0)],
            vec![Complex::ZERO, c64(-3.0, 0.5), c64(2.0, 2.0)],
            vec![Complex::ZERO, Complex::ZERO, c64(0.0, -1.0)],
        ])
        .unwrap();
        let mut ev = eigenvalues(&a).unwrap();
        sort_by_re_im(&mut ev);
        let mut want = vec![c64(1.0, 2.0), c64(-3.0, 0.5), c64(0.0, -1.0)];
        sort_by_re_im(&mut want);
        for (g, w) in ev.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-10, "got {g}, want {w}");
        }
    }

    #[test]
    fn eigenvalues_of_companion_matrix_match_polynomial_roots() {
        // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3)
        let a = RMatrix::from_rows(&[
            vec![6.0, -11.0, 6.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
        ])
        .unwrap();
        let mut ev = eigenvalues(&a).unwrap();
        sort_by_re_im(&mut ev);
        for (g, w) in ev.iter().zip([1.0, 2.0, 3.0]) {
            assert!((g.re - w).abs() < 1e-9 && g.im.abs() < 1e-9, "got {g}");
        }
    }

    #[test]
    fn trace_and_determinant_consistency() {
        let mut seed = 123u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let a = CMatrix::from_fn(9, 9, |_, _| c64(next(), next()));
        let ev = eigenvalues(&a).unwrap();
        let sum: Complex = ev.iter().copied().sum();
        let tr = a.trace();
        assert!((sum - tr).abs() < 1e-9, "trace mismatch: {sum} vs {tr}");
        let prod: Complex = ev.iter().copied().product();
        let det = Lu::compute(&a).unwrap().det();
        assert!(
            (prod - det).abs() < 1e-8 * det.abs().max(1.0),
            "det mismatch: {prod} vs {det}"
        );
    }

    #[test]
    fn generalized_eigenvalues_of_invertible_pencil() {
        // A = diag(2, 6), E = diag(1, 2) → λ = {2, 3}.
        let a = RMatrix::from_diag(&[2.0, 6.0]);
        let e = RMatrix::from_diag(&[1.0, 2.0]);
        let (mut finite, infinite) = generalized_eigenvalues(&a, &e).unwrap();
        assert_eq!(infinite, 0);
        sort_by_re_im(&mut finite);
        assert!((finite[0].re - 2.0).abs() < 1e-9);
        assert!((finite[1].re - 3.0).abs() < 1e-9);
    }

    #[test]
    fn generalized_eigenvalues_with_singular_e() {
        // E = diag(1, 0): one finite eigenvalue (A11/E11 = 5), one infinite.
        let a = RMatrix::from_diag(&[5.0, 1.0]);
        let e = RMatrix::from_diag(&[1.0, 0.0]);
        let (finite, infinite) = generalized_eigenvalues(&a, &e).unwrap();
        assert_eq!(infinite, 1);
        assert_eq!(finite.len(), 1);
        assert!((finite[0].re - 5.0).abs() < 1e-8 && finite[0].im.abs() < 1e-8);
    }

    #[test]
    fn empty_and_scalar_matrices() {
        assert!(eigenvalues(&RMatrix::zeros(0, 0)).unwrap().is_empty());
        let one = CMatrix::from_rows(&[vec![c64(4.0, -2.0)]]).unwrap();
        assert_eq!(eigenvalues(&one).unwrap(), vec![c64(4.0, -2.0)]);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(eigenvalues(&RMatrix::zeros(2, 3)).is_err());
        assert!(generalized_eigenvalues(&RMatrix::zeros(2, 2), &RMatrix::zeros(3, 3)).is_err());
    }
}
