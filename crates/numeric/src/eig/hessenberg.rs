//! Reduction of a complex matrix to upper Hessenberg form by unitary
//! similarity transforms (eigenvalue-preserving).

use crate::complex::Complex;
use crate::householder::make_reflector;
use crate::matrix::CMatrix;

/// Overwrites `a` with an upper Hessenberg matrix unitarily similar to it.
///
/// Classic Householder scheme: for each column `k`, a reflector
/// annihilates entries below the first subdiagonal and is applied from
/// both sides (`H* A H`) to preserve the spectrum.
pub(crate) fn reduce_to_hessenberg(a: &mut CMatrix) {
    let n = a.rows();
    if n < 3 {
        return;
    }
    for k in 0..n - 2 {
        let col: Vec<Complex> = (k + 1..n).map(|i| a[(i, k)]).collect();
        let refl = make_reflector(&col);
        if refl.tau == Complex::ZERO {
            continue;
        }
        // Zero out the column explicitly (β lands on the subdiagonal).
        a[(k + 1, k)] = Complex::from_real(refl.beta);
        for i in k + 2..n {
            a[(i, k)] = Complex::ZERO;
        }
        // Similarity transform on the rest: A := H* A H with the reflector
        // acting on rows/cols k+1..n.
        refl.apply_left_adjoint(a, k + 1, k + 1);
        refl.apply_right(a, 0, k + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::eig::eigenvalues;

    fn pseudo_random_complex(n: usize, mut seed: u64) -> CMatrix {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(n, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn result_is_upper_hessenberg() {
        let mut a = pseudo_random_complex(7, 11);
        reduce_to_hessenberg(&mut a);
        for i in 0..7usize {
            for j in 0..i.saturating_sub(1) {
                assert!(
                    a[(i, j)].abs() < 1e-13,
                    "entry ({i},{j}) = {} not annihilated",
                    a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn similarity_preserves_trace() {
        let a = pseudo_random_complex(6, 21);
        let tr_before = a.trace();
        let mut h = a.clone();
        reduce_to_hessenberg(&mut h);
        let tr_after = h.trace();
        assert!((tr_before - tr_after).abs() < 1e-12);
    }

    #[test]
    fn similarity_preserves_spectrum() {
        let a = pseudo_random_complex(5, 31);
        let mut ev_a = eigenvalues(&a).unwrap();
        let mut h = a.clone();
        reduce_to_hessenberg(&mut h);
        let mut ev_h = eigenvalues(&h).unwrap();
        let key = |z: &Complex| (z.re * 1e6).round() as i64;
        ev_a.sort_by_key(key);
        ev_h.sort_by_key(key);
        for (x, y) in ev_a.iter().zip(&ev_h) {
            assert!((*x - *y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn small_matrices_are_untouched() {
        let a = pseudo_random_complex(2, 41);
        let mut h = a.clone();
        reduce_to_hessenberg(&mut h);
        assert!(h.approx_eq(&a, 0.0));
    }
}
