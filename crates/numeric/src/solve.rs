//! High-level solve helpers combining the factorizations.

use crate::error::NumericError;
use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::scalar::Scalar;
use crate::svd::Svd;

/// Solves the square linear system `A X = B` via LU with partial pivoting.
///
/// # Errors
///
/// Returns [`NumericError::NotSquare`] / [`NumericError::Singular`] /
/// [`NumericError::ShapeMismatch`] as appropriate.
///
/// ```
/// use mfti_numeric::{solve, RMatrix};
///
/// # fn main() -> Result<(), mfti_numeric::NumericError> {
/// let a = RMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let b = RMatrix::col_vector(&[3.0, 5.0]);
/// let x = solve(&a, &b)?;
/// assert!((x[(0, 0)] - 0.8).abs() < 1e-12);
/// assert!((x[(1, 0)] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, NumericError> {
    Lu::compute(a)?.solve(b)
}

/// Solves the least-squares problem `min ‖A X − B‖` for general (possibly
/// rank-deficient or underdetermined) `A`.
///
/// Fast path: Householder QR when `A` is tall and full-rank. Falls back to
/// the SVD pseudo-inverse (minimum-norm solution) otherwise, truncating
/// singular values below `rel_tol · s_max`.
///
/// # Errors
///
/// Propagates factorization errors; shape mismatches are reported as
/// [`NumericError::ShapeMismatch`].
pub fn lstsq<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    rel_tol: f64,
) -> Result<Matrix<T>, NumericError> {
    if a.rows() != b.rows() {
        return Err(NumericError::ShapeMismatch {
            op: "lstsq",
            left: a.dims(),
            right: b.dims(),
        });
    }
    if a.rows() >= a.cols() {
        if let Ok(qr) = Qr::compute(a) {
            match qr.solve_least_squares(b) {
                Ok(x) => return Ok(x),
                Err(NumericError::Singular { .. }) => {} // fall through to SVD
                Err(e) => return Err(e),
            }
        }
    }
    let svd = Svd::compute(a)?;
    let x = svd.solve_min_norm(&b.to_complex(), rel_tol)?;
    Ok(x.map(T::from_complex_lossy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::{CMatrix, RMatrix};

    #[test]
    fn solve_square_system() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.0, 1.0)],
            vec![c64(0.0, -1.0), c64(2.0, 0.0)],
        ])
        .unwrap();
        let x_true = CMatrix::col_vector(&[c64(1.0, 1.0), c64(-2.0, 0.5)]);
        let b = a.matmul(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-12));
    }

    #[test]
    fn lstsq_overdetermined_full_rank_uses_qr_path() {
        let a = RMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ])
        .unwrap();
        // Fit y = 1 + 2x exactly.
        let b = RMatrix::col_vector(&[1.0, 3.0, 5.0, 7.0]);
        let x = lstsq(&a, &b, 1e-12).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_rank_deficient_falls_back_to_min_norm() {
        // Columns are parallel: infinitely many minimizers; the SVD picks
        // the minimum-norm one, which splits the weight evenly here.
        let a = RMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let b = RMatrix::col_vector(&[2.0, 2.0]);
        let x = lstsq(&a, &b, 1e-12).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_underdetermined_returns_consistent_solution() {
        let a = RMatrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let b = RMatrix::col_vector(&[14.0]);
        let x = lstsq(&a, &b, 1e-12).unwrap();
        let r = &a.matmul(&x).unwrap() - &b;
        assert!(r.norm_fro() < 1e-10);
        // Minimum-norm solution is proportional to the row: x = (1,2,3).
        assert!((x[(0, 0)] - 1.0).abs() < 1e-10);
        assert!((x[(2, 0)] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let a = RMatrix::zeros(3, 2);
        let b = RMatrix::zeros(2, 1);
        assert!(lstsq(&a, &b, 1e-12).is_err());
        assert!(solve(&RMatrix::identity(2), &RMatrix::zeros(3, 1)).is_err());
    }
}
