use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels in this crate.
///
/// Every fallible public routine returns `Result<_, NumericError>`; the
/// variants identify the mathematical reason a computation could not be
/// completed rather than an implementation detail.
///
/// ```
/// use mfti_numeric::{CMatrix, Lu, NumericError};
///
/// let singular = CMatrix::zeros(2, 2);
/// let err = Lu::compute(&singular).and_then(|lu| lu.inverse()).unwrap_err();
/// assert!(matches!(err, NumericError::Singular { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// Two operands had incompatible dimensions for the requested
    /// operation (e.g. multiplying a `2x3` by a `2x2`).
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// The operation requires a square matrix but was given a rectangular
    /// one.
    NotSquare {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Dimensions of the offending matrix.
        dims: (usize, usize),
    },
    /// A factorization or solve encountered an (numerically) singular
    /// matrix.
    Singular {
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
    /// An iterative algorithm failed to converge within its iteration
    /// budget.
    NoConvergence {
        /// Human-readable name of the algorithm.
        op: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input contained NaN or infinite entries.
    NotFinite {
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
    /// A size or index argument was invalid for the given matrix.
    InvalidArgument {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NumericError::NotSquare { op, dims } => {
                write!(
                    f,
                    "{op} requires a square matrix, got {}x{}",
                    dims.0, dims.1
                )
            }
            NumericError::Singular { op } => write!(f, "matrix is singular in {op}"),
            NumericError::NoConvergence { op, iterations } => {
                write!(f, "{op} did not converge after {iterations} iterations")
            }
            NumericError::NotFinite { op } => {
                write!(f, "input to {op} contains non-finite entries")
            }
            NumericError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NumericError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (2, 2),
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("2x2"));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }

    #[test]
    fn variants_round_trip_through_debug() {
        let e = NumericError::NoConvergence {
            op: "svd",
            iterations: 30,
        };
        assert!(format!("{e:?}").contains("NoConvergence"));
    }
}
