//! Elementary Householder reflectors (LAPACK `zlarfg`/`dlarfg`-style),
//! generic over the scalar.
//!
//! A reflector is stored as `H = I − τ w w*` with `w = [1, v…]`. The
//! generator guarantees a *real* β in `H* x = β e₁`, which is what makes
//! the bidiagonal produced by the SVD front-ends real. For `f64` the
//! conjugations degenerate to copies and the generator is exactly
//! `dlarfg`.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A Householder reflector `H = I − τ w w*` with implicit `w[0] = 1`.
#[derive(Debug, Clone)]
pub(crate) struct Reflector<T> {
    /// Scaling factor τ (zero encodes the identity reflector).
    pub tau: T,
    /// Tail of the Householder vector (`w = [1, v…]`).
    pub v: Vec<T>,
    /// The real value β such that `H* x = β e₁`.
    pub beta: f64,
}

/// Generates a reflector annihilating `x[1..]`:
/// `H* x = β e₁` with β real, `H = I − τ w w*`, `w = [1, v…]`.
///
/// Follows LAPACK `zlarfg` (without the iterative rescaling loop; the
/// matrices in this workspace are pre-scaled by their norms upstream).
pub(crate) fn make_reflector<T: Scalar>(x: &[T]) -> Reflector<T> {
    assert!(!x.is_empty(), "reflector of empty vector");
    let alpha = x[0];
    let xnorm = x[1..].iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
    if xnorm == 0.0 && alpha.im() == 0.0 {
        // Already in the desired form.
        return Reflector {
            tau: T::ZERO,
            v: vec![T::ZERO; x.len() - 1],
            beta: alpha.re(),
        };
    }
    let norm_full = (alpha.abs_sq() + xnorm * xnorm).sqrt();
    let beta = if alpha.re() >= 0.0 {
        -norm_full
    } else {
        norm_full
    };
    let tau = (T::from_f64(beta) - alpha).scale(1.0 / beta);
    let denom = alpha - T::from_f64(beta);
    let v: Vec<T> = x[1..].iter().map(|&z| z / denom).collect();
    Reflector { tau, v, beta }
}

impl<T: Scalar> Reflector<T> {
    /// Applies `H*` from the left to the block `a[row.., col..]`:
    /// `A := (I − conj(τ) w w*) A`.
    pub fn apply_left_adjoint(&self, a: &mut Matrix<T>, row: usize, col: usize) {
        if self.tau == T::ZERO {
            return;
        }
        let m = a.rows();
        let n = a.cols();
        let tau_c = self.tau.conj();
        for j in col..n {
            // s = w^H A[row.., j]
            let mut s = a[(row, j)];
            for (k, &vk) in self.v.iter().enumerate() {
                s += vk.conj() * a[(row + 1 + k, j)];
            }
            debug_assert!(row + 1 + self.v.len() <= m);
            let t = tau_c * s;
            a[(row, j)] -= t;
            for (k, &vk) in self.v.iter().enumerate() {
                let val = a[(row + 1 + k, j)] - t * vk;
                a[(row + 1 + k, j)] = val;
            }
        }
    }

    /// Applies `H` from the left to the block `a[row.., col..]`:
    /// `A := (I − τ w w*) A`. Used when accumulating `Q = H₁H₂…`.
    pub fn apply_left(&self, a: &mut Matrix<T>, row: usize, col: usize) {
        if self.tau == T::ZERO {
            return;
        }
        let n = a.cols();
        for j in col..n {
            let mut s = a[(row, j)];
            for (k, &vk) in self.v.iter().enumerate() {
                s += vk.conj() * a[(row + 1 + k, j)];
            }
            let t = self.tau * s;
            a[(row, j)] -= t;
            for (k, &vk) in self.v.iter().enumerate() {
                let val = a[(row + 1 + k, j)] - t * vk;
                a[(row + 1 + k, j)] = val;
            }
        }
    }

    /// Applies `H = I − τ w w*` from the right to the block
    /// `a[row.., col..]`: `A := A (I − τ w w*)`.
    pub fn apply_right(&self, a: &mut Matrix<T>, row: usize, col: usize) {
        if self.tau == T::ZERO {
            return;
        }
        let m = a.rows();
        for i in row..m {
            // s = A[i, col..] w
            let mut s = a[(i, col)];
            for (k, &vk) in self.v.iter().enumerate() {
                s += a[(i, col + 1 + k)] * vk;
            }
            let t = self.tau * s;
            a[(i, col)] -= t;
            for (k, &vk) in self.v.iter().enumerate() {
                let val = a[(i, col + 1 + k)] - t * vk.conj();
                a[(i, col + 1 + k)] = val;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, Complex};
    use crate::matrix::CMatrix;

    fn reflect_vector(r: &Reflector<Complex>, x: &[Complex]) -> Vec<Complex> {
        // y = (I − conj(τ) w w^H) x with w = [1, v...]
        let mut w = vec![Complex::ONE];
        w.extend_from_slice(&r.v);
        let s: Complex = w.iter().zip(x).map(|(&wi, &xi)| wi.conj() * xi).sum();
        let t = r.tau.conj() * s;
        x.iter().zip(&w).map(|(&xi, &wi)| xi - t * wi).collect()
    }

    #[test]
    fn reflector_annihilates_tail_with_real_beta() {
        let x = vec![c64(1.0, 2.0), c64(-3.0, 0.5), c64(0.25, -1.0)];
        let r = make_reflector(&x);
        let y = reflect_vector(&r, &x);
        assert!(y[0].im.abs() < 1e-14, "beta should be real, got {}", y[0]);
        assert!((y[0].re - r.beta).abs() < 1e-12);
        assert!(y[1].abs() < 1e-14);
        assert!(y[2].abs() < 1e-14);
        // Norm preservation.
        let nx: f64 = x.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        assert!((r.beta.abs() - nx).abs() < 1e-12);
    }

    #[test]
    fn reflector_of_aligned_vector_is_identity() {
        let x = vec![c64(2.0, 0.0), Complex::ZERO];
        let r = make_reflector(&x);
        assert_eq!(r.tau, Complex::ZERO);
        assert_eq!(r.beta, 2.0);
    }

    #[test]
    fn reflector_is_unitary() {
        let x = vec![c64(0.3, -0.7), c64(1.5, 0.2), c64(-0.1, 0.9), c64(0.0, 0.4)];
        let r = make_reflector(&x);
        let n = x.len();
        let mut w = vec![Complex::ONE];
        w.extend_from_slice(&r.v);
        let h = CMatrix::from_fn(n, n, |i, j| {
            let delta = if i == j { Complex::ONE } else { Complex::ZERO };
            delta - r.tau * w[i] * w[j].conj()
        });
        let hh = h.adjoint().matmul(&h).unwrap();
        assert!(hh.approx_eq(&CMatrix::identity(n), 1e-13));
    }

    #[test]
    fn apply_left_adjoint_matches_dense_product() {
        let x = vec![c64(1.0, -1.0), c64(2.0, 0.3), c64(-0.5, 0.8)];
        let r = make_reflector(&x);
        let n = 3;
        let mut w = vec![Complex::ONE];
        w.extend_from_slice(&r.v);
        let h = CMatrix::from_fn(n, n, |i, j| {
            let delta = if i == j { Complex::ONE } else { Complex::ZERO };
            delta - r.tau * w[i] * w[j].conj()
        });
        let a = CMatrix::from_fn(n, 2, |i, j| c64(i as f64 - j as f64, (i * j) as f64));
        let want = h.adjoint().matmul(&a).unwrap();
        let mut got = a.clone();
        r.apply_left_adjoint(&mut got, 0, 0);
        assert!(got.approx_eq(&want, 1e-13));
    }

    #[test]
    fn apply_right_matches_dense_product() {
        let x = vec![c64(0.2, 0.4), c64(1.0, -0.6)];
        let r = make_reflector(&x);
        let n = 2;
        let mut w = vec![Complex::ONE];
        w.extend_from_slice(&r.v);
        let h = CMatrix::from_fn(n, n, |i, j| {
            let delta = if i == j { Complex::ONE } else { Complex::ZERO };
            delta - r.tau * w[i] * w[j].conj()
        });
        let a = CMatrix::from_fn(3, n, |i, j| c64((i + j) as f64, 1.0 - i as f64));
        let want = a.matmul(&h).unwrap();
        let mut got = a.clone();
        r.apply_right(&mut got, 0, 0);
        assert!(got.approx_eq(&want, 1e-13));
    }
}
