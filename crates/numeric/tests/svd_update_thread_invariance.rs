//! Thread-count invariance of the incremental SVD update path —
//! isolated in its own test binary (like `svd_thread_invariance.rs`)
//! because it cycles the process-global `MFTI_THREADS` variable, which
//! sibling tests in a shared binary would race against.
//!
//! The updater's parallel surface is inherited: the seed decomposition
//! runs the blocked backend's fanned trailing update, and every
//! bordered-core re-decomposition plus basis-rotation GEMM routes
//! through the deterministically-chunked kernels. Updated singular
//! values (and retained factors) must be bit-identical at every worker
//! count.

use mfti_numeric::{c64, CMatrix, SvdUpdater};

fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
}

/// Seeds from the leading 128×128 block (the blocked backend's panel
/// path with real fan-out) and absorbs four 8-wide border appends; the
/// dense full-rank stream keeps the retained rank at full size, so the
/// bordered cores are large enough to cross the blocked threshold too.
fn streamed_updater() -> SvdUpdater<mfti_numeric::Complex> {
    let full = pseudo_random_complex(160, 160, 0x5eed_cafe);
    let mut upd = SvdUpdater::new(&full.submatrix(0, 0, 128, 128).expect("seed")).expect("svd");
    let mut dim = 128;
    while dim < 160 {
        upd.append_border(
            &full.submatrix(0, dim, dim, 8).expect("cols"),
            &full.submatrix(dim, 0, 8, dim).expect("rows"),
            &full.submatrix(dim, dim, 8, 8).expect("corner"),
        )
        .expect("append");
        dim += 8;
    }
    upd
}

#[test]
fn updated_singular_values_are_thread_count_invariant() {
    std::env::set_var("MFTI_THREADS", "1");
    let reference = streamed_updater();
    let bits = |m: &CMatrix| -> Vec<(u64, u64)> {
        m.as_slice()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect()
    };
    for threads in ["2", "4", "8"] {
        std::env::set_var("MFTI_THREADS", threads);
        let upd = streamed_updater();
        assert_eq!(
            reference.singular_values(),
            upd.singular_values(),
            "updated σ differ at MFTI_THREADS={threads}"
        );
        assert_eq!(
            bits(reference.left()),
            bits(upd.left()),
            "retained U differs at MFTI_THREADS={threads}"
        );
        assert_eq!(
            bits(reference.right()),
            bits(upd.right()),
            "retained V differs at MFTI_THREADS={threads}"
        );
    }
    std::env::remove_var("MFTI_THREADS");
}
