//! Property tests for the complex Schur decomposition and the shifted
//! triangular solver — the kernels behind Schur-form frequency sweeps.
//!
//! The headline contracts (ISSUE 3): `Z T Zᴴ` reconstruction residual
//! `≤ 1e-10` on random Hessenberg matrices up to `n = 64`, and
//! batch-style shifted solves agreeing with dense LU `≤ 1e-11` even for
//! ill-conditioned shifts parked right next to eigenvalues.

use mfti_numeric::{
    c64, solve, solve_shifted_hessenberg, solve_shifted_triangular, CMatrix, Complex, Hessenberg,
    Schur,
};
use proptest::prelude::*;

/// Strategy: random upper-Hessenberg matrix of order `n_range` with
/// entries in `[-1, 1]²` (strictly-lower part exactly zero).
fn hessenberg_matrix(n_range: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = CMatrix> {
    n_range.prop_flat_map(|n| {
        proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n * n).prop_map(move |v| {
            let full = CMatrix::from_vec(n, n, v.into_iter().map(|(re, im)| c64(re, im)).collect())
                .expect("length matches");
            CMatrix::from_fn(n, n, |i, j| {
                if i > j + 1 {
                    Complex::ZERO
                } else {
                    full[(i, j)]
                }
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schur_reconstructs_random_hessenberg_up_to_n64(h in hessenberg_matrix(1..=64)) {
        let n = h.rows();
        let schur = Schur::compute(&h).unwrap();
        // T exactly triangular.
        for i in 0..n {
            for j in 0..i {
                prop_assert_eq!(schur.t()[(i, j)], Complex::ZERO);
            }
        }
        // Z unitary.
        let ztz = schur.z().adjoint().matmul(schur.z()).unwrap();
        prop_assert!(ztz.approx_eq(&CMatrix::identity(n), 1e-11));
        // Q T Qᴴ reconstruction residual ≤ 1e-10 (relative Frobenius).
        let back = schur
            .z()
            .matmul(schur.t())
            .unwrap()
            .mul_adjoint_right(schur.z())
            .unwrap();
        let rel = (&back - &h).norm_fro() / h.norm_fro().max(f64::MIN_POSITIVE);
        prop_assert!(rel <= 1e-10, "reconstruction residual {:.2e} at n = {}", rel, n);
    }

    #[test]
    fn schur_trace_is_preserved(h in hessenberg_matrix(2..=32)) {
        // Similarity invariant: Σ λᵢ (diagonal of T) equals tr(H).
        let schur = Schur::compute(&h).unwrap();
        let sum: Complex = schur.eigenvalues().into_iter().sum();
        let tr = h.trace();
        prop_assert!((sum - tr).abs() <= 1e-9 * tr.abs().max(1.0), "{} vs {}", sum, tr);
    }

    #[test]
    fn shifted_solves_agree_near_eigenvalues(
        h in hessenberg_matrix(4..=24),
        which in 0usize..24,
        offset_exp in -8.0f64..-3.0,
        dir in 0.0f64..std::f64::consts::TAU,
    ) {
        // Ill-conditioned shift: α = −β·(λ + δ) parks α·I + β·H a
        // distance |δ| ≈ 10^offset_exp from exact singularity at the
        // eigenvalue λ. The Schur-form triangular solve, the Hessenberg
        // Givens solve, and dense LU must all agree to ≤ 1e-11 relative
        // error (scaled by the conditioning they all share).
        let n = h.rows();
        let schur = Schur::compute(&h).unwrap();
        let lambda = schur.eigenvalues()[which % n];
        let delta = Complex::from_polar(10f64.powf(offset_exp), dir);
        let beta = c64(1.3, -0.4);
        let alpha = -(beta * (lambda + delta));

        let b = CMatrix::from_fn(n, 2, |i, j| c64(1.0 / (i + j + 1) as f64, 0.25 * i as f64));

        // Dense reference on the original basis.
        let mut dense = h.map(|z| z * beta);
        for i in 0..n {
            dense[(i, i)] += alpha;
        }
        // δ can land close enough to a *cluster* of eigenvalues that
        // even LU calls it singular — nothing to compare then.
        let Ok(want) = solve(&dense, &b) else {
            return Ok(());
        };
        let x_norm = want.norm_fro().max(f64::MIN_POSITIVE);

        // Schur path: solve in the triangular basis, rotate back.
        let bt = schur.z().mul_hermitian_left(&b).unwrap();
        if let Ok(xt) = solve_shifted_triangular(schur.t(), alpha, beta, &bt) {
            let x = schur.z().matmul(&xt).unwrap();
            let resid = (&dense.matmul(&x).unwrap() - &b).norm_fro();
            // Backward stability: the residual scales with ‖A‖·‖x‖ (and
            // ‖x‖ grows like 1/|δ| this close to an eigenvalue); forward
            // agreement with LU reaches 1e-11 once the shared
            // conditioning is factored out.
            let backward_scale = dense.norm_fro() * x.norm_fro() + b.norm_fro();
            prop_assert!(resid <= 1e-11 * n as f64 * backward_scale, "residual {:.2e}", resid);
            let agree = (&x - &want).norm_fro() / x_norm;
            let cond_slack = 10f64.powf(-offset_exp) * f64::EPSILON * 1e3;
            prop_assert!(
                agree <= 1e-11f64.max(cond_slack),
                "schur vs LU deviation {:.2e} (|δ| = 1e{})", agree, offset_exp
            );
        }

        // Hessenberg path on the same shift for cross-validation.
        let hess = Hessenberg::compute(&h).unwrap();
        let bh = hess.q().mul_hermitian_left(&b).unwrap();
        if let Ok(xh) = solve_shifted_hessenberg(hess.h(), alpha, beta, &bh) {
            let x = hess.q().matmul(&xh).unwrap();
            let resid = (&dense.matmul(&x).unwrap() - &b).norm_fro();
            let backward_scale = dense.norm_fro() * x.norm_fro() + b.norm_fro();
            prop_assert!(resid <= 1e-11 * n as f64 * backward_scale);
        }
    }

    #[test]
    fn triangular_solve_matches_lu_on_well_conditioned_shifts(
        h in hessenberg_matrix(2..=32),
        re in 1.0f64..3.0,
        im in -1.0f64..1.0,
    ) {
        // A shift with |α| comfortably above the spectral radius of βH
        // keeps the system well conditioned; agreement must reach 1e-11.
        let n = h.rows();
        let alpha = c64(4.0 + re * n as f64 / 8.0, im);
        let beta = Complex::ONE;
        let schur = Schur::compute(&h).unwrap();
        let b = CMatrix::from_fn(n, 3, |i, j| c64((i + 1) as f64, (j as f64) - 1.0));
        let bt = schur.z().mul_hermitian_left(&b).unwrap();
        let xt = solve_shifted_triangular(schur.t(), alpha, beta, &bt).unwrap();
        let x = schur.z().matmul(&xt).unwrap();

        let mut dense = h.clone();
        for i in 0..n {
            dense[(i, i)] += alpha;
        }
        let want = solve(&dense, &b).unwrap();
        let rel = (&x - &want).norm_fro() / want.norm_fro().max(f64::MIN_POSITIVE);
        prop_assert!(rel <= 1e-11, "deviation {:.2e}", rel);
    }
}
