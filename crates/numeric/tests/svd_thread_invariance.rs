//! Thread-count invariance of the blocked SVD's parallel trailing
//! update — isolated in its own test binary because it cycles the
//! process-global `MFTI_THREADS` variable, which sibling tests in a
//! shared binary would race against (they read it through
//! `parallel::available_threads` while running concurrently).

use mfti_numeric::{c64, CMatrix, Svd, SvdMethod};

fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
}

#[test]
fn trailing_update_is_thread_count_invariant() {
    // The panel trailing update fans out per column block over
    // `MFTI_THREADS` workers; every bit of the decomposition must be
    // independent of the worker count.
    let a = pseudo_random_complex(160, 120, 0x7a11);
    let reference = {
        std::env::set_var("MFTI_THREADS", "1");
        Svd::compute_with(&a, SvdMethod::Blocked).unwrap()
    };
    for threads in ["2", "3", "5", "8"] {
        std::env::set_var("MFTI_THREADS", threads);
        let svd = Svd::compute_with(&a, SvdMethod::Blocked).unwrap();
        assert_eq!(
            reference.singular_values(),
            svd.singular_values(),
            "singular values differ at MFTI_THREADS={threads}"
        );
        let bits = |m: &CMatrix| -> Vec<(u64, u64)> {
            m.as_slice()
                .iter()
                .map(|z| (z.re.to_bits(), z.im.to_bits()))
                .collect()
        };
        assert_eq!(
            bits(reference.u()),
            bits(svd.u()),
            "U differs at MFTI_THREADS={threads}"
        );
        assert_eq!(
            bits(reference.v()),
            bits(svd.v()),
            "V differs at MFTI_THREADS={threads}"
        );
    }
    std::env::remove_var("MFTI_THREADS");
}
