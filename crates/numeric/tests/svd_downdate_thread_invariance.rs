//! Thread-count invariance of the SVD downdate path — isolated in its
//! own test binary (like `svd_update_thread_invariance.rs`) because it
//! cycles the process-global `MFTI_THREADS` variable, which sibling
//! tests in a shared binary would race against.
//!
//! The downdate's parallel surface: the QR factorizations of the
//! row-deleted bases, the column-scaled core product, the core's native
//! re-decomposition and both basis-rotation GEMMs all route through the
//! deterministically-chunked kernels, so a slid window must report
//! bit-identical singular values and retained factors at every worker
//! count — the windowed session's determinism contract rests on this.

use mfti_numeric::{c64, CMatrix, SvdUpdater};

fn low_rank_stream(dim: usize, rank: usize, mut seed: u64) -> CMatrix {
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    let l = CMatrix::from_fn(dim, rank, |_, _| c64(next(), next()));
    let r = CMatrix::from_fn(rank, dim, |_, _| c64(next(), next()));
    l.matmul(&r).expect("generator product")
}

/// Seeds on a 144×144 leading window of a rank-20 stream (large enough
/// for the blocked backend's fanned panel path), then slides: four
/// rounds of downdate-8 / append-8 along the diagonal.
fn slid_updater() -> SvdUpdater<mfti_numeric::Complex> {
    let full = low_rank_stream(176, 20, 0xD0DA_CAFE);
    let w = 144;
    let mut upd =
        SvdUpdater::new(&full.submatrix(0, 0, w, w).expect("seed window")).expect("seed svd");
    let mut off = 0;
    while off + w + 8 <= 176 {
        upd.downdate_leading(8, 8).expect("downdate");
        let (dim, end) = (w - 8, off + w);
        off += 8;
        upd.append_border(
            &full.submatrix(off, end, dim, 8).expect("cols"),
            &full.submatrix(end, off, 8, dim).expect("rows"),
            &full.submatrix(end, end, 8, 8).expect("corner"),
        )
        .expect("append");
    }
    upd
}

#[test]
fn downdated_factorizations_are_thread_count_invariant() {
    std::env::set_var("MFTI_THREADS", "1");
    let reference = slid_updater();
    let bits = |m: &CMatrix| -> Vec<(u64, u64)> {
        m.as_slice()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect()
    };
    for threads in ["2", "4", "8"] {
        std::env::set_var("MFTI_THREADS", threads);
        let upd = slid_updater();
        assert_eq!(
            reference.singular_values(),
            upd.singular_values(),
            "slid-window σ differ at MFTI_THREADS={threads}"
        );
        assert_eq!(
            bits(reference.left()),
            bits(upd.left()),
            "retained U differs at MFTI_THREADS={threads}"
        );
        assert_eq!(
            bits(reference.right()),
            bits(upd.right()),
            "retained V differs at MFTI_THREADS={threads}"
        );
    }
    std::env::remove_var("MFTI_THREADS");
}
