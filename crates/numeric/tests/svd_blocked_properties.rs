//! Property suite for the panel-blocked SVD backend: reconstruction,
//! orthonormality, oracle agreement against the rank-1 Golub–Kahan
//! reference, rank decisions at order-selection tolerances and partial
//! factors. (Thread-count invariance lives in its own binary,
//! `svd_thread_invariance.rs`, because it toggles the process-global
//! `MFTI_THREADS` variable.)

use mfti_numeric::{c64, CMatrix, Svd, SvdFactors, SvdMethod};

fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    CMatrix::from_fn(m, n, |_, _| c64(next(), next()))
}

/// A matrix with prescribed singular values: `Q₁ · diag(s) · Q₂ᴴ` with
/// `Q`s from the QR of random matrices.
fn with_singular_values(m: usize, n: usize, s: &[f64], seed: u64) -> CMatrix {
    let q1 = mfti_numeric::Qr::compute(&pseudo_random_complex(m, m, seed))
        .unwrap()
        .q_thin();
    let q2 = mfti_numeric::Qr::compute(&pseudo_random_complex(n, n, seed ^ 0xabcd))
        .unwrap()
        .q_thin();
    let mut core = CMatrix::zeros(m, n);
    for (i, &sv) in s.iter().enumerate() {
        core[(i, i)] = c64(sv, 0.0);
    }
    q1.matmul(&core).unwrap().mul_adjoint_right(&q2).unwrap()
}

fn check_svd(a: &CMatrix, svd: &Svd, tol: f64) {
    let r = a.rows().min(a.cols());
    // Descending non-negative values.
    for w in svd.singular_values().windows(2) {
        assert!(w[0] >= w[1] - 1e-12, "not sorted");
    }
    assert!(svd.singular_values().iter().all(|&x| x >= 0.0));
    // Reconstruction.
    let err = (&svd.reconstruct() - a).norm_fro();
    assert!(
        err <= tol * a.norm_fro().max(1.0),
        "reconstruction error {err:.3e} at {:?}",
        a.dims()
    );
    // Orthonormality of both factors.
    for f in [svd.u(), svd.v()] {
        let fhf = f.adjoint().matmul(f).unwrap();
        assert!(
            fhf.approx_eq(&CMatrix::identity(r), 1e-10),
            "factor not orthonormal at {:?}",
            a.dims()
        );
    }
}

#[test]
fn blocked_reconstruction_to_n96() {
    // Square, tall and just-above-threshold shapes up to n = 96, well
    // inside the acceptance budget of 1e-10.
    for &(m, n) in &[
        (48, 48),
        (50, 49),
        (64, 64),
        (96, 96),
        (96, 64),
        (128, 96),
        (192, 96),
        (96, 128), // wide: exercises the adjoint dispatch
    ] {
        let a = pseudo_random_complex(m, n, (m * 131 + n) as u64);
        let svd = Svd::compute_with(&a, SvdMethod::Blocked).unwrap();
        check_svd(&a, &svd, 1e-11);
    }
}

#[test]
fn blocked_agrees_with_golub_kahan_oracle() {
    for &(m, n) in &[(64, 64), (96, 96), (160, 96), (96, 80)] {
        let a = pseudo_random_complex(m, n, (m * 7 + n * 3) as u64);
        let bl = Svd::compute_with(&a, SvdMethod::Blocked).unwrap();
        let gk = Svd::compute_with(&a, SvdMethod::GolubKahan).unwrap();
        let smax = gk.singular_values()[0];
        for (x, y) in bl.singular_values().iter().zip(gk.singular_values()) {
            assert!(
                (x - y).abs() < 1e-12 * smax,
                "σ deviates from the oracle: {x} vs {y}"
            );
        }
    }
}

#[test]
fn rank_decisions_match_the_oracle_at_order_selection_tolerances() {
    // Graded spectra with deliberate gaps at the magnitudes order
    // selection probes (1e-12 threshold, noise-floor factors): both
    // backends must cut at identical ranks for every tolerance.
    let spectra: Vec<Vec<f64>> = vec![
        // Clean gap: order-10 system in a K = 64 pencil.
        (0..64)
            .map(|i| if i < 10 { 10.0 / (1 + i) as f64 } else { 1e-13 })
            .collect(),
        // Noise floor at 1e-6 under a 20-value signal.
        (0..72)
            .map(|i| {
                if i < 20 {
                    (20 - i) as f64
                } else {
                    1e-6 * (1.0 + (i as f64 * 0.37).sin().abs())
                }
            })
            .collect(),
        // Gradual decay with no gap (the hard case).
        (0..56i32).map(|i| 0.5f64.powi(i / 2)).collect(),
    ];
    for (case, sv) in spectra.iter().enumerate() {
        let n = sv.len();
        let a = with_singular_values(n + 16, n, sv, 0x5eed + case as u64);
        let bl = Svd::compute_factors(&a, SvdMethod::Blocked, SvdFactors::ValuesOnly).unwrap();
        let gk = Svd::compute_factors(&a, SvdMethod::GolubKahan, SvdFactors::ValuesOnly).unwrap();
        // Tolerances sit *between* spectrum values, never on one: a cut
        // that lands exactly on a σ would test which backend rounds a
        // boundary value by one ulp, not the rank decision itself.
        for tol in [1e-15, 1e-12, 1e-9, 1e-6, 1e-3, 0.27] {
            assert_eq!(
                bl.rank(tol),
                gk.rank(tol),
                "case {case}: rank decision differs at tol {tol:e}"
            );
        }
    }
}

#[test]
fn partial_factors_match_the_full_run_bit_for_bit() {
    for &(m, n) in &[(64, 64), (128, 96)] {
        let a = pseudo_random_complex(m, n, (m + n) as u64);
        let full = Svd::compute_with(&a, SvdMethod::Blocked).unwrap();
        let left = Svd::compute_factors(&a, SvdMethod::Blocked, SvdFactors::Left).unwrap();
        let right = Svd::compute_factors(&a, SvdMethod::Blocked, SvdFactors::Right).unwrap();
        let vals = Svd::compute_factors(&a, SvdMethod::Blocked, SvdFactors::ValuesOnly).unwrap();
        for s in [
            left.singular_values(),
            right.singular_values(),
            vals.singular_values(),
        ] {
            assert_eq!(full.singular_values(), s, "values must be bit-identical");
        }
        assert!(left.u().approx_eq(full.u(), 0.0), "left factor drifted");
        assert!(right.v().approx_eq(full.v(), 0.0), "right factor drifted");
        assert!(left.v().is_empty() && right.u().is_empty() && vals.u().is_empty());
    }
}

#[test]
fn values_only_solves_rank_queries_of_wide_inputs() {
    // Wide + ValuesOnly goes through the adjoint swap with both factor
    // requests remapped; rank must match the tall case.
    let sv: Vec<f64> = (0..60).map(|i| if i < 13 { 2.0 } else { 0.0 }).collect();
    let a = with_singular_values(60, 60, &sv, 99);
    let wide = a.submatrix(0, 0, 48, 60).unwrap();
    let svd = Svd::compute_factors(&wide, SvdMethod::Blocked, SvdFactors::ValuesOnly).unwrap();
    assert_eq!(svd.rank(1e-10), 13);
}

#[test]
fn real_inputs_run_the_real_panel_path() {
    // The blocked backend is scalar-generic: a real matrix never gets
    // promoted to complex on the way in (the realification hands the
    // realization stage exactly this case). Reconstruction, oracle
    // agreement and factor realness all must hold.
    use mfti_numeric::RMatrix;
    let mut seed = 0xdeadu64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    for &(m, n) in &[(96, 96), (192, 96), (64, 128)] {
        let a = RMatrix::from_fn(m, n, |_, _| next());
        let bl = Svd::compute_with(&a, SvdMethod::Blocked).unwrap();
        let gk = Svd::compute_with(&a, SvdMethod::GolubKahan).unwrap();
        let smax = gk.singular_values()[0];
        for (x, y) in bl.singular_values().iter().zip(gk.singular_values()) {
            assert!(
                (x - y).abs() < 1e-12 * smax,
                "({m},{n}): σ deviates from oracle"
            );
        }
        let err = (&bl.reconstruct() - &a.to_complex()).norm_fro();
        assert!(
            err < 1e-11 * a.norm_fro(),
            "({m},{n}): reconstruction error {err:.3e}"
        );
        // Real input ⇒ exactly real factors (the computation never
        // leaves real arithmetic, so this is equality, not tolerance).
        assert!(bl.u().iter().all(|z| z.im == 0.0), "U has imaginary dust");
        assert!(bl.v().iter().all(|z| z.im == 0.0), "V has imaginary dust");
    }
}

#[test]
fn jacobi_cross_check_on_a_blocked_size() {
    // Structurally unrelated backend at a panel-path size: agreement to
    // a loose common tolerance guards against systematic bias.
    let a = pseudo_random_complex(72, 64, 4242);
    let bl = Svd::compute_with(&a, SvdMethod::Blocked).unwrap();
    let ja = Svd::compute_with(&a, SvdMethod::Jacobi).unwrap();
    let smax = bl.singular_values()[0];
    for (x, y) in bl.singular_values().iter().zip(ja.singular_values()) {
        assert!((x - y).abs() < 1e-9 * smax);
    }
}
