//! Property suite for [`SvdUpdater::downdate_leading`] (DESIGN.md §9):
//! across synthetic spectra (gapped / noise-floor / gapless), stream
//! shapes (square complex, wide complex, square real) and eviction
//! patterns (oldest-first singles, one batch, alternating
//! downdate/update), the downdated factorization must agree with a
//! fresh decomposition of the surviving window — singular values to
//! `1e-10 · σ₁` and **identical rank decisions** — because the window
//! session feeds these values straight into order detection.
//!
//! The streams are deliberately rank-deficient (rank ≪ window): the
//! downdate is only defined when the retained rank fits the shrunken
//! window, which is exactly the Loewner-pencil regime it serves.

use mfti_numeric::{c64, CMatrix, Matrix, RMatrix, Scalar, SvdUpdater};

/// Deterministic xorshift stream in [-1, 1].
fn xorshift(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    }
}

/// Synthetic spectrum classes the order-detection signal meets.
fn spectrum(kind: &str, r: usize) -> Vec<f64> {
    (0..r)
        .map(|i| match kind {
            // A clean three-decade tier drop mid-spectrum: the shape
            // rank decisions key on.
            "gapped" => {
                if i < r / 2 {
                    1.0 / (1.0 + i as f64)
                } else {
                    1e-3 / (1.0 + i as f64)
                }
            }
            // A head of signal over a flat cluster near a noise floor.
            "noise-floor" => {
                if i < 3 {
                    1.0 / (1.0 + i as f64)
                } else {
                    1e-7 * (1.0 + 0.01 * i as f64)
                }
            }
            // Smooth geometric decay, no gap to latch onto.
            "gapless" => 0.5_f64.powi(i as i32),
            _ => unreachable!(),
        })
        .collect()
}

/// Rank-`s.len()` stream `A = L · diag(s) · R` with the given spectrum
/// shape (the generators are generic random, so the realized singular
/// values only approximate `s` — irrelevant here, both sides of every
/// comparison factor the *same* matrix).
fn low_rank<T: Scalar>(
    m: usize,
    n: usize,
    s: &[f64],
    seed: u64,
    entry: impl Fn(&mut dyn FnMut() -> f64) -> T,
) -> Matrix<T> {
    let mut rng = xorshift(seed);
    let r = s.len();
    let l = Matrix::<T>::from_fn(m, r, |_, _| entry(&mut rng));
    let mut rt = Matrix::<T>::from_fn(r, n, |_, _| entry(&mut rng));
    for i in 0..r {
        for j in 0..n {
            rt[(i, j)] *= T::from_f64(s[i]);
        }
    }
    l.matmul(&rt).expect("generator product")
}

fn complex_stream(m: usize, n: usize, s: &[f64], seed: u64) -> CMatrix {
    low_rank(m, n, s, seed, |rng| c64(rng(), rng()))
}

fn real_stream(m: usize, n: usize, s: &[f64], seed: u64) -> RMatrix {
    low_rank(m, n, s, seed, |rng| rng())
}

/// Rank decision at the session's order-detection style threshold.
fn rank_at(sv: &[f64], rel: f64) -> usize {
    let sigma1 = sv.first().copied().unwrap_or(0.0);
    sv.iter().filter(|&&s| s > rel * sigma1).count()
}

/// Asserts the downdated updater agrees with a fresh decomposition of
/// the same surviving window: σ to `1e-10 · σ₁`, identical rank
/// decisions at both a coarse and a strict threshold.
fn assert_matches_fresh<T: Scalar>(down: &SvdUpdater<T>, window: &Matrix<T>, label: &str) {
    let fresh = SvdUpdater::new(window).expect("fresh window decomposition");
    let (sd, sf) = (down.singular_values(), fresh.singular_values());
    let sigma1 = sf[0];
    let common = sd.len().min(sf.len());
    for (i, (d, f)) in sd[..common].iter().zip(&sf[..common]).enumerate() {
        assert!(
            (d - f).abs() <= 1e-10 * sigma1,
            "{label}: σ_{i} drifted: downdated {d:e} vs fresh {f:e}"
        );
    }
    // Values beyond the common prefix sit at the truncation floor on
    // either side; they must not carry rank.
    for &s in sd[common..].iter().chain(&sf[common..]) {
        assert!(
            s <= 1e-10 * sigma1,
            "{label}: tail value {s:e} carries rank"
        );
    }
    for rel in [1e-6, 1e-9] {
        assert_eq!(
            rank_at(sd, rel),
            rank_at(sf, rel),
            "{label}: rank decision at {rel:e} diverged"
        );
    }
}

/// Oldest-first: evict leading rows/cols two at a time.
fn oldest_first<T: Scalar>(a: &Matrix<T>, steps: usize, label: &str) {
    let mut upd = SvdUpdater::new(a).expect("seed");
    for step in 1..=steps {
        upd.downdate_leading(2, 2).expect("single eviction");
        let window = a
            .submatrix(2 * step, 2 * step, a.rows() - 2 * step, a.cols() - 2 * step)
            .expect("window");
        assert_matches_fresh(&upd, &window, &format!("{label}/oldest-first step {step}"));
    }
}

/// Batch: one eviction of the same total size.
fn batch<T: Scalar>(a: &Matrix<T>, k: usize, label: &str) {
    let mut upd = SvdUpdater::new(a).expect("seed");
    upd.downdate_leading(k, k).expect("batch eviction");
    let window = a
        .submatrix(k, k, a.rows() - k, a.cols() - k)
        .expect("window");
    assert_matches_fresh(&upd, &window, &format!("{label}/batch {k}"));
}

/// Alternating: slide a window down the diagonal of a larger stream —
/// downdate the expired leading border, absorb the fresh trailing
/// border, verify against a fresh decomposition at every step. This is
/// the session's steady-state access pattern.
fn alternating<T: Scalar>(full: &Matrix<T>, w: usize, step: usize, label: &str) {
    let mut upd = SvdUpdater::new(&full.submatrix(0, 0, w, w).expect("seed window")).expect("seed");
    let mut off = 0;
    while off + w + step <= full.rows().min(full.cols()) {
        upd.downdate_leading(step, step).expect("slide eviction");
        let (dim, end) = (w - step, off + w);
        off += step;
        upd.append_border(
            &full.submatrix(off, end, dim, step).expect("cols"),
            &full.submatrix(end, off, step, dim).expect("rows"),
            &full.submatrix(end, end, step, step).expect("corner"),
        )
        .expect("slide append");
        let window = full.submatrix(off, off, w, w).expect("window");
        assert_matches_fresh(&upd, &window, &format!("{label}/alternating offset {off}"));
    }
}

#[test]
fn square_complex_streams_downdate_to_the_fresh_window() {
    for kind in ["gapped", "noise-floor", "gapless"] {
        let s = spectrum(kind, 8);
        let a = complex_stream(32, 32, &s, 0xD0D0_0001);
        oldest_first(&a, 4, &format!("square/{kind}"));
        batch(&a, 8, &format!("square/{kind}"));
    }
}

#[test]
fn wide_complex_streams_downdate_to_the_fresh_window() {
    // rows < cols exercises the adjoint-swapped native factorization
    // underneath the downdate's core re-decomposition.
    for kind in ["gapped", "noise-floor", "gapless"] {
        let s = spectrum(kind, 6);
        let a = complex_stream(24, 36, &s, 0xD0D0_0002);
        oldest_first(&a, 4, &format!("wide/{kind}"));
        batch(&a, 8, &format!("wide/{kind}"));
    }
}

#[test]
fn real_streams_downdate_to_the_fresh_window() {
    for kind in ["gapped", "noise-floor", "gapless"] {
        let s = spectrum(kind, 8);
        let a = real_stream(32, 32, &s, 0xD0D0_0003);
        oldest_first(&a, 4, &format!("real/{kind}"));
        batch(&a, 8, &format!("real/{kind}"));
    }
}

#[test]
fn sliding_windows_alternate_downdates_and_updates() {
    for kind in ["gapped", "noise-floor", "gapless"] {
        let s = spectrum(kind, 8);
        alternating(
            &complex_stream(56, 56, &s, 0xD0D0_0004),
            32,
            4,
            &format!("square/{kind}"),
        );
        alternating(
            &real_stream(56, 56, &s, 0xD0D0_0005),
            32,
            4,
            &format!("real/{kind}"),
        );
    }
}

#[test]
fn asymmetric_evictions_match_the_asymmetric_window() {
    // Row/column eviction counts need not match (a wide stream evicts
    // more columns than rows).
    let s = spectrum("gapped", 6);
    let a = complex_stream(28, 40, &s, 0xD0D0_0006);
    let mut upd = SvdUpdater::new(&a).expect("seed");
    upd.downdate_leading(2, 8).expect("asymmetric eviction");
    let window = a.submatrix(2, 8, 26, 32).expect("window");
    assert_matches_fresh(&upd, &window, "wide/gapped/asymmetric");
}
