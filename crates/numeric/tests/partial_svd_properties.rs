//! Property suite for the lazy two-phase SVD ([`Svd::bidiagonalize`] /
//! [`PartialSvd`]): the headline contract is that **rank-limited
//! accumulation is bit-identical to the leading `r` columns of a
//! full-rank accumulation** — across square/tall/wide shapes, real and
//! complex scalars, and every [`SvdFactors`] combination — plus the
//! usual reconstruction/orthonormality/value-agreement checks against
//! the one-shot backends. (Thread-count invariance of the realize paths
//! lives in the `realize_smoke` digest wired into `scripts/verify.sh`.)

use mfti_numeric::{c64, CMatrix, Matrix, RMatrix, Scalar, Svd, SvdFactors};

fn xorshift(seed: &mut u64) -> f64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    (*seed as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn pseudo_random_complex(m: usize, n: usize, mut seed: u64) -> CMatrix {
    CMatrix::from_fn(m, n, |_, _| {
        let re = xorshift(&mut seed);
        c64(re, xorshift(&mut seed))
    })
}

fn pseudo_random_real(m: usize, n: usize, mut seed: u64) -> RMatrix {
    RMatrix::from_fn(m, n, |_, _| xorshift(&mut seed))
}

/// The shapes the realization stage produces: square shifted pencils,
/// the wide row stack `[𝕃 σ𝕃]`, the tall column stack `[𝕃; σ𝕃]`, plus
/// sub-panel sizes that exercise the `n < NB` edge. The 2:1 stacks
/// (96, 40) / (40, 96) cross the QR-first (R-bidiagonalization)
/// threshold in both orientations.
const SHAPES: &[(usize, usize)] = &[
    (64, 64),
    (96, 64),
    (64, 96),
    (96, 40),
    (40, 96),
    (40, 40),
    (12, 9),
    (9, 12),
];

/// Every leading rank `r`: `accumulate(factors, r)` must return exactly
/// columns `0..r` of `accumulate(factors, min(m, n))` — same bits.
fn assert_rank_limited_is_exact_truncation<T: Scalar>(a: &Matrix<T>, label: &str) {
    let partial = Svd::bidiagonalize(a).unwrap();
    let rmax = a.rows().min(a.cols());
    for factors in [
        SvdFactors::Both,
        SvdFactors::Left,
        SvdFactors::Right,
        SvdFactors::ValuesOnly,
    ] {
        let (u_full, v_full) = partial.accumulate(factors, rmax).unwrap();
        for r in [1, rmax / 3, rmax / 2, rmax - 1, rmax] {
            let r = r.clamp(1, rmax);
            let (u_r, v_r) = partial.accumulate(factors, r).unwrap();
            for (full, part, want) in [
                (&u_full, &u_r, factors.left_requested()),
                (&v_full, &v_r, factors.right_requested()),
            ] {
                if !want {
                    assert!(part.is_empty(), "{label}: skipped factor materialized");
                    continue;
                }
                assert_eq!(part.cols(), r, "{label}: wrong truncation width");
                let lead = full.select_cols(&(0..r).collect::<Vec<_>>()).unwrap();
                assert!(
                    part.approx_eq(&lead, 0.0),
                    "{label}: rank-{r} accumulation is not bit-identical to \
                     the leading columns of the rank-{rmax} run ({factors:?})"
                );
            }
        }
    }
}

/// `SvdFactors` helpers are crate-private; mirror them for the test.
trait FactorsExt {
    fn left_requested(&self) -> bool;
    fn right_requested(&self) -> bool;
}

impl FactorsExt for SvdFactors {
    fn left_requested(&self) -> bool {
        matches!(self, SvdFactors::Both | SvdFactors::Left)
    }
    fn right_requested(&self) -> bool {
        matches!(self, SvdFactors::Both | SvdFactors::Right)
    }
}

#[test]
fn rank_limited_accumulation_is_bit_identical_complex() {
    for &(m, n) in SHAPES {
        let a = pseudo_random_complex(m, n, (m * 131 + n) as u64);
        assert_rank_limited_is_exact_truncation(&a, &format!("complex {m}x{n}"));
    }
}

#[test]
fn rank_limited_accumulation_is_bit_identical_real() {
    for &(m, n) in SHAPES {
        let a = pseudo_random_real(m, n, (m * 257 + n) as u64);
        assert_rank_limited_is_exact_truncation(&a, &format!("real {m}x{n}"));
    }
}

#[test]
fn repeated_accumulations_match_a_fresh_instance_bitwise() {
    // The replayed compact rotation factors are cached per side after
    // the first accumulation; the cache must be invisible — any later
    // request (same or different rank, same or both sides) returns the
    // bits a cold `PartialSvd` would.
    for &(m, n) in &[(64, 48), (48, 64), (40, 40), (97, 40)] {
        let a = pseudo_random_complex(m, n, (m * 389 + n) as u64);
        let warm = Svd::bidiagonalize(&a).unwrap();
        let r = m.min(n) / 2;
        let _ = warm.accumulate_u(m.min(n)).unwrap(); // populate the U cache
        let _ = warm.accumulate_v(r).unwrap(); // populate the V cache
        let (wu, wv) = warm.accumulate(SvdFactors::Both, r).unwrap();
        let cold = Svd::bidiagonalize(&a).unwrap();
        let (cu, cv) = cold.accumulate(SvdFactors::Both, r).unwrap();
        assert_eq!(wu.dims(), cu.dims(), "{m}x{n}");
        assert_eq!(wv.dims(), cv.dims(), "{m}x{n}");
        for i in 0..cu.rows() {
            assert_eq!(wu.row(i), cu.row(i), "warm U row {i} drifted ({m}x{n})");
        }
        for i in 0..cv.rows() {
            assert_eq!(wv.row(i), cv.row(i), "warm V row {i} drifted ({m}x{n})");
        }
    }
}

#[test]
fn values_are_bit_identical_across_factor_requests() {
    // The eager values and every accumulation replay see the same
    // rotation stream; `singular_values()` is the single source.
    let a = pseudo_random_complex(72, 60, 9);
    let partial = Svd::bidiagonalize(&a).unwrap();
    let fresh = Svd::singular_values_of(&a).unwrap();
    for (x, y) in partial.singular_values().iter().zip(&fresh) {
        assert!(
            (x - y).abs() <= 1e-12 * fresh[0],
            "values drifted from the one-shot backend: {x} vs {y}"
        );
    }
}

#[test]
fn truncated_factors_reconstruct_and_stay_orthonormal() {
    for &(m, n) in &[(64, 48), (48, 64), (96, 40), (40, 96), (30, 30)] {
        let a = pseudo_random_complex(m, n, (m * 7 + n) as u64);
        let partial = Svd::bidiagonalize(&a).unwrap();
        let rmax = m.min(n);
        let s = partial.singular_values().to_vec();
        for r in [rmax / 2, rmax] {
            let (u, v) = partial.accumulate(SvdFactors::Both, r).unwrap();
            // Orthonormal columns.
            for f in [&u, &v] {
                let fhf = f.adjoint().matmul(f).unwrap();
                assert!(
                    fhf.approx_eq(&CMatrix::identity(r), 1e-10),
                    "factor not orthonormal at ({m},{n}) r={r}"
                );
            }
            // U_r Σ_r V_r* is the best rank-r approximation: its error is
            // σ_{r+1}-sized (0 at full rank).
            let mut us = u.clone();
            for j in 0..r {
                for i in 0..m {
                    us[(i, j)] = us[(i, j)].scale(s[j]);
                }
            }
            let err = (&us.mul_adjoint_right(&v).unwrap() - &a).norm_fro();
            let bound = if r == rmax {
                1e-12 * a.norm_fro()
            } else {
                // ‖A − A_r‖_F ≤ √(Σ_{i>r} σᵢ²) + roundoff.
                let tail: f64 = s[r..].iter().map(|x| x * x).sum::<f64>().sqrt();
                tail + 1e-12 * a.norm_fro()
            };
            assert!(
                err <= bound * (1.0 + 1e-10),
                "({m},{n}) r={r}: truncation error {err:.3e} exceeds {bound:.3e}"
            );
        }
    }
}

#[test]
fn real_input_accumulates_real_factors_matching_complex_promotion() {
    // The scalar-generic path: a real matrix must produce (bitwise) the
    // same factors whether accumulated natively or through the complex
    // embedding of the same input.
    let a = pseudo_random_real(56, 40, 77);
    let ac = a.to_complex();
    let (ur, vr) = Svd::bidiagonalize(&a)
        .unwrap()
        .accumulate(SvdFactors::Both, 17)
        .unwrap();
    let (uc, vc) = Svd::bidiagonalize(&ac)
        .unwrap()
        .accumulate(SvdFactors::Both, 17)
        .unwrap();
    assert!(ur.to_complex().approx_eq(&uc, 1e-13));
    assert!(vr.to_complex().approx_eq(&vc, 1e-13));
}

#[test]
fn rank_query_matches_the_one_shot_backend() {
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut s: Vec<f64> = (0..20).map(|i| 10.0f64.powi(-i / 2)).collect();
    s[12..].iter_mut().for_each(|x| *x *= 1e-9);
    let q1 = mfti_numeric::Qr::compute(&pseudo_random_complex(24, 24, seed))
        .unwrap()
        .q_thin();
    seed ^= 0xabcd;
    let q2 = mfti_numeric::Qr::compute(&pseudo_random_complex(20, 20, seed))
        .unwrap()
        .q_thin();
    let mut core = CMatrix::zeros(24, 20);
    for (i, &sv) in s.iter().enumerate() {
        core[(i, i)] = c64(sv, 0.0);
    }
    let a = q1.matmul(&core).unwrap().mul_adjoint_right(&q2).unwrap();
    let partial = Svd::bidiagonalize(&a).unwrap();
    let svd = Svd::compute(&a).unwrap();
    for tol in [1e-3, 1e-6, 1e-10] {
        assert_eq!(partial.rank(tol), svd.rank(tol), "rank mismatch at {tol}");
    }
}
