//! Property-based tests for the cache-blocked kernel layer.
//!
//! Every fused product form must agree with the naive per-element
//! reference ([`mfti_numeric::kernel::mul_naive`]) to near machine
//! precision across random rectangular shapes — including degenerate
//! `0×n` / `n×0` / inner-dimension-zero edges, which the generators
//! below produce with positive probability.

use mfti_numeric::kernel;
use mfti_numeric::{c64, CMatrix, Complex, RMatrix};
use proptest::prelude::*;

/// Strategy: complex matrix with entries in `[-1, 1]²`; dimensions may
/// be zero (degenerate shapes are the classic blocked-kernel bug nest).
fn cmatrix(
    rows: std::ops::RangeInclusive<usize>,
    cols: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = CMatrix> {
    (rows, cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), m * n).prop_map(move |v| {
            CMatrix::from_vec(m, n, v.into_iter().map(|(re, im)| c64(re, im)).collect())
                .expect("length matches")
        })
    })
}

/// Paired shapes `(A: m×k, B: k×n)` for product tests, `k` shared.
fn product_pair() -> impl Strategy<Value = (CMatrix, CMatrix)> {
    (0usize..=40, 0usize..=70, 0usize..=40)
        .prop_flat_map(|(m, k, n)| (cmatrix(m..=m, k..=k), cmatrix(k..=k, n..=n)))
}

/// Agreement tolerance: the blocked kernel sums in a different order
/// than the naive reference, so allow roundoff proportional to the
/// contraction length.
fn tol(k: usize) -> f64 {
    1e-13 * (k as f64).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_mul_matches_naive((a, b) in product_pair()) {
        let fast = kernel::mul(&a, &b).unwrap();
        let slow = kernel::mul_naive(&a, &b).unwrap();
        prop_assert_eq!(fast.dims(), slow.dims());
        prop_assert!(fast.approx_eq(&slow, tol(a.cols())));
    }

    #[test]
    fn hermitian_left_matches_naive_adjoint(
        a in cmatrix(0..=40, 0..=24),
        b_cols in 0usize..=24,
    ) {
        // Shared leading dimension: Aᴴ·B requires a.rows == b.rows.
        let k = a.rows();
        let b = CMatrix::from_fn(k, b_cols, |i, j| {
            c64((i as f64 * 1.3 + j as f64).sin(), (i as f64 - 0.7 * j as f64).cos())
        });
        let fused = kernel::mul_hermitian_left(&a, &b).unwrap();
        let reference = kernel::mul_naive(&a.adjoint(), &b).unwrap();
        prop_assert_eq!(fused.dims(), (a.cols(), b_cols));
        prop_assert!(fused.approx_eq(&reference, tol(k)));
    }

    #[test]
    fn transpose_right_matches_naive_transpose(
        a in cmatrix(0..=40, 0..=24),
        b_rows in 0usize..=24,
    ) {
        // Shared trailing dimension: A·Bᵀ requires a.cols == b.cols.
        let k = a.cols();
        let b = CMatrix::from_fn(b_rows, k, |i, j| {
            c64((i as f64 + 2.1 * j as f64).cos(), (0.5 * i as f64 - j as f64).sin())
        });
        let fused = kernel::mul_transpose_right(&a, &b).unwrap();
        let reference = kernel::mul_naive(&a, &b.transpose()).unwrap();
        prop_assert_eq!(fused.dims(), (a.rows(), b_rows));
        prop_assert!(fused.approx_eq(&reference, tol(k)));
    }

    #[test]
    fn adjoint_right_matches_naive_adjoint(
        a in cmatrix(0..=30, 0..=20),
        b_rows in 0usize..=20,
    ) {
        let k = a.cols();
        let b = CMatrix::from_fn(b_rows, k, |i, j| {
            c64((1.7 * i as f64 - j as f64).sin(), (i as f64 * j as f64 * 0.13).cos())
        });
        let fused = kernel::mul_adjoint_right(&a, &b).unwrap();
        let reference = kernel::mul_naive(&a, &b.adjoint()).unwrap();
        prop_assert!(fused.approx_eq(&reference, tol(k)));
    }

    #[test]
    fn accumulate_scaled_matches_unfused(
        (a, b) in product_pair(),
        alpha_re in -2.0f64..2.0,
        alpha_im in -2.0f64..2.0,
    ) {
        let alpha = c64(alpha_re, alpha_im);
        let mut c = CMatrix::from_fn(a.rows(), b.cols(), |i, j| {
            c64((i as f64 - j as f64).sin(), (i + j) as f64 * 0.01)
        });
        let expect = {
            let prod = kernel::mul_naive(&a, &b).unwrap();
            &c + &prod.map(|z| z * alpha)
        };
        kernel::accumulate_scaled(&mut c, alpha, &a, &b).unwrap();
        prop_assert!(c.approx_eq(&expect, tol(a.cols())));
    }

    #[test]
    fn real_blocked_mul_matches_naive(
        (m, k, n) in (0usize..=30, 0usize..=60, 0usize..=30),
        seed in 0u64..1000,
    ) {
        let a = RMatrix::from_fn(m, k, |i, j| ((seed + (i * 31 + j * 7) as u64) as f64 * 0.77).sin());
        let b = RMatrix::from_fn(k, n, |i, j| ((seed + (i * 13 + j * 5) as u64) as f64 * 0.33).cos());
        let fast = kernel::mul(&a, &b).unwrap();
        let slow = kernel::mul_naive(&a, &b).unwrap();
        prop_assert!(fast.approx_eq(&slow, tol(k)));
    }

    #[test]
    fn operator_and_method_route_through_the_kernel((a, b) in product_pair()) {
        // Matrix::matmul must be exactly the kernel path (same op, same
        // summation order, bit-identical results).
        let via_kernel = kernel::mul(&a, &b).unwrap();
        let via_method = a.matmul(&b).unwrap();
        prop_assert!(via_kernel.approx_eq(&via_method, 0.0));
    }

    #[test]
    fn fused_products_satisfy_adjoint_algebra(a in cmatrix(1..=16, 1..=16)) {
        // (AᴴA) is Hermitian positive semidefinite.
        let g = a.mul_hermitian_left(&a).unwrap();
        let gh = g.adjoint();
        prop_assert!(g.approx_eq(&gh, 1e-12));
        for i in 0..g.rows() {
            prop_assert!(g[(i, i)].re >= -1e-12);
            prop_assert!(g[(i, i)].im.abs() <= 1e-12);
        }
        // trace(AᴴA) = ‖A‖_F².
        let tr: Complex = (0..g.rows()).map(|i| g[(i, i)]).fold(Complex::ZERO, |s, z| s + z);
        let fro2 = a.norm_fro().powi(2);
        prop_assert!((tr.re - fro2).abs() <= 1e-11 * fro2.max(1.0));
    }
}
