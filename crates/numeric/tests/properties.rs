//! Property-based tests for the linear-algebra kernels.
//!
//! Each decomposition is checked against its defining identity on random
//! matrices of random shapes, including the agreement of the two
//! structurally-unrelated SVD backends.

use mfti_numeric::{c64, eigenvalues, lstsq, CMatrix, Complex, Lu, Qr, Svd, SvdMethod};
use proptest::prelude::*;

/// Strategy: complex matrix with entries in [-1, 1]² and given shape range.
fn cmatrix(
    rows: std::ops::RangeInclusive<usize>,
    cols: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = CMatrix> {
    (rows, cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), m * n).prop_map(move |v| {
            CMatrix::from_vec(m, n, v.into_iter().map(|(re, im)| c64(re, im)).collect())
                .expect("length matches")
        })
    })
}

fn square_cmatrix(n: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = CMatrix> {
    n.prop_flat_map(|k| cmatrix(k..=k, k..=k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svd_reconstructs_and_is_orthonormal(a in cmatrix(1..=12, 1..=12)) {
        let svd = Svd::compute(&a).unwrap();
        let rel = a.norm_fro().max(1.0);
        prop_assert!((&svd.reconstruct() - &a).norm_fro() <= 1e-11 * rel);
        let r = a.rows().min(a.cols());
        let uhu = svd.u().adjoint().matmul(svd.u()).unwrap();
        prop_assert!(uhu.approx_eq(&CMatrix::identity(r), 1e-10));
        let vhv = svd.v().adjoint().matmul(svd.v()).unwrap();
        prop_assert!(vhv.approx_eq(&CMatrix::identity(r), 1e-10));
        // Sorted descending, non-negative.
        for w in svd.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(svd.singular_values().iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_backends_agree(a in cmatrix(1..=9, 1..=9)) {
        let gk = Svd::compute_with(&a, SvdMethod::GolubKahan).unwrap();
        let ja = Svd::compute_with(&a, SvdMethod::Jacobi).unwrap();
        let smax = gk.singular_values().first().copied().unwrap_or(0.0).max(1e-300);
        for (x, y) in gk.singular_values().iter().zip(ja.singular_values()) {
            prop_assert!((x - y).abs() <= 1e-9 * smax, "{x} vs {y}");
        }
    }

    #[test]
    fn svd_singular_values_bound_operator_norm(a in cmatrix(1..=10, 1..=10)) {
        let svd = Svd::compute(&a).unwrap();
        let s0 = svd.singular_values()[0];
        // ‖A x‖ ≤ σ_max ‖x‖ for a probe vector.
        let x: Vec<Complex> = (0..a.cols()).map(|i| c64(1.0 / (i + 1) as f64, 0.3)).collect();
        let ax = a.matvec(&x).unwrap();
        let nx = x.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        let nax = ax.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        prop_assert!(nax <= s0 * nx + 1e-9);
    }

    #[test]
    fn lu_solve_has_small_residual(a in square_cmatrix(1..=10)) {
        let lu = Lu::compute(&a).unwrap();
        if lu.rcond_estimate() > 1e-10 {
            let b = CMatrix::from_fn(a.rows(), 2, |i, j| c64(i as f64 + 1.0, j as f64 - 0.5));
            let x = lu.solve(&b).unwrap();
            let resid = (&a.matmul(&x).unwrap() - &b).norm_fro();
            prop_assert!(resid <= 1e-8 * b.norm_fro().max(1.0) / lu.rcond_estimate().min(1.0));
        }
    }

    #[test]
    fn lu_determinant_matches_eigenvalue_product(a in square_cmatrix(2..=8)) {
        let lu = Lu::compute(&a).unwrap();
        let det = lu.det();
        let ev = eigenvalues(&a).unwrap();
        let prod: Complex = ev.iter().copied().product();
        let scale = det.abs().max(1.0);
        prop_assert!((det - prod).abs() <= 1e-7 * scale, "{det} vs {prod}");
    }

    #[test]
    fn qr_factors_reproduce_matrix(a in cmatrix(1..=12, 1..=12)) {
        let qr = Qr::compute(&a).unwrap();
        let q = qr.q_thin();
        let r = qr.r();
        prop_assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-11));
        let k = a.rows().min(a.cols());
        prop_assert!(q.adjoint().matmul(&q).unwrap().approx_eq(&CMatrix::identity(k), 1e-11));
    }

    #[test]
    fn eigenvalue_sum_matches_trace(a in square_cmatrix(1..=10)) {
        let ev = eigenvalues(&a).unwrap();
        let sum: Complex = ev.iter().copied().sum();
        let tr = a.trace();
        prop_assert!((sum - tr).abs() <= 1e-8 * tr.abs().max(1.0), "{sum} vs {tr}");
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_column_space(a in cmatrix(4..=10, 1..=3)) {
        let b = CMatrix::from_fn(a.rows(), 1, |i, _| c64((i as f64).sin(), (i as f64).cos()));
        let x = lstsq(&a, &b, 1e-12).unwrap();
        let resid = &a.matmul(&x).unwrap() - &b;
        let ortho = a.adjoint().matmul(&resid).unwrap();
        prop_assert!(ortho.norm_fro() <= 1e-8 * b.norm_fro().max(1.0));
    }

    #[test]
    fn spectral_norm_is_submultiplicative(
        a in cmatrix(2..=6, 2..=6),
        seed in 0u64..1000,
    ) {
        let b = CMatrix::from_fn(a.cols(), 3, |i, j| {
            let t = (seed as f64 + i as f64 * 3.7 + j as f64 * 1.9).sin();
            c64(t, t * 0.5)
        });
        let ab = a.matmul(&b).unwrap();
        prop_assert!(ab.norm_2() <= a.norm_2() * b.norm_2() + 1e-9);
    }

    #[test]
    fn adjoint_is_involutive_and_reverses_products(
        a in cmatrix(2..=5, 2..=5),
        b in cmatrix(2..=5, 2..=5),
    ) {
        prop_assert!(a.adjoint().adjoint().approx_eq(&a, 0.0));
        if a.cols() == b.rows() {
            let lhs = a.matmul(&b).unwrap().adjoint();
            let rhs = b.adjoint().matmul(&a.adjoint()).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-12));
        }
    }
}
