//! Streaming-equivalence harness for the rank-revealing SVD updater:
//! after every append the updated singular values must agree with a
//! fresh `SvdMethod::Blocked` decomposition of the same (sub)matrix to
//! ≤ 1e-10 · σ₁, and the three data-driven order-selection readings of
//! the spectrum (threshold / largest-gap / noise-floor, mirroring
//! `mfti_core::OrderSelection` on the same formulas) must make
//! identical rank decisions — across gapped, noise-floor and gapless
//! spectra, for square, wide and real-scalar streams, after 1, 5 and 50
//! sequential appends.

use mfti_numeric::SvdUpdater;
use mfti_numeric::{c64, CMatrix, Matrix, Qr, RMatrix, Scalar, Svd, SvdFactors, SvdMethod};

const SV_TOL: f64 = 1e-10;
const CHECKPOINTS: [usize; 3] = [1, 5, 50];

fn xorshift(seed: &mut u64) -> f64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    (*seed as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn random_orthonormal_complex(n: usize, mut seed: u64) -> CMatrix {
    let g = CMatrix::from_fn(n, n, |_, _| c64(xorshift(&mut seed), xorshift(&mut seed)));
    Qr::compute(&g).expect("finite").q_thin()
}

fn random_orthonormal_real(n: usize, mut seed: u64) -> RMatrix {
    let g = RMatrix::from_fn(n, n, |_, _| xorshift(&mut seed));
    Qr::compute(&g).expect("finite").q_thin()
}

/// `U · diag(spectrum) · V*` with random unitary factors — a matrix with
/// an exactly prescribed singular-value profile.
fn with_spectrum<T: Scalar>(u: &Matrix<T>, v: &Matrix<T>, spectrum: &[f64]) -> Matrix<T> {
    let n = spectrum.len();
    assert_eq!(u.cols(), n);
    let mut us = u.clone();
    for j in 0..n {
        for i in 0..n {
            us[(i, j)] = us[(i, j)].scale(spectrum[j]);
        }
    }
    us.mul_adjoint_right(v).expect("square factors")
}

/// Sharp physical gap: strong modes spanning four decades, then a
/// roundoff-level tail (the clean-data Fig. 1 shape).
fn gapped_spectrum(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i < 10 {
                10f64.powf(-(i as f64) * 0.4)
            } else {
                1e-14 * 0.9f64.powi(i as i32 - 10)
            }
        })
        .collect()
}

/// Modes decaying into a measurement-noise plateau (the Table 1 shape):
/// everything sits far above the retained floor, so nothing truncates.
fn noise_floor_spectrum(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i < 12 {
                10f64.powf(-(i as f64) * 0.25)
            } else {
                1e-5 * (1.0 + 0.07 * ((i * 7919) % 13) as f64)
            }
        })
        .collect()
}

/// Smooth geometric decay that never reaches the retained floor — the
/// worst case for a rank-revealing method: the retained rank stays full
/// and the updater must track every value. One mildly larger drop is
/// planted at index 18 so the largest-gap reading has a well-separated
/// argmax (on a perfectly uniform decay every adjacent ratio ties and
/// the argmax is decided by roundoff — ill-posed for *any* backend).
fn gapless_spectrum(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.87f64.powi(i as i32) * if i >= 18 { 0.55 } else { 1.0 })
        .collect()
}

/// A strong physical gap after index 5, then a smooth decay that
/// crosses the retained floor *inside* the largest-gap search window —
/// the regression shape for truncation-boundary artifacts: padding the
/// truncated tail with zeros would manufacture a near-infinite
/// σ_r/σ_{r+1} ratio at the boundary (≈ index 16) and out-vote the true
/// gap at 5, so decision equality here pins the floor-padding contract.
fn floor_crossing_spectrum(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i < 5 {
                10f64.powf(-(i as f64) * 0.2)
            } else {
                1e-5 * 10f64.powf(-((i - 5) as f64) * 0.75)
            }
        })
        .collect()
}

/// The three `OrderSelection` readings, computed on the same formulas
/// (`Threshold`, `LargestGap`, `NoiseFloor` in `mfti_core::realize`),
/// with the numeric-floor clamp of the noise-floor rule.
fn rank_decisions(sv: &[f64]) -> (usize, usize, usize) {
    let s0 = sv.first().copied().unwrap_or(0.0);
    let threshold = sv.iter().take_while(|&&s| s > 1e-12 * s0).count();

    let n = sv.len();
    let (lo, hi) = (1usize, 24usize.min(n.saturating_sub(1)));
    let mut best_r = lo;
    let mut best_ratio = 0.0f64;
    for r in lo..=hi {
        let ratio = sv[r - 1] / sv[r].max(f64::MIN_POSITIVE);
        if ratio > best_ratio {
            best_ratio = ratio;
            best_r = r;
        }
    }

    let tail_start = (3 * n) / 4;
    let tail = &sv[tail_start.min(n.saturating_sub(4))..];
    let mut t = tail.to_vec();
    t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = if t.is_empty() {
        0.0
    } else if t.len() % 2 == 1 {
        t[t.len() / 2]
    } else {
        0.5 * (t[t.len() / 2 - 1] + t[t.len() / 2])
    };
    let cut = (5.0 * median).max(1e-11 * s0);
    let noise_floor = sv.iter().take_while(|&&s| s > cut).count();

    (threshold, best_r, noise_floor)
}

/// Pads the updater's retained spectrum to the fresh length with the
/// retained floor — what streaming consumers (`FitSession`) do.
/// Truncated values sit below every decision threshold, and the floor
/// (unlike zero) cannot manufacture an unbounded σ-ratio at the
/// truncation boundary for the largest-gap reading.
fn padded<T: Scalar>(upd: &SvdUpdater<T>, len: usize) -> Vec<f64> {
    let mut sv = upd.singular_values().to_vec();
    assert!(sv.len() <= len, "updater retained more than min(dims)");
    sv.resize(len, upd.retain_floor());
    sv
}

/// Streams `full` from its leading `start × start` block to its full
/// size in `k`-wide border appends, asserting spectrum agreement and
/// identical rank decisions against a fresh blocked decomposition after
/// every single append.
fn drive_square_stream<T: Scalar>(full: &Matrix<T>, start: usize, k: usize, label: &str) {
    let n = full.rows();
    assert_eq!(full.cols(), n, "square driver");
    let seed = full.submatrix(0, 0, start, start).expect("in range");
    let mut upd = SvdUpdater::new(&seed).expect("seed svd");
    let mut dim = start;
    let mut appends = 0usize;
    while dim < n {
        let grow = k.min(n - dim);
        upd.append_border(
            &full.submatrix(0, dim, dim, grow).expect("cols"),
            &full.submatrix(dim, 0, grow, dim).expect("rows"),
            &full.submatrix(dim, dim, grow, grow).expect("corner"),
        )
        .expect("append");
        dim += grow;
        appends += 1;

        let sub = full.submatrix(0, 0, dim, dim).expect("in range");
        let fresh = Svd::compute_factors(&sub, SvdMethod::Blocked, SvdFactors::ValuesOnly)
            .expect("fresh svd");
        let fresh_sv = fresh.singular_values();
        let got = padded(&upd, fresh_sv.len());
        let smax = fresh_sv[0];
        for (i, (a, b)) in got.iter().zip(fresh_sv).enumerate() {
            assert!(
                (a - b).abs() <= SV_TOL * smax,
                "{label}: σ[{i}] drift {:.2e} (updated {a:.6e}, fresh {b:.6e}) \
                 after {appends} appends at dim {dim}",
                (a - b).abs() / smax,
            );
        }
        assert_eq!(
            rank_decisions(&got),
            rank_decisions(fresh_sv),
            "{label}: rank decisions diverged after {appends} appends at dim {dim}"
        );
        if CHECKPOINTS.contains(&appends) {
            // Checkpoint bookkeeping: the error bound must stay well
            // inside the agreement tolerance budget.
            assert!(
                upd.error_bound() <= SV_TOL * smax,
                "{label}: error bound {:.2e} escaped the tolerance budget",
                upd.error_bound()
            );
        }
    }
    assert_eq!(
        appends,
        (n - start).div_ceil(k),
        "{label}: stream did not cover the full matrix"
    );
}

#[test]
fn gapped_spectrum_stream_matches_fresh_svd() {
    let n = 90; // 40 → 90 in 50 single-pair appends
    let full = with_spectrum(
        &random_orthonormal_complex(n, 0x9a55ed),
        &random_orthonormal_complex(n, 0x0b57ac1e),
        &gapped_spectrum(n),
    );
    drive_square_stream(&full, 40, 1, "gapped");
}

#[test]
fn noise_floor_spectrum_stream_matches_fresh_svd() {
    let n = 90;
    let full = with_spectrum(
        &random_orthonormal_complex(n, 0x5eed_0001),
        &random_orthonormal_complex(n, 0x5eed_0002),
        &noise_floor_spectrum(n),
    );
    drive_square_stream(&full, 40, 1, "noise-floor");
}

#[test]
fn gapless_spectrum_stream_matches_fresh_svd() {
    let n = 90;
    let full = with_spectrum(
        &random_orthonormal_complex(n, 0xdead_0003),
        &random_orthonormal_complex(n, 0xdead_0004),
        &gapless_spectrum(n),
    );
    drive_square_stream(&full, 40, 1, "gapless");
}

#[test]
fn floor_crossing_spectrum_keeps_largest_gap_decisions() {
    let n = 90;
    let full = with_spectrum(
        &random_orthonormal_complex(n, 0xf100_0001),
        &random_orthonormal_complex(n, 0xf100_0002),
        &floor_crossing_spectrum(n),
    );
    drive_square_stream(&full, 40, 1, "floor-crossing");
}

#[test]
fn real_scalar_stream_matches_fresh_svd() {
    // The realified-pencil case: everything stays on the packed real
    // path (the factors never leave `f64`), 50 single-row/col appends.
    let n = 90;
    let full = with_spectrum(
        &random_orthonormal_real(n, 0x0dd_c0de),
        &random_orthonormal_real(n, 0x0dd_c0df),
        &gapped_spectrum(n),
    );
    drive_square_stream(&full, 40, 1, "real-gapped");
}

#[test]
fn wide_stream_of_row_appends_matches_fresh_svd() {
    // A wide (rows < cols) stream growing row-wise: the fresh reference
    // handles wideness through the adjoint; the updater must agree at
    // every step without ever transposing its state.
    let n = 72;
    let full = with_spectrum(
        &random_orthonormal_complex(n, 0x77_1d_e5),
        &random_orthonormal_complex(n, 0x77_1d_e6),
        &noise_floor_spectrum(n),
    );
    let rows0 = 12;
    let wide = full.submatrix(0, 0, rows0, n).expect("wide seed");
    let mut upd = SvdUpdater::new(&wide).expect("seed svd");
    for (appends, r) in (rows0..32).enumerate() {
        upd.append_rows(&full.submatrix(r, 0, 1, n).expect("row"))
            .expect("append");
        let sub = full.submatrix(0, 0, r + 1, n).expect("in range");
        let fresh = Svd::compute_factors(&sub, SvdMethod::Blocked, SvdFactors::ValuesOnly)
            .expect("fresh svd");
        let fresh_sv = fresh.singular_values();
        let got = padded(&upd, fresh_sv.len());
        let smax = fresh_sv[0];
        for (a, b) in got.iter().zip(fresh_sv) {
            assert!(
                (a - b).abs() <= SV_TOL * smax,
                "wide: σ drift after {} appends",
                appends + 1
            );
        }
        assert_eq!(rank_decisions(&got), rank_decisions(fresh_sv));
    }
}

#[test]
fn chunked_appends_agree_with_single_pair_appends() {
    // The same stream absorbed in 2-wide borders (the t = 2 pencil
    // growth unit) lands on the same spectrum as 1-wide borders.
    let n = 80;
    let full = with_spectrum(
        &random_orthonormal_complex(n, 0xc4ccfe),
        &random_orthonormal_complex(n, 0xc4ccff),
        &gapped_spectrum(n),
    );
    drive_square_stream(&full, 20, 2, "gapped-chunk2");
}
