//! Edge-case integration tests for the linear-algebra kernels: shapes
//! and values at the boundaries of what the algorithms accept.

use mfti_numeric::{
    c64, eigenvalues, generalized_eigenvalues, CMatrix, Complex, Lu, Qr, RMatrix, Svd, SvdMethod,
};

#[test]
fn one_by_one_matrices_work_everywhere() {
    let a = CMatrix::from_rows(&[vec![c64(3.0, -4.0)]]).unwrap();
    let svd = Svd::compute(&a).unwrap();
    assert!((svd.singular_values()[0] - 5.0).abs() < 1e-14);
    let ev = eigenvalues(&a).unwrap();
    assert!((ev[0] - c64(3.0, -4.0)).abs() < 1e-14);
    let lu = Lu::compute(&a).unwrap();
    assert!((lu.det() - c64(3.0, -4.0)).abs() < 1e-14);
    let qr = Qr::compute(&a).unwrap();
    assert!((qr.r()[(0, 0)].abs() - 5.0).abs() < 1e-12);
}

#[test]
fn single_column_and_single_row_svd() {
    let col = CMatrix::from_fn(7, 1, |i, _| c64(i as f64 + 1.0, -(i as f64)));
    let svd = Svd::compute(&col).unwrap();
    assert_eq!(svd.u().dims(), (7, 1));
    assert_eq!(svd.v().dims(), (1, 1));
    assert!((&svd.reconstruct() - &col).norm_fro() < 1e-12 * col.norm_fro());

    let row = col.adjoint();
    let svd = Svd::compute(&row).unwrap();
    assert_eq!(svd.u().dims(), (1, 1));
    assert!((&svd.reconstruct() - &row).norm_fro() < 1e-12 * row.norm_fro());
}

#[test]
fn hermitian_matrix_has_real_eigenvalues() {
    let h = CMatrix::from_rows(&[
        vec![c64(2.0, 0.0), c64(1.0, 1.0), c64(0.0, -0.5)],
        vec![c64(1.0, -1.0), c64(-1.0, 0.0), c64(0.3, 0.2)],
        vec![c64(0.0, 0.5), c64(0.3, -0.2), c64(0.5, 0.0)],
    ])
    .unwrap();
    // Verify hermitian-ness of the fixture itself first.
    assert!((&h.adjoint() - &h).max_abs() < 1e-15);
    for ev in eigenvalues(&h).unwrap() {
        assert!(ev.im.abs() < 1e-9, "eigenvalue {ev} not real");
    }
}

#[test]
fn skew_hermitian_matrix_has_imaginary_eigenvalues() {
    let s = CMatrix::from_rows(&[
        vec![c64(0.0, 1.0), c64(2.0, 0.0)],
        vec![c64(-2.0, 0.0), c64(0.0, -3.0)],
    ])
    .unwrap();
    assert!((&s.adjoint() + &s).max_abs() < 1e-15);
    for ev in eigenvalues(&s).unwrap() {
        assert!(ev.re.abs() < 1e-10, "eigenvalue {ev} not imaginary");
    }
}

#[test]
fn unitary_matrix_eigenvalues_lie_on_the_unit_circle() {
    // Block-diagonal unitary: a phase and a 2x2 rotation.
    let t = 0.7f64;
    let u = CMatrix::from_rows(&[
        vec![Complex::from_polar(1.0, 1.1), Complex::ZERO, Complex::ZERO],
        vec![Complex::ZERO, c64(t.cos(), 0.0), c64(-t.sin(), 0.0)],
        vec![Complex::ZERO, c64(t.sin(), 0.0), c64(t.cos(), 0.0)],
    ])
    .unwrap();
    for ev in eigenvalues(&u).unwrap() {
        assert!((ev.abs() - 1.0).abs() < 1e-10, "eigenvalue {ev} off circle");
    }
}

#[test]
fn svd_of_rank_one_update_tracks_perturbation() {
    // A = I + eps * uv^H: singular values near 1 with one excursion.
    let n = 6;
    let eps = 1e-6;
    let u = CMatrix::from_fn(n, 1, |i, _| c64(1.0 / ((i + 1) as f64), 0.2));
    let v = CMatrix::from_fn(n, 1, |i, _| c64(0.5, -0.1 * i as f64));
    let a = &CMatrix::identity(n) + &u.matmul(&v.adjoint()).unwrap().map(|z| z.scale(eps));
    let svd = Svd::compute(&a).unwrap();
    for &s in svd.singular_values() {
        assert!((s - 1.0).abs() < eps * u.norm_fro() * v.norm_fro() + 1e-12);
    }
}

#[test]
fn generalized_eigenvalues_match_similarity_for_invertible_e() {
    let a = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
    let e = RMatrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 1.0]]).unwrap();
    let (mut pencil_ev, infinite) = generalized_eigenvalues(&a, &e).unwrap();
    assert_eq!(infinite, 0);
    // Compare with eig(E^{-1} A).
    let e_inv_a = Lu::compute(&e).unwrap().solve(&a).unwrap();
    let mut direct = eigenvalues(&e_inv_a).unwrap();
    let key = |z: &mfti_numeric::Complex| (z.re * 1e9).round() as i64;
    pencil_ev.sort_by_key(key);
    direct.sort_by_key(key);
    for (x, y) in pencil_ev.iter().zip(&direct) {
        assert!((*x - *y).abs() < 1e-8, "{x} vs {y}");
    }
}

#[test]
fn lu_of_permutation_matrix_has_unit_magnitude_determinant() {
    let n = 5;
    let p = RMatrix::from_fn(n, n, |i, j| if (i + 2) % n == j { 1.0 } else { 0.0 });
    let lu = Lu::compute(&p).unwrap();
    assert!((lu.det().abs() - 1.0).abs() < 1e-14);
    assert!((lu.rcond_estimate() - 1.0).abs() < 1e-12);
}

#[test]
fn qr_of_orthonormal_input_returns_identity_r_up_to_signs() {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let q_in = RMatrix::from_rows(&[vec![s, s], vec![s, -s]]).unwrap();
    let qr = Qr::compute(&q_in).unwrap();
    let r = qr.r();
    for i in 0..2 {
        assert!((r[(i, i)].abs() - 1.0).abs() < 1e-12);
        for j in 0..i {
            assert!(r[(i, j)].abs() < 1e-14);
        }
    }
}

#[test]
fn both_svd_backends_handle_repeated_singular_values() {
    // 2I has a doubly degenerate singular value.
    let a = CMatrix::identity(4).map(|z| z.scale(2.0));
    for method in [SvdMethod::GolubKahan, SvdMethod::Jacobi] {
        let svd = Svd::compute_with(&a, method).unwrap();
        for &s in svd.singular_values() {
            assert!((s - 2.0).abs() < 1e-13);
        }
        assert!((&svd.reconstruct() - &a).norm_fro() < 1e-12);
    }
}
