//! Validated-ingestion boundary for user-supplied sample sets.
//!
//! The fitting pipeline's serving posture (ROADMAP north star) assumes
//! arbitrary measurement data crosses the API boundary: NaN entries
//! from failed VNA sweeps, duplicated frequency points from
//! concatenated runs, ±∞ from overflowed de-embedding. Every
//! factorization downstream (Loewner pencil assembly, SVD, Schur) is
//! *garbage-tolerant at best* on such inputs — so they are rejected
//! here, before any numeric work runs, with a typed [`SampleDefect`]
//! naming the offending sample (DESIGN.md §8).
//!
//! [`SampleSet::validate`] is the gate; [`ValidatedSamples`] is the
//! proof-of-validation token the generic fit drivers in `mfti-core`
//! demand before dispatching to an engine.

use std::error::Error;
use std::fmt;
use std::ops::Deref;

use crate::sample::SampleSet;

/// A defect in user-supplied sample data, detected by
/// [`SampleSet::validate`] before any factorization runs.
///
/// Indices refer to sample positions in iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SampleDefect {
    /// A response matrix entry is NaN or ±∞.
    NonFiniteEntry {
        /// Sample index holding the bad matrix.
        sample: usize,
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A sampling frequency is NaN or ±∞.
    NonFiniteFrequency {
        /// Index of the offending sample.
        sample: usize,
    },
    /// Two samples share a frequency (a duplicated interpolation point
    /// σ makes the Loewner pencil's divided differences singular).
    DuplicateFrequency {
        /// Index of the first occurrence.
        first: usize,
        /// Index of the duplicate.
        second: usize,
    },
    /// Fewer than two samples — no fitting method can interpolate a
    /// single point.
    TooFew {
        /// Number of samples present.
        have: usize,
    },
}

impl fmt::Display for SampleDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleDefect::NonFiniteEntry { sample, row, col } => write!(
                f,
                "sample {sample} has a non-finite response entry at ({row}, {col})"
            ),
            SampleDefect::NonFiniteFrequency { sample } => {
                write!(f, "sample {sample} has a non-finite frequency")
            }
            SampleDefect::DuplicateFrequency { first, second } => {
                write!(f, "samples {first} and {second} share a sampling frequency")
            }
            SampleDefect::TooFew { have } => {
                write!(f, "need at least two samples, have {have}")
            }
        }
    }
}

impl Error for SampleDefect {}

/// Proof that a [`SampleSet`] passed [`SampleSet::validate`]: finite
/// frequencies and entries, pairwise-distinct frequencies, at least two
/// samples. Borrows the set; derefs to it for read access.
///
/// The token carries no data beyond the borrow, so holding one is
/// free; the generic fit drivers in `mfti-core` construct it at their
/// entry points and engines behind it may assume defect-free input.
#[derive(Debug, Clone, Copy)]
pub struct ValidatedSamples<'a> {
    set: &'a SampleSet,
}

impl<'a> ValidatedSamples<'a> {
    pub(crate) fn new(set: &'a SampleSet) -> Self {
        ValidatedSamples { set }
    }

    /// The underlying sample set.
    #[must_use]
    pub fn as_set(&self) -> &'a SampleSet {
        self.set
    }
}

impl Deref for ValidatedSamples<'_> {
    type Target = SampleSet;

    fn deref(&self) -> &SampleSet {
        self.set
    }
}

/// Scans for the first defect in iteration order (deterministic: the
/// report does not depend on scan parallelism — there is none).
pub(crate) fn first_defect(set: &SampleSet) -> Option<SampleDefect> {
    if set.len() < 2 {
        return Some(SampleDefect::TooFew { have: set.len() });
    }
    for (i, &f) in set.freqs_hz().iter().enumerate() {
        if !f.is_finite() {
            return Some(SampleDefect::NonFiniteFrequency { sample: i });
        }
    }
    // Duplicate detection by sorted index ranking: O(k log k), and the
    // reported pair is the earliest duplicate in sample order.
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by(|&a, &b| {
        set.freqs_hz()[a]
            .total_cmp(&set.freqs_hz()[b])
            .then(a.cmp(&b))
    });
    let mut earliest: Option<(usize, usize)> = None;
    for w in order.windows(2) {
        if set.freqs_hz()[w[0]] == set.freqs_hz()[w[1]] {
            let (first, second) = (w[0].min(w[1]), w[0].max(w[1]));
            if earliest.is_none_or(|e| (first, second) < e) {
                earliest = Some((first, second));
            }
        }
    }
    if let Some((first, second)) = earliest {
        return Some(SampleDefect::DuplicateFrequency { first, second });
    }
    for (i, m) in set.matrices().iter().enumerate() {
        if !m.is_finite() {
            let (p, q) = m.dims();
            for row in 0..p {
                for col in 0..q {
                    if !m[(row, col)].is_finite() {
                        return Some(SampleDefect::NonFiniteEntry {
                            sample: i,
                            row,
                            col,
                        });
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::{c64, CMatrix};

    fn set(freqs: &[f64]) -> SampleSet {
        let mats = freqs.iter().map(|_| CMatrix::identity(2)).collect();
        SampleSet::from_parts(freqs.to_vec(), mats).unwrap()
    }

    #[test]
    fn clean_set_validates() {
        let s = set(&[1.0, 2.0, 3.0]);
        let v = s.validate().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.as_set().freqs_hz(), s.freqs_hz());
    }

    #[test]
    fn single_sample_is_too_few() {
        let s = set(&[1.0]);
        assert_eq!(s.validate().unwrap_err(), SampleDefect::TooFew { have: 1 });
    }

    #[test]
    fn duplicate_frequency_reports_earliest_pair() {
        let s = set(&[1.0, 2.0, 1.0, 2.0]);
        assert_eq!(
            s.validate().unwrap_err(),
            SampleDefect::DuplicateFrequency {
                first: 0,
                second: 2
            }
        );
    }

    #[test]
    fn non_finite_entry_is_located() {
        let mut m = CMatrix::identity(2);
        m[(1, 0)] = c64(f64::NAN, 0.0);
        let s = SampleSet::from_parts(vec![1.0, 2.0], vec![CMatrix::identity(2), m]).unwrap();
        assert_eq!(
            s.validate().unwrap_err(),
            SampleDefect::NonFiniteEntry {
                sample: 1,
                row: 1,
                col: 0
            }
        );
    }

    #[test]
    fn infinite_entry_is_a_defect_too() {
        let mut m = CMatrix::identity(2);
        m[(0, 1)] = c64(0.0, f64::NEG_INFINITY);
        let s = SampleSet::from_parts(vec![1.0, 2.0], vec![m, CMatrix::identity(2)]).unwrap();
        assert!(matches!(
            s.validate().unwrap_err(),
            SampleDefect::NonFiniteEntry { sample: 0, .. }
        ));
    }

    #[test]
    fn denormal_entries_are_valid() {
        let mut m = CMatrix::identity(2);
        m[(0, 0)] = c64(f64::MIN_POSITIVE / 2.0, 0.0);
        let s = SampleSet::from_parts(vec![1.0, 2.0], vec![m, CMatrix::identity(2)]).unwrap();
        assert!(s.validate().is_ok());
    }
}
