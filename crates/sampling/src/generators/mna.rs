//! Modified nodal analysis: RLC netlists → descriptor systems.
//!
//! The paper singles out MNA circuits as the natural `m = p` case where
//! Lemma 3.1's exact matrix interpolation applies ("which is the case
//! for a large group of (e.g., MNA) circuits"). This builder turns an
//! RLC netlist with voltage ports into exactly that object: a descriptor
//! system `E ẋ = A x + B u`, `y = C x` whose transfer function is the
//! port **admittance matrix** (inputs = port voltages, outputs = port
//! currents into the network).
//!
//! Unknowns are stacked MNA-style: node voltages, inductor currents,
//! port-source currents. `E = blkdiag(C, L, 0)` is singular whenever the
//! circuit has ports or inductors — the true descriptor form the raw
//! Loewner realization also produces, so these circuits exercise every
//! singular-`E` code path (poles via the pencil, trapezoidal transient
//! with algebraic states).
//!
//! ```
//! use mfti_sampling::generators::MnaNetlist;
//! use mfti_statespace::TransferFunction;
//!
//! # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
//! // Port — R — ground: Y must be 1/R at every frequency.
//! let circuit = MnaNetlist::new()
//!     .resistor(1, 0, 50.0)
//!     .port(1)
//!     .build()?;
//! let y = circuit.response_at_hz(1e6)?;
//! assert!((y[(0, 0)].re - 0.02).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use mfti_numeric::RMatrix;
use mfti_statespace::{DescriptorSystem, StateSpaceError};

/// An element connecting two nodes (node 0 is ground).
#[derive(Debug, Clone, Copy, PartialEq)]
struct TwoTerminal {
    a: usize,
    b: usize,
    value: f64,
}

/// Builder for RLC netlists with voltage-driven ports.
///
/// Node numbering: `0` is ground; other node indices may be any positive
/// integers (they are compacted internally).
#[derive(Debug, Clone, Default)]
pub struct MnaNetlist {
    resistors: Vec<TwoTerminal>,
    capacitors: Vec<TwoTerminal>,
    inductors: Vec<TwoTerminal>,
    ports: Vec<usize>,
}

impl MnaNetlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resistor of `ohms` between nodes `a` and `b`.
    pub fn resistor(mut self, a: usize, b: usize, ohms: f64) -> Self {
        self.resistors.push(TwoTerminal { a, b, value: ohms });
        self
    }

    /// Adds a capacitor of `farads` between nodes `a` and `b`.
    pub fn capacitor(mut self, a: usize, b: usize, farads: f64) -> Self {
        self.capacitors.push(TwoTerminal {
            a,
            b,
            value: farads,
        });
        self
    }

    /// Adds an inductor of `henries` between nodes `a` and `b`.
    pub fn inductor(mut self, a: usize, b: usize, henries: f64) -> Self {
        self.inductors.push(TwoTerminal {
            a,
            b,
            value: henries,
        });
        self
    }

    /// Declares a voltage port between `node` and ground. Port order
    /// defines the input/output ordering of the admittance matrix.
    pub fn port(mut self, node: usize) -> Self {
        self.ports.push(node);
        self
    }

    /// Assembles the MNA descriptor system.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when the netlist
    /// has no ports, an element value is non-positive/non-finite, an
    /// element shorts a node to itself, or a port is at ground or
    /// duplicated.
    pub fn build(&self) -> Result<DescriptorSystem<f64>, StateSpaceError> {
        if self.ports.is_empty() {
            return Err(StateSpaceError::DimensionMismatch {
                what: "netlist needs at least one port",
            });
        }
        for t in self
            .resistors
            .iter()
            .chain(&self.capacitors)
            .chain(&self.inductors)
        {
            if !(t.value > 0.0 && t.value.is_finite()) {
                return Err(StateSpaceError::DimensionMismatch {
                    what: "element values must be positive and finite",
                });
            }
            if t.a == t.b {
                return Err(StateSpaceError::DimensionMismatch {
                    what: "element connects a node to itself",
                });
            }
        }
        for (i, &p) in self.ports.iter().enumerate() {
            if p == 0 {
                return Err(StateSpaceError::DimensionMismatch {
                    what: "ports must not be at the ground node",
                });
            }
            if self.ports[..i].contains(&p) {
                return Err(StateSpaceError::DimensionMismatch {
                    what: "duplicate port node",
                });
            }
        }

        // Compact node numbering: ground drops out, others map to 0..n.
        let mut node_ids: Vec<usize> = self
            .resistors
            .iter()
            .chain(&self.capacitors)
            .chain(&self.inductors)
            .flat_map(|t| [t.a, t.b])
            .chain(self.ports.iter().copied())
            .filter(|&n| n != 0)
            .collect();
        node_ids.sort_unstable();
        node_ids.dedup();
        let index_of = |node: usize| -> Option<usize> {
            if node == 0 {
                None
            } else {
                // mfti-lint: allow(MFTI-D7) — node_ids is the sorted
                // collection of every non-ground node, node included
                Some(node_ids.binary_search(&node).expect("collected above"))
            }
        };

        let n_v = node_ids.len();
        let n_l = self.inductors.len();
        let n_p = self.ports.len();
        let n = n_v + n_l + n_p;

        let mut e = RMatrix::zeros(n, n);
        let mut a = RMatrix::zeros(n, n);

        // Resistor stamps: conductances into −G (A's node block is −G).
        for r in &self.resistors {
            let g = 1.0 / r.value;
            stamp_conductance(&mut a, index_of(r.a), index_of(r.b), -g);
        }
        // Capacitor stamps into E's node block.
        for c in &self.capacitors {
            stamp_conductance(&mut e, index_of(c.a), index_of(c.b), c.value);
        }
        // Inductors: branch current unknowns.
        for (k, l) in self.inductors.iter().enumerate() {
            let row = n_v + k;
            e[(row, row)] = l.value;
            // L di/dt = v_a − v_b; KCL: current leaves a, enters b.
            if let Some(ia) = index_of(l.a) {
                a[(row, ia)] = 1.0;
                a[(ia, row)] = -1.0;
            }
            if let Some(ib) = index_of(l.b) {
                a[(row, ib)] = -1.0;
                a[(ib, row)] = 1.0;
            }
        }
        // Ports: source current unknowns + voltage constraints.
        let mut b = RMatrix::zeros(n, n_p);
        let mut c_out = RMatrix::zeros(n_p, n);
        for (k, &pnode) in self.ports.iter().enumerate() {
            let row = n_v + n_l + k;
            // mfti-lint: allow(MFTI-D7) — build() rejects ground ports
            // before reaching stamping
            let ip = index_of(pnode).expect("ports are never ground");
            // KCL at the port node: + i_P leaves into the source.
            a[(ip, row)] = -1.0;
            // Constraint: v_node − u = 0.
            a[(row, ip)] = 1.0;
            b[(row, k)] = -1.0;
            // Output: current into the network = −i_P.
            c_out[(k, row)] = -1.0;
        }

        DescriptorSystem::new(e, a, b, c_out, RMatrix::zeros(n_p, n_p))
    }
}

/// Symmetric two-terminal stamp: adds `g` at (a,a),(b,b) and `−g` at
/// (a,b),(b,a), skipping grounded terminals.
fn stamp_conductance(m: &mut RMatrix, a: Option<usize>, b: Option<usize>, g: f64) {
    if let Some(ia) = a {
        m[(ia, ia)] += g;
    }
    if let Some(ib) = b {
        m[(ib, ib)] += g;
    }
    if let (Some(ia), Some(ib)) = (a, b) {
        m[(ia, ib)] -= g;
        m[(ib, ia)] -= g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::Complex;
    use mfti_statespace::TransferFunction;

    #[test]
    fn resistor_divider_admittance() {
        // Port at node 1, R1 to node 2, R2 to ground: Y = 1/(R1+R2).
        let ckt = MnaNetlist::new()
            .resistor(1, 2, 30.0)
            .resistor(2, 0, 70.0)
            .port(1)
            .build()
            .unwrap();
        let y = ckt.eval(Complex::ZERO).unwrap()[(0, 0)];
        assert!((y.re - 0.01).abs() < 1e-12);
        assert!(y.im.abs() < 1e-15);
    }

    #[test]
    fn rc_corner_frequency() {
        // Series R into shunt C: Y(jω) = jωC/(1 + jωRC); |Y| at the
        // corner is 1/(R√2).
        let (r, c) = (1000.0, 1e-9);
        let ckt = MnaNetlist::new()
            .resistor(1, 2, r)
            .capacitor(2, 0, c)
            .port(1)
            .build()
            .unwrap();
        let f_corner = 1.0 / (std::f64::consts::TAU * r * c);
        let y = ckt.response_at_hz(f_corner).unwrap()[(0, 0)];
        assert!((y.abs() - 1.0 / (r * 2f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn lc_tank_resonates_at_the_analytic_frequency() {
        // Port — R — (L ∥ C) to ground. With the port shorted the tank
        // sees R in parallel; underdamped iff R > √(L/C)/2 ≈ 16 Ω, so
        // R = 1 kΩ gives Q ≈ 32 and a resonance at f = 1/(2π√LC).
        let (l, c) = (1e-9, 1e-12);
        let ckt = MnaNetlist::new()
            .resistor(1, 2, 1000.0)
            .inductor(2, 0, l)
            .capacitor(2, 0, c)
            .port(1)
            .build()
            .unwrap();
        let f0 = 1.0 / (std::f64::consts::TAU * (l * c).sqrt());
        // The pole pair of the tank sits at ±jω0 (undamped L∥C behind R).
        let poles = ckt.poles().unwrap();
        let resonant = poles
            .iter()
            .filter(|p| p.im > 0.0)
            .map(|p| p.im / std::f64::consts::TAU)
            .collect::<Vec<_>>();
        assert_eq!(resonant.len(), 1);
        assert!(
            (resonant[0] - f0).abs() < 1e-3 * f0,
            "resonance {} vs {f0}",
            resonant[0]
        );
    }

    #[test]
    fn two_port_network_is_reciprocal_and_square() {
        // Pi network between two ports.
        let ckt = MnaNetlist::new()
            .capacitor(1, 0, 2e-12)
            .resistor(1, 2, 25.0)
            .inductor(1, 2, 1e-9)
            .capacitor(2, 0, 2e-12)
            .port(1)
            .port(2)
            .build()
            .unwrap();
        assert_eq!(ckt.inputs(), 2);
        assert_eq!(ckt.outputs(), 2);
        let y = ckt.response_at_hz(3e8).unwrap();
        assert!(
            (y[(0, 1)] - y[(1, 0)]).abs() < 1e-12 * y.max_abs(),
            "RLC networks are reciprocal"
        );
    }

    #[test]
    fn descriptor_structure_is_genuinely_singular() {
        let ckt = MnaNetlist::new()
            .resistor(1, 2, 10.0)
            .capacitor(2, 0, 1e-12)
            .port(1)
            .build()
            .unwrap();
        // One dynamic state (the capacitor) out of three unknowns.
        assert_eq!(ckt.order(), 3);
        assert_eq!(ckt.dynamic_order(), 1);
    }

    #[test]
    fn invalid_netlists_are_rejected() {
        assert!(MnaNetlist::new().resistor(1, 0, 1.0).build().is_err()); // no port
        assert!(MnaNetlist::new()
            .resistor(1, 1, 1.0)
            .port(1)
            .build()
            .is_err());
        assert!(MnaNetlist::new()
            .resistor(1, 0, -5.0)
            .port(1)
            .build()
            .is_err());
        assert!(MnaNetlist::new()
            .resistor(1, 0, 1.0)
            .port(0)
            .build()
            .is_err());
        assert!(MnaNetlist::new()
            .resistor(1, 0, 1.0)
            .port(1)
            .port(1)
            .build()
            .is_err());
    }

    #[test]
    fn sparse_node_numbering_is_compacted() {
        // Node ids 7 and 42 work fine.
        let ckt = MnaNetlist::new()
            .resistor(7, 42, 10.0)
            .resistor(42, 0, 10.0)
            .port(7)
            .build()
            .unwrap();
        let y = ckt.eval(Complex::ZERO).unwrap()[(0, 0)];
        assert!((y.re - 0.05).abs() < 1e-12);
    }
}
