use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mfti_numeric::{c64, CMatrix, RMatrix};
use mfti_statespace::{RationalModel, StateSpaceError, TransferFunction};

use crate::noise::gaussian;

/// Builder for a synthetic multi-port power-distribution network (PDN).
///
/// The paper's Example 2 uses measured data from a 14-port PDN of an INC
/// board (S.-H. Min's dissertation), which is not publicly available.
/// This generator substitutes a structurally equivalent workload: a
/// modal superposition of many lightly damped plane/decap resonances
/// with low-rank symmetric residues (each physical resonance couples
/// into the ports through one spatial mode), log-spaced resonance
/// frequencies, a resistive feed-through, and reciprocal (symmetric)
/// port behaviour. What Table 1 actually stresses — modal density, port
/// count, noise responses and ill-conditioned sampling — is preserved;
/// see DESIGN.md §4.
///
/// ```
/// use mfti_sampling::generators::PdnBuilder;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let pdn = PdnBuilder::new(14).resonance_pairs(60).seed(1).build()?;
/// assert_eq!(pdn.order(), 120); // 60 conjugate pairs
/// assert!(pdn.is_stable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PdnBuilder {
    ports: usize,
    resonance_pairs: usize,
    f_lo_hz: f64,
    f_hi_hz: f64,
    q_min: f64,
    q_max: f64,
    coupling: f64,
    strength_decades: f64,
    min_bandwidth_hz: Option<f64>,
    seed: u64,
}

impl PdnBuilder {
    /// Starts a builder for a `ports`-port PDN. Defaults: 60 resonance
    /// pairs (order 120 — "order of the underlying system unknown" in
    /// the paper, so the fitting algorithms never see this number),
    /// 10 MHz – 10 GHz band, quality factors 5–25.
    ///
    /// Plane-cavity resonances are near-harmonically spaced, so the
    /// resonance frequencies are placed **linearly** (with jitter)
    /// across the band, and the default Q keeps every peak wider than
    /// the spacing of a 100-point uniform measurement grid — matching
    /// the character of real measured PDN profiles. (Sub-sample-width
    /// peaks would make *any* sampled-data fit ill-posed.)
    pub fn new(ports: usize) -> Self {
        PdnBuilder {
            ports,
            resonance_pairs: 60,
            f_lo_hz: 1e7,
            f_hi_hz: 1e10,
            q_min: 5.0,
            q_max: 25.0,
            coupling: 0.15,
            strength_decades: 2.0,
            min_bandwidth_hz: None,
            seed: 0,
        }
    }

    /// Minimum −3 dB bandwidth of every resonance in hertz (default:
    /// 2% of the band span). Low-frequency PDN poles are resistively
    /// damped in practice; without this floor the lowest constant-Q
    /// resonances would be far narrower than any realistic measurement
    /// grid spacing, making the *sampled* data unfittable by any method.
    pub fn min_bandwidth_hz(mut self, bw: f64) -> Self {
        self.min_bandwidth_hz = Some(bw);
        self
    }

    /// Dynamic range of the modal strengths in decades (default 3):
    /// mode strengths taper log-linearly from the strongest to the
    /// weakest resonance, in a seeded random order across the band.
    ///
    /// Measured PDNs show exactly this long decaying mode tail — it is
    /// what lets a truncated macromodel fit the response to a small
    /// residual (the paper's Table 1 reports reduced orders well below
    /// the data's information content at ERR ≈ 1e-2…1e-3). Set to `0`
    /// for equally strong modes.
    pub fn strength_decades(mut self, decades: f64) -> Self {
        self.strength_decades = decades;
        self
    }

    /// Number of conjugate resonance pairs (model order = 2 × pairs).
    pub fn resonance_pairs(mut self, pairs: usize) -> Self {
        self.resonance_pairs = pairs;
        self
    }

    /// Frequency band of the resonances in hertz.
    pub fn band(mut self, f_lo_hz: f64, f_hi_hz: f64) -> Self {
        self.f_lo_hz = f_lo_hz;
        self.f_hi_hz = f_hi_hz;
        self
    }

    /// Quality-factor range of the resonances (higher = peakier).
    pub fn q_range(mut self, q_min: f64, q_max: f64) -> Self {
        self.q_min = q_min;
        self.q_max = q_max;
        self
    }

    /// Relative weight of a shared (board-wide) spatial component mixed
    /// into each mode vector. Residues stay **rank-1** — one spatial
    /// mode per resonance, so the model's McMillan degree equals its
    /// pole count — while ports remain densely coupled.
    pub fn coupling(mut self, coupling: f64) -> Self {
        self.coupling = coupling;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the PDN as a pole–residue model (use
    /// [`RationalModel::to_state_space`] for a descriptor realization).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] for zero ports/pairs
    /// or an invalid band.
    pub fn build(&self) -> Result<RationalModel, StateSpaceError> {
        if self.ports == 0 || self.resonance_pairs == 0 {
            return Err(StateSpaceError::DimensionMismatch {
                what: "ports and resonance pairs must be positive",
            });
        }
        if !(self.f_lo_hz > 0.0 && self.f_hi_hz > self.f_lo_hz) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "need 0 < f_lo < f_hi",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = self.ports;

        // Strength taper: a seeded shuffle assigns each resonance a rank
        // in the log-linear decay so strength is uncorrelated with
        // frequency.
        let mut taper_rank: Vec<usize> = (0..self.resonance_pairs).collect();
        for i in (1..taper_rank.len()).rev() {
            let j = rng.gen_range(0..=i);
            taper_rank.swap(i, j);
        }

        // Shared spatial component: mixing it into each mode vector
        // couples all ports without raising the residue rank above 1
        // (rank-1 residues keep the McMillan degree equal to the pole
        // count — a full-rank residue would contribute `ports` states
        // per pole).
        let shared = RMatrix::from_fn(p, 1, |_, _| gaussian(&mut rng));

        let mut poles = Vec::with_capacity(2 * self.resonance_pairs);
        let mut residues = Vec::with_capacity(2 * self.resonance_pairs);
        for (k, &taper_rank_k) in taper_rank.iter().enumerate() {
            let frac = if self.resonance_pairs > 1 {
                k as f64 / (self.resonance_pairs - 1) as f64
            } else {
                0.5
            };
            let jitter = 1.0 + 0.1 * (rng.gen::<f64>() - 0.5);
            // Near-harmonic (linear) spacing across the band.
            let f_res = (self.f_lo_hz + (self.f_hi_hz - self.f_lo_hz) * frac) * jitter;
            let omega = std::f64::consts::TAU * f_res;
            let q = self.q_min + (self.q_max - self.q_min) * rng.gen::<f64>();
            let min_bw = self
                .min_bandwidth_hz
                .unwrap_or(0.02 * (self.f_hi_hz - self.f_lo_hz));
            let damping = (omega / (2.0 * q)).max(std::f64::consts::TAU * min_bw / 2.0);
            let pole = c64(-damping, omega);

            // Rank-1 symmetric spatial mode (one mode per resonance —
            // reciprocal and minimal); a random phase makes the residue
            // genuinely complex while R(conj pole) = conj(R) keeps the
            // model real-valued.
            let v = RMatrix::from_fn(p, 1, |i, _| {
                gaussian(&mut rng) + self.coupling * shared[(i, 0)]
            });
            // mfti-lint: allow(MFTI-D7) — v·vᵀ of a p×1 vector is
            // always conformal
            let mode = v.mul_transpose_right(&v).expect("outer product");
            // Log-linear strength taper across the configured dynamic
            // range, plus jitter so no single resonance dominates.
            let taper = if self.resonance_pairs > 1 {
                let frac = taper_rank_k as f64 / (self.resonance_pairs - 1) as f64;
                10f64.powf(-self.strength_decades * frac)
            } else {
                1.0
            };
            let strength = omega / q * (0.3 + 0.7 * rng.gen::<f64>()) * taper / p as f64;
            let phase = (rng.gen::<f64>() - 0.5) * std::f64::consts::PI * 0.8;
            let w = c64(phase.cos(), phase.sin()).scale(strength);
            let residue = CMatrix::from_fn(p, p, |i, j| w.scale(mode[(i, j)]));

            poles.push(pole);
            poles.push(pole.conj());
            residues.push(residue.clone());
            residues.push(residue.conj());
        }

        // Resistive feed-through: small symmetric real D (port resistances
        // plus weak mutual terms).
        let d = CMatrix::from_fn(p, p, |i, j| {
            if i == j {
                c64(0.05 + 0.02 * ((i * 2654435761) % 97) as f64 / 97.0, 0.0)
            } else {
                let k = (i.min(j) * 31 + i.max(j) * 17) % 89;
                c64(0.004 * k as f64 / 89.0, 0.0)
            }
        });

        let model = RationalModel::new(poles, residues, d)?;

        // Normalize the peak response to O(1) so error metrics across
        // Table 1 rows are comparable.
        let grid = mfti_statespace::bode::log_grid(self.f_lo_hz, self.f_hi_hz, 60);
        let mut peak = 0.0f64;
        for f in grid {
            peak = peak.max(model.response_at_hz(f)?.max_abs());
        }
        if peak > 0.0 && !(0.5..=2.0).contains(&peak) {
            let inv = 1.0 / peak;
            let residues = model
                .residues()
                .iter()
                .map(|r| r.map(|z| z.scale(inv)))
                .collect();
            let d = model.d().map(|z| z.scale(inv));
            return RationalModel::new(model.poles().to_vec(), residues, d);
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdn_has_requested_structure() {
        let pdn = PdnBuilder::new(14)
            .resonance_pairs(20)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(pdn.order(), 40);
        assert_eq!(pdn.d().dims(), (14, 14));
        assert!(pdn.is_stable());
        assert!(pdn.is_conjugate_symmetric(1e-10));
    }

    #[test]
    fn pdn_is_reciprocal() {
        // Residues are symmetric by construction ⇒ H(s) = H(s)^T.
        let pdn = PdnBuilder::new(6)
            .resonance_pairs(10)
            .seed(9)
            .build()
            .unwrap();
        let h = pdn.response_at_hz(5e7).unwrap();
        let asym = (&h - &h.transpose()).max_abs();
        assert!(asym < 1e-12 * h.max_abs(), "asymmetry {asym}");
    }

    #[test]
    fn pdn_realizes_as_real_state_space() {
        let pdn = PdnBuilder::new(4)
            .resonance_pairs(8)
            .seed(5)
            .build()
            .unwrap();
        let ss = pdn.to_state_space(1e-9).unwrap();
        // pairs × 2m states.
        assert_eq!(ss.order(), 8 * 2 * 4);
        let f = 3e8;
        let h1 = pdn.response_at_hz(f).unwrap();
        let h2 = ss.response_at_hz(f).unwrap();
        assert!((&h1 - &h2).max_abs() < 1e-9 * h1.max_abs().max(1.0));
    }

    #[test]
    fn pdn_peak_response_is_order_one() {
        let pdn = PdnBuilder::new(14)
            .resonance_pairs(50)
            .seed(1)
            .build()
            .unwrap();
        let grid = mfti_statespace::bode::log_grid(1e6, 1e10, 100);
        let mut peak = 0.0f64;
        for f in grid {
            peak = peak.max(pdn.response_at_hz(f).unwrap().max_abs());
        }
        assert!(peak > 0.2 && peak < 5.0, "peak {peak}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PdnBuilder::new(3)
            .resonance_pairs(4)
            .seed(42)
            .build()
            .unwrap();
        let b = PdnBuilder::new(3)
            .resonance_pairs(4)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PdnBuilder::new(0).build().is_err());
        assert!(PdnBuilder::new(2).resonance_pairs(0).build().is_err());
        assert!(PdnBuilder::new(2).band(1e9, 1e6).build().is_err());
    }
}
