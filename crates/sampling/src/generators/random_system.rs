use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mfti_numeric::RMatrix;
use mfti_statespace::{DescriptorSystem, StateSpaceError, TransferFunction};

use crate::noise::gaussian;

/// Builder for random stable MIMO state-space systems with controlled
/// order, port counts, frequency band and feed-through rank.
///
/// Example 1 of the paper samples "an order-150 system with 30 ports";
/// the observed singular-value drops (150 for `𝕃`, 180 for `σ𝕃`) imply a
/// full-rank `D`, so the generator exposes `rank(D)` as a first-class
/// knob (Theorem 3.5 depends on it).
///
/// Poles come in lightly damped conjugate pairs with resonance
/// frequencies log-spaced (with jitter) across the band, giving the
/// peaky responses typical of interconnect macromodeling; the output
/// gain is normalized so the peak response magnitude is O(1).
///
/// ```
/// use mfti_sampling::generators::RandomSystemBuilder;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let sys = RandomSystemBuilder::new(20, 4, 4)
///     .band(1e1, 1e5)
///     .d_rank(4)
///     .seed(2010)
///     .build()?;
/// assert_eq!(sys.order(), 20);
/// assert!(sys.is_stable()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RandomSystemBuilder {
    order: usize,
    outputs: usize,
    inputs: usize,
    f_lo_hz: f64,
    f_hi_hz: f64,
    damping_min: f64,
    damping_max: f64,
    d_rank: usize,
    d_scale: f64,
    seed: u64,
}

impl RandomSystemBuilder {
    /// Starts a builder for an `order`-state system with `outputs × inputs`
    /// ports. `rank(D)` defaults to `min(outputs, inputs)` (full), the
    /// band to 10 Hz – 100 kHz (the paper's Fig. 2 plotting band).
    pub fn new(order: usize, outputs: usize, inputs: usize) -> Self {
        RandomSystemBuilder {
            order,
            outputs,
            inputs,
            f_lo_hz: 1e1,
            f_hi_hz: 1e5,
            damping_min: 0.01,
            damping_max: 0.08,
            d_rank: outputs.min(inputs),
            d_scale: 0.5,
            seed: 0,
        }
    }

    /// Sets the resonance band `[f_lo, f_hi]` in hertz.
    pub fn band(mut self, f_lo_hz: f64, f_hi_hz: f64) -> Self {
        self.f_lo_hz = f_lo_hz;
        self.f_hi_hz = f_hi_hz;
        self
    }

    /// Sets the damping-ratio range of the conjugate pole pairs.
    pub fn damping(mut self, min: f64, max: f64) -> Self {
        self.damping_min = min;
        self.damping_max = max;
        self
    }

    /// Sets `rank(D)` exactly (0 for a strictly proper system).
    pub fn d_rank(mut self, rank: usize) -> Self {
        self.d_rank = rank;
        self
    }

    /// Sets the magnitude scale of `D` relative to the (normalized) peak
    /// dynamic response.
    pub fn d_scale(mut self, scale: f64) -> Self {
        self.d_scale = scale;
        self
    }

    /// Sets the RNG seed (all randomness is reproducible).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when `order == 0`,
    /// a port count is zero, the band is invalid, or the requested
    /// `rank(D)` exceeds `min(outputs, inputs)`.
    pub fn build(&self) -> Result<DescriptorSystem<f64>, StateSpaceError> {
        if self.order == 0 || self.outputs == 0 || self.inputs == 0 {
            return Err(StateSpaceError::DimensionMismatch {
                what: "order and port counts must be positive",
            });
        }
        if !(self.f_lo_hz > 0.0 && self.f_hi_hz > self.f_lo_hz) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "need 0 < f_lo < f_hi",
            });
        }
        if self.d_rank > self.outputs.min(self.inputs) {
            return Err(StateSpaceError::DimensionMismatch {
                what: "rank(D) cannot exceed min(outputs, inputs)",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.order;
        let pairs = n / 2;
        let has_real_pole = n % 2 == 1;

        // Pole frequencies: log-spaced with ±20% jitter.
        let mut a = RMatrix::zeros(n, n);
        let l0 = self.f_lo_hz.log10();
        let l1 = self.f_hi_hz.log10();
        for k in 0..pairs {
            let frac = if pairs > 1 {
                k as f64 / (pairs - 1) as f64
            } else {
                0.5
            };
            let jitter = 1.0 + 0.2 * (rng.gen::<f64>() - 0.5);
            let f_res = 10f64.powf(l0 + (l1 - l0) * frac) * jitter;
            let omega = std::f64::consts::TAU * f_res;
            let zeta = self.damping_min + (self.damping_max - self.damping_min) * rng.gen::<f64>();
            let sigma = -zeta * omega;
            let i = 2 * k;
            a[(i, i)] = sigma;
            a[(i, i + 1)] = omega;
            a[(i + 1, i)] = -omega;
            a[(i + 1, i + 1)] = sigma;
        }
        if has_real_pole {
            let omega = std::f64::consts::TAU * self.f_lo_hz;
            a[(n - 1, n - 1)] = -omega;
        }

        let b = RMatrix::from_fn(n, self.inputs, |_, _| {
            gaussian(&mut rng) / (n as f64).sqrt()
        });
        let mut c = RMatrix::from_fn(self.outputs, n, |_, _| gaussian(&mut rng));

        // Normalize so the peak |H| over a probe grid is ≈ 1 before D.
        let probe = DescriptorSystem::from_state_space(
            a.clone(),
            b.clone(),
            c.clone(),
            RMatrix::zeros(self.outputs, self.inputs),
        )?;
        let grid = mfti_statespace::bode::log_grid(self.f_lo_hz, self.f_hi_hz, 40);
        let mut peak = 0.0f64;
        for f in grid {
            peak = peak.max(probe.response_at_hz(f)?.max_abs());
        }
        if peak > 0.0 {
            c = c.scale(1.0 / peak);
        }

        // D with exact rank r via a product of Gaussian factors.
        let d = if self.d_rank == 0 {
            RMatrix::zeros(self.outputs, self.inputs)
        } else {
            let p_factor = RMatrix::from_fn(self.outputs, self.d_rank, |_, _| gaussian(&mut rng));
            let q_factor = RMatrix::from_fn(self.d_rank, self.inputs, |_, _| gaussian(&mut rng));
            p_factor
                .matmul(&q_factor)
                // mfti-lint: allow(MFTI-D7) — (outputs×d_rank)·(d_rank
                // ×inputs) is conformal by construction
                .expect("conformal by construction")
                .scale(self.d_scale / (self.d_rank as f64).sqrt())
        };

        DescriptorSystem::from_state_space(a, b, c, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::Svd;

    #[test]
    fn builds_requested_dimensions() {
        let sys = RandomSystemBuilder::new(9, 3, 2).seed(1).build().unwrap();
        assert_eq!(sys.order(), 9);
        assert_eq!(sys.outputs(), 3);
        assert_eq!(sys.inputs(), 2);
    }

    #[test]
    fn generated_system_is_stable() {
        let sys = RandomSystemBuilder::new(30, 4, 4).seed(3).build().unwrap();
        assert!(sys.is_stable().unwrap());
    }

    #[test]
    fn d_rank_is_exact() {
        for r in [0usize, 1, 3] {
            let sys = RandomSystemBuilder::new(10, 3, 3)
                .d_rank(r)
                .seed(5)
                .build()
                .unwrap();
            let svd = Svd::compute(sys.d()).unwrap();
            assert_eq!(svd.rank(1e-10), r, "requested rank {r}");
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = RandomSystemBuilder::new(8, 2, 2).seed(11).build().unwrap();
        let b = RandomSystemBuilder::new(8, 2, 2).seed(11).build().unwrap();
        let c = RandomSystemBuilder::new(8, 2, 2).seed(12).build().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn response_is_normalized_to_order_one() {
        let sys = RandomSystemBuilder::new(24, 3, 3)
            .d_rank(0)
            .seed(8)
            .build()
            .unwrap();
        let grid = mfti_statespace::bode::log_grid(1e1, 1e5, 60);
        let mut peak = 0.0f64;
        for f in grid {
            peak = peak.max(sys.response_at_hz(f).unwrap().max_abs());
        }
        assert!(peak > 0.3 && peak < 3.0, "peak magnitude {peak}");
    }

    #[test]
    fn poles_lie_in_the_requested_band() {
        let sys = RandomSystemBuilder::new(20, 2, 2)
            .band(1e3, 1e6)
            .seed(4)
            .build()
            .unwrap();
        for p in sys.poles().unwrap() {
            let f = p.im.abs() / std::f64::consts::TAU;
            if f > 0.0 {
                assert!(f > 0.5e3 && f < 2e6, "pole frequency {f} Hz outside band");
            }
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(RandomSystemBuilder::new(0, 2, 2).build().is_err());
        assert!(RandomSystemBuilder::new(4, 0, 2).build().is_err());
        assert!(RandomSystemBuilder::new(4, 2, 2)
            .band(5.0, 5.0)
            .build()
            .is_err());
        assert!(RandomSystemBuilder::new(4, 2, 2).d_rank(3).build().is_err());
    }
}
