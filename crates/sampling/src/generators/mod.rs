//! Seeded synthetic multi-port systems.
//!
//! These generators stand in for the data sources of the paper's
//! evaluation (see DESIGN.md §4 for the substitution argument):
//!
//! * [`RandomSystemBuilder`] — random stable MIMO systems with prescribed
//!   order, port counts and `rank(D)`; Example 1 uses
//!   `order = 150, p = m = 30, rank(D) = 30`,
//! * [`PdnBuilder`] — a synthetic 14-port power-distribution network
//!   replacing the INC-board measurements of Example 2,
//! * [`rc_ladder`] / [`lc_line`] — physically-flavoured ladder networks
//!   for the runnable examples.

mod ladder;
mod mna;
mod pdn;
mod random_system;

pub use ladder::{lc_line, rc_ladder};
pub use mna::MnaNetlist;
pub use pdn::PdnBuilder;
pub use random_system::RandomSystemBuilder;
