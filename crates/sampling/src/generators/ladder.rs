//! Physically-flavoured ladder networks (RC diffusion line, lossy LC
//! transmission line) used by the runnable examples.

use mfti_numeric::RMatrix;
use mfti_statespace::{DescriptorSystem, StateSpaceError};

/// RC ladder (uniform diffusive line): `sections` identical series-R /
/// shunt-C cells driven by a voltage source, output = far-end node
/// voltage. A classic interconnect-delay model with all-real poles.
///
/// States are the capacitor voltages; the model is SISO.
///
/// # Errors
///
/// Returns [`StateSpaceError::DimensionMismatch`] for zero sections or
/// non-positive element values.
///
/// ```
/// use mfti_sampling::generators::rc_ladder;
/// use mfti_statespace::TransferFunction;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let line = rc_ladder(8, 100.0, 1e-12)?;
/// // DC: the ladder passes the source through (unit gain).
/// let dc = line.eval(mfti_numeric::Complex::ZERO)?;
/// assert!((dc[(0, 0)].re - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn rc_ladder(
    sections: usize,
    r_ohm: f64,
    c_farad: f64,
) -> Result<DescriptorSystem<f64>, StateSpaceError> {
    if sections == 0 || r_ohm <= 0.0 || c_farad <= 0.0 {
        return Err(StateSpaceError::DimensionMismatch {
            what: "need sections >= 1 and positive R, C",
        });
    }
    let n = sections;
    let g = 1.0 / (r_ohm * c_farad);
    // C dv_i/dt = (v_{i-1} − v_i)/R − (v_i − v_{i+1})/R, v_0 = u, open end.
    let mut a = RMatrix::zeros(n, n);
    for i in 0..n {
        let right_neighbor = if i + 1 < n { 1.0 } else { 0.0 };
        a[(i, i)] = -(1.0 + right_neighbor) * g;
        if i > 0 {
            a[(i, i - 1)] = g;
        }
        if i + 1 < n {
            a[(i, i + 1)] = g;
        }
    }
    let mut b = RMatrix::zeros(n, 1);
    b[(0, 0)] = g;
    let mut c = RMatrix::zeros(1, n);
    c[(0, n - 1)] = 1.0;
    DescriptorSystem::from_state_space(a, b, c, RMatrix::zeros(1, 1))
}

/// Lossy LC transmission line as a lumped ladder, exposed as a 2-port
/// admittance: inputs are the port voltages, outputs the port currents.
///
/// `sections` series R–L branches carry currents `i_k`; internal nodes
/// hold shunt capacitors. Resonances make this a good "peaky" example
/// workload for the fitting algorithms.
///
/// # Errors
///
/// Returns [`StateSpaceError::DimensionMismatch`] for fewer than two
/// sections or non-positive element values.
///
/// ```
/// use mfti_sampling::generators::lc_line;
///
/// # fn main() -> Result<(), mfti_statespace::StateSpaceError> {
/// let line = lc_line(10, 1e-9, 1e-12, 0.1)?;
/// assert_eq!(line.order(), 2 * 10 - 1);
/// assert!(line.is_stable()?);
/// # Ok(())
/// # }
/// ```
pub fn lc_line(
    sections: usize,
    l_henry: f64,
    c_farad: f64,
    r_ohm: f64,
) -> Result<DescriptorSystem<f64>, StateSpaceError> {
    if sections < 2 || l_henry <= 0.0 || c_farad <= 0.0 || r_ohm < 0.0 {
        return Err(StateSpaceError::DimensionMismatch {
            what: "need sections >= 2, positive L and C, non-negative R",
        });
    }
    let ns = sections; // inductor branches
    let nv = sections - 1; // internal capacitor nodes
    let n = ns + nv;
    // State order: [i_1 … i_ns, v_1 … v_nv].
    let mut a = RMatrix::zeros(n, n);
    let mut b = RMatrix::zeros(n, 2);
    // L di_k/dt = v_{k-1} − v_k − R i_k  (v_0 = u1, v_ns = u2)
    for k in 0..ns {
        a[(k, k)] = -r_ohm / l_henry;
        if k > 0 {
            a[(k, ns + k - 1)] = 1.0 / l_henry; // + v_{k-1}
        } else {
            b[(0, 0)] = 1.0 / l_henry; // + u1
        }
        if k < nv {
            a[(k, ns + k)] = -1.0 / l_henry; // − v_k
        } else {
            b[(ns - 1, 1)] = -1.0 / l_henry; // − u2
        }
    }
    // C dv_k/dt = i_k − i_{k+1}
    for k in 0..nv {
        a[(ns + k, k)] = 1.0 / c_farad;
        a[(ns + k, k + 1)] = -1.0 / c_farad;
    }
    // Outputs: port currents y1 = i_1 (into port 1), y2 = −i_ns (into
    // port 2 from the line side).
    let mut c = RMatrix::zeros(2, n);
    c[(0, 0)] = 1.0;
    c[(1, ns - 1)] = -1.0;
    DescriptorSystem::from_state_space(a, b, c, RMatrix::zeros(2, 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::Complex;
    use mfti_statespace::TransferFunction;

    #[test]
    fn rc_ladder_poles_are_real_and_stable() {
        let line = rc_ladder(6, 50.0, 2e-12).unwrap();
        for p in line.poles().unwrap() {
            assert!(p.re < 0.0, "unstable pole {p}");
            assert!(p.im.abs() < 1e-6 * p.re.abs(), "complex pole {p}");
        }
    }

    #[test]
    fn rc_ladder_is_a_lowpass() {
        let line = rc_ladder(5, 1000.0, 1e-9).unwrap();
        let dc = line.eval(Complex::ZERO).unwrap()[(0, 0)].abs();
        // Well above the cutoff the response must collapse.
        let hi = line.response_at_hz(1e9).unwrap()[(0, 0)].abs();
        assert!((dc - 1.0).abs() < 1e-9);
        assert!(hi < 1e-3 * dc);
    }

    #[test]
    fn lc_line_is_reciprocal_two_port() {
        let line = lc_line(8, 2e-9, 1e-12, 0.2).unwrap();
        let y = line.response_at_hz(2e8).unwrap();
        assert_eq!(y.dims(), (2, 2));
        // Reciprocity: Y12 = Y21.
        assert!(
            (y[(0, 1)] - y[(1, 0)]).abs() < 1e-10 * y.max_abs(),
            "Y12 {} vs Y21 {}",
            y[(0, 1)],
            y[(1, 0)]
        );
    }

    #[test]
    fn lc_line_has_resonances() {
        let line = lc_line(12, 1e-9, 1e-12, 0.05).unwrap();
        // |Y11| should vary by orders of magnitude across the band.
        let grid = mfti_statespace::bode::log_grid(1e7, 2e10, 200);
        let mags: Vec<f64> = grid
            .iter()
            .map(|&f| line.response_at_hz(f).unwrap()[(0, 0)].abs())
            .collect();
        let max = mags.iter().copied().fold(0.0, f64::max);
        let min = mags.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 50.0, "dynamic range {}", max / min);
    }

    #[test]
    fn invalid_elements_rejected() {
        assert!(rc_ladder(0, 1.0, 1.0).is_err());
        assert!(rc_ladder(3, -1.0, 1.0).is_err());
        assert!(lc_line(1, 1.0, 1.0, 0.0).is_err());
        assert!(lc_line(4, 0.0, 1.0, 0.0).is_err());
    }
}
