use mfti_numeric::CMatrix;
use mfti_statespace::TransferFunction;

use crate::grid::FrequencyGrid;
use crate::validate::{first_defect, SampleDefect, ValidatedSamples};
use crate::SamplingError;

/// Frequency-response samples: pairs `(f_i, S(f_i))` with
/// `S(f_i) ∈ ℂ^{p×m}` — the raw input of every fitting algorithm in the
/// workspace (Eq. 2 of the paper).
///
/// ```
/// use mfti_sampling::{FrequencyGrid, SampleSet};
/// use mfti_numeric::CMatrix;
///
/// # fn main() -> Result<(), mfti_sampling::SamplingError> {
/// let grid = FrequencyGrid::linear(1.0, 2.0, 2)?;
/// let mats = vec![CMatrix::identity(2), CMatrix::identity(2)];
/// let set = SampleSet::from_parts(grid.into_points(), mats)?;
/// assert_eq!(set.ports(), (2, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSet {
    freqs_hz: Vec<f64>,
    matrices: Vec<CMatrix>,
}

impl SampleSet {
    /// Builds a sample set from parallel vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InconsistentData`] when the lengths
    /// differ, the set is empty, or matrix shapes are inconsistent.
    pub fn from_parts(freqs_hz: Vec<f64>, matrices: Vec<CMatrix>) -> Result<Self, SamplingError> {
        if freqs_hz.is_empty() {
            return Err(SamplingError::InconsistentData {
                what: "empty sample set",
            });
        }
        if freqs_hz.len() != matrices.len() {
            return Err(SamplingError::InconsistentData {
                what: "frequency and matrix counts differ",
            });
        }
        let dims = matrices[0].dims();
        if matrices.iter().any(|m| m.dims() != dims) {
            return Err(SamplingError::InconsistentData {
                what: "matrices have inconsistent shapes",
            });
        }
        if freqs_hz.iter().any(|f| !f.is_finite()) {
            return Err(SamplingError::InconsistentData {
                what: "non-finite frequency",
            });
        }
        Ok(SampleSet { freqs_hz, matrices })
    }

    /// Samples a transfer function on a grid.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (e.g. a grid point on a pole).
    pub fn from_system<T: TransferFunction>(
        sys: &T,
        grid: &FrequencyGrid,
    ) -> Result<Self, SamplingError> {
        let matrices = sys.frequency_response(grid.points())?;
        Self::from_parts(grid.points().to_vec(), matrices)
    }

    /// Validates the set for fitting: at least two samples, finite
    /// frequencies and response entries, pairwise-distinct frequencies.
    /// Returns a borrow-token the generic fit drivers require, so every
    /// engine runs behind the same ingestion gate (DESIGN.md §8).
    ///
    /// Construction ([`SampleSet::from_parts`]) already rejects
    /// structural inconsistencies; this is the stricter *numeric* gate,
    /// kept separate because some consumers (plotting, noise
    /// injection, Touchstone round-trips) legitimately handle data a
    /// fitter must refuse.
    ///
    /// # Errors
    ///
    /// The first [`SampleDefect`] in sample order.
    pub fn validate(&self) -> Result<ValidatedSamples<'_>, SampleDefect> {
        match first_defect(self) {
            None => Ok(ValidatedSamples::new(self)),
            Some(defect) => Err(defect),
        }
    }

    /// Number of samples `k`.
    pub fn len(&self) -> usize {
        self.freqs_hz.len()
    }

    /// `true` when the set has no samples (not constructible publicly).
    pub fn is_empty(&self) -> bool {
        self.freqs_hz.is_empty()
    }

    /// `(outputs p, inputs m)` of the sampled response.
    pub fn ports(&self) -> (usize, usize) {
        self.matrices[0].dims()
    }

    /// Sampling frequencies in hertz.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Sampled matrices, parallel to [`SampleSet::freqs_hz`].
    pub fn matrices(&self) -> &[CMatrix] {
        &self.matrices
    }

    /// The `i`-th sample as a `(frequency, matrix)` pair.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> (f64, &CMatrix) {
        (self.freqs_hz[i], &self.matrices[i])
    }

    /// Iterates over `(frequency, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &CMatrix)> + '_ {
        self.freqs_hz.iter().copied().zip(self.matrices.iter())
    }

    /// Sub-set at the given sample indices (order preserved, repeats
    /// allowed).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InconsistentData`] for out-of-range
    /// indices or an empty selection.
    pub fn subset(&self, indices: &[usize]) -> Result<SampleSet, SamplingError> {
        if indices.is_empty() {
            return Err(SamplingError::InconsistentData {
                what: "empty subset selection",
            });
        }
        if indices.iter().any(|&i| i >= self.len()) {
            return Err(SamplingError::InconsistentData {
                what: "subset index out of range",
            });
        }
        Ok(SampleSet {
            freqs_hz: indices.iter().map(|&i| self.freqs_hz[i]).collect(),
            matrices: indices.iter().map(|&i| self.matrices[i].clone()).collect(),
        })
    }

    /// Largest entry magnitude across all samples (used for noise
    /// scaling and normalization).
    pub fn max_abs(&self) -> f64 {
        self.matrices
            .iter()
            .map(|m| m.max_abs())
            .fold(0.0, f64::max)
    }

    /// Merges two measurement runs into one set sorted by frequency
    /// (e.g. a low-band and a high-band VNA sweep).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InconsistentData`] when port counts
    /// differ or the runs share a frequency.
    pub fn merged(&self, other: &SampleSet) -> Result<SampleSet, SamplingError> {
        if self.ports() != other.ports() {
            return Err(SamplingError::InconsistentData {
                what: "cannot merge sample sets with different port counts",
            });
        }
        let mut pairs: Vec<(f64, CMatrix)> = self
            .iter()
            .chain(other.iter())
            .map(|(f, m)| (f, m.clone()))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(SamplingError::InconsistentData {
                what: "merged runs share a sampling frequency",
            });
        }
        let (freqs, mats) = pairs.into_iter().unzip();
        SampleSet::from_parts(freqs, mats)
    }

    /// Splits into `(fitting, validation)` sets by interleaving: even
    /// positions fit, odd positions validate — the standard holdout for
    /// judging a macromodel on data it never saw.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InconsistentData`] when fewer than four
    /// samples are available (each half needs at least two).
    pub fn split_interleaved(&self) -> Result<(SampleSet, SampleSet), SamplingError> {
        if self.len() < 4 {
            return Err(SamplingError::InconsistentData {
                what: "need at least four samples to split",
            });
        }
        let even: Vec<usize> = (0..self.len()).step_by(2).collect();
        let odd: Vec<usize> = (1..self.len()).step_by(2).collect();
        Ok((self.subset(&even)?, self.subset(&odd)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::c64;
    use mfti_statespace::DescriptorSystem;

    fn lowpass() -> DescriptorSystem<f64> {
        DescriptorSystem::from_state_space(
            mfti_numeric::RMatrix::from_diag(&[-1.0]),
            mfti_numeric::RMatrix::col_vector(&[1.0]),
            mfti_numeric::RMatrix::row_vector(&[1.0]),
            mfti_numeric::RMatrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn from_parts_validates() {
        assert!(SampleSet::from_parts(vec![], vec![]).is_err());
        assert!(SampleSet::from_parts(vec![1.0], vec![]).is_err());
        assert!(SampleSet::from_parts(
            vec![1.0, 2.0],
            vec![CMatrix::identity(1), CMatrix::identity(2)]
        )
        .is_err());
        assert!(SampleSet::from_parts(vec![f64::INFINITY], vec![CMatrix::identity(1)]).is_err());
    }

    #[test]
    fn from_system_evaluates_grid() {
        let grid = FrequencyGrid::linear(0.0, 1.0, 3).unwrap();
        let set = SampleSet::from_system(&lowpass(), &grid).unwrap();
        assert_eq!(set.len(), 3);
        // DC gain is 1.
        assert!((set.matrices()[0][(0, 0)] - c64(1.0, 0.0)).abs() < 1e-12);
        let (f, m) = set.get(2);
        assert_eq!(f, 1.0);
        assert!(m[(0, 0)].abs() < 1.0);
    }

    #[test]
    fn subset_selects_and_reorders() {
        let grid = FrequencyGrid::linear(0.0, 4.0, 5).unwrap();
        let set = SampleSet::from_system(&lowpass(), &grid).unwrap();
        let sub = set.subset(&[3, 1]).unwrap();
        assert_eq!(sub.freqs_hz(), &[3.0, 1.0]);
        assert!(set.subset(&[9]).is_err());
        assert!(set.subset(&[]).is_err());
    }

    #[test]
    fn merged_runs_sort_by_frequency() {
        let grid_lo = FrequencyGrid::linear(1.0, 3.0, 3).unwrap();
        let grid_hi = FrequencyGrid::linear(1.5, 2.5, 2).unwrap();
        let lo = SampleSet::from_system(&lowpass(), &grid_lo).unwrap();
        let hi = SampleSet::from_system(&lowpass(), &grid_hi).unwrap();
        let merged = lo.merged(&hi).unwrap();
        assert_eq!(merged.freqs_hz(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        // Duplicate frequency rejected.
        assert!(lo.merged(&lo).is_err());
    }

    #[test]
    fn merged_rejects_port_mismatch() {
        let a = SampleSet::from_parts(vec![1.0], vec![CMatrix::identity(1)]).unwrap();
        let b = SampleSet::from_parts(vec![2.0], vec![CMatrix::identity(2)]).unwrap();
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn interleaved_split_partitions_the_set() {
        let grid = FrequencyGrid::linear(0.0, 5.0, 6).unwrap();
        let set = SampleSet::from_system(&lowpass(), &grid).unwrap();
        let (fit, val) = set.split_interleaved().unwrap();
        assert_eq!(fit.freqs_hz(), &[0.0, 2.0, 4.0]);
        assert_eq!(val.freqs_hz(), &[1.0, 3.0, 5.0]);
        let tiny = set.subset(&[0, 1, 2]).unwrap();
        assert!(tiny.split_interleaved().is_err());
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let grid = FrequencyGrid::linear(0.0, 1.0, 2).unwrap();
        let set = SampleSet::from_system(&lowpass(), &grid).unwrap();
        let fs: Vec<f64> = set.iter().map(|(f, _)| f).collect();
        assert_eq!(fs, vec![0.0, 1.0]);
    }
}
