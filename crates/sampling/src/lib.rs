//! Frequency-domain sampling machinery and synthetic workloads for the
//! MFTI macromodeling workspace.
//!
//! The paper's algorithms consume scattering/admittance matrices sampled
//! at discrete frequencies ("measured through experiments or calculated
//! by EM simulators"). This crate provides everything around that data:
//!
//! * [`FrequencyGrid`] — uniform, logarithmic and *deliberately
//!   ill-conditioned* (high-band-clustered) sampling grids (paper
//!   Table 1, Test 2),
//! * [`SampleSet`] — a frequency-indexed set of complex response
//!   matrices, obtainable from any
//!   [`TransferFunction`](mfti_statespace::TransferFunction),
//! * [`NoiseModel`] — reproducible complex-Gaussian measurement noise,
//! * [`generators`] — seeded synthetic systems: the random order-150 /
//!   30-port system of Example 1, a 14-port power-distribution-network
//!   stand-in for the paper's INC-board measurements (see DESIGN.md §4),
//!   and RC/LC ladder networks for the examples,
//! * [`touchstone`] — plain-text Touchstone-style import/export.
//!
//! # Example
//!
//! ```
//! use mfti_sampling::{FrequencyGrid, SampleSet};
//! use mfti_sampling::generators::RandomSystemBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = RandomSystemBuilder::new(10, 2, 2).seed(7).build()?;
//! let grid = FrequencyGrid::log_space(1e2, 1e6, 32)?;
//! let samples = SampleSet::from_system(&sys, &grid)?;
//! assert_eq!(samples.len(), 32);
//! assert_eq!(samples.ports(), (2, 2));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod generators;
mod grid;
mod noise;
pub mod params;
mod sample;
pub mod touchstone;
mod validate;

pub use grid::FrequencyGrid;
pub use noise::NoiseModel;
pub use sample::SampleSet;
pub use validate::{SampleDefect, ValidatedSamples};

use std::error::Error;
use std::fmt;

/// Errors produced by the sampling machinery.
#[derive(Debug)]
#[non_exhaustive]
pub enum SamplingError {
    /// A grid constructor was given an invalid range or point count.
    InvalidGrid {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
    /// Frequencies and matrices disagree in count or the matrices have
    /// inconsistent shapes.
    InconsistentData {
        /// Human-readable description of the inconsistency.
        what: &'static str,
    },
    /// Evaluating the sampled system failed.
    System(mfti_statespace::StateSpaceError),
    /// A Touchstone file could not be parsed.
    Parse {
        /// Line number (1-based) where parsing failed, when known.
        line: usize,
        /// Human-readable description.
        what: String,
    },
    /// An I/O failure while reading or writing sample files.
    Io(std::io::Error),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidGrid { what } => write!(f, "invalid frequency grid: {what}"),
            SamplingError::InconsistentData { what } => {
                write!(f, "inconsistent sample data: {what}")
            }
            SamplingError::System(e) => write!(f, "system evaluation failed: {e}"),
            SamplingError::Parse { line, what } => {
                write!(f, "touchstone parse error at line {line}: {what}")
            }
            SamplingError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for SamplingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SamplingError::System(e) => Some(e),
            SamplingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mfti_statespace::StateSpaceError> for SamplingError {
    fn from(e: mfti_statespace::StateSpaceError) -> Self {
        SamplingError::System(e)
    }
}

impl From<std::io::Error> for SamplingError {
    fn from(e: std::io::Error) -> Self {
        SamplingError::Io(e)
    }
}
