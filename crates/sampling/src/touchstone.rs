//! Minimal Touchstone (v1, `.sNp`) reader/writer.
//!
//! Enough of the de-facto standard to exchange data with EM solvers and
//! VNA exports: `!` comments, the `#` option line (frequency unit,
//! RI/MA/DB formats, reference resistance), wrapped data lines, and the
//! classic 2-port column-major quirk (`S11 S21 S12 S22`). The port count
//! is not encoded in v1 files (it lives in the file extension), so the
//! reader takes it explicitly.
//!
//! Hand-rolled on purpose: no serialization dependency pulls its weight
//! for a whitespace-separated text format (see DESIGN.md §6).

use std::io::{BufRead, BufReader, Read, Write};

use mfti_numeric::{c64, CMatrix, Complex};

use crate::sample::SampleSet;
use crate::SamplingError;

/// Number format of the complex entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Real/imaginary pairs.
    #[default]
    Ri,
    /// Magnitude (linear) and angle in degrees.
    Ma,
    /// Magnitude in dB and angle in degrees.
    Db,
}

/// Frequency unit of the first column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrequencyUnit {
    /// Hertz.
    Hz,
    /// Kilohertz.
    KHz,
    /// Megahertz.
    MHz,
    /// Gigahertz (the Touchstone default).
    #[default]
    GHz,
}

impl FrequencyUnit {
    fn multiplier(self) -> f64 {
        match self {
            FrequencyUnit::Hz => 1.0,
            FrequencyUnit::KHz => 1e3,
            FrequencyUnit::MHz => 1e6,
            FrequencyUnit::GHz => 1e9,
        }
    }

    fn keyword(self) -> &'static str {
        match self {
            FrequencyUnit::Hz => "HZ",
            FrequencyUnit::KHz => "KHZ",
            FrequencyUnit::MHz => "MHZ",
            FrequencyUnit::GHz => "GHZ",
        }
    }
}

/// Options controlling [`write()`]; defaults match common tool output
/// (`# HZ S RI R 50`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOptions {
    /// Number format.
    pub format: Format,
    /// Frequency unit of the first column.
    pub unit: FrequencyUnit,
    /// Reference resistance in ohms.
    pub resistance: f64,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            format: Format::Ri,
            unit: FrequencyUnit::Hz,
            resistance: 50.0,
        }
    }
}

/// Writes a sample set in Touchstone v1 format.
///
/// # Errors
///
/// Returns [`SamplingError::InconsistentData`] for non-square sample
/// matrices (Touchstone describes n-ports) and propagates I/O failures.
pub fn write<W: Write>(
    mut w: W,
    samples: &SampleSet,
    options: WriteOptions,
) -> Result<(), SamplingError> {
    let (p, m) = samples.ports();
    if p != m {
        return Err(SamplingError::InconsistentData {
            what: "touchstone requires square (n-port) matrices",
        });
    }
    writeln!(w, "! exported by mfti-sampling")?;
    writeln!(
        w,
        "# {} S {} R {}",
        options.unit.keyword(),
        match options.format {
            Format::Ri => "RI",
            Format::Ma => "MA",
            Format::Db => "DB",
        },
        options.resistance
    )?;
    let mult = options.unit.multiplier();
    for (f_hz, s) in samples.iter() {
        write!(w, "{:.12e}", f_hz / mult)?;
        for (i, j) in entry_order(p) {
            let z = s[(i, j)];
            let (a, b) = match options.format {
                Format::Ri => (z.re, z.im),
                Format::Ma => (z.abs(), z.arg().to_degrees()),
                Format::Db => (20.0 * z.abs().log10(), z.arg().to_degrees()),
            };
            write!(w, " {a:.12e} {b:.12e}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a Touchstone v1 stream with a known port count.
///
/// # Errors
///
/// Returns [`SamplingError::Parse`] for malformed numbers, truncated
/// records or unknown option keywords, and propagates I/O failures.
pub fn read<R: Read>(r: R, ports: usize) -> Result<SampleSet, SamplingError> {
    if ports == 0 {
        return Err(SamplingError::InconsistentData {
            what: "port count must be positive",
        });
    }
    let reader = BufReader::new(r);
    let mut unit = FrequencyUnit::default();
    let mut format = Format::default();
    let mut saw_options = false;
    let mut tokens: Vec<(f64, usize)> = Vec::new(); // (value, source line)

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let body = match line.find('!') {
            Some(pos) => &line[..pos],
            None => &line[..],
        };
        let body = body.trim();
        if body.is_empty() {
            continue;
        }
        if let Some(rest) = body.strip_prefix('#') {
            if saw_options {
                continue; // later option lines are ignored (v1 behaviour)
            }
            saw_options = true;
            let mut words = rest.split_whitespace().map(str::to_ascii_uppercase);
            while let Some(word) = words.next() {
                match word.as_str() {
                    "HZ" => unit = FrequencyUnit::Hz,
                    "KHZ" => unit = FrequencyUnit::KHz,
                    "MHZ" => unit = FrequencyUnit::MHz,
                    "GHZ" => unit = FrequencyUnit::GHz,
                    "RI" => format = Format::Ri,
                    "MA" => format = Format::Ma,
                    "DB" => format = Format::Db,
                    "S" | "Y" | "Z" | "G" | "H" => {} // parameter type: carried by caller
                    "R" => {
                        let _ = words.next(); // reference resistance value
                    }
                    other => {
                        return Err(SamplingError::Parse {
                            line: lineno,
                            what: format!("unknown option keyword `{other}`"),
                        })
                    }
                }
            }
            continue;
        }
        for tok in body.split_whitespace() {
            let value = tok.parse::<f64>().map_err(|_| SamplingError::Parse {
                line: lineno,
                what: format!("not a number: `{tok}`"),
            })?;
            tokens.push((value, lineno));
        }
    }

    let per_record = 1 + 2 * ports * ports;
    if tokens.is_empty() || !tokens.len().is_multiple_of(per_record) {
        return Err(SamplingError::Parse {
            line: tokens.last().map_or(0, |t| t.1),
            what: format!(
                "token count {} is not a multiple of {per_record} (1 + 2·p²)",
                tokens.len()
            ),
        });
    }

    let mult = unit.multiplier();
    let order = entry_order(ports);
    let mut freqs = Vec::new();
    let mut mats = Vec::new();
    for rec in tokens.chunks(per_record) {
        freqs.push(rec[0].0 * mult);
        let mut mat = CMatrix::zeros(ports, ports);
        for (slot, &(i, j)) in order.iter().enumerate() {
            let a = rec[1 + 2 * slot].0;
            let b = rec[2 + 2 * slot].0;
            mat[(i, j)] = decode(format, a, b);
        }
        mats.push(mat);
    }
    SampleSet::from_parts(freqs, mats)
}

fn decode(format: Format, a: f64, b: f64) -> Complex {
    match format {
        Format::Ri => c64(a, b),
        Format::Ma => Complex::from_polar(a, b.to_radians()),
        Format::Db => Complex::from_polar(10f64.powf(a / 20.0), b.to_radians()),
    }
}

/// Entry order used on disk: row-major for every port count except the
/// historical 2-port quirk (`S11 S21 S12 S22`).
fn entry_order(ports: usize) -> Vec<(usize, usize)> {
    if ports == 2 {
        vec![(0, 0), (1, 0), (0, 1), (1, 1)]
    } else {
        (0..ports)
            .flat_map(|i| (0..ports).map(move |j| (i, j)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set(k: usize, n: usize) -> SampleSet {
        let freqs: Vec<f64> = (1..=k).map(|i| i as f64 * 1e9).collect();
        let mats: Vec<CMatrix> = (0..k)
            .map(|t| {
                CMatrix::from_fn(n, n, |i, j| {
                    c64(
                        (t + i) as f64 * 0.1 - j as f64 * 0.05,
                        (t * 7 + i * 3 + j) as f64 * 0.01 - 0.1,
                    )
                })
            })
            .collect();
        SampleSet::from_parts(freqs, mats).unwrap()
    }

    fn roundtrip(set: &SampleSet, opts: WriteOptions) -> SampleSet {
        let mut buf = Vec::new();
        write(&mut buf, set, opts).unwrap();
        read(buf.as_slice(), set.ports().0).unwrap()
    }

    #[test]
    fn ri_roundtrip_is_exact_within_print_precision() {
        let set = sample_set(4, 3);
        let back = roundtrip(&set, WriteOptions::default());
        assert_eq!(back.len(), set.len());
        for ((f1, a), (f2, b)) in set.iter().zip(back.iter()) {
            assert!((f1 - f2).abs() < 1e-3);
            assert!((&(b.clone()) - a).max_abs() < 1e-10);
        }
    }

    #[test]
    fn ma_and_db_formats_roundtrip() {
        let set = sample_set(3, 2);
        for format in [Format::Ma, Format::Db] {
            let back = roundtrip(
                &set,
                WriteOptions {
                    format,
                    unit: FrequencyUnit::GHz,
                    resistance: 75.0,
                },
            );
            for ((_, a), (_, b)) in set.iter().zip(back.iter()) {
                assert!(
                    (&(b.clone()) - a).max_abs() < 1e-9,
                    "roundtrip failed for {format:?}"
                );
            }
        }
    }

    #[test]
    fn two_port_quirk_order_is_used() {
        // Write a 2-port set, check that token 2 (after frequency) is S21.
        let set = sample_set(1, 2);
        let mut buf = Vec::new();
        write(&mut buf, &set, WriteOptions::default()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let data_line = text.lines().last().unwrap();
        let toks: Vec<f64> = data_line
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        let s21 = set.matrices()[0][(1, 0)];
        assert!((toks[3] - s21.re).abs() < 1e-12);
        assert!((toks[4] - s21.im).abs() < 1e-12);
    }

    #[test]
    fn comments_and_wrapped_lines_are_tolerated() {
        let text = "! header comment\n\
                    # MHZ S RI R 50\n\
                    1.0 0.5 -0.25 ! trailing comment\n\
                    \n\
                    2.0\n\
                    0.25 0.125\n";
        let set = read(text.as_bytes(), 1).unwrap();
        assert_eq!(set.len(), 2);
        assert!((set.freqs_hz()[0] - 1e6).abs() < 1e-6);
        assert_eq!(set.matrices()[1][(0, 0)], c64(0.25, 0.125));
    }

    #[test]
    fn option_defaults_are_ghz_ma() {
        // No option line: Touchstone defaults GHz / MA.
        let text = "1.0 1.0 0.0\n";
        let set = read(text.as_bytes(), 1).unwrap();
        assert!((set.freqs_hz()[0] - 1e9).abs() < 1.0);
        assert_eq!(set.matrices()[0][(0, 0)], c64(1.0, 0.0));
    }

    #[test]
    fn malformed_input_is_reported_with_line_numbers() {
        let bad_number = "# HZ S RI R 50\n1.0 abc 0.0\n";
        match read(bad_number.as_bytes(), 1) {
            Err(SamplingError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let truncated = "# HZ S RI R 50\n1.0 0.5\n";
        assert!(matches!(
            read(truncated.as_bytes(), 1),
            Err(SamplingError::Parse { .. })
        ));
        let unknown = "# HZ S XYZ R 50\n";
        assert!(matches!(
            read(unknown.as_bytes(), 1),
            Err(SamplingError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn non_square_write_is_rejected() {
        let set = SampleSet::from_parts(vec![1.0], vec![CMatrix::zeros(2, 3)]).unwrap();
        assert!(matches!(
            write(Vec::new(), &set, WriteOptions::default()),
            Err(SamplingError::InconsistentData { .. })
        ));
    }
}
