use crate::SamplingError;

/// An ordered set of sampling frequencies in hertz.
///
/// The constructors cover the three sampling regimes the paper evaluates:
/// uniform grids (Table 1, Test 1), logarithmic grids (Fig. 2's plotting
/// band) and grids *poorly distributed in the band of interest* —
/// clustered in the high-frequency end — which make the interpolation
/// problem ill-conditioned (Table 1, Test 2).
///
/// ```
/// use mfti_sampling::FrequencyGrid;
///
/// # fn main() -> Result<(), mfti_sampling::SamplingError> {
/// let g = FrequencyGrid::linear(10.0, 50.0, 5)?;
/// assert_eq!(g.points(), &[10.0, 20.0, 30.0, 40.0, 50.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyGrid {
    points_hz: Vec<f64>,
}

impl FrequencyGrid {
    /// Uniformly spaced grid over `[f_lo, f_hi]` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidGrid`] unless
    /// `0 ≤ f_lo < f_hi` and `points ≥ 2`.
    pub fn linear(f_lo: f64, f_hi: f64, points: usize) -> Result<Self, SamplingError> {
        if !(f_lo >= 0.0 && f_hi > f_lo) {
            return Err(SamplingError::InvalidGrid {
                what: "need 0 <= f_lo < f_hi",
            });
        }
        if points < 2 {
            return Err(SamplingError::InvalidGrid {
                what: "need at least two points",
            });
        }
        let step = (f_hi - f_lo) / (points - 1) as f64;
        Ok(FrequencyGrid {
            points_hz: (0..points).map(|i| f_lo + step * i as f64).collect(),
        })
    }

    /// Logarithmically spaced grid over `[f_lo, f_hi]` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidGrid`] unless
    /// `0 < f_lo < f_hi` and `points ≥ 2`.
    pub fn log_space(f_lo: f64, f_hi: f64, points: usize) -> Result<Self, SamplingError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(SamplingError::InvalidGrid {
                what: "need 0 < f_lo < f_hi",
            });
        }
        if points < 2 {
            return Err(SamplingError::InvalidGrid {
                what: "need at least two points",
            });
        }
        Ok(FrequencyGrid {
            points_hz: mfti_statespace::bode::log_grid(f_lo, f_hi, points),
        })
    }

    /// Ill-conditioned grid: `frac_high` of the points crowd into the top
    /// `top_decades` decades of the band, the remainder sparsely covers
    /// the rest (paper Table 1, Test 2: "100 poorly distributed samples
    /// concentrated in the high-frequency band").
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidGrid`] for invalid ranges, counts
    /// `< 4`, `frac_high ∉ (0, 1)` or non-positive `top_decades`.
    pub fn clustered_high(
        f_lo: f64,
        f_hi: f64,
        points: usize,
        frac_high: f64,
        top_decades: f64,
    ) -> Result<Self, SamplingError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(SamplingError::InvalidGrid {
                what: "need 0 < f_lo < f_hi",
            });
        }
        if points < 4 {
            return Err(SamplingError::InvalidGrid {
                what: "need at least four points",
            });
        }
        if !(frac_high > 0.0 && frac_high < 1.0) {
            return Err(SamplingError::InvalidGrid {
                what: "frac_high must lie strictly between 0 and 1",
            });
        }
        if top_decades <= 0.0 {
            return Err(SamplingError::InvalidGrid {
                what: "top_decades must be positive",
            });
        }
        let total_decades = (f_hi / f_lo).log10();
        let top = top_decades.min(total_decades * 0.5);
        let split = f_hi / 10f64.powf(top);
        let n_high = ((points as f64) * frac_high).round() as usize;
        let n_high = n_high.clamp(2, points - 2);
        let n_low = points - n_high;
        let mut pts = mfti_statespace::bode::log_grid(f_lo, split, n_low + 1);
        pts.pop(); // avoid duplicating the split point
        pts.extend(mfti_statespace::bode::log_grid(split, f_hi, n_high));
        Ok(FrequencyGrid { points_hz: pts })
    }

    /// Grid from explicit points (sorted ascending, duplicates removed).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidGrid`] for empty input or
    /// non-finite/negative frequencies.
    pub fn from_points(mut points_hz: Vec<f64>) -> Result<Self, SamplingError> {
        if points_hz.is_empty() {
            return Err(SamplingError::InvalidGrid {
                what: "at least one point required",
            });
        }
        if points_hz.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return Err(SamplingError::InvalidGrid {
                what: "frequencies must be finite and non-negative",
            });
        }
        points_hz.sort_by(f64::total_cmp);
        points_hz.dedup();
        Ok(FrequencyGrid { points_hz })
    }

    /// The frequencies in hertz, ascending.
    pub fn points(&self) -> &[f64] {
        &self.points_hz
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points_hz.len()
    }

    /// `true` for an empty grid (not constructible via the public API).
    pub fn is_empty(&self) -> bool {
        self.points_hz.is_empty()
    }

    /// Consumes the grid, returning the raw frequency vector.
    pub fn into_points(self) -> Vec<f64> {
        self.points_hz
    }

    /// Keeps every `stride`-th point starting at `offset` (used to thin a
    /// measurement grid into a fitting grid plus a validation grid).
    ///
    /// # Panics
    ///
    /// Panics when `stride == 0`.
    pub fn decimate(&self, stride: usize, offset: usize) -> FrequencyGrid {
        assert!(stride > 0, "stride must be positive");
        FrequencyGrid {
            points_hz: self
                .points_hz
                .iter()
                .skip(offset)
                .step_by(stride)
                .copied()
                .collect(),
        }
    }
}

impl AsRef<[f64]> for FrequencyGrid {
    fn as_ref(&self) -> &[f64] {
        &self.points_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_grid_has_exact_endpoints() {
        let g = FrequencyGrid::linear(0.0, 1.0, 11).unwrap();
        assert_eq!(g.len(), 11);
        assert_eq!(g.points()[0], 0.0);
        assert_eq!(g.points()[10], 1.0);
    }

    #[test]
    fn log_grid_is_geometric() {
        let g = FrequencyGrid::log_space(1.0, 1e4, 5).unwrap();
        for w in g.points().windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clustered_grid_crowds_the_top() {
        let g = FrequencyGrid::clustered_high(1e1, 1e9, 100, 0.85, 1.0).unwrap();
        assert_eq!(g.len(), 100);
        let split = 1e8;
        let high = g.points().iter().filter(|&&f| f >= split * 0.999).count();
        assert!(high >= 80, "expected >=80 points in top decade, got {high}");
        assert!(g.points().windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn invalid_ranges_are_rejected() {
        assert!(FrequencyGrid::linear(5.0, 5.0, 3).is_err());
        assert!(FrequencyGrid::linear(-1.0, 5.0, 3).is_err());
        assert!(FrequencyGrid::log_space(0.0, 5.0, 3).is_err());
        assert!(FrequencyGrid::linear(0.0, 1.0, 1).is_err());
        assert!(FrequencyGrid::clustered_high(1.0, 10.0, 10, 1.5, 1.0).is_err());
        assert!(FrequencyGrid::from_points(vec![]).is_err());
        assert!(FrequencyGrid::from_points(vec![f64::NAN]).is_err());
    }

    #[test]
    fn from_points_sorts_and_dedups() {
        let g = FrequencyGrid::from_points(vec![3.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(g.points(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn decimate_splits_grid() {
        let g = FrequencyGrid::linear(0.0, 9.0, 10).unwrap();
        let even = g.decimate(2, 0);
        let odd = g.decimate(2, 1);
        assert_eq!(even.len(), 5);
        assert_eq!(odd.len(), 5);
        assert_eq!(even.points()[1], 2.0);
        assert_eq!(odd.points()[0], 1.0);
    }
}
