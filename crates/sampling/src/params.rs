//! Network-parameter conversions (scattering ↔ admittance).
//!
//! Measurement gear produces S-parameters; circuit solvers often want
//! Y-parameters. For a uniform real reference impedance `Z₀` the maps
//! are the standard bilinear transforms
//!
//! ```text
//! S = (I − Z₀Y)(I + Z₀Y)⁻¹        Y = (1/Z₀)(I + S)⁻¹(I − S)
//! ```
//!
//! applied sample-by-sample. Both directions are exposed on
//! [`SampleSet`]-shaped data so fitted models can be compared in either
//! domain.

use mfti_numeric::{CMatrix, Lu};

use crate::sample::SampleSet;
use crate::SamplingError;

/// Converts admittance samples to scattering samples with reference
/// impedance `z0_ohm` (uniform across ports).
///
/// # Errors
///
/// Returns [`SamplingError::InconsistentData`] for non-square samples,
/// non-positive `z0_ohm`, or when `I + Z₀Y` is singular at some
/// frequency (a pathological, exactly-reflective network).
pub fn admittance_to_scattering(
    samples: &SampleSet,
    z0_ohm: f64,
) -> Result<SampleSet, SamplingError> {
    convert(samples, z0_ohm, Direction::YToS)
}

/// Converts scattering samples to admittance samples with reference
/// impedance `z0_ohm`.
///
/// # Errors
///
/// As [`admittance_to_scattering`]; singular `I + S` means the network
/// has a pole of `Y` at that frequency (e.g. an ideal open).
pub fn scattering_to_admittance(
    samples: &SampleSet,
    z0_ohm: f64,
) -> Result<SampleSet, SamplingError> {
    convert(samples, z0_ohm, Direction::SToY)
}

enum Direction {
    YToS,
    SToY,
}

fn convert(
    samples: &SampleSet,
    z0_ohm: f64,
    direction: Direction,
) -> Result<SampleSet, SamplingError> {
    let (p, m) = samples.ports();
    if p != m {
        return Err(SamplingError::InconsistentData {
            what: "network-parameter conversion requires square matrices",
        });
    }
    if !(z0_ohm > 0.0 && z0_ohm.is_finite()) {
        return Err(SamplingError::InconsistentData {
            what: "reference impedance must be positive and finite",
        });
    }
    let eye = CMatrix::identity(p);
    let mut out = Vec::with_capacity(samples.len());
    for (_, mat) in samples.iter() {
        let converted = match direction {
            Direction::YToS => {
                let z0y = mat.map(|z| z.scale(z0_ohm));
                let denom = &eye + &z0y;
                let lu = Lu::compute(&denom).map_err(numeric_to_sampling)?;
                if lu.is_singular() {
                    return Err(SamplingError::InconsistentData {
                        what: "I + Z0*Y singular: network exactly reflective",
                    });
                }
                let inv = lu.inverse().map_err(numeric_to_sampling)?;
                (&eye - &z0y).matmul(&inv).map_err(numeric_to_sampling)?
            }
            Direction::SToY => {
                let denom = &eye + mat;
                let lu = Lu::compute(&denom).map_err(numeric_to_sampling)?;
                if lu.is_singular() {
                    return Err(SamplingError::InconsistentData {
                        what: "I + S singular: admittance pole at this frequency",
                    });
                }
                let inv = lu.inverse().map_err(numeric_to_sampling)?;
                inv.matmul(&(&eye - mat))
                    .map_err(numeric_to_sampling)?
                    .map(|z| z.scale(1.0 / z0_ohm))
            }
        };
        out.push(converted);
    }
    SampleSet::from_parts(samples.freqs_hz().to_vec(), out)
}

fn numeric_to_sampling(e: mfti_numeric::NumericError) -> SamplingError {
    SamplingError::System(mfti_statespace::StateSpaceError::Numeric(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::{c64, Complex};

    fn y_samples() -> SampleSet {
        // A passive-looking 2-port admittance at two frequencies.
        let y1 = CMatrix::from_rows(&[
            vec![c64(0.02, 0.005), c64(-0.01, 0.0)],
            vec![c64(-0.01, 0.0), c64(0.02, -0.003)],
        ])
        .unwrap();
        let y2 = y1.map(|z| z * c64(1.1, 0.2));
        SampleSet::from_parts(vec![1e6, 2e6], vec![y1, y2]).unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let y = y_samples();
        let s = admittance_to_scattering(&y, 50.0).unwrap();
        let back = scattering_to_admittance(&s, 50.0).unwrap();
        for ((_, a), (_, b)) in y.iter().zip(back.iter()) {
            assert!((&(b.clone()) - a).max_abs() < 1e-12 * a.max_abs());
        }
    }

    #[test]
    fn matched_termination_maps_to_zero_reflection() {
        // Y = (1/Z0)·I  ⇔  S = 0.
        let z0 = 50.0;
        let y = SampleSet::from_parts(
            vec![1.0],
            vec![CMatrix::identity(2).map(|z: Complex| z.scale(1.0 / z0))],
        )
        .unwrap();
        let s = admittance_to_scattering(&y, z0).unwrap();
        assert!(s.matrices()[0].max_abs() < 1e-14);
    }

    #[test]
    fn short_circuit_reflects_fully() {
        // Y → ∞ is not representable; an open (Y = 0) gives S = I.
        let y = SampleSet::from_parts(vec![1.0], vec![CMatrix::zeros(2, 2)]).unwrap();
        let s = admittance_to_scattering(&y, 50.0).unwrap();
        assert!((&s.matrices()[0].clone() - &CMatrix::identity(2)).max_abs() < 1e-14);
    }

    #[test]
    fn passive_admittance_gives_bounded_scattering() {
        let y = y_samples();
        let s = admittance_to_scattering(&y, 50.0).unwrap();
        for (_, m) in s.iter() {
            assert!(m.norm_2() <= 1.0 + 1e-9, "|S| = {}", m.norm_2());
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let rect = SampleSet::from_parts(vec![1.0], vec![CMatrix::zeros(2, 3)]).unwrap();
        assert!(admittance_to_scattering(&rect, 50.0).is_err());
        let y = y_samples();
        assert!(admittance_to_scattering(&y, 0.0).is_err());
        assert!(scattering_to_admittance(&y, f64::NAN).is_err());
        // S = -I makes I + S singular.
        let s = SampleSet::from_parts(vec![1.0], vec![CMatrix::identity(2).map(|z: Complex| -z)])
            .unwrap();
        assert!(scattering_to_admittance(&s, 50.0).is_err());
    }
}
