//! Reproducible measurement-noise models.
//!
//! Table 1 of the paper interpolates *noisy* data; this module perturbs a
//! [`SampleSet`] with seeded complex Gaussian noise so that every
//! experiment in the repo is bit-reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mfti_numeric::c64;

use crate::sample::SampleSet;

/// A measurement-noise model applied to frequency samples.
///
/// ```
/// use mfti_sampling::{FrequencyGrid, NoiseModel, SampleSet};
/// use mfti_numeric::CMatrix;
///
/// # fn main() -> Result<(), mfti_sampling::SamplingError> {
/// let set = SampleSet::from_parts(
///     vec![1.0, 2.0],
///     vec![CMatrix::identity(2), CMatrix::identity(2)],
/// )?;
/// let noisy = NoiseModel::additive_relative(1e-3).apply(&set, 42);
/// assert_eq!(noisy.len(), set.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    /// Adds complex Gaussian noise with RMS `sigma · rms(S(f_i))`
    /// per entry (noise floor proportional to the *sample* energy).
    AdditiveRelative {
        /// Relative noise level.
        sigma: f64,
    },
    /// Multiplies each entry by `1 + sigma·(g₁ + j·g₂)/√2`
    /// (gain/phase ripple, like imperfect calibration).
    Multiplicative {
        /// Relative noise level.
        sigma: f64,
    },
}

impl NoiseModel {
    /// Additive complex Gaussian noise with per-entry RMS equal to
    /// `sigma` times the RMS entry magnitude of each sample matrix.
    ///
    /// `sigma = 10^(−SNR_dB/20)`; e.g. `1e-3` ≈ 60 dB SNR.
    pub fn additive_relative(sigma: f64) -> Self {
        NoiseModel {
            kind: Kind::AdditiveRelative { sigma },
        }
    }

    /// Multiplicative (gain/phase ripple) noise of relative size `sigma`.
    pub fn multiplicative(sigma: f64) -> Self {
        NoiseModel {
            kind: Kind::Multiplicative { sigma },
        }
    }

    /// The relative noise level σ.
    pub fn sigma(&self) -> f64 {
        match self.kind {
            Kind::AdditiveRelative { sigma } | Kind::Multiplicative { sigma } => sigma,
        }
    }

    /// Applies the noise model, returning a perturbed copy (the clean set
    /// is left untouched so fitting errors can be measured against it).
    pub fn apply(&self, samples: &SampleSet, seed: u64) -> SampleSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let (p, m) = samples.ports();
        let mut mats = Vec::with_capacity(samples.len());
        for (_, s) in samples.iter() {
            let mut out = s.clone();
            match self.kind {
                Kind::AdditiveRelative { sigma } => {
                    // RMS entry magnitude of this sample.
                    let rms = (s.norm_fro().powi(2) / (p * m) as f64).sqrt();
                    let scale = sigma * rms / 2f64.sqrt();
                    for i in 0..p {
                        for j in 0..m {
                            let dz = c64(gaussian(&mut rng), gaussian(&mut rng)).scale(scale);
                            out[(i, j)] += dz;
                        }
                    }
                }
                Kind::Multiplicative { sigma } => {
                    let scale = sigma / 2f64.sqrt();
                    for i in 0..p {
                        for j in 0..m {
                            let g =
                                c64(1.0 + gaussian(&mut rng) * scale, gaussian(&mut rng) * scale);
                            out[(i, j)] *= g;
                        }
                    }
                }
            }
            mats.push(out);
        }
        SampleSet::from_parts(samples.freqs_hz().to_vec(), mats)
            // mfti-lint: allow(MFTI-D7) — the perturbed set reuses the
            // validated input's frequencies and matrix dims one-to-one
            .expect("shape preserved by construction")
    }
}

/// Standard normal deviate via Box–Muller (rand 0.8 ships only uniform
/// distributions without the `rand_distr` add-on).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_numeric::CMatrix;

    fn unit_samples(k: usize, n: usize) -> SampleSet {
        SampleSet::from_parts(
            (0..k).map(|i| i as f64 + 1.0).collect(),
            (0..k).map(|_| CMatrix::identity(n)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn additive_noise_has_requested_magnitude() {
        let clean = unit_samples(50, 4);
        let sigma = 1e-2;
        let noisy = NoiseModel::additive_relative(sigma).apply(&clean, 7);
        // Average relative perturbation should be within 2x of sigma.
        let mut total = 0.0;
        for ((_, a), (_, b)) in clean.iter().zip(noisy.iter()) {
            total += (&(b.clone()) - a).norm_fro() / a.norm_fro();
        }
        let mean = total / clean.len() as f64;
        assert!(
            mean > sigma * 0.5 && mean < sigma * 2.0,
            "mean relative noise {mean}, requested {sigma}"
        );
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let clean = unit_samples(5, 2);
        let a = NoiseModel::additive_relative(1e-3).apply(&clean, 99);
        let b = NoiseModel::additive_relative(1e-3).apply(&clean, 99);
        let c = NoiseModel::additive_relative(1e-3).apply(&clean, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn multiplicative_noise_scales_entries() {
        let clean = unit_samples(20, 3);
        let noisy = NoiseModel::multiplicative(0.05).apply(&clean, 1);
        // Identity entries become ≈1, off-diagonals stay 0 (multiplicative).
        let (_, m) = noisy.get(0);
        assert!(m[(0, 1)].abs() == 0.0);
        assert!((m[(0, 0)].abs() - 1.0).abs() < 0.5);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let g = gaussian(&mut rng);
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
