//! Integration tests of the mfti-core pipeline at the crate boundary:
//! the staged API (data → pencil → realify → realize, and its stateful
//! [`FitSession`] packaging) must compose the same way the one-call
//! [`Fitter`] implementations do.

use mfti_core::{
    metrics, realify, realize_complex, realize_real, DirectionKind, FitSession, FittedModel,
    Fitter, LoewnerPencil, Mfti, OrderSelection, TangentialData, Vfti, Weights,
};
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};
use mfti_statespace::TransferFunction;

fn workload() -> SampleSet {
    let dut = RandomSystemBuilder::new(10, 2, 2)
        .band(1e3, 1e6)
        .d_rank(2)
        .seed(404)
        .build()
        .expect("valid");
    let grid = FrequencyGrid::log_space(1e3, 1e6, 12).expect("grid");
    SampleSet::from_system(&dut, &grid).expect("sampling")
}

#[test]
fn staged_api_matches_the_one_call_fitter() {
    let samples = workload();

    // One-call path (generic Fitter surface).
    let fit = Mfti::new().fit(&samples).expect("fit");

    // Staged path with the same configuration.
    let data = TangentialData::build(&samples, DirectionKind::default(), &Weights::Uniform(2))
        .expect("data");
    let pencil = LoewnerPencil::build(&data).expect("pencil");
    let sv = pencil
        .shifted_pencil_singular_values(pencil.default_x0())
        .expect("svd");
    let order = OrderSelection::default().detect(&sv).expect("order");
    assert_eq!(order, fit.order());
    let real = realify(&pencil, 1e-6).expect("realify");
    let staged = realize_real(&real, order).expect("realize");

    // Session path: same stages, owned state.
    let mut session = FitSession::new(Mfti::new());
    session.append(&samples).expect("append");
    let from_session = session.realize().expect("realize");
    assert_eq!(from_session.order(), fit.order());

    for (f, _) in samples.iter().take(4) {
        let a = fit.model().response_at_hz(f).expect("eval");
        let b = staged.response_at_hz(f).expect("eval");
        let c = from_session.model().response_at_hz(f).expect("eval");
        assert!(
            (&a - &b).norm_2() < 1e-8 * a.norm_2().max(1e-12),
            "staged and one-call paths disagree at {f} Hz"
        );
        assert!(
            (&a - &c).norm_2() < 1e-8 * a.norm_2().max(1e-12),
            "session and one-call paths disagree at {f} Hz"
        );
    }
}

#[test]
fn complex_and_real_realizations_share_the_transfer_function() {
    let samples = workload();
    let data = TangentialData::build(
        &samples,
        DirectionKind::RandomOrthonormal { seed: 8 },
        &Weights::Uniform(2),
    )
    .expect("data");
    let pencil = LoewnerPencil::build(&data).expect("pencil");
    let sv = pencil
        .shifted_pencil_singular_values(pencil.default_x0())
        .expect("svd");
    let order = OrderSelection::Threshold(1e-10).detect(&sv).expect("order");
    let cplx = realize_complex(&pencil, pencil.default_x0(), order).expect("complex");
    let real = realize_real(&realify(&pencil, 1e-8).expect("realify"), order).expect("real");
    for (f, s) in samples.iter() {
        let a = cplx.response_at_hz(f).expect("eval");
        let b = real.response_at_hz(f).expect("eval");
        assert!((&a - s).norm_2() / s.norm_2() < 1e-7);
        assert!((&b - s).norm_2() / s.norm_2() < 1e-7);
    }
}

#[test]
fn fitted_model_accessors_are_consistent() {
    let samples = workload();
    let real_fit = Mfti::new().fit(&samples).expect("real fit");
    let model = real_fit.model().as_fitted().expect("loewner model");
    match model {
        FittedModel::Real(sys) => {
            assert_eq!(sys.order(), real_fit.order());
            assert_eq!(model.order(), sys.order());
            assert!(real_fit.model().as_real().is_some());
            assert!(real_fit.model().as_complex().is_none());
            assert!(real_fit.model().as_rational().is_none());
        }
        FittedModel::Complex(_) => panic!("default path must be real"),
    }
    assert_eq!(real_fit.model().outputs(), 2);
    assert_eq!(real_fit.model().inputs(), 2);
}

#[test]
fn vfti_equals_mfti_with_unit_weights_and_same_directions() {
    let samples = workload();
    let vfti = Vfti::new().fit(&samples).expect("vfti");
    let mfti_t1 = Mfti::new()
        .weights(Weights::Uniform(1))
        .directions(DirectionKind::CyclicIdentity)
        .fit(&samples)
        .expect("mfti t=1");
    assert_eq!(vfti.pencil_order(), mfti_t1.pencil_order());
    assert_eq!(vfti.order(), mfti_t1.order());
    let sv_v = vfti.pencil_singular_values().expect("loewner method");
    let sv_m = mfti_t1.pencil_singular_values().expect("loewner method");
    for (a, b) in sv_v.iter().zip(sv_m) {
        assert!((a - b).abs() < 1e-12 * sv_v[0]);
    }
}

#[test]
fn fit_error_metrics_cover_every_sample() {
    let samples = workload();
    let fit = Mfti::new().fit(&samples).expect("fit");
    let errs = metrics::relative_errors(fit.model(), &samples).expect("errs");
    assert_eq!(errs.len(), samples.len());
    assert!(metrics::err_max(&errs) >= metrics::err_rms(&errs));
}
