//! Thread-count invariance of the parallel Loewner assembly — isolated
//! in its own test binary because it cycles the process-global
//! `MFTI_THREADS` variable, which sibling tests in a shared binary
//! could race against through `parallel::available_threads`.

use mfti_core::{DirectionKind, LoewnerPencil, TangentialData, Weights};
use mfti_numeric::CMatrix;
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};

fn tangential_data(order: usize, ports: usize, k: usize) -> TangentialData {
    let sys = RandomSystemBuilder::new(order, ports, ports)
        .d_rank(ports)
        .seed(0x10e1)
        .build()
        .unwrap();
    let grid = FrequencyGrid::log_space(1e3, 1e7, k).unwrap();
    let set = SampleSet::from_system(&sys, &grid).unwrap();
    TangentialData::build(
        &set,
        DirectionKind::RandomOrthonormal { seed: 11 },
        &Weights::Full,
    )
    .unwrap()
}

fn bits(m: &CMatrix) -> Vec<(u64, u64)> {
    m.as_slice()
        .iter()
        .map(|z| (z.re.to_bits(), z.im.to_bits()))
        .collect()
}

fn assert_pencils_bit_identical(a: &LoewnerPencil, b: &LoewnerPencil, what: &str) {
    assert_eq!(bits(a.ll()), bits(b.ll()), "{what}: 𝕃 differs");
    assert_eq!(bits(a.sll()), bits(b.sll()), "{what}: σ𝕃 differs");
    assert_eq!(bits(a.w()), bits(b.w()), "{what}: W differs");
    assert_eq!(bits(a.v()), bits(b.v()), "{what}: V differs");
    assert_eq!(a.lambdas(), b.lambdas(), "{what}: λ differs");
    assert_eq!(a.mus(), b.mus(), "{what}: μ differs");
}

#[test]
fn build_and_extend_are_bit_identical_across_thread_counts() {
    // 4 ports × full weights × 32 samples ⇒ K = 128 > the parallel
    // gate, so the row fan-out actually spawns workers.
    let data = tangential_data(24, 4, 32);
    assert!(data.pencil_order() >= 128);

    std::env::set_var("MFTI_THREADS", "1");
    let serial = LoewnerPencil::build(&data).unwrap();
    let serial_grown = {
        let mut p = LoewnerPencil::build_subset(&data, &[0, 1, 2]).unwrap();
        p.extend(&data, &[3, 4, 5, 6, 7]).unwrap();
        p
    };

    for threads in ["2", "4", "8"] {
        std::env::set_var("MFTI_THREADS", threads);
        let par = LoewnerPencil::build(&data).unwrap();
        assert_pencils_bit_identical(&par, &serial, &format!("build at {threads} threads"));

        let mut grown = LoewnerPencil::build_subset(&data, &[0, 1, 2]).unwrap();
        grown.extend(&data, &[3, 4, 5, 6, 7]).unwrap();
        assert_pencils_bit_identical(
            &grown,
            &serial_grown,
            &format!("extend at {threads} threads"),
        );
    }
    std::env::remove_var("MFTI_THREADS");

    // And the grown pencil over pairs 0..8 equals the one-shot build of
    // the same subset, bit for bit.
    let direct = LoewnerPencil::build_subset(&data, &[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
    assert_pencils_bit_identical(&serial_grown, &direct, "extend vs from-scratch");
}
