//! Determinism suite for the GEMM-structured Loewner assembly:
//! `extend`-grown pencils must equal from-scratch builds bit-for-bit,
//! and duplicate appends must be rejected transactionally. (The
//! thread-count comparison lives in its own binary,
//! `loewner_thread_invariance.rs`, because it toggles the
//! process-global `MFTI_THREADS` variable.)

use mfti_core::{DirectionKind, LoewnerPencil, TangentialData, Weights};
use mfti_numeric::CMatrix;
use mfti_sampling::generators::RandomSystemBuilder;
use mfti_sampling::{FrequencyGrid, SampleSet};

fn tangential_data(order: usize, ports: usize, k: usize) -> TangentialData {
    let sys = RandomSystemBuilder::new(order, ports, ports)
        .d_rank(ports)
        .seed(0x10e1)
        .build()
        .unwrap();
    let grid = FrequencyGrid::log_space(1e3, 1e7, k).unwrap();
    let set = SampleSet::from_system(&sys, &grid).unwrap();
    TangentialData::build(
        &set,
        DirectionKind::RandomOrthonormal { seed: 11 },
        &Weights::Full,
    )
    .unwrap()
}

fn bits(m: &CMatrix) -> Vec<(u64, u64)> {
    m.as_slice()
        .iter()
        .map(|z| (z.re.to_bits(), z.im.to_bits()))
        .collect()
}

fn assert_pencils_bit_identical(a: &LoewnerPencil, b: &LoewnerPencil, what: &str) {
    assert_eq!(bits(a.ll()), bits(b.ll()), "{what}: 𝕃 differs");
    assert_eq!(bits(a.sll()), bits(b.sll()), "{what}: σ𝕃 differs");
    assert_eq!(bits(a.w()), bits(b.w()), "{what}: W differs");
    assert_eq!(bits(a.v()), bits(b.v()), "{what}: V differs");
    assert_eq!(a.lambdas(), b.lambdas(), "{what}: λ differs");
    assert_eq!(a.mus(), b.mus(), "{what}: μ differs");
}

#[test]
fn multi_step_growth_equals_from_scratch_bit_for_bit() {
    let data = tangential_data(12, 2, 12);
    // Grow one pair batch at a time — the Algorithm 2 access pattern.
    let mut grown = LoewnerPencil::build_subset(&data, &[0]).unwrap();
    for j in 1..6 {
        grown.extend(&data, &[j]).unwrap();
    }
    let direct = LoewnerPencil::build_subset(&data, &[0, 1, 2, 3, 4, 5]).unwrap();
    assert_pencils_bit_identical(&grown, &direct, "stepwise growth");
    // Uneven batches land on the same bits too.
    let mut batched = LoewnerPencil::build_subset(&data, &[0, 1]).unwrap();
    batched.extend(&data, &[2]).unwrap();
    batched.extend(&data, &[3, 4, 5]).unwrap();
    assert_pencils_bit_identical(&batched, &direct, "uneven batches");
}

#[test]
fn duplicate_detection_stays_linear_and_correct() {
    let data = tangential_data(8, 2, 12);
    let mut pencil = LoewnerPencil::build_subset(&data, &[0, 1]).unwrap();
    // Already-included and self-duplicated appends are both rejected...
    assert!(pencil.extend(&data, &[1]).is_err());
    assert!(pencil.extend(&data, &[2, 3, 2]).is_err());
    // ...transactionally: the failed appends left nothing behind.
    assert_eq!(pencil.included_pairs(), &[0, 1]);
    let direct = LoewnerPencil::build_subset(&data, &[0, 1]).unwrap();
    assert_pencils_bit_identical(&pencil, &direct, "after rejected appends");
    // The valid remainder still lands.
    pencil.extend(&data, &[2, 3]).unwrap();
    assert_eq!(pencil.included_pairs(), &[0, 1, 2, 3]);
}
