//! Algorithm 1: MFTI of noise-free (or lightly noisy) data.
//!
//! Pipeline: directions → tangential data (Eqs. 6–7) → Loewner pencil
//! (Eqs. 11–12, GEMM-structured assembly) → realification (Lemma 3.2)
//! → SVD + projection (Lemma 3.4) → descriptor model. The two SVD
//! consumers ask for exactly what they read: order detection takes
//! singular values only, and each Lemma 3.4 stacked SVD accumulates a
//! single factor (`mfti_numeric::SvdFactors`), which skips most of the
//! decomposition work on the panel-blocked backend. Streaming callers
//! that refit per arriving measurement should drive the pipeline
//! through [`FitSession`](crate::FitSession) instead, which maintains
//! the order-detection signal *incrementally*
//! ([`SessionSvd`](crate::SessionSvd)) rather than re-running this
//! one-shot decomposition per append.

use std::time::Duration;

use mfti_numeric::diag::Stopwatch;
use mfti_numeric::{CMatrix, Complex, PartialSvd, SvdFactors, SvdMethod, SvdUpdater};
use mfti_sampling::SampleSet;
use mfti_statespace::{DescriptorSystem, Macromodel, StateSpaceError, TransferFunction};

use crate::data::{TangentialData, Weights};
use crate::directions::DirectionKind;
use crate::error::MftiError;
use crate::loewner::LoewnerPencil;
use crate::realify::{apply_t_adjoint_left, realify};
use crate::realize::{
    project_complex, realize_complex, realize_complex_from_partial, realize_real,
    realize_real_restricted, realize_real_retained, OrderSelection, RealizeKind,
    StackedRealization,
};
use crate::recovery::LadderSvd;
use mfti_numeric::Svd;

/// Which realization arithmetic to use after order detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RealizationPath {
    /// Lemma 3.2 realification + real stacked-SVD projection (default:
    /// produces SPICE-compatible real models).
    #[default]
    Real,
    /// Exact Lemma 3.4 complex projection (keeps the pencil complex).
    Complex,
}

/// A fitted model: real or complex descriptor system.
#[derive(Debug, Clone)]
pub enum FittedModel {
    /// Real descriptor model (the [`RealizationPath::Real`] output).
    Real(DescriptorSystem<f64>),
    /// Complex descriptor model (the [`RealizationPath::Complex`] output).
    Complex(DescriptorSystem<Complex>),
}

impl FittedModel {
    /// Model (state) order.
    pub fn order(&self) -> usize {
        match self {
            FittedModel::Real(s) => s.order(),
            FittedModel::Complex(s) => s.order(),
        }
    }

    /// Borrows the real model, if this is one.
    pub fn as_real(&self) -> Option<&DescriptorSystem<f64>> {
        match self {
            FittedModel::Real(s) => Some(s),
            FittedModel::Complex(_) => None,
        }
    }

    /// Borrows the complex model, if this is one.
    pub fn as_complex(&self) -> Option<&DescriptorSystem<Complex>> {
        match self {
            FittedModel::Complex(s) => Some(s),
            FittedModel::Real(_) => None,
        }
    }
}

impl TransferFunction for FittedModel {
    fn outputs(&self) -> usize {
        match self {
            FittedModel::Real(s) => s.outputs(),
            FittedModel::Complex(s) => s.outputs(),
        }
    }

    fn inputs(&self) -> usize {
        match self {
            FittedModel::Real(s) => s.inputs(),
            FittedModel::Complex(s) => s.inputs(),
        }
    }

    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        match self {
            FittedModel::Real(sys) => sys.eval(s),
            FittedModel::Complex(sys) => sys.eval(s),
        }
    }

    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        self.response_batch_hz(freqs_hz)
    }
}

impl Macromodel for FittedModel {
    fn order(&self) -> usize {
        FittedModel::order(self)
    }

    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        // Delegate to the descriptor sweep evaluator (Hessenberg
        // factorization hoisted out of the frequency loop).
        match self {
            FittedModel::Real(sys) => sys.eval_batch(s),
            FittedModel::Complex(sys) => sys.eval_batch(s),
        }
    }
}

/// Result of an MFTI/VFTI fit, with the diagnostics the paper plots.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The recovered descriptor model.
    pub model: FittedModel,
    /// Singular values of `x₀𝕃 − σ𝕃` (Fig. 1's order-detection signal).
    pub pencil_singular_values: Vec<f64>,
    /// Which arithmetic produced the detection signal: the realified
    /// pencil (one-shot real path) or the complex shifted pencil
    /// (sessions, complex realizations). The two agree to machine
    /// precision — see [`RealizeKind`].
    pub detection_kind: RealizeKind,
    /// Detected (reduced) model order `r`.
    pub detected_order: usize,
    /// Pencil size `K` before truncation.
    pub pencil_order: usize,
    /// SVD backends that broke down before the order-detection
    /// decomposition succeeded (DESIGN.md §8); empty on the fast path.
    /// A non-empty trail means the fit *recovered* — the model is
    /// valid, produced by the first surviving ladder rung.
    pub svd_fallbacks: Vec<SvdMethod>,
    /// Wall-clock fitting time (Table 1's `time(s)` column);
    /// `Duration::ZERO` when `mfti-numeric`'s `timing` feature is off.
    pub elapsed: Duration,
}

/// Configurable MFTI fitter (paper Algorithm 1).
///
/// The default configuration uses [`Weights::Full`]: every sample pair
/// gets the maximal block width `t = min(m, p)`, resolved against the
/// sample dimensions at fit time (see the [`Weights`] docs in `data`
/// for the resolution semantics), so each of the 8 matrix samples below
/// contributes 3 columns *and* 3 rows of information:
///
/// ```
/// use mfti_core::{Fitter, Mfti};
/// use mfti_sampling::generators::RandomSystemBuilder;
/// use mfti_sampling::{FrequencyGrid, SampleSet};
/// use mfti_statespace::Macromodel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RandomSystemBuilder::new(12, 3, 3).d_rank(3).seed(1).build()?;
/// let grid = FrequencyGrid::log_space(1e2, 1e4, 8)?;
/// let samples = SampleSet::from_system(&sys, &grid)?;
///
/// // Full weights (the default): the K = 2·3·4 = 24 pencil exposes the
/// // complete order-15 system from just 8 samples.
/// let outcome = Mfti::new().fit(&samples)?;
/// assert_eq!(outcome.order(), 15); // n + rank(D)
/// // The model reproduces the samples (batched sweep evaluation):
/// let resp = outcome.model().response_batch_hz(samples.freqs_hz())?;
/// for (h, s) in resp.iter().zip(samples.matrices()) {
///     assert!((h - s).norm_2() / s.norm_2() < 1e-7);
/// }
/// # Ok(())
/// # }
/// ```
///
/// Narrower uniform or per-pair widths ([`Weights::Uniform`],
/// [`Weights::PerPair`]) trade pencil size for accuracy/emphasis — the
/// paper's Section 3.1 knob.
#[derive(Debug, Clone)]
pub struct Mfti {
    directions: DirectionKind,
    weights: Weights,
    order_selection: OrderSelection,
    path: RealizationPath,
    realify_tol: f64,
}

impl Default for Mfti {
    fn default() -> Self {
        Self::new()
    }
}

impl Mfti {
    /// Fitter with default configuration: random orthonormal directions,
    /// full matrix weights ([`Weights::Full`], i.e. `t = min(m, p)`
    /// resolved at fit time), threshold order detection at `1e-12`, real
    /// realization.
    pub fn new() -> Self {
        Mfti {
            directions: DirectionKind::default(),
            weights: Weights::Full,
            order_selection: OrderSelection::default(),
            path: RealizationPath::default(),
            realify_tol: 1e-6,
        }
    }

    /// Sets the direction-generation strategy.
    pub fn directions(mut self, kind: DirectionKind) -> Self {
        self.directions = kind;
        self
    }

    /// Sets the per-pair block widths `t_i`.
    pub fn weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the order-selection rule.
    pub fn order_selection(mut self, selection: OrderSelection) -> Self {
        self.order_selection = selection;
        self
    }

    /// Chooses between the real (default) and complex realization paths.
    pub fn realization(mut self, path: RealizationPath) -> Self {
        self.path = path;
        self
    }

    /// Tolerance on the imaginary residual allowed by the realification
    /// (noisy data are still conjugate-closed, so the default `1e-6`
    /// only trips on inconsistent inputs).
    pub fn realify_tol(mut self, tol: f64) -> Self {
        self.realify_tol = tol;
        self
    }

    /// Configured weights ([`Weights::Full`] resolves at build time).
    pub(crate) fn weights_ref(&self) -> &Weights {
        &self.weights
    }

    /// Configured direction kind.
    pub(crate) fn directions_ref(&self) -> DirectionKind {
        self.directions
    }

    /// Configured order-selection rule.
    pub(crate) fn order_selection_ref(&self) -> OrderSelection {
        self.order_selection
    }

    /// Runs Algorithm 1 on the sample set, returning the full
    /// method-specific result.
    ///
    /// Most callers should use the generic [`Fitter::fit`] instead
    /// (`FitResult` converts into the method-agnostic
    /// [`FitOutcome`](crate::FitOutcome) it returns); this detailed
    /// entry point exists for code that composes the pipeline stages
    /// itself.
    ///
    /// [`Fitter::fit`]: crate::Fitter::fit
    ///
    /// # Errors
    ///
    /// Propagates data-validation, SVD and order-selection failures.
    pub fn fit_detailed(&self, samples: &SampleSet) -> Result<FitResult, MftiError> {
        let start = Stopwatch::start();
        let data = TangentialData::build(samples, self.directions, &self.weights)?;
        let pencil = LoewnerPencil::build(&data)?;
        self.fit_pencil(&pencil, start)
    }

    /// Runs the realization stage on an already-built pencil (shared
    /// with Algorithm 2, which grows the pencil incrementally).
    ///
    /// On the real path the realification is hoisted to the very front
    /// (non-conjugate-closed data is refused *before* any factorization
    /// is paid for) and Lemma 3.1 order detection runs on the realified
    /// shifted pencil `x₀𝕃ᵣ − σ𝕃ᵣ` — a real matrix, since the pinned
    /// shift is real — on the packed real GEMM path, at identical
    /// singular values ([`RealizeKind`]). The same [`RealifiedPencil`]
    /// then feeds projection: dense requests (`2r > K`) go straight to
    /// the stacked SVDs, while `2r ≤ K` requests restrict the stacks to
    /// the detection decomposition's leading real factors (the Loewner
    /// rank equalities make the spans coincide), shrinking the two
    /// `K × 2K` bidiagonalizations to `r × 2K`. One realification, one
    /// detection, two stacked factorizations — nothing recomputed.
    ///
    /// The complex path keeps the original shape: one complex
    /// decomposition serves detection values and projection factors.
    /// A stalled QR sweep on either path degrades through the recovery
    /// ladder ([`LadderSvd`], DESIGN.md §8) instead of failing the fit.
    ///
    /// [`RealifiedPencil`]: crate::RealifiedPencil
    pub(crate) fn fit_pencil(
        &self,
        pencil: &LoewnerPencil,
        start: Stopwatch,
    ) -> Result<FitResult, MftiError> {
        let x0 = pencil.default_x0();
        let k = pencil.order();
        match self.realize_kind() {
            RealizeKind::Real => {
                let real = realify(pencil, self.realify_tol)?;
                let ladder = LadderSvd::compute(&real.shifted_pencil(x0.re), SvdFactors::Both)?;
                let sv = ladder.singular_values().to_vec();
                let order = self.order_selection.detect(&sv)?;
                let model = if 2 * order > k {
                    // Dense detection (2r > K): the restricted stacked
                    // problems would not shrink — go straight to the
                    // stacked SVDs of the already-realified pencil.
                    FittedModel::Real(realize_real(&real, order)?)
                } else {
                    let (y, x) = ladder.accumulate_both(order)?;
                    FittedModel::Real(realize_real_restricted(&real, &y, &x, order)?)
                };
                Ok(FitResult {
                    model,
                    pencil_singular_values: sv,
                    detection_kind: RealizeKind::Real,
                    detected_order: order,
                    pencil_order: k,
                    svd_fallbacks: ladder.fallback_methods(),
                    elapsed: start.elapsed(),
                })
            }
            RealizeKind::Complex => {
                let ladder = LadderSvd::compute(&pencil.shifted_pencil(x0), SvdFactors::Both)?;
                let sv = ladder.singular_values().to_vec();
                let order = self.order_selection.detect(&sv)?;
                let (y, x) = ladder.accumulate_both(order)?;
                let model = FittedModel::Complex(project_complex(pencil, &y, &x)?);
                Ok(FitResult {
                    model,
                    pencil_singular_values: sv,
                    detection_kind: RealizeKind::Complex,
                    detected_order: order,
                    pencil_order: k,
                    svd_fallbacks: ladder.fallback_methods(),
                    elapsed: start.elapsed(),
                })
            }
        }
    }

    /// Detection arithmetic implied by the configured realization path:
    /// [`RealizeKind::Real`] for [`RealizationPath::Real`] (realify
    /// first, detect on the real shifted pencil), [`RealizeKind::Complex`]
    /// otherwise. Sessions override this with [`RealizeKind::Complex`]
    /// regardless of path — their incremental updater bases live in
    /// complex arithmetic.
    pub fn realize_kind(&self) -> RealizeKind {
        match self.path {
            RealizationPath::Real => RealizeKind::Real,
            RealizationPath::Complex => RealizeKind::Complex,
        }
    }

    /// Values-only Lemma 3.1 detection signal of `pencil` under `kind`
    /// — the σ profile that [`OrderSelection`] reads. The two kinds
    /// agree to machine precision (unitary equivalence; pinned real
    /// shift); `tests/detection_equivalence.rs` and the
    /// `fit_stage/detect*` benchmark rows compare them directly.
    ///
    /// # Errors
    ///
    /// [`MftiError::RealificationResidual`] for `RealizeKind::Real` on
    /// non-conjugate-closed data; SVD failures otherwise.
    pub fn detection_singular_values(
        &self,
        pencil: &LoewnerPencil,
        kind: RealizeKind,
    ) -> Result<Vec<f64>, MftiError> {
        let x0 = pencil.default_x0();
        match kind {
            RealizeKind::Real => {
                let real = realify(pencil, self.realify_tol)?;
                Ok(Svd::singular_values_of(&real.shifted_pencil(x0.re))?)
            }
            RealizeKind::Complex => pencil.shifted_pencil_singular_values(x0),
        }
    }

    /// Projects an order-`order` model from already-accumulated leading
    /// factor columns `y`, `x` of the shifted pencil — the shared tail
    /// of the one-shot ([`Mfti::fit_pencil`]) and session
    /// ([`Mfti::realize_pencil_from_partial`]) non-dense paths.
    pub(crate) fn realize_pencil_from_factors(
        &self,
        pencil: &LoewnerPencil,
        y: &CMatrix,
        x: &CMatrix,
        order: usize,
    ) -> Result<FittedModel, MftiError> {
        Ok(match self.path {
            RealizationPath::Complex => FittedModel::Complex(project_complex(pencil, y, x)?),
            RealizationPath::Real => {
                let real = realify(pencil, self.realify_tol)?;
                let ts = pencil.pair_ts();
                let tu = apply_t_adjoint_left(y, ts);
                let tv = apply_t_adjoint_left(x, ts);
                FittedModel::Real(realize_real_retained(&real, &tu, &tv, order)?)
            }
        })
    }

    /// Realizes an order-`order` model from a pencil along the
    /// configured arithmetic path (the last pipeline stage, also driven
    /// directly by [`FitSession`](crate::FitSession) when re-running
    /// order selection on cached singular values).
    pub(crate) fn realize_pencil(
        &self,
        pencil: &LoewnerPencil,
        order: usize,
    ) -> Result<FittedModel, MftiError> {
        Ok(match self.path {
            RealizationPath::Real => {
                // Mirror fit_pencil's real path bit-for-bit so a
                // session's fresh-realize fallback and a one-shot fit
                // over the same samples produce identical models.
                let real = realify(pencil, self.realify_tol)?;
                if 2 * order > pencil.order() {
                    // Dense requests (2r > K) go straight to the stacked
                    // SVDs — the shifted-pencil detour would not shrink
                    // them (and would waste its own bidiagonalization).
                    FittedModel::Real(realize_real(&real, order)?)
                } else {
                    let ladder = LadderSvd::compute(
                        &real.shifted_pencil(pencil.default_x0().re),
                        SvdFactors::Both,
                    )?;
                    let (y, x) = ladder.accumulate_both(order)?;
                    FittedModel::Real(realize_real_restricted(&real, &y, &x, order)?)
                }
            }
            RealizationPath::Complex => {
                FittedModel::Complex(realize_complex(pencil, pencil.default_x0(), order)?)
            }
        })
    }

    /// Realization that **reuses an existing bidiagonalization** of the
    /// shifted pencil `x₀𝕃 − σ𝕃` — the decomposition order detection
    /// already paid for ([`Mfti::fit_pencil`]) or the one a single-batch
    /// [`FitSession`](crate::FitSession) retains across
    /// [`realize_with`](crate::FitSession::realize_with) calls.
    ///
    /// * `Complex`: accumulate the leading `order` columns, project
    ///   (Lemma 3.4) — [`realize_complex_from_partial`].
    /// * `Real`: accumulate the leading `order` complex columns, push
    ///   them through the Lemma 3.2 frame and run the **restricted**
    ///   stacked SVDs on their realified span
    ///   ([`realize_real_retained`]) — exact where the Loewner rank
    ///   equalities hold (`range[𝕃 σ𝕃] = range(x₀𝕃 − σ𝕃)`, DESIGN.md
    ///   §6). Dense requests (`2·order > K`), where the restriction
    ///   cannot shrink the stacks, fall back to the direct stacked
    ///   path.
    pub(crate) fn realize_pencil_from_partial(
        &self,
        pencil: &LoewnerPencil,
        partial: &PartialSvd<Complex>,
        order: usize,
    ) -> Result<FittedModel, MftiError> {
        let k = pencil.order();
        if order == 0 || order > k {
            return Err(MftiError::OrderSelection {
                requested: order,
                pencil: k,
            });
        }
        Ok(match self.path {
            RealizationPath::Complex => {
                FittedModel::Complex(realize_complex_from_partial(pencil, partial, order)?)
            }
            RealizationPath::Real => {
                if 2 * order > k {
                    let real = realify(pencil, self.realify_tol)?;
                    FittedModel::Real(realize_real(&real, order)?)
                } else {
                    let (u, v) = partial.accumulate(SvdFactors::Both, order)?;
                    self.realize_pencil_from_factors(pencil, &u, &v, order)?
                }
            }
        })
    }

    /// Whether an order-`order` realization on a `k`-pencil would take
    /// the dense real path (`2·order > k`, where neither the
    /// shifted-pencil restriction nor the retained factors shrink the
    /// stacked problems) — the requests worth serving from a
    /// session-cached [`StackedRealization`].
    pub(crate) fn wants_stacked_realization(&self, order: usize, k: usize) -> bool {
        self.path == RealizationPath::Real && 2 * order > k
    }

    /// Builds the order-independent dense-path state for the session
    /// cache: realified pencil plus stacked bidiagonalizations.
    pub(crate) fn build_stacked_realization(
        &self,
        pencil: &LoewnerPencil,
    ) -> Result<StackedRealization, MftiError> {
        StackedRealization::build(pencil, self.realify_tol)
    }

    /// Realization from the **session-retained** thin factorization of
    /// the shifted pencil instead of a fresh decomposition — the
    /// updating session's fast path. Returns `Ok(None)` when the
    /// retained factors cannot serve this request and the caller must
    /// fall back to [`Mfti::realize_pencil`]:
    ///
    /// * the requested order exceeds the retained rank `q` (the
    ///   truncated tail is gone), or
    /// * on the real path, `2q > K` — the realified retained bases are
    ///   `2q` wide, so the restricted stacked problems would be no
    ///   smaller than the fresh ones (dense/noisy streams).
    pub(crate) fn realize_pencil_retained(
        &self,
        pencil: &LoewnerPencil,
        updater: &SvdUpdater<Complex>,
        order: usize,
    ) -> Result<Option<FittedModel>, MftiError> {
        let q = updater.retained_rank();
        if order > q {
            return Ok(None);
        }
        Ok(match self.path {
            RealizationPath::Complex => {
                // The updater already holds the shifted pencil's leading
                // singular vectors: project directly (Lemma 3.4).
                let (y, _s, x) = updater.truncate_native(order)?;
                Some(FittedModel::Complex(project_complex(pencil, &y, &x)?))
            }
            RealizationPath::Real => {
                if 2 * q > pencil.order() {
                    return Ok(None);
                }
                let real = realify(pencil, self.realify_tol)?;
                let ts = pencil.pair_ts();
                let tu = apply_t_adjoint_left(updater.left(), ts);
                let tv = apply_t_adjoint_left(updater.right(), ts);
                Some(FittedModel::Real(realize_real_retained(
                    &real, &tu, &tv, order,
                )?))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_sampling::generators::RandomSystemBuilder;
    use mfti_sampling::{FrequencyGrid, NoiseModel};

    fn samples(
        order: usize,
        ports: usize,
        d_rank: usize,
        k: usize,
        seed: u64,
    ) -> (SampleSet, DescriptorSystem<f64>) {
        let sys = RandomSystemBuilder::new(order, ports, ports)
            .d_rank(d_rank)
            .seed(seed)
            .build()
            .unwrap();
        let grid = FrequencyGrid::log_space(1e2, 1e4, k).unwrap();
        (SampleSet::from_system(&sys, &grid).unwrap(), sys)
    }

    #[test]
    fn default_fit_recovers_system_exactly() {
        let (set, sys) = samples(10, 2, 2, 12, 5);
        let fit = Mfti::new().fit_detailed(&set).unwrap();
        assert_eq!(fit.detected_order, 12); // n + rank(D)
        assert_eq!(fit.pencil_order, 24);
        assert!(fit.model.as_real().is_some());
        // Off-sample check against the truth.
        let f = 1.234e3;
        let h = fit.model.response_at_hz(f).unwrap();
        let s = sys.response_at_hz(f).unwrap();
        assert!((&h - &s).norm_2() / s.norm_2() < 1e-6);
    }

    #[test]
    fn complex_path_matches_real_path_quality() {
        let (set, sys) = samples(8, 2, 0, 10, 6);
        let real = Mfti::new().fit_detailed(&set).unwrap();
        let cplx = Mfti::new()
            .realization(RealizationPath::Complex)
            .fit_detailed(&set)
            .unwrap();
        assert!(cplx.model.as_complex().is_some());
        let f = 2.5e3;
        let s = sys.response_at_hz(f).unwrap();
        for fit in [&real, &cplx] {
            let h = fit.model.response_at_hz(f).unwrap();
            assert!((&h - &s).norm_2() / s.norm_2() < 1e-6);
        }
    }

    #[test]
    fn noisy_fit_with_gap_selection_stays_stable_in_error() {
        let (set, _) = samples(10, 3, 3, 20, 9);
        let noisy = NoiseModel::additive_relative(1e-4).apply(&set, 3);
        let fit = Mfti::new()
            .order_selection(OrderSelection::NoiseFloor { factor: 3.0 })
            .fit_detailed(&noisy)
            .unwrap();
        // Fit error on the clean reference should be ~noise level.
        let mut worst = 0.0f64;
        for (f, s) in set.iter() {
            let h = fit.model.response_at_hz(f).unwrap();
            worst = worst.max((&h - s).norm_2() / s.norm_2());
        }
        assert!(worst < 5e-2, "worst relative error {worst}");
    }

    #[test]
    fn weight_sentinel_resolves_to_full() {
        let (set, _) = samples(6, 3, 0, 6, 2);
        let fit = Mfti::new().fit_detailed(&set).unwrap();
        // Full weight: K = 2 · t · (k/2) = 2·3·3 = 18.
        assert_eq!(fit.pencil_order, 18);
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let (set, _) = samples(6, 2, 0, 6, 3);
        let fit = Mfti::new().fit_detailed(&set).unwrap();
        assert!(fit.elapsed > Duration::ZERO);
    }
}
