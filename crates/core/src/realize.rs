//! State-space realization from the Loewner pencil (Lemmas 3.1 and 3.4).
//!
//! Three paths, all implemented:
//!
//! * [`realize_direct`] — Lemma 3.1: when the pencil is regular, take
//!   `E = −𝕃`, `A = −σ𝕃`, `B = V`, `C = W` verbatim (order `K`).
//! * [`realize_complex`] — Lemma 3.4: economy SVD of `x₀𝕃 − σ𝕃`,
//!   project with the complex factors `Y`, `X` (order `r`).
//! * [`realize_real`] — the real-arithmetic variant used after
//!   Lemma 3.2: project with the left factors of `svd([𝕃 σ𝕃])` and the
//!   right factors of `svd([𝕃; σ𝕃])` (the Lefteriu–Antoulas recipe; the
//!   singular values of `x₀𝕃 − σ𝕃` still drive order detection — see
//!   DESIGN.md §5).

use mfti_numeric::{CMatrix, Complex, PartialSvd, Qr, RMatrix, SvdFactors};
use mfti_statespace::DescriptorSystem;

use crate::error::MftiError;
use crate::loewner::LoewnerPencil;
use crate::realify::{realify, RealifiedPencil};
use crate::recovery::LadderSvd;

/// Which arithmetic carries the Lemma 3.1 order-detection signal.
///
/// With the pinned shift real ([`LoewnerPencil::default_x0`] returns
/// `|λ₁|`), the two detection matrices are unitarily equivalent —
/// `x₀𝕃ᵣ − σ𝕃ᵣ = T*(x₀𝕃 − σ𝕃)T` for the Lemma 3.2 frame `T` — so
/// their singular values, and therefore every [`OrderSelection`]
/// decision, coincide to machine precision
/// (`tests/detection_equivalence.rs` pins both contracts). What
/// differs is cost and what else the decomposition can feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealizeKind {
    /// Detection on the realified `x₀𝕃ᵣ − σ𝕃ᵣ`: the one-shot real-path
    /// default since the realification is needed for projection anyway
    /// — the bidiagonalization stays on the packed real GEMM path at
    /// roughly half the wall clock of the complex one, and its real
    /// factors restrict the stacked projections directly (no complex
    /// round-trip, no QR re-orthonormalization).
    Real,
    /// Detection on the complex `x₀𝕃 − σ𝕃`: sessions — whose
    /// incremental [`SvdUpdater`](mfti_numeric::SvdUpdater) bases live
    /// in complex arithmetic so bordered appends/downdates stay valid —
    /// and the [`RealizationPath::Complex`](crate::RealizationPath)
    /// pipeline, whose Lemma 3.4 projection reads the complex factors.
    Complex,
}

/// How to pick the reduced order from the singular-value profile of
/// `x₀𝕃 − σ𝕃`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum OrderSelection {
    /// Keep singular values above `rel_tol · σ₁` (noise-free data:
    /// `1e-12` finds the exact order — weakly coupled modes can sit many
    /// decades below σ₁ yet far above the `≈1e-16` numerical floor).
    Threshold(f64),
    /// Keep everything before the largest ratio drop `σ_r / σ_{r+1}`,
    /// searching `r ∈ [min_order, max_order]`. Matches the "sharp drop"
    /// reading of Fig. 1, but can lock onto an early mode-strength gap
    /// when the physical modes span many magnitudes — prefer
    /// [`OrderSelection::NoiseFloor`] for noisy data.
    LargestGap {
        /// Smallest admissible order (≥ 1).
        min_order: usize,
        /// Largest admissible order (inclusive; clipped to the pencil).
        max_order: usize,
    },
    /// Estimate the noise floor as the median of the bottom quarter of
    /// the spectrum and keep singular values above `factor` times it.
    /// The robust choice for noisy data (Table 1 workloads).
    NoiseFloor {
        /// Multiple of the estimated floor a singular value must exceed
        /// to be kept (3–10 is typical).
        factor: f64,
    },
    /// Fixed order (ablations, reproducing a table row exactly).
    Fixed(usize),
}

impl Default for OrderSelection {
    fn default() -> Self {
        OrderSelection::Threshold(1e-12)
    }
}

impl OrderSelection {
    /// Resolves the selection against a (descending) singular-value
    /// profile.
    ///
    /// # Errors
    ///
    /// Returns [`MftiError::OrderSelection`] when the resolved order is
    /// zero or exceeds the profile length.
    pub fn detect(&self, sv: &[f64]) -> Result<usize, MftiError> {
        let n = sv.len();
        let order = match *self {
            OrderSelection::Threshold(rel) => {
                let s0 = sv.first().copied().unwrap_or(0.0);
                sv.iter().take_while(|&&s| s > rel * s0).count()
            }
            OrderSelection::LargestGap {
                min_order,
                max_order,
            } => {
                let lo = min_order.max(1);
                let hi = max_order.min(n.saturating_sub(1));
                if lo > hi {
                    return Err(MftiError::OrderSelection {
                        requested: lo,
                        pencil: n,
                    });
                }
                let mut best_r = lo;
                let mut best_ratio = 0.0f64;
                for r in lo..=hi {
                    let denom = sv[r].max(f64::MIN_POSITIVE);
                    let ratio = sv[r - 1] / denom;
                    if ratio > best_ratio {
                        best_ratio = ratio;
                        best_r = r;
                    }
                }
                best_r
            }
            OrderSelection::NoiseFloor { factor } => {
                // The floor estimate wants the bottom quarter, widened to
                // at least 4 values; profiles shorter than 4 have no tail
                // to speak of — the whole profile is the window.
                let tail = if n < 4 {
                    sv
                } else {
                    &sv[((3 * n) / 4).min(n - 4)..]
                };
                let floor = median(tail);
                let s0 = sv.first().copied().unwrap_or(0.0);
                // Never cut below the numerical noise of the SVD itself:
                // on clean data the estimated "floor" is roundoff scatter
                // and factor·floor would keep pure-garbage directions.
                let cut = (factor * floor).max(crate::numeric_floor() * s0);
                sv.iter().take_while(|&&s| s > cut).count()
            }
            OrderSelection::Fixed(r) => r,
        };
        if order == 0 || order > n {
            return Err(MftiError::OrderSelection {
                requested: order,
                pencil: n,
            });
        }
        Ok(order)
    }
}

/// Median of a (not necessarily sorted) slice; 0 for an empty slice.
/// Linear-time selection instead of a full sort — the profile is read
/// once per append on the session path.
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    let mid = v.len() / 2;
    let cmp = |a: &f64, b: &f64| a.total_cmp(b);
    let (below, &mut upper, _) = v.select_nth_unstable_by(mid, cmp);
    if values.len() % 2 == 1 {
        upper
    } else {
        // Even length: the lower median is the largest of the partition
        // below the selected element.
        let lower = below.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lower + upper)
    }
}

/// Lemma 3.1: the raw (unreduced) realization
/// `(E, A, B, C) = (−𝕃, −σ𝕃, V, W)`.
///
/// Exact interpolation holds when `x𝕃 − σ𝕃` is regular at all
/// interpolation points — i.e. when the data contain no redundancy
/// (`K ≤ order + rank(D)`), otherwise use the SVD paths.
///
/// # Errors
///
/// Propagates construction failures (shape errors cannot occur for
/// internally built pencils).
pub fn realize_direct(pencil: &LoewnerPencil) -> Result<DescriptorSystem<Complex>, MftiError> {
    let (p, _) = pencil.w().dims();
    let m = pencil.v().cols();
    // The pencil lives in normalized frequency s' = s/ω₀; the model
    // (E/ω₀, A, B, C) interpolates at true frequencies.
    let e = (-pencil.ll()).scale(1.0 / pencil.freq_scale());
    Ok(DescriptorSystem::new(
        e,
        -pencil.sll(),
        pencil.v().clone(),
        pencil.w().clone(),
        CMatrix::zeros(p, m),
    )?)
}

/// Lemma 3.4: SVD-projected **complex** realization of order `r`.
///
/// The decomposition prefers the lazy two-phase path
/// ([`mfti_numeric::Svd::bidiagonalize`]): only the leading `order`
/// factor columns — the ones the projections actually read — are ever
/// accumulated. A stalled QR sweep degrades through the recovery
/// ladder (DESIGN.md §8) instead of failing.
///
/// # Errors
///
/// Propagates SVD failures and [`MftiError::OrderSelection`] for an
/// out-of-range order.
pub fn realize_complex(
    pencil: &LoewnerPencil,
    x0: Complex,
    order: usize,
) -> Result<DescriptorSystem<Complex>, MftiError> {
    let k = pencil.order();
    if order == 0 || order > k {
        return Err(MftiError::OrderSelection {
            requested: order,
            pencil: k,
        });
    }
    let ladder = LadderSvd::compute(&pencil.shifted_pencil(x0), SvdFactors::Both)?;
    let (y, x) = ladder.accumulate_both(order)?;
    project_complex(pencil, &y, &x)
}

/// The accumulate-and-project half of [`realize_complex`], taking an
/// already bidiagonalized shifted pencil — the one-shot fit detects the
/// order from `partial.singular_values()` and projects with the same
/// decomposition, so the pencil is factored exactly once.
pub(crate) fn realize_complex_from_partial(
    pencil: &LoewnerPencil,
    partial: &PartialSvd<Complex>,
    order: usize,
) -> Result<DescriptorSystem<Complex>, MftiError> {
    let k = pencil.order();
    if order == 0 || order > k {
        return Err(MftiError::OrderSelection {
            requested: order,
            pencil: k,
        });
    }
    let (y, x) = partial.accumulate(SvdFactors::Both, order)?;
    project_complex(pencil, &y, &x)
}

/// The Lemma 3.4 projections `E = −Y*𝕃X/ω₀`, `A = −Y*σ𝕃X`, `B = Y*V`,
/// `C = WX` for any orthonormal `Y`, `X` spanning the shifted pencil's
/// leading column/row spaces — shared by the fresh and
/// session-retained realization paths (which differ only in where the
/// factors come from).
pub(crate) fn project_complex(
    pencil: &LoewnerPencil,
    y: &CMatrix,
    x: &CMatrix,
) -> Result<DescriptorSystem<Complex>, MftiError> {
    // Fused hermitian-left kernel — no Y* temporary, and 𝕃X first so
    // the Y* contraction is r-thin.
    let llx = pencil.ll().matmul(x)?;
    let sllx = pencil.sll().matmul(x)?;
    let e = (-&y.mul_hermitian_left(&llx)?).scale(1.0 / pencil.freq_scale());
    let a = -&y.mul_hermitian_left(&sllx)?;
    let b = y.mul_hermitian_left(pencil.v())?;
    let c = pencil.w().matmul(x)?;
    let (p, m) = (c.rows(), b.cols());
    Ok(DescriptorSystem::new(e, a, b, c, CMatrix::zeros(p, m))?)
}

/// Real-arithmetic projection after Lemma 3.2: order-`r` **real**
/// descriptor model via the stacked SVDs
/// `Y = svd([𝕃 σ𝕃]).U(:, 1..r)`, `X = svd([𝕃; σ𝕃]).V(:, 1..r)`.
///
/// Each stacked decomposition runs the lazy two-phase path and
/// accumulates exactly the one factor side the projection reads,
/// truncated to `order` columns — in the **real** scalar type, so the
/// packed real GEMM path carries all the way through the projections
/// (no complex round-trip).
///
/// # Errors
///
/// Propagates SVD failures and [`MftiError::OrderSelection`] for an
/// out-of-range order.
pub fn realize_real(
    pencil: &RealifiedPencil,
    order: usize,
) -> Result<DescriptorSystem<f64>, MftiError> {
    let (rows, cols) = stacked_factors(pencil)?;
    realize_real_from_stacked(pencil, &rows, &cols, order)
}

/// Decomposes the two stacked pencils `[𝕃 σ𝕃]` (wide) and `[𝕃; σ𝕃]`
/// (tall) — the order-independent half of [`realize_real`], shared with
/// the session cache ([`StackedRealization`]). Both prefer the QR-first
/// lazy two-phase path, where the factor sides the projection reads
/// (left of the wide stack, right of the tall one) never touch the QR's
/// `Q`; a stalled sweep degrades through the recovery ladder
/// ([`LadderSvd`], DESIGN.md §8).
fn stacked_factors(
    pencil: &RealifiedPencil,
) -> Result<(LadderSvd<f64>, LadderSvd<f64>), MftiError> {
    let row_stack = RMatrix::hstack(&[pencil.ll(), pencil.sll()])?;
    let col_stack = RMatrix::vstack(&[pencil.ll(), pencil.sll()])?;
    Ok((
        LadderSvd::compute(&row_stack, SvdFactors::Left)?,
        LadderSvd::compute(&col_stack, SvdFactors::Right)?,
    ))
}

/// The accumulate-and-project half of [`realize_real`]: truncated
/// factors from the stacked bidiagonalizations, then the Lemma 3.4
/// projections in real arithmetic.
fn realize_real_from_stacked(
    pencil: &RealifiedPencil,
    rows: &LadderSvd<f64>,
    cols: &LadderSvd<f64>,
    order: usize,
) -> Result<DescriptorSystem<f64>, MftiError> {
    let k = pencil.order();
    if order == 0 || order > k {
        return Err(MftiError::OrderSelection {
            requested: order,
            pencil: k,
        });
    }
    let y = rows.accumulate_u(order)?;
    let x = cols.accumulate_v(order)?;
    project_real(pencil, &y, &x)
}

/// The realization stage's order-independent state, retained across
/// order re-selections: the realified pencil plus the two stacked
/// bidiagonalizations. [`FitSession`](crate::session::FitSession)
/// caches one per pencil generation, so on the dense real path
/// (`2·order > K`, where the retained-factor shortcut of DESIGN.md §6
/// does not apply) a repeated realize pays only rank-limited
/// accumulation and projection — the expensive factorizations are
/// reused. [`realize`](Self::realize) is bit-identical to
/// [`realize_real`] on the same pencil at every order.
#[derive(Debug, Clone)]
pub(crate) struct StackedRealization {
    real: RealifiedPencil,
    rows: LadderSvd<f64>,
    cols: LadderSvd<f64>,
}

impl StackedRealization {
    /// Realifies `pencil` (Lemma 3.2, tolerance `realify_tol`) and
    /// bidiagonalizes its stacks.
    pub(crate) fn build(pencil: &LoewnerPencil, realify_tol: f64) -> Result<Self, MftiError> {
        let real = realify(pencil, realify_tol)?;
        let (rows, cols) = stacked_factors(&real)?;
        Ok(StackedRealization { real, rows, cols })
    }

    /// Order-`order` real realization from the retained factorizations.
    pub(crate) fn realize(&self, order: usize) -> Result<DescriptorSystem<f64>, MftiError> {
        realize_real_from_stacked(&self.real, &self.rows, &self.cols, order)
    }
}

/// The real-arithmetic analogue of [`project_complex`].
pub(crate) fn project_real(
    pencil: &RealifiedPencil,
    y: &RMatrix,
    x: &RMatrix,
) -> Result<DescriptorSystem<f64>, MftiError> {
    // Real path: mul_hermitian_left is Yᵀ·(·) — no Yᵀ temporary, and the
    // K×K pencil contracts against the r-thin factors first.
    let llx = pencil.ll().matmul(x)?;
    let sllx = pencil.sll().matmul(x)?;
    let e = (-&y.mul_hermitian_left(&llx)?).scale(1.0 / pencil.freq_scale());
    let a = -&y.mul_hermitian_left(&sllx)?;
    let b = y.mul_hermitian_left(pencil.v())?;
    let c = pencil.w().matmul(x)?;
    let (p, m) = (c.rows(), b.cols());
    Ok(DescriptorSystem::new(e, a, b, c, RMatrix::zeros(p, m))?)
}

/// Real realization seeded from **session-retained** factors: `tu`/`tv`
/// are the updater's thin `U`/`V` of the complex shifted pencil pushed
/// through the Lemma 3.2 frame (`T*U`, `T*V`). By the Loewner rank
/// equalities (Mayo–Antoulas), the stacked pencils' column/row spaces
/// coincide with the shifted pencil's, so `[Re(T*U) Im(T*U)]` spans
/// `col([𝕃ᵣ σ𝕃ᵣ])` up to the updater's retained-tail error — the
/// stacked SVDs shrink from `K×2K` to `2q×2K` problems restricted to
/// that subspace. See DESIGN.md §6 for when this is (not) valid; the
/// dispatcher falls back to [`realize_real`] outside those conditions.
pub(crate) fn realize_real_retained(
    pencil: &RealifiedPencil,
    tu: &CMatrix,
    tv: &CMatrix,
    order: usize,
) -> Result<DescriptorSystem<f64>, MftiError> {
    let k = pencil.order();
    if order == 0 || order > k {
        return Err(MftiError::OrderSelection {
            requested: order,
            pencil: k,
        });
    }
    let realified_span = |m: &CMatrix| -> Result<RMatrix, MftiError> {
        Ok(RMatrix::hstack(&[&m.real_part(), &m.imag_part()])?)
    };
    // Orthonormal real bases of the retained column/row spaces.
    let yb = Qr::compute(&realified_span(tu)?)?.q_thin();
    let xb = Qr::compute(&realified_span(tv)?)?.q_thin();
    realize_real_restricted(pencil, &yb, &xb, order)
}

/// Stacked realization **restricted** to real orthonormal bases
/// `yb`/`xb` that contain the stacked pencils' leading column/row
/// spaces: `row_stack = Yb·G` and `col_stack = H·Xbᵀ` (numerically),
/// so the leading singular subspaces of the small `G`/`H` lift back
/// through the bases. Two factor sources share this tail:
///
/// * [`realize_real_retained`] — session updater factors pushed through
///   the Lemma 3.2 frame and re-orthonormalized (`2q`-wide spans);
/// * the realified detection factors of [`RealizeKind::Real`] — the
///   leading `r` singular vectors of `x₀𝕃ᵣ − σ𝕃ᵣ`, already real and
///   orthonormal, used directly when `2r ≤ K`.
pub(crate) fn realize_real_restricted(
    pencil: &RealifiedPencil,
    yb: &RMatrix,
    xb: &RMatrix,
    order: usize,
) -> Result<DescriptorSystem<f64>, MftiError> {
    let k = pencil.order();
    if order == 0 || order > k {
        return Err(MftiError::OrderSelection {
            requested: order,
            pencil: k,
        });
    }
    let row_stack = RMatrix::hstack(&[pencil.ll(), pencil.sll()])?;
    let col_stack = RMatrix::vstack(&[pencil.ll(), pencil.sll()])?;
    let g = yb.mul_hermitian_left(&row_stack)?;
    let h = col_stack.matmul(xb)?;
    let y = yb.matmul(&LadderSvd::compute(&g, SvdFactors::Left)?.accumulate_u(order)?)?;
    let x = xb.matmul(&LadderSvd::compute(&h, SvdFactors::Right)?.accumulate_v(order)?)?;
    project_real(pencil, &y, &x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{TangentialData, Weights};
    use crate::directions::DirectionKind;
    use mfti_sampling::generators::RandomSystemBuilder;
    use mfti_sampling::{FrequencyGrid, SampleSet};
    use mfti_statespace::TransferFunction;

    fn setup(
        order: usize,
        ports: usize,
        d_rank: usize,
        k: usize,
        t: usize,
    ) -> (
        LoewnerPencil,
        TangentialData,
        SampleSet,
        mfti_statespace::DescriptorSystem<f64>,
    ) {
        let sys = RandomSystemBuilder::new(order, ports, ports)
            .d_rank(d_rank)
            .seed(31)
            .build()
            .unwrap();
        let grid = FrequencyGrid::log_space(1e2, 1e4, k).unwrap();
        let set = SampleSet::from_system(&sys, &grid).unwrap();
        let data = TangentialData::build(
            &set,
            DirectionKind::RandomOrthonormal { seed: 8 },
            &Weights::Uniform(t),
        )
        .unwrap();
        (LoewnerPencil::build(&data).unwrap(), data, set, sys)
    }

    #[test]
    fn order_selection_threshold() {
        let sv = [1.0, 0.5, 1e-3, 1e-12, 1e-13];
        assert_eq!(OrderSelection::Threshold(1e-9).detect(&sv).unwrap(), 3);
        assert_eq!(OrderSelection::Threshold(1e-2).detect(&sv).unwrap(), 2);
    }

    #[test]
    fn order_selection_largest_gap() {
        let sv = [1.0, 0.8, 0.7, 1e-9, 1e-10];
        let sel = OrderSelection::LargestGap {
            min_order: 1,
            max_order: 10,
        };
        assert_eq!(sel.detect(&sv).unwrap(), 3);
    }

    #[test]
    fn order_selection_noise_floor_cuts_at_the_floor() {
        // 6 signal values, then a 1e-3-ish noise plateau.
        let mut sv = vec![10.0, 5.0, 2.0, 0.9, 0.3, 0.1];
        sv.extend(std::iter::repeat_n(1.1e-3, 6));
        sv.extend(std::iter::repeat_n(0.9e-3, 12));
        let got = OrderSelection::NoiseFloor { factor: 5.0 }
            .detect(&sv)
            .unwrap();
        assert_eq!(got, 6, "floor ≈ 1e-3, cut at 5e-3 keeps the 6 signals");
    }

    #[test]
    fn order_selection_noise_floor_has_a_clean_data_guard() {
        // Clean data: "floor" is roundoff scatter ~1e-16; the absolute
        // relative guard must prevent keeping garbage directions.
        let mut sv = vec![1.0, 0.5, 0.25];
        sv.extend((0..17).map(|i| 1e-15 / (i + 1) as f64));
        let got = OrderSelection::NoiseFloor { factor: 3.0 }
            .detect(&sv)
            .unwrap();
        assert_eq!(got, 3);
    }

    #[test]
    fn order_selection_rejects_empty_and_all_zero_profiles() {
        // Degenerate detection signals (an all-zero pencil, or no
        // profile at all) must surface as `OrderSelection` errors here —
        // order 0 must never reach `realize_*`, whose own guards would
        // mask the true cause. Threshold computes `s0 = 0` and a zero
        // count; the shared zero-order guard converts that to the error.
        let zeros = [0.0f64; 8];
        for sel in [
            OrderSelection::Threshold(1e-12),
            OrderSelection::NoiseFloor { factor: 5.0 },
        ] {
            for profile in [&[][..], &zeros[..]] {
                match sel.detect(profile) {
                    Err(MftiError::OrderSelection { requested, .. }) => {
                        assert_eq!(requested, 0, "{sel:?} on {profile:?}")
                    }
                    other => panic!("{sel:?} on {profile:?} gave {other:?}"),
                }
            }
        }
        // LargestGap rejects the empty profile outright (no admissible
        // search range); an all-zero profile has no finite ratio to
        // prefer, so the clamped search returns its minimum order rather
        // than an error — pin that too so the clamp's behavior on
        // rank-zero tails stays documented.
        let gap = OrderSelection::LargestGap {
            min_order: 1,
            max_order: 6,
        };
        assert!(matches!(
            gap.detect(&[]),
            Err(MftiError::OrderSelection { .. })
        ));
        assert_eq!(gap.detect(&zeros).unwrap(), 1);
    }

    #[test]
    fn order_selection_rejects_invalid() {
        let sv = [1.0, 0.5];
        assert!(OrderSelection::Fixed(0).detect(&sv).is_err());
        assert!(OrderSelection::Fixed(3).detect(&sv).is_err());
        assert!(OrderSelection::LargestGap {
            min_order: 5,
            max_order: 3
        }
        .detect(&sv)
        .is_err());
    }

    #[test]
    fn complex_projection_recovers_transfer_function() {
        // Order 8 + rank(D)=2 system, sampled redundantly.
        let (pencil, _, set, sys) = setup(8, 2, 2, 10, 2);
        let sv = pencil
            .shifted_pencil_singular_values(pencil.default_x0())
            .unwrap();
        // Clean data: use the documented noise-free threshold. The two
        // rank(D) directions can sit as low as ~1e-10·σ₁ depending on how
        // strongly the random draw excites them, but the true-rank gap
        // below them is ~1e-17, so 1e-12 detects n + rank(D) robustly.
        let order = OrderSelection::Threshold(1e-12).detect(&sv).unwrap();
        assert_eq!(order, 10); // n + rank(D)
        let model = realize_complex(&pencil, pencil.default_x0(), order).unwrap();
        for (f, s) in set.iter() {
            let h = model.response_at_hz(f).unwrap();
            let rel = (&h - s).norm_2() / s.norm_2();
            assert!(rel < 1e-7, "relative error {rel} at {f} Hz");
        }
        // Off-grid accuracy (true recovery, not just interpolation).
        let f_test = 3.3e3;
        let h = model.response_at_hz(f_test).unwrap();
        let s = sys.response_at_hz(f_test).unwrap();
        assert!((&h - &s).norm_2() / s.norm_2() < 1e-6);
    }

    #[test]
    fn real_projection_recovers_transfer_function_with_real_matrices() {
        let (pencil, _, set, sys) = setup(8, 2, 2, 10, 2);
        let real = realify(&pencil, 1e-9).unwrap();
        let sv = pencil
            .shifted_pencil_singular_values(pencil.default_x0())
            .unwrap();
        let order = OrderSelection::Threshold(1e-9).detect(&sv).unwrap();
        let model = realize_real(&real, order).unwrap();
        // Real matrices by construction.
        assert_eq!(model.order(), order);
        for (f, s) in set.iter().take(4) {
            let h = model.response_at_hz(f).unwrap();
            let rel = (&h - s).norm_2() / s.norm_2();
            assert!(rel < 1e-7, "relative error {rel} at {f} Hz");
        }
        let f_test = 2.7e3;
        let h = model.response_at_hz(f_test).unwrap();
        let s = sys.response_at_hz(f_test).unwrap();
        assert!((&h - &s).norm_2() / s.norm_2() < 1e-6);
    }

    #[test]
    fn direct_realization_interpolates_when_pencil_is_regular() {
        // Minimal sampling: K = order + rank(D) exactly ⇒ regular pencil.
        // order 6, rank(D) 2, ports 2, t=2: K = 2·t·pairs = 8 ⇒ pairs = 2 ⇒ k = 4.
        let (pencil, _, set, _) = setup(6, 2, 2, 4, 2);
        assert_eq!(pencil.order(), 8);
        let model = realize_direct(&pencil).unwrap();
        for (f, s) in set.iter() {
            let h = model.response_at_hz(f).unwrap();
            let rel = (&h - s).norm_2() / s.norm_2();
            assert!(rel < 1e-6, "relative error {rel} at {f} Hz");
        }
    }

    #[test]
    fn lemma_3_1_exact_matrix_interpolation_with_full_weights() {
        // With t = min(m,p) and full-rank directions, H(jω_i) = S(f_i)
        // exactly (not just tangentially).
        let (pencil, _, set, _) = setup(6, 2, 2, 4, 2);
        let model = realize_direct(&pencil).unwrap();
        for (f, s) in set.iter() {
            let h = model.response_at_hz(f).unwrap();
            assert!(
                (&h - s).max_abs() < 1e-8 * s.max_abs(),
                "full matrix interpolation failed at {f} Hz"
            );
        }
    }

    #[test]
    fn truncating_below_true_order_degrades_gracefully() {
        let (pencil, _, set, _) = setup(10, 2, 0, 12, 2);
        let real = realify(&pencil, 1e-9).unwrap();
        let small = realize_real(&real, 4).unwrap();
        // Should still evaluate and produce a bounded (if inaccurate) fit.
        let mut worst = 0.0f64;
        for (f, s) in set.iter() {
            let h = small.response_at_hz(f).unwrap();
            worst = worst.max((&h - s).norm_2() / s.norm_2());
        }
        assert!(worst.is_finite());
        assert!(worst > 1e-8, "a rank-4 model cannot be exact for order 10");
    }
}
