//! Minimal-sampling bounds (paper Theorem 3.5).
//!
//! The least number of noise-free samples needed to recover a system Γ
//! satisfies
//!
//! ```text
//! order(Γ)/min(m,p)  ≤  k_min  ≤  (size(A₀) + rank(D₀))/min(m,p)
//! ```
//!
//! with the empirical value `k_min = (order(Γ) + rank(D₀))/min(m,p)`.
//! VFTI (`t_i = 1`) needs at least `order(Γ)` samples instead — the
//! source of the paper's "1/p as many samples" headline.

/// The three bounds of Theorem 3.5 (all in number of sampled matrices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleBounds {
    /// Lower bound `⌈order(Γ)/min(m,p)⌉`.
    pub lower: usize,
    /// Upper bound `⌈(size(A₀)+rank(D₀))/min(m,p)⌉`.
    pub upper: usize,
    /// Empirical value `⌈(order(Γ)+rank(D₀))/min(m,p)⌉` (what the
    /// experiments confirm).
    pub empirical: usize,
}

/// Evaluates Theorem 3.5 for a system with `order(Γ) = order` dynamic
/// states, state-matrix size `size_a ≥ order`, feed-through rank
/// `d_rank`, and `p × m` ports.
///
/// # Panics
///
/// Panics when a port count is zero or `size_a < order` (a descriptor
/// system's `A` can never be smaller than its dynamic order).
///
/// ```
/// // Example 1 of the paper: order 150, 30 ports, full-rank D.
/// let b = mfti_core::minimal_samples(150, 150, 30, 30, 30);
/// assert_eq!(b.lower, 5);
/// assert_eq!(b.empirical, 6);
/// assert_eq!(b.upper, 6);
/// ```
pub fn minimal_samples(
    order: usize,
    size_a: usize,
    d_rank: usize,
    outputs: usize,
    inputs: usize,
) -> SampleBounds {
    assert!(outputs > 0 && inputs > 0, "port counts must be positive");
    assert!(size_a >= order, "size(A) cannot be below the dynamic order");
    let denom = outputs.min(inputs);
    let ceil_div = |a: usize, b: usize| a.div_ceil(b);
    SampleBounds {
        lower: ceil_div(order, denom),
        upper: ceil_div(size_a + d_rank, denom),
        empirical: ceil_div(order + d_rank, denom),
    }
}

/// Minimum sample count for VFTI on the same system: `order + rank(D)`
/// single-direction samples (each contributes one row and one column).
pub fn vfti_minimal_samples(order: usize, d_rank: usize) -> usize {
    order + d_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_numbers() {
        // Paper: 150-order, 30-port, rank(D)=30 → MFTI needs 6 samples,
        // VFTI needs 180 — a 30x ratio.
        let b = minimal_samples(150, 150, 30, 30, 30);
        assert_eq!(
            b,
            SampleBounds {
                lower: 5,
                upper: 6,
                empirical: 6
            }
        );
        assert_eq!(vfti_minimal_samples(150, 30), 180);
        assert_eq!(vfti_minimal_samples(150, 30) / b.empirical, 30);
    }

    #[test]
    fn bounds_are_ordered() {
        for &(n, sa, rd, p, m) in &[
            (10usize, 10usize, 0usize, 2usize, 2usize),
            (17, 20, 3, 4, 5),
            (1, 1, 1, 1, 1),
            (100, 120, 10, 8, 8),
        ] {
            let b = minimal_samples(n, sa, rd, p, m);
            assert!(b.lower <= b.empirical, "{b:?}");
            assert!(b.empirical <= b.upper, "{b:?}");
        }
    }

    #[test]
    fn rectangular_port_counts_use_the_smaller_side() {
        let b = minimal_samples(12, 12, 0, 3, 6);
        assert_eq!(b.empirical, 4); // 12 / min(3,6)
    }

    #[test]
    #[should_panic(expected = "port counts")]
    fn zero_ports_panics() {
        let _ = minimal_samples(4, 4, 0, 0, 2);
    }

    #[test]
    #[should_panic(expected = "size(A)")]
    fn inconsistent_size_panics() {
        let _ = minimal_samples(10, 5, 0, 2, 2);
    }
}
