//! Matrix-format tangential interpolation (MFTI) — the core algorithms
//! of *Wang, Lei, Pang, Wong, "MFTI: Matrix-Format Tangential
//! Interpolation for Modeling Multi-Port Systems", DAC 2010*.
//!
//! Given frequency samples `S(f_i) ∈ ℂ^{p×m}` of a multi-port LTI
//! system, MFTI builds a descriptor state-space macromodel
//! `H(s) = C(sE − A)⁻¹B` whose transfer function interpolates the data —
//! using *matrix* tangential directions so that each sample contributes
//! `t_i` columns and rows of information instead of VFTI's single pair.
//!
//! The pipeline (all stages public for inspection):
//!
//! 1. [`DirectionKind`] / [`generate_directions`] — orthonormal direction
//!    blocks `R_i`, `L_i`;
//! 2. [`TangentialData`] — right/left interpolation data with conjugate
//!    augmentation (paper Eqs. 6–9);
//! 3. [`LoewnerPencil`] — the block Loewner matrices `𝕃`, `σ𝕃`
//!    (Eqs. 11–12), incrementally extensible;
//! 4. [`realify`] — Lemma 3.2's unitary transformation to real
//!    arithmetic;
//! 5. [`realize_direct`] / [`realize_complex`] / [`realize_real`] —
//!    Lemmas 3.1 and 3.4;
//! 6. [`Mfti`] (Algorithm 1), [`RecursiveMfti`] (Algorithm 2) and the
//!    [`Vfti`] baseline as ready-made fitters, all usable through the
//!    algorithm-agnostic [`Fitter`] trait (which classical vector
//!    fitting from `mfti-vecfit` implements too);
//! 7. [`FitSession`] — the pipeline as a staged object: append samples,
//!    grow the pencil incrementally, absorb each append into the
//!    order-detection SVD as a rank-revealing update ([`SessionSvd`]),
//!    re-run order selection cheaply;
//! 8. [`metrics`] and [`minimal_samples`] (Theorem 3.5) for evaluation.
//!
//! # Example
//!
//! ```
//! use mfti_core::{Fitter, Mfti};
//! use mfti_core::metrics::err_rms_of;
//! use mfti_sampling::generators::RandomSystemBuilder;
//! use mfti_sampling::{FrequencyGrid, SampleSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An order-12, 3-port system sampled at just 8 frequencies …
//! let sys = RandomSystemBuilder::new(12, 3, 3).d_rank(3).seed(1).build()?;
//! let grid = FrequencyGrid::log_space(1e2, 1e4, 8)?;
//! let samples = SampleSet::from_system(&sys, &grid)?;
//! // … is recovered exactly by MFTI (VFTI would need ≥ 15 samples).
//! let outcome = Mfti::new().fit(&samples)?;
//! assert!(err_rms_of(outcome.model(), &samples)? < 1e-8);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod data;
mod directions;
mod error;
mod fitter;
mod loewner;
pub mod metrics;
mod mfti;
mod realify;
mod realize;
mod recovery;
mod recursive;
mod sampling_bounds;
mod session;
mod vfti;

pub use data::{LeftTriple, RightTriple, TangentialData, Weights};
pub use directions::{
    generate_directions, generate_directions_from, DirectionKind, DirectionOrigin, DirectionSet,
};
pub use error::MftiError;
pub use fitter::{AnyModel, FitError, FitOutcome, Fitter};
pub use loewner::LoewnerPencil;
pub use mfti::{FitResult, FittedModel, Mfti, RealizationPath};
pub use realify::{realify, RealifiedPencil};
pub use realize::{realize_complex, realize_direct, realize_real, OrderSelection, RealizeKind};
pub use recursive::{RecursiveFit, RecursiveMfti, RoundInfo, SelectionOrder};
pub use sampling_bounds::{minimal_samples, vfti_minimal_samples, SampleBounds};
pub use session::{FitSession, Reanchor, SessionSvd, SignalDiagnostic, WindowPolicy};
pub use vfti::Vfti;

/// Relative singular-value level below which directions are considered
/// numerical garbage regardless of any estimated noise floor.
pub(crate) fn numeric_floor() -> f64 {
    1e-11
}
