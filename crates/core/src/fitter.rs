//! The algorithm-agnostic fitting surface: [`Fitter`], [`FitOutcome`],
//! [`AnyModel`] and [`FitError`].
//!
//! The workspace ships four fitting engines — [`Mfti`] (Algorithm 1),
//! [`RecursiveMfti`] (Algorithm 2), the [`Vfti`] baseline and classical
//! [`VectorFitter`] — that historically exposed incompatible `fit`
//! signatures, three disjoint error enums and three model types. This
//! module unifies them behind one object-safe trait, exactly the
//! posture of the matrix-valued Vector Fitting literature where VF and
//! Loewner/tangential interpolation are interchangeable
//! rational-approximation engines for a common problem statement:
//!
//! ```
//! use mfti_core::{Fitter, Mfti, RecursiveMfti, Vfti};
//! use mfti_sampling::generators::RandomSystemBuilder;
//! use mfti_sampling::{FrequencyGrid, SampleSet};
//! use mfti_vecfit::VectorFitter;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = RandomSystemBuilder::new(8, 2, 2).d_rank(2).seed(3).build()?;
//! let grid = FrequencyGrid::log_space(1e2, 1e4, 16)?;
//! let samples = SampleSet::from_system(&sys, &grid)?;
//!
//! let fitters: Vec<Box<dyn Fitter>> = vec![
//!     Box::new(Mfti::new()),
//!     Box::new(Vfti::new()),
//!     Box::new(RecursiveMfti::new().threshold(1e-8)),
//!     Box::new(VectorFitter::new(10)),
//! ];
//! for fitter in &fitters {
//!     let outcome = fitter.fit(&samples)?;
//!     println!("{}: order {} in {:?}", fitter.name(), outcome.order(), outcome.elapsed());
//! }
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::time::Duration;

use mfti_numeric::{CMatrix, Complex, NumericError};
use mfti_sampling::{SampleDefect, SampleSet, SamplingError};
use mfti_statespace::{
    DescriptorSystem, Macromodel, RationalModel, StateSpaceError, TransferFunction,
};
use mfti_vecfit::{VecFitError, VectorFitter, VfFit};

use crate::error::MftiError;
use crate::mfti::{FitResult, FittedModel, Mfti};
use crate::recursive::{RecursiveFit, RecursiveMfti, RoundInfo};
use crate::vfti::Vfti;

/// Workspace-level fitting error: the union of every engine's failure
/// modes, so method-agnostic drivers handle one type.
#[derive(Debug)]
#[non_exhaustive]
pub enum FitError {
    /// The sample data failed validated ingestion — rejected at the
    /// boundary, before any factorization ran (DESIGN.md §8; see the
    /// failure-taxonomy walkthrough there and the robustness section of
    /// the README).
    Invalid(SampleDefect),
    /// A Loewner-pencil (MFTI/VFTI) stage failed.
    Mfti(MftiError),
    /// A vector-fitting stage failed.
    VecFit(VecFitError),
    /// A model construction/evaluation failed.
    StateSpace(StateSpaceError),
    /// A staged [`FitSession`](crate::FitSession) was driven out of
    /// order (e.g. realizing before any samples were appended).
    Session {
        /// Human-readable description of the misuse.
        what: &'static str,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Invalid(d) => write!(f, "invalid sample data: {d}"),
            FitError::Mfti(e) => write!(f, "loewner fit failed: {e}"),
            FitError::VecFit(e) => write!(f, "vector fit failed: {e}"),
            FitError::StateSpace(e) => write!(f, "model operation failed: {e}"),
            FitError::Session { what } => write!(f, "fit session misuse: {what}"),
        }
    }
}

impl Error for FitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FitError::Invalid(d) => Some(d),
            FitError::Mfti(e) => Some(e),
            FitError::VecFit(e) => Some(e),
            FitError::StateSpace(e) => Some(e),
            FitError::Session { .. } => None,
        }
    }
}

impl From<MftiError> for FitError {
    fn from(e: MftiError) -> Self {
        match e {
            // Sample defects surface as the boundary-level variant no
            // matter which layer detected them, so harnesses match one
            // stable shape.
            MftiError::Defect(d) => FitError::Invalid(d),
            other => FitError::Mfti(other),
        }
    }
}

impl From<SampleDefect> for FitError {
    fn from(d: SampleDefect) -> Self {
        FitError::Invalid(d)
    }
}

impl From<VecFitError> for FitError {
    fn from(e: VecFitError) -> Self {
        FitError::VecFit(e)
    }
}

impl From<StateSpaceError> for FitError {
    fn from(e: StateSpaceError) -> Self {
        FitError::StateSpace(e)
    }
}

impl From<NumericError> for FitError {
    fn from(e: NumericError) -> Self {
        FitError::Mfti(MftiError::Numeric(e))
    }
}

impl From<SamplingError> for FitError {
    fn from(e: SamplingError) -> Self {
        FitError::Mfti(MftiError::Sampling(e))
    }
}

/// Any model a workspace fitter can produce: a (real or complex)
/// descriptor system or a common-pole rational model.
///
/// The enum implements [`Macromodel`], so generic drivers evaluate it
/// without caring which engine produced it, while the `as_*` accessors
/// recover the concrete type when a back-end (SPICE stamping, pole
/// inspection) needs it.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// A descriptor state-space model (MFTI/VFTI/recursive output).
    Fitted(FittedModel),
    /// A pole–residue model (vector-fitting output).
    Rational(RationalModel),
}

impl AnyModel {
    /// Borrows the descriptor-family model, if this is one.
    pub fn as_fitted(&self) -> Option<&FittedModel> {
        match self {
            AnyModel::Fitted(m) => Some(m),
            AnyModel::Rational(_) => None,
        }
    }

    /// Borrows the pole–residue model, if this is one.
    pub fn as_rational(&self) -> Option<&RationalModel> {
        match self {
            AnyModel::Rational(m) => Some(m),
            AnyModel::Fitted(_) => None,
        }
    }

    /// Borrows the real descriptor system, if this is one (the SPICE
    /// path).
    pub fn as_real(&self) -> Option<&DescriptorSystem<f64>> {
        self.as_fitted().and_then(FittedModel::as_real)
    }

    /// Borrows the complex descriptor system, if this is one.
    pub fn as_complex(&self) -> Option<&DescriptorSystem<Complex>> {
        self.as_fitted().and_then(FittedModel::as_complex)
    }
}

impl From<FittedModel> for AnyModel {
    fn from(m: FittedModel) -> Self {
        AnyModel::Fitted(m)
    }
}

impl From<RationalModel> for AnyModel {
    fn from(m: RationalModel) -> Self {
        AnyModel::Rational(m)
    }
}

impl TransferFunction for AnyModel {
    fn outputs(&self) -> usize {
        match self {
            AnyModel::Fitted(m) => m.outputs(),
            AnyModel::Rational(m) => m.outputs(),
        }
    }

    fn inputs(&self) -> usize {
        match self {
            AnyModel::Fitted(m) => m.inputs(),
            AnyModel::Rational(m) => m.inputs(),
        }
    }

    fn eval(&self, s: Complex) -> Result<CMatrix, StateSpaceError> {
        match self {
            AnyModel::Fitted(m) => m.eval(s),
            AnyModel::Rational(m) => m.eval(s),
        }
    }

    fn frequency_response(&self, freqs_hz: &[f64]) -> Result<Vec<CMatrix>, StateSpaceError> {
        self.response_batch_hz(freqs_hz)
    }
}

impl Macromodel for AnyModel {
    fn order(&self) -> usize {
        match self {
            AnyModel::Fitted(m) => FittedModel::order(m),
            AnyModel::Rational(m) => RationalModel::order(m),
        }
    }

    fn eval_batch(&self, s: &[Complex]) -> Result<Vec<CMatrix>, StateSpaceError> {
        match self {
            AnyModel::Fitted(m) => m.eval_batch(s),
            AnyModel::Rational(m) => m.eval_batch(s),
        }
    }
}

/// Method-agnostic result of a fit: the model plus every diagnostic the
/// engines report, behind one accessor surface.
///
/// Diagnostics that a method does not produce return `None` (e.g.
/// pencil singular values for vector fitting, σ-iteration history for
/// the Loewner methods).
#[derive(Debug, Clone)]
pub struct FitOutcome {
    method: &'static str,
    model: AnyModel,
    detected_order: usize,
    elapsed: Duration,
    pencil_singular_values: Option<Vec<f64>>,
    pencil_order: Option<usize>,
    rounds: Option<Vec<RoundInfo>>,
    used_pairs: Option<Vec<usize>>,
    d_tilde_history: Option<Vec<f64>>,
    sigma_residuals: Option<Vec<f64>>,
}

impl FitOutcome {
    /// Name of the method that produced this outcome.
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// The fitted model.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// Consumes the outcome, returning the model.
    pub fn into_model(self) -> AnyModel {
        self.model
    }

    /// The model as an object-safe [`Macromodel`] handle.
    pub fn macromodel(&self) -> &dyn Macromodel {
        &self.model
    }

    /// Detected (reduced) model order: states for the Loewner methods,
    /// poles for vector fitting.
    pub fn order(&self) -> usize {
        self.detected_order
    }

    /// Wall-clock fitting time (Table 1's `time(s)` column).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Singular values of `x₀𝕃 − σ𝕃` — the order-detection signal of
    /// the Loewner methods (Fig. 1). `None` for vector fitting.
    pub fn pencil_singular_values(&self) -> Option<&[f64]> {
        self.pencil_singular_values.as_deref()
    }

    /// Loewner pencil size `K` before truncation. `None` for vector
    /// fitting.
    pub fn pencil_order(&self) -> Option<usize> {
        self.pencil_order
    }

    /// Per-round history of the recursive algorithm. `None` for
    /// single-shot methods.
    pub fn rounds(&self) -> Option<&[RoundInfo]> {
        self.rounds.as_deref()
    }

    /// Sample-pair indices admitted by the recursive algorithm, in
    /// admission order. `None` for single-shot methods.
    pub fn used_pairs(&self) -> Option<&[usize]> {
        self.used_pairs.as_deref()
    }

    /// `d̃` after each vector-fitting σ-iteration (→ 1 at convergence).
    /// `None` for the Loewner methods.
    pub fn vf_d_tilde_history(&self) -> Option<&[f64]> {
        self.d_tilde_history.as_deref()
    }

    /// RMS residual of each linearized σ fit. `None` for the Loewner
    /// methods.
    pub fn vf_sigma_residuals(&self) -> Option<&[f64]> {
        self.sigma_residuals.as_deref()
    }

    pub(crate) fn from_loewner(method: &'static str, fit: FitResult) -> Self {
        FitOutcome {
            method,
            model: AnyModel::Fitted(fit.model),
            detected_order: fit.detected_order,
            elapsed: fit.elapsed,
            pencil_singular_values: Some(fit.pencil_singular_values),
            pencil_order: Some(fit.pencil_order),
            rounds: None,
            used_pairs: None,
            d_tilde_history: None,
            sigma_residuals: None,
        }
    }

    pub(crate) fn from_recursive(fit: RecursiveFit) -> Self {
        let mut outcome = Self::from_loewner("recursive-mfti", fit.result);
        outcome.rounds = Some(fit.rounds);
        outcome.used_pairs = Some(fit.used_pairs);
        outcome
    }

    pub(crate) fn from_vecfit(fit: VfFit) -> Self {
        FitOutcome {
            method: "vector-fitting",
            detected_order: fit.model.order(),
            model: AnyModel::Rational(fit.model),
            elapsed: fit.elapsed,
            pencil_singular_values: None,
            pencil_order: None,
            rounds: None,
            used_pairs: None,
            d_tilde_history: Some(fit.d_tilde_history),
            sigma_residuals: Some(fit.sigma_residuals),
        }
    }
}

impl From<FitResult> for FitOutcome {
    /// Wraps a detailed Loewner result. A bare `FitResult` does not
    /// record which configuration produced it, so the method label is
    /// the family name `"loewner"`; [`Fitter::fit`] on a concrete
    /// engine reports the specific `"mfti"` / `"vfti"` label instead.
    fn from(fit: FitResult) -> Self {
        Self::from_loewner("loewner", fit)
    }
}

impl From<RecursiveFit> for FitOutcome {
    fn from(fit: RecursiveFit) -> Self {
        Self::from_recursive(fit)
    }
}

impl From<VfFit> for FitOutcome {
    fn from(fit: VfFit) -> Self {
        Self::from_vecfit(fit)
    }
}

/// An object-safe rational-approximation engine: samples in, model plus
/// diagnostics out.
///
/// All four workspace fitters implement this, so drivers, benches and
/// serving layers can be written once against `&dyn Fitter` and handed
/// any engine.
pub trait Fitter {
    /// Short stable identifier of the method (used in benchmark and
    /// report labels).
    fn name(&self) -> &'static str;

    /// Fits a macromodel to the sample set.
    ///
    /// # Errors
    ///
    /// Returns the engine's failure modes unified as [`FitError`].
    fn fit(&self, samples: &SampleSet) -> Result<FitOutcome, FitError>;
}

/// The validated-ingestion gate every generic `fit` passes through:
/// defective data is rejected with [`FitError::Invalid`] before the
/// engine runs any factorization (DESIGN.md §8).
fn validated(samples: &SampleSet) -> Result<&SampleSet, FitError> {
    Ok(samples.validate()?.as_set())
}

impl Fitter for Mfti {
    fn name(&self) -> &'static str {
        "mfti"
    }

    fn fit(&self, samples: &SampleSet) -> Result<FitOutcome, FitError> {
        Ok(FitOutcome::from_loewner(
            "mfti",
            self.fit_detailed(validated(samples)?)?,
        ))
    }
}

impl Fitter for Vfti {
    fn name(&self) -> &'static str {
        "vfti"
    }

    fn fit(&self, samples: &SampleSet) -> Result<FitOutcome, FitError> {
        Ok(FitOutcome::from_loewner(
            "vfti",
            self.fit_detailed(validated(samples)?)?,
        ))
    }
}

impl Fitter for RecursiveMfti {
    fn name(&self) -> &'static str {
        "recursive-mfti"
    }

    fn fit(&self, samples: &SampleSet) -> Result<FitOutcome, FitError> {
        Ok(FitOutcome::from_recursive(
            self.fit_detailed(validated(samples)?)?,
        ))
    }
}

impl Fitter for VectorFitter {
    fn name(&self) -> &'static str {
        "vector-fitting"
    }

    fn fit(&self, samples: &SampleSet) -> Result<FitOutcome, FitError> {
        Ok(FitOutcome::from_vecfit(
            self.fit_detailed(validated(samples)?)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::err_rms_of;
    use mfti_sampling::generators::RandomSystemBuilder;
    use mfti_sampling::FrequencyGrid;

    fn samples() -> SampleSet {
        let sys = RandomSystemBuilder::new(8, 2, 2)
            .d_rank(2)
            .seed(3)
            .build()
            .unwrap();
        let grid = FrequencyGrid::log_space(1e2, 1e4, 16).unwrap();
        SampleSet::from_system(&sys, &grid).unwrap()
    }

    #[test]
    fn all_four_fitters_work_through_the_trait_object() {
        let set = samples();
        let fitters: Vec<Box<dyn Fitter>> = vec![
            Box::new(Mfti::new()),
            Box::new(Vfti::new()),
            Box::new(RecursiveMfti::new().threshold(1e-9)),
            Box::new(VectorFitter::new(10).iterations(10)),
        ];
        for fitter in &fitters {
            let outcome = fitter
                .fit(&set)
                .unwrap_or_else(|e| panic!("{}: {e}", fitter.name()));
            assert!(outcome.order() > 0, "{}", fitter.name());
            assert_eq!(outcome.method(), fitter.name());
            let err = err_rms_of(outcome.model(), &set).expect("eval");
            assert!(err < 1e-2, "{}: ERR {err:.2e}", fitter.name());
        }
    }

    #[test]
    fn diagnostics_surface_is_method_aware() {
        let set = samples();
        let mfti = Fitter::fit(&Mfti::new(), &set).unwrap();
        assert!(mfti.pencil_singular_values().is_some());
        assert!(mfti.pencil_order().is_some());
        assert!(mfti.rounds().is_none());
        assert!(mfti.vf_d_tilde_history().is_none());
        assert!(mfti.model().as_real().is_some());

        let rec = Fitter::fit(&RecursiveMfti::new().threshold(1e-9), &set).unwrap();
        assert!(rec.rounds().is_some());
        assert!(rec.used_pairs().is_some());
        assert!(rec.pencil_singular_values().is_some());

        let vf = Fitter::fit(&VectorFitter::new(10), &set).unwrap();
        assert!(vf.pencil_singular_values().is_none());
        assert!(vf.vf_d_tilde_history().is_some());
        assert!(vf.model().as_rational().is_some());
        assert_eq!(vf.order(), vf.model().as_rational().unwrap().order());
    }

    #[test]
    fn fit_error_wraps_every_engine_error() {
        let mfti_err: FitError = MftiError::InvalidSamples {
            what: "odd".to_string(),
        }
        .into();
        assert!(matches!(mfti_err, FitError::Mfti(_)));
        assert!(mfti_err.to_string().contains("odd"));

        let vf_err: FitError = VecFitError::IterationCollapsed { iteration: 2 }.into();
        assert!(matches!(vf_err, FitError::VecFit(_)));
        assert!(Error::source(&vf_err).is_some());

        let ss_err: FitError = StateSpaceError::NotConjugateSymmetric.into();
        assert!(matches!(ss_err, FitError::StateSpace(_)));

        let num_err: FitError = NumericError::Singular { op: "svd" }.into();
        assert!(num_err.to_string().contains("svd"));
    }

    #[test]
    fn any_model_is_a_macromodel() {
        let set = samples();
        let outcome = Fitter::fit(&Mfti::new(), &set).unwrap();
        let boxed: Box<dyn Macromodel> = Box::new(outcome.into_model());
        assert_eq!(boxed.order(), 10);
        let pts: Vec<Complex> = set
            .freqs_hz()
            .iter()
            .map(|&f| mfti_statespace::s_at_hz(f))
            .collect();
        let batch = boxed.eval_batch(&pts).unwrap();
        for (h, (_, s)) in batch.iter().zip(set.iter()) {
            assert!((h - s).norm_2() / s.norm_2() < 1e-7);
        }
    }
}
