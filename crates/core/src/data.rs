//! Matrix-format tangential interpolation data (paper Eqs. 6–9).
//!
//! A sample set of `k` matrices (`k` even) is split alternately: samples
//! `0, 2, 4, …` feed the **right** data `{λ_i, R_i, W_i = S R_i}`,
//! samples `1, 3, 5, …` feed the **left** data `{μ_i, L_i, V_i = L S}`.
//! Each sample additionally contributes its complex conjugate
//! (`λ → −λ`, `W → conj(W)`, directions real hence unchanged) so the
//! recovered model satisfies `H(−jω) = conj(H(jω))` and admits a real
//! realization (Lemma 3.2).

use mfti_numeric::{CMatrix, Complex, RMatrix};
use mfti_sampling::SampleSet;
use mfti_statespace::s_at_hz;

use crate::directions::{generate_directions_from, DirectionKind, DirectionOrigin, DirectionSet};
use crate::error::MftiError;

/// Per-sample block widths `t_i` (the paper's accuracy/speed/weighting
/// knob, Section 3.1).
///
/// # Resolution semantics
///
/// Weights are *resolved* against the sample set when
/// [`TangentialData::build`] runs: each variant expands to one `t_j ∈
/// [1, min(m, p)]` per sample **pair** (pair `j` = samples `2j`/`2j+1`),
/// and pair `j` then contributes `2·t_j` rows and columns to the
/// Loewner pencil (`K = Σ 2 t_j`). [`Weights::Full`] defers the choice
/// of `t` to resolution time, so one fitter configuration works across
/// sample sets of different port counts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Weights {
    /// Full matrix weights `t = min(m, p)` for every pair, resolved
    /// against the sample dimensions at build time — every entry of each
    /// sample is exploited (Lemma 3.1). The default of the fitters.
    Full,
    /// The same `t` for every sample pair. `t = min(m, p)` is equivalent
    /// to [`Weights::Full`]; `t = 1` degenerates to VFTI.
    Uniform(usize),
    /// An explicit `t_j` per sample *pair* (pair `j` = samples
    /// `2j`/`2j+1`). Larger weights emphasize the corresponding
    /// frequencies — the paper's treatment of ill-conditioned data.
    PerPair(Vec<usize>),
}

impl Weights {
    /// Expands to per-pair widths; `full_t` is the `min(m, p)` of the
    /// sample set, substituted for [`Weights::Full`].
    fn resolve(&self, pairs: usize, full_t: usize) -> Result<Vec<usize>, MftiError> {
        match self {
            Weights::Full => Ok(vec![full_t; pairs]),
            Weights::Uniform(t) => Ok(vec![*t; pairs]),
            Weights::PerPair(v) => {
                if v.len() != pairs {
                    return Err(MftiError::InvalidWeights {
                        what: format!("expected {pairs} pair weights, got {}", v.len()),
                    });
                }
                Ok(v.clone())
            }
        }
    }
}

/// Rejects direction blocks carrying a numerically-zero column (right,
/// `m × t`) or row (left, `t × p`): the corresponding interpolation
/// condition `S(λ)r` / `ℓS(μ)` constrains nothing and the Loewner
/// pencil silently loses rank. "Numerically zero" is relative to the
/// block's own magnitude, so an all-zero block also fires.
fn check_directions(dirs: &DirectionSet) -> Result<(), MftiError> {
    let degenerate = |scale: f64, max: f64| max <= scale * f64::EPSILON;
    for (j, r) in dirs.right.iter().enumerate() {
        let (m, t) = r.dims();
        let scale = r.max_abs();
        for c in 0..t {
            let col_max = (0..m).map(|i| r[(i, c)].abs()).fold(0.0, f64::max);
            if degenerate(scale, col_max) {
                return Err(MftiError::DegenerateDirection { pair: j });
            }
        }
    }
    for (j, l) in dirs.left.iter().enumerate() {
        let (t, p) = l.dims();
        let scale = l.max_abs();
        for r in 0..t {
            let row_max = (0..p).map(|c| l[(r, c)].abs()).fold(0.0, f64::max);
            if degenerate(scale, row_max) {
                return Err(MftiError::DegenerateDirection { pair: j });
            }
        }
    }
    Ok(())
}

/// One right tangential triple `(λ, R, W)` with `W = S(f) R`.
#[derive(Debug, Clone)]
pub struct RightTriple {
    /// Interpolation point `λ = ±j2πf`.
    pub lambda: Complex,
    /// Direction block `R` (`m × t`), real.
    pub r: RMatrix,
    /// Data block `W = S(f)·R` (`p × t`).
    pub w: CMatrix,
    /// Index of the originating sample in the sample set.
    pub sample_index: usize,
}

/// One left tangential triple `(μ, L, V)` with `V = L S(f)`.
#[derive(Debug, Clone)]
pub struct LeftTriple {
    /// Interpolation point `μ = ±j2πf`.
    pub mu: Complex,
    /// Direction block `L` (`t × p`), real.
    pub l: RMatrix,
    /// Data block `V = L·S(f)` (`t × m`).
    pub v: CMatrix,
    /// Index of the originating sample in the sample set.
    pub sample_index: usize,
}

/// The full matrix-format tangential data set of Eqs. (6)–(9).
///
/// Triples are stored with conjugates adjacent (`2j` = original,
/// `2j+1` = conjugate), which is the ordering Lemma 3.2's
/// block-diagonal transformation `T` expects.
#[derive(Debug, Clone)]
pub struct TangentialData {
    right: Vec<RightTriple>,
    left: Vec<LeftTriple>,
    pair_weights: Vec<usize>,
    outputs: usize,
    inputs: usize,
    freq_scale: f64,
}

impl TangentialData {
    /// Builds tangential data from an even-sized sample set.
    ///
    /// # Errors
    ///
    /// * [`MftiError::Defect`] for NaN/∞ frequencies or entries,
    ///   duplicate frequencies, or fewer than two samples — the
    ///   validated-ingestion gate shared by every engine (DESIGN.md §8);
    /// * [`MftiError::InvalidSamples`] for odd `k` or non-positive
    ///   frequencies;
    /// * [`MftiError::DegenerateDirection`] when a direction block
    ///   carries a numerically-zero column/row;
    /// * [`MftiError::InvalidWeights`] for out-of-range `t_i`.
    pub fn build(
        samples: &SampleSet,
        directions: DirectionKind,
        weights: &Weights,
    ) -> Result<Self, MftiError> {
        Self::build_from(samples, directions, weights, DirectionOrigin::default())
    }

    /// [`TangentialData::build`] with the direction stream resumed at
    /// `origin` — the sliding-window form (DESIGN.md §9): a windowed
    /// [`FitSession`](crate::FitSession) rebuilds its data over the
    /// *live samples only* (so the duplicate-frequency gate scopes to
    /// the window, not the full stream history) while each surviving
    /// pair keeps the directions it was assigned when it first streamed
    /// in.
    ///
    /// # Errors
    ///
    /// See [`TangentialData::build`].
    pub fn build_from(
        samples: &SampleSet,
        directions: DirectionKind,
        weights: &Weights,
        origin: DirectionOrigin,
    ) -> Result<Self, MftiError> {
        // The numeric ingestion gate runs first: non-finite data and
        // duplicated interpolation points σ (which make the Loewner
        // divided differences singular) never reach pencil assembly.
        samples.validate()?;
        let k = samples.len();
        if !k.is_multiple_of(2) {
            return Err(MftiError::InvalidSamples {
                what: format!("need an even number of samples >= 2, got {k}"),
            });
        }
        if samples.freqs_hz().iter().any(|&f| f <= 0.0) {
            return Err(MftiError::InvalidSamples {
                what: "frequencies must be strictly positive (conjugate \
                       augmentation would collide at DC)"
                    .to_string(),
            });
        }

        let (p, m) = samples.ports();
        let pairs = k / 2;
        let ts = weights.resolve(pairs, p.min(m))?;
        let dirs: DirectionSet = generate_directions_from(directions, p, m, &ts, &ts, origin)?;
        // Built-in generators emit orthonormal blocks, but the gate also
        // guards any future user-supplied direction source: a zero
        // column/row makes its interpolation condition vacuous and the
        // pencil silently loses rank (DESIGN.md §8).
        check_directions(&dirs)?;

        let mut right = Vec::with_capacity(k);
        let mut left = Vec::with_capacity(k);
        for j in 0..pairs {
            // Right data from sample 2j (paper: f_1, f_3, …).
            let (f_r, s_r) = samples.get(2 * j);
            let r = &dirs.right[j];
            let w = s_r.matmul(&r.to_complex())?;
            let lambda = s_at_hz(f_r);
            right.push(RightTriple {
                lambda,
                r: r.clone(),
                w: w.clone(),
                sample_index: 2 * j,
            });
            right.push(RightTriple {
                lambda: -lambda,
                r: r.clone(),
                w: w.conj(),
                sample_index: 2 * j,
            });

            // Left data from sample 2j+1 (paper: f_2, f_4, …).
            let (f_l, s_l) = samples.get(2 * j + 1);
            let l = &dirs.left[j];
            let v = l.to_complex().matmul(s_l)?;
            let mu = s_at_hz(f_l);
            left.push(LeftTriple {
                mu,
                l: l.clone(),
                v: v.clone(),
                sample_index: 2 * j + 1,
            });
            left.push(LeftTriple {
                mu: -mu,
                l: l.clone(),
                v: v.conj(),
                sample_index: 2 * j + 1,
            });
        }

        // Pencil computations run in normalized frequency s' = s/ω₀ to
        // keep 𝕃 and σ𝕃 at comparable magnitudes (σ𝕃 ≈ ω·𝕃 otherwise,
        // which destroys the projection subspaces on wide-band data).
        let freq_scale = samples
            .freqs_hz()
            .iter()
            .fold(0.0f64, |acc, &f| acc.max(std::f64::consts::TAU * f));

        Ok(TangentialData {
            right,
            left,
            pair_weights: ts,
            outputs: p,
            inputs: m,
            freq_scale,
        })
    }

    /// The frequency normalization ω₀ (max |λ|) used by the Loewner
    /// pencil; interpolation points inside [`LoewnerPencil`](crate::LoewnerPencil) are divided
    /// by this factor and the realizations denormalize `E` accordingly.
    pub fn freq_scale(&self) -> f64 {
        self.freq_scale
    }

    /// Right triples (conjugates adjacent).
    pub fn right(&self) -> &[RightTriple] {
        &self.right
    }

    /// Left triples (conjugates adjacent).
    pub fn left(&self) -> &[LeftTriple] {
        &self.left
    }

    /// Block width `t_j` of each sample pair.
    pub fn pair_weights(&self) -> &[usize] {
        &self.pair_weights
    }

    /// Number of sample pairs per side (`k/2`).
    pub fn num_pairs(&self) -> usize {
        self.pair_weights.len()
    }

    /// Total Loewner pencil order `K = Σ 2 t_j` when all pairs are used.
    pub fn pencil_order(&self) -> usize {
        2 * self.pair_weights.iter().sum::<usize>()
    }

    /// `(outputs p, inputs m)`.
    pub fn ports(&self) -> (usize, usize) {
        (self.outputs, self.inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfti_sampling::generators::RandomSystemBuilder;
    use mfti_sampling::{FrequencyGrid, SampleSet};
    use mfti_statespace::TransferFunction;

    fn samples(k: usize, ports: usize) -> (SampleSet, mfti_statespace::DescriptorSystem<f64>) {
        let sys = RandomSystemBuilder::new(12, ports, ports)
            .seed(3)
            .build()
            .unwrap();
        let grid = FrequencyGrid::log_space(1e2, 1e4, k).unwrap();
        (SampleSet::from_system(&sys, &grid).unwrap(), sys)
    }

    #[test]
    fn build_splits_samples_alternately() {
        let (set, _) = samples(6, 2);
        let data = TangentialData::build(&set, DirectionKind::CyclicIdentity, &Weights::Uniform(2))
            .unwrap();
        assert_eq!(data.num_pairs(), 3);
        assert_eq!(data.right().len(), 6);
        assert_eq!(data.left().len(), 6);
        assert_eq!(data.right()[0].sample_index, 0);
        assert_eq!(data.right()[2].sample_index, 2);
        assert_eq!(data.left()[0].sample_index, 1);
        assert_eq!(data.pencil_order(), 12);
    }

    #[test]
    fn conjugate_triples_are_adjacent_and_conjugated() {
        let (set, _) = samples(4, 3);
        let data = TangentialData::build(
            &set,
            DirectionKind::RandomOrthonormal { seed: 1 },
            &Weights::Uniform(3),
        )
        .unwrap();
        for pair in data.right().chunks(2) {
            assert_eq!(pair[0].lambda, -pair[1].lambda);
            assert_eq!(pair[0].r, pair[1].r);
            assert!((&pair[0].w.conj() - &pair[1].w).max_abs() < 1e-15);
        }
        for pair in data.left().chunks(2) {
            assert_eq!(pair[0].mu, -pair[1].mu);
            assert!((&pair[0].v.conj() - &pair[1].v).max_abs() < 1e-15);
        }
    }

    #[test]
    fn interpolation_data_satisfy_their_definition() {
        let (set, sys) = samples(4, 2);
        let data = TangentialData::build(
            &set,
            DirectionKind::RandomOrthonormal { seed: 5 },
            &Weights::Uniform(2),
        )
        .unwrap();
        // W_i = S(f_i) R_i must equal H(λ_i) R_i for the true system.
        for t in data.right().iter().step_by(2) {
            let h = sys.eval(t.lambda).unwrap();
            let w = h.matmul(&t.r.to_complex()).unwrap();
            assert!((&w - &t.w).max_abs() < 1e-10);
        }
        for t in data.left().iter().step_by(2) {
            let h = sys.eval(t.mu).unwrap();
            let v = t.l.to_complex().matmul(&h).unwrap();
            assert!((&v - &t.v).max_abs() < 1e-10);
        }
    }

    #[test]
    fn odd_and_tiny_sample_counts_are_rejected() {
        let (set, _) = samples(6, 2);
        let odd = set.subset(&[0, 1, 2]).unwrap();
        assert!(
            TangentialData::build(&odd, DirectionKind::CyclicIdentity, &Weights::Uniform(1))
                .is_err()
        );
    }

    #[test]
    fn duplicate_frequencies_are_rejected() {
        let (set, _) = samples(4, 2);
        let dup = set.subset(&[0, 0, 1, 2]).unwrap();
        assert!(matches!(
            TangentialData::build(&dup, DirectionKind::CyclicIdentity, &Weights::Uniform(1)),
            Err(MftiError::Defect(
                mfti_sampling::SampleDefect::DuplicateFrequency {
                    first: 0,
                    second: 1
                }
            ))
        ));
    }

    #[test]
    fn non_finite_entries_are_typed_defects() {
        let (set, _) = samples(4, 2);
        let mut mats: Vec<_> = set.matrices().to_vec();
        mats[2][(0, 1)] = mfti_numeric::c64(f64::NAN, 0.0);
        let bad = SampleSet::from_parts(set.freqs_hz().to_vec(), mats).unwrap();
        assert!(matches!(
            TangentialData::build(&bad, DirectionKind::CyclicIdentity, &Weights::Uniform(1)),
            Err(MftiError::Defect(
                mfti_sampling::SampleDefect::NonFiniteEntry {
                    sample: 2,
                    row: 0,
                    col: 1
                }
            ))
        ));
    }

    #[test]
    fn zero_direction_columns_are_degenerate() {
        let good = RMatrix::identity(2);
        let mut zero_col = RMatrix::identity(2);
        zero_col[(1, 1)] = 0.0;
        let dirs = DirectionSet {
            right: vec![good.clone(), zero_col.clone()],
            left: vec![good.clone(), good.clone()],
        };
        assert!(matches!(
            check_directions(&dirs),
            Err(MftiError::DegenerateDirection { pair: 1 })
        ));
        let dirs = DirectionSet {
            right: vec![good.clone(), good.clone()],
            left: vec![zero_col, good.clone()],
        };
        assert!(matches!(
            check_directions(&dirs),
            Err(MftiError::DegenerateDirection { pair: 0 })
        ));
        let dirs = DirectionSet {
            right: vec![good.clone()],
            left: vec![good],
        };
        assert!(check_directions(&dirs).is_ok());
    }

    #[test]
    fn per_pair_weights_are_respected() {
        let (set, _) = samples(6, 3);
        let data = TangentialData::build(
            &set,
            DirectionKind::RandomOrthonormal { seed: 2 },
            &Weights::PerPair(vec![3, 2, 1]),
        )
        .unwrap();
        assert_eq!(data.pair_weights(), &[3, 2, 1]);
        assert_eq!(data.right()[0].r.cols(), 3);
        assert_eq!(data.right()[2].r.cols(), 2);
        assert_eq!(data.right()[4].r.cols(), 1);
        assert_eq!(data.pencil_order(), 12);
        // Wrong length rejected.
        assert!(TangentialData::build(
            &set,
            DirectionKind::CyclicIdentity,
            &Weights::PerPair(vec![1, 1])
        )
        .is_err());
    }
}
