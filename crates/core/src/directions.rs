//! Tangential interpolation directions.
//!
//! MFTI probes each sample matrix `S(f_i)` through a *matrix* direction
//! pair: a right block `R_i ∈ ℝ^{m×t_i}` and a left block
//! `L_i ∈ ℝ^{t_i×p}` (Algorithm 1 step 1 asks for orthonormal blocks).
//! With `t_i = min(m, p)` and full rank the whole matrix is used; with
//! `t_i = 1` the scheme degenerates to VFTI's vector directions.
//!
//! Real directions are used on purpose: conjugate data then satisfy
//! `R_{2i} = R_{2i-1}` literally as printed in Eq. (6) (see DESIGN.md §5).

use mfti_numeric::{Qr, RMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::MftiError;

/// Strategy for generating interpolation direction blocks.
///
/// Both strategies are **prefix-stable**: the directions of pair `j`
/// depend only on `j` (and the seed), never on how many pairs follow.
/// Growing a sample set therefore leaves the directions of the existing
/// pairs untouched, which is what lets
/// [`FitSession`](crate::FitSession) extend its Loewner pencil
/// incrementally instead of rebuilding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DirectionKind {
    /// Cycled identity columns/rows: sample `i` probes columns
    /// `(offset + 0..t_i) mod m` — the standard choice in the Loewner
    /// literature, and exactly the VFTI baseline when `t_i = 1`.
    CyclicIdentity,
    /// Random orthonormal blocks (Gaussian + QR, seeded per pair).
    /// Spreads information across all ports even when `t_i < min(m, p)`.
    RandomOrthonormal {
        /// RNG seed; fixed seed ⇒ reproducible fits.
        seed: u64,
    },
}

impl Default for DirectionKind {
    fn default() -> Self {
        DirectionKind::RandomOrthonormal { seed: 0x4d465449 } // "MFTI"
    }
}

/// Stream position a direction sequence starts from — the windowed-
/// streaming generalization of prefix stability. A sliding
/// [`FitSession`](crate::FitSession) rebuilds its tangential data over
/// the *live window only*, but the directions of a surviving pair must
/// stay what they were when the pair first streamed in; the origin
/// records how much evicted history precedes the window so generation
/// resumes mid-stream instead of restarting at pair 0.
///
/// `pairs` offsets [`DirectionKind::RandomOrthonormal`]'s per-pair RNG
/// stream index; `cols` offsets [`DirectionKind::CyclicIdentity`]'s
/// cumulative column offset (the sum of evicted block widths `t_j`).
/// `DirectionOrigin::default()` is the start of the stream, where
/// generation is identical to the un-originated form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectionOrigin {
    /// Number of evicted pairs preceding the first generated pair.
    pub pairs: usize,
    /// Sum of the evicted pairs' block widths (cyclic column offset).
    pub cols: usize,
}

/// Generated direction blocks for a whole sample set.
#[derive(Debug, Clone)]
pub struct DirectionSet {
    /// Right blocks `R_i` (`m × t_i`), one per *pair* of conjugate
    /// right triples.
    pub right: Vec<RMatrix>,
    /// Left blocks `L_i` (`t_i × p`), one per pair of conjugate left
    /// triples.
    pub left: Vec<RMatrix>,
}

/// Generates orthonormal direction blocks.
///
/// `right_ts[j]` and `left_ts[j]` give the block widths of the `j`-th
/// right/left sample pair; the two lists may have different lengths when
/// the right and left sides use different sample counts.
///
/// # Errors
///
/// Returns [`MftiError::InvalidWeights`] when any `t` is outside
/// `[1, min(m, p)]`.
pub fn generate_directions(
    kind: DirectionKind,
    outputs: usize,
    inputs: usize,
    right_ts: &[usize],
    left_ts: &[usize],
) -> Result<DirectionSet, MftiError> {
    generate_directions_from(
        kind,
        outputs,
        inputs,
        right_ts,
        left_ts,
        DirectionOrigin::default(),
    )
}

/// [`generate_directions`] resuming mid-stream at `origin` — pair `j`
/// of the output gets the directions that stream position
/// `origin.pairs + j` (cyclic column offset `origin.cols + Σ_{i<j} t_i`)
/// would have received in an unwindowed run, so a sliding window's
/// surviving pairs keep their original blocks (DESIGN.md §9).
///
/// # Errors
///
/// See [`generate_directions`].
pub fn generate_directions_from(
    kind: DirectionKind,
    outputs: usize,
    inputs: usize,
    right_ts: &[usize],
    left_ts: &[usize],
    origin: DirectionOrigin,
) -> Result<DirectionSet, MftiError> {
    let t_max = outputs.min(inputs);
    for &t in right_ts.iter().chain(left_ts) {
        if t == 0 || t > t_max {
            return Err(MftiError::InvalidWeights {
                what: format!("t = {t} outside [1, min(m,p)] = [1, {t_max}]"),
            });
        }
    }
    match kind {
        DirectionKind::CyclicIdentity => {
            let mut right = Vec::with_capacity(right_ts.len());
            let mut offset = origin.cols;
            for &t in right_ts {
                right.push(cyclic_columns(inputs, t, offset));
                offset += t;
            }
            let mut left = Vec::with_capacity(left_ts.len());
            let mut offset = origin.cols;
            for &t in left_ts {
                left.push(cyclic_columns(outputs, t, offset).transpose());
                offset += t;
            }
            Ok(DirectionSet { right, left })
        }
        DirectionKind::RandomOrthonormal { seed } => {
            // One RNG stream per (side, stream-position pair) keeps
            // every block a pure function of its position: appending
            // pairs to a session can never perturb the blocks already
            // woven into a pencil, and evicting leading pairs (origin
            // advance) never perturbs the survivors.
            let right = right_ts
                .iter()
                .enumerate()
                .map(|(j, &t)| {
                    random_orthonormal(&mut block_rng(seed, 0, origin.pairs + j), inputs, t)
                })
                .collect::<Result<Vec<_>, _>>()?;
            let left = left_ts
                .iter()
                .enumerate()
                .map(|(j, &t)| {
                    Ok(
                        random_orthonormal(&mut block_rng(seed, 1, origin.pairs + j), outputs, t)?
                            .transpose(),
                    )
                })
                .collect::<Result<Vec<_>, MftiError>>()?;
            Ok(DirectionSet { right, left })
        }
    }
}

/// Independent RNG for direction block `index` of one side (0 = right,
/// 1 = left), derived from the user seed by a splitmix64 finalizer.
fn block_rng(seed: u64, side: u64, index: usize) -> StdRng {
    let mut z = seed
        ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(side.wrapping_add(1))
        ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(index as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// `dim × t` matrix whose columns are identity columns
/// `e_{(offset+c) mod dim}`.
fn cyclic_columns(dim: usize, t: usize, offset: usize) -> RMatrix {
    RMatrix::from_fn(
        dim,
        t,
        |i, c| {
            if i == (offset + c) % dim {
                1.0
            } else {
                0.0
            }
        },
    )
}

/// Orthonormal `dim × t` block via QR of a Gaussian matrix.
fn random_orthonormal(rng: &mut StdRng, dim: usize, t: usize) -> Result<RMatrix, MftiError> {
    loop {
        let g = RMatrix::from_fn(dim, t, |_, _| {
            // Box–Muller without the rand_distr dependency.
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            (-2.0f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        });
        let qr = Qr::compute(&g)?;
        let q = qr.q_thin();
        // Degenerate draws (rank-deficient Gaussian) are astronomically
        // unlikely; retry if the factor is not orthonormal.
        let qtq = q.transpose().matmul(&q)?;
        if qtq.approx_eq(&RMatrix::identity(t), 1e-10) {
            return Ok(q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_orthonormal_cols(m: &RMatrix) {
        let g = m.transpose().matmul(m).unwrap();
        assert!(
            g.approx_eq(&RMatrix::identity(m.cols()), 1e-12),
            "columns not orthonormal: {g:?}"
        );
    }

    #[test]
    fn cyclic_identity_directions_cycle_through_ports() {
        let set = generate_directions(DirectionKind::CyclicIdentity, 3, 3, &[1, 1, 1, 1], &[1, 1])
            .unwrap();
        assert_eq!(set.right.len(), 4);
        // Sample 0 probes e0, sample 1 probes e1, sample 3 wraps to e0.
        assert_eq!(set.right[0][(0, 0)], 1.0);
        assert_eq!(set.right[1][(1, 0)], 1.0);
        assert_eq!(set.right[3][(0, 0)], 1.0);
        for r in &set.right {
            check_orthonormal_cols(r);
        }
        for l in &set.left {
            check_orthonormal_cols(&l.transpose());
        }
    }

    #[test]
    fn full_weight_cyclic_blocks_are_permutations() {
        let set = generate_directions(DirectionKind::CyclicIdentity, 4, 4, &[4, 4], &[4]).unwrap();
        for r in &set.right {
            check_orthonormal_cols(r);
            assert_eq!(r.dims(), (4, 4));
        }
    }

    #[test]
    fn random_orthonormal_blocks_have_orthonormal_columns() {
        let set = generate_directions(
            DirectionKind::RandomOrthonormal { seed: 7 },
            5,
            4,
            &[2, 3, 4],
            &[1, 2],
        )
        .unwrap();
        for r in &set.right {
            assert_eq!(r.rows(), 4);
            check_orthonormal_cols(r);
        }
        for l in &set.left {
            assert_eq!(l.cols(), 5);
            check_orthonormal_cols(&l.transpose());
        }
    }

    #[test]
    fn random_directions_are_seed_deterministic() {
        let a = generate_directions(
            DirectionKind::RandomOrthonormal { seed: 1 },
            3,
            3,
            &[2],
            &[2],
        )
        .unwrap();
        let b = generate_directions(
            DirectionKind::RandomOrthonormal { seed: 1 },
            3,
            3,
            &[2],
            &[2],
        )
        .unwrap();
        assert_eq!(a.right[0], b.right[0]);
        assert_eq!(a.left[0], b.left[0]);
    }

    #[test]
    fn random_directions_are_prefix_stable() {
        // Generating more pairs must not disturb the earlier blocks —
        // the property FitSession's incremental pencil growth rests on.
        let short = generate_directions(
            DirectionKind::RandomOrthonormal { seed: 9 },
            3,
            3,
            &[2, 2],
            &[2, 2],
        )
        .unwrap();
        let long = generate_directions(
            DirectionKind::RandomOrthonormal { seed: 9 },
            3,
            3,
            &[2, 2, 2, 2],
            &[2, 2, 2, 2],
        )
        .unwrap();
        for j in 0..2 {
            assert_eq!(short.right[j], long.right[j]);
            assert_eq!(short.left[j], long.left[j]);
        }
        // Sides and pair indices draw from distinct streams.
        assert_ne!(long.right[0], long.right[1]);
        assert_ne!(long.right[0], long.left[0].transpose());
    }

    #[test]
    fn an_origin_resumes_the_stream_where_eviction_left_it() {
        // Random: pair j at origin {pairs: 2} equals pair 2+j from the
        // start of the stream.
        let full = generate_directions(
            DirectionKind::RandomOrthonormal { seed: 11 },
            3,
            3,
            &[2, 2, 2, 2],
            &[2, 2, 2, 2],
        )
        .unwrap();
        let windowed = generate_directions_from(
            DirectionKind::RandomOrthonormal { seed: 11 },
            3,
            3,
            &[2, 2],
            &[2, 2],
            DirectionOrigin { pairs: 2, cols: 4 },
        )
        .unwrap();
        for j in 0..2 {
            assert_eq!(windowed.right[j], full.right[2 + j]);
            assert_eq!(windowed.left[j], full.left[2 + j]);
        }

        // Cyclic: the column offset resumes from the evicted widths.
        let full = generate_directions(
            DirectionKind::CyclicIdentity,
            3,
            3,
            &[1, 1, 1, 1],
            &[1, 1, 1, 1],
        )
        .unwrap();
        let windowed = generate_directions_from(
            DirectionKind::CyclicIdentity,
            3,
            3,
            &[1, 1],
            &[1, 1],
            DirectionOrigin { pairs: 2, cols: 2 },
        )
        .unwrap();
        for j in 0..2 {
            assert_eq!(windowed.right[j], full.right[2 + j]);
            assert_eq!(windowed.left[j], full.left[2 + j]);
        }
    }

    #[test]
    fn weights_outside_range_are_rejected() {
        assert!(generate_directions(DirectionKind::CyclicIdentity, 3, 3, &[0], &[1]).is_err());
        assert!(generate_directions(DirectionKind::CyclicIdentity, 3, 3, &[1], &[4]).is_err());
        // min(m, p) bounds the weight even when one side is wider.
        assert!(generate_directions(DirectionKind::CyclicIdentity, 2, 5, &[3], &[1]).is_err());
    }
}
